// qsel_node — one Quorum Selection node over real TCP on 127.0.0.1.
//
// Runs the full runtime::NodeProcess stack (heartbeats, expectation-based
// failure detection, suspicion CRDT, Algorithm 1 quorum selection) on a
// net::TcpTransport. Node i listens on base_port + i and dials every peer
// the same way, so an n-node cluster is n invocations of this binary:
//
//   qsel_node --id 0 --n 4 &    # terminal 1..4, or one shell with &
//   qsel_node --id 1 --n 4 &
//   qsel_node --id 2 --n 4 &
//   qsel_node --id 3 --n 4
//
// Every node prints its <QUORUM, Q> outputs as they change; kill a node
// (Ctrl-C) and watch the survivors converge on a quorum that excludes it,
// restart it and watch it rejoin. All nodes must share --n, --f, --seed
// and --base-port (the seed derives the HMAC keys, so a mismatched seed
// shows up as rejected signatures, not silent corruption).
//
// For deployments, `--config FILE --id I` replaces the flag soup with a
// cluster config file (net/cluster_config.hpp): per-node host:port
// assignments, the shared channel-auth key (enabling the authenticated
// handshake + per-frame MACs), timing constants, and a store_dir that
// makes the node durable — kill -9 it, restart it with the same command
// line, and it rejoins holding its persisted epoch and suspicion row.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crypto/signer.hpp"
#include "net/cluster_config.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "runtime/node_process.hpp"
#include "shard/group_host.hpp"
#include "shard/shard_kv.hpp"
#include "shard/shard_map.hpp"
#include "store/node_store.hpp"

namespace {

using namespace qsel;

struct Options {
  ProcessId id = 0;
  ProcessId n = 4;
  int f = 1;
  std::uint64_t seed = 1;
  std::uint16_t base_port = 47600;
  std::uint64_t duration_ms = 0;  // 0 = run until killed
  std::uint64_t heartbeat_ms = 10;
  std::string config_path;  // non-empty = config-file mode
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --id I --n N [--f F] [--seed S] [--base-port P]\n"
            << "       [--duration MS] [--heartbeat MS]\n"
            << "   or: " << argv0 << " --config FILE --id I [--duration MS]\n"
            << "Flag mode: node I listens on 127.0.0.1:(P+I), dials P+j.\n"
            << "Config mode: addresses, auth key, timeouts and store_dir\n"
            << "come from FILE (see net/cluster_config.hpp for the format).\n";
  std::exit(2);
}

std::uint64_t parse_u64(const char* arg, const char* argv0) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') usage(argv0);
  return value;
}

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&] {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--id") {
      options.id = static_cast<ProcessId>(parse_u64(next(), argv[0]));
    } else if (arg == "--n") {
      options.n = static_cast<ProcessId>(parse_u64(next(), argv[0]));
    } else if (arg == "--f") {
      options.f = static_cast<int>(parse_u64(next(), argv[0]));
    } else if (arg == "--seed") {
      options.seed = parse_u64(next(), argv[0]);
    } else if (arg == "--base-port") {
      options.base_port = static_cast<std::uint16_t>(parse_u64(next(), argv[0]));
    } else if (arg == "--duration") {
      options.duration_ms = parse_u64(next(), argv[0]);
    } else if (arg == "--heartbeat") {
      options.heartbeat_ms = parse_u64(next(), argv[0]);
    } else if (arg == "--config") {
      options.config_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (!options.config_path.empty()) return options;  // file validates n/f
  if (options.id >= options.n || options.n > kMaxProcesses ||
      options.f < 1 || options.n < 3 * static_cast<ProcessId>(options.f) + 1)
    usage(argv[0]);
  return options;
}

/// Sharded mode: the config file has `[group <id>]` sections, so this
/// node hosts an XPaxos replica of every group it is a member of — the
/// shard-config group replicating the ShardMap, data groups replicating
/// epoch-fenced ShardKv machines — all multiplexed over one TcpTransport.
int run_sharded(const Options& options, const net::ClusterConfig& cluster,
                net::EventLoop& loop, net::TcpTransport& transport) {
  shard::GroupHost host(transport);
  std::size_t hosted = 0;
  for (const net::GroupConfig& group : cluster.groups) {
    const shard::GroupSpec spec = shard::spec_from(group);
    const auto local = spec.local_of(options.id);
    if (!local || *local >= spec.members.size()) continue;  // not a member

    shard::HostedGroupConfig hosted_config;
    hosted_config.spec = spec;
    hosted_config.replica.f = group.f > 0 ? group.f : cluster.f;
    hosted_config.replica.fd.initial_timeout = cluster.fd_initial_timeout;
    hosted_config.replica.fd.max_timeout = cluster.fd_max_timeout;
    hosted_config.key_seed = cluster.seed;
    if (!cluster.store_dir.empty())
      hosted_config.store_dir =
          (group.store_subdir.empty()
               ? cluster.store_dir
               : cluster.store_dir + "/" + group.store_subdir) +
          "/node" + std::to_string(options.id);
    if (group.is_config) {
      hosted_config.app_factory = [] {
        return std::make_unique<shard::ShardMapMachine>();
      };
    } else {
      std::vector<std::pair<std::string, std::string>> owned;
      for (const net::GroupRange& range : group.ranges)
        owned.emplace_back(range.lo, range.hi);
      hosted_config.app_factory =
          [owned]() -> std::unique_ptr<app::StateMachine> {
        shard::ShardKv::Config kv;
        kv.owned = owned;
        return std::make_unique<shard::ShardKv>(std::move(kv));
      };
    }
    host.add_replica(std::move(hosted_config));
    std::cout << "p" << options.id << " hosts group " << group.id
              << (group.is_config ? " (shard config)" : " (data)")
              << ": members " << group.members.size() << ", f "
              << (group.f > 0 ? group.f : cluster.f) << std::endl;
    ++hosted;
  }
  if (hosted == 0) {
    std::cerr << "qsel_node: node " << options.id
              << " is not a member of any group in the config\n";
    return 2;
  }

  transport.start();

  // Status poll: print each hosted group's view and quorum on change.
  auto shown = std::make_shared<std::map<shard::GroupId, ViewId>>();
  std::function<void()> report = [&, shown] {
    for (const net::GroupConfig& group : cluster.groups) {
      const xpaxos::Replica* replica = host.replica(group.id);
      if (replica == nullptr) continue;
      const auto it = shown->find(group.id);
      if (it != shown->end() && it->second == replica->view()) continue;
      (*shown)[group.id] = replica->view();
      std::cout << "p" << options.id << " group " << group.id << " view "
                << replica->view() << " quorum "
                << replica->active_quorum().to_string() << std::endl;
    }
    loop.timers().schedule_after(100'000'000, report);
  };
  report();

  if (options.duration_ms > 0)
    loop.run_for(options.duration_ms * 1'000'000);
  else
    loop.run();
  return 0;
}

int run(const Options& options) {
  // Both modes reduce to one ClusterConfig; flag mode synthesizes the
  // classic 127.0.0.1:(base+i), no-auth, no-store layout.
  net::ClusterConfig cluster;
  if (!options.config_path.empty()) {
    cluster = net::ClusterConfig::load(options.config_path);
    if (options.id >= cluster.n) {
      std::cerr << "qsel_node: --id " << options.id << " not in config (n="
                << static_cast<unsigned>(cluster.n) << ")\n";
      return 2;
    }
  } else {
    cluster.n = options.n;
    cluster.f = options.f;
    cluster.seed = options.seed;
    cluster.heartbeat_period = options.heartbeat_ms * 1'000'000;
    // Real-time pacing: a generous initial timeout rides out peers that
    // are still being started by hand.
    cluster.fd_initial_timeout = 4 * cluster.heartbeat_period;
    for (ProcessId peer = 0; peer < options.n; ++peer)
      cluster.nodes.push_back(net::NodeAddress{
          "127.0.0.1", static_cast<std::uint16_t>(options.base_port + peer)});
  }

  net::EventLoop loop;
  net::TcpTransport::Config tcp;
  tcp.self = options.id;
  tcp.n = cluster.n;
  tcp.listen_port = cluster.nodes[options.id].port;
  tcp.bind_host = cluster.nodes[options.id].host;
  tcp.auth_key = cluster.auth_key;
  tcp.auth_seed = cluster.seed;
  tcp.reconnect.base = cluster.reconnect_base;
  tcp.reconnect.cap = cluster.reconnect_cap;
  net::TcpTransport transport(loop, tcp);
  for (ProcessId peer = 0; peer < cluster.n; ++peer)
    if (peer != options.id)
      transport.set_peer(peer, cluster.nodes[peer].host,
                         cluster.nodes[peer].port);

  // A config with `[group <id>]` sections runs the sharded stack instead
  // of the single flat quorum-selection process.
  if (!cluster.groups.empty())
    return run_sharded(options, cluster, loop, transport);

  std::unique_ptr<store::NodeStore> store;
  if (!cluster.store_dir.empty())
    store = std::make_unique<store::FileNodeStore>(
        cluster.store_dir + "/node" + std::to_string(options.id), cluster.n);

  const crypto::KeyRegistry keys(cluster.n, cluster.seed);
  runtime::NodeProcessConfig node_config;
  node_config.n = cluster.n;
  node_config.f = cluster.f;
  node_config.heartbeat_period = cluster.heartbeat_period;
  node_config.fd.initial_timeout = cluster.fd_initial_timeout;
  node_config.fd.max_timeout = cluster.fd_max_timeout;
  runtime::NodeProcess process(transport, keys, node_config, store.get());

  std::cout << "p" << options.id << " listening on "
            << cluster.nodes[options.id].host << ":"
            << transport.listen_port()
            << " (n=" << static_cast<unsigned>(cluster.n)
            << ", f=" << cluster.f
            << ", q=" << cluster.n - static_cast<ProcessId>(cluster.f)
            << (transport.auth_enabled() ? ", auth" : "")
            << (store ? ", durable" : "") << ")" << std::endl;

  transport.start();
  process.start();

  // Status poll: print the quorum whenever it (or the epoch) changes.
  struct Shown {
    ProcessSet quorum;
    Epoch epoch = 0;
  };
  auto shown = std::make_shared<Shown>();
  std::function<void()> report = [&process, &loop, shown, &report] {
    const ProcessSet quorum = process.quorum();
    const Epoch epoch = process.selector().epoch();
    if (quorum != shown->quorum || epoch != shown->epoch) {
      shown->quorum = quorum;
      shown->epoch = epoch;
      std::cout << "p" << process.self() << " <QUORUM, "
                << quorum.to_string() << "> epoch " << epoch << std::endl;
    }
    loop.timers().schedule_after(100'000'000, report);
  };
  report();

  if (options.duration_ms > 0)
    loop.run_for(options.duration_ms * 1'000'000);
  else
    loop.run();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  try {
    return run(options);
  } catch (const std::exception& error) {
    std::cerr << "qsel_node: " << error.what() << "\n";
    return 1;
  }
}
