// qsel_campaign — coverage-guided adversary search as a four-protocol
// bake-off (campaign/engine.hpp).
//
//   qsel_campaign --budget 50 --seed 7 --corpus corpus/ --json out.json
//
// Loads every *.json schedule in --corpus (sorted by filename) as the seed
// corpus, runs a budgeted campaign where each candidate base schedule is
// materialized for every protocol in --protocols (default
// qs,fs,bchain,pbft) and checked against that protocol's oracles, and
// prints the bake-off table plus keep/frontier statistics. The whole run
// is deterministic in (corpus, flags).
//
//   --random                  pure-random A/B baseline (no mutation)
//   --out DIR                 write kept schedules as kept-NNN.json
//   --json FILE               write the JSON summary to FILE
//   --require-new-signatures K  exit 1 unless the campaign found at least
//                             K coverage signatures beyond the seed corpus
//   --replay FILE             run one schedule across all protocols and
//                             print per-protocol oracle verdicts
//
// Exit codes: 0 clean, 1 oracle violation (or the --require-new-signatures
// floor missed), 2 usage / IO error.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "scenario/schedule.hpp"

namespace {

using namespace qsel;

struct Options {
  campaign::CampaignConfig config;
  std::string corpus_dir;
  std::string out_dir;
  std::string json_path;
  std::string replay_path;
  std::uint64_t require_new_signatures = 0;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--budget N] [--seed S] [--corpus DIR] [--out DIR]\n"
            << "       [--protocols qs,fs,bchain,pbft] [--random]\n"
            << "       [--json FILE] [--require-new-signatures K]\n"
            << "       [--replay FILE]\n";
  std::exit(2);
}

std::uint64_t parse_u64(const char* arg, const char* argv0) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') usage(argv0);
  return value;
}

std::vector<scenario::Protocol> parse_protocols(const std::string& csv,
                                                const char* argv0) {
  std::vector<scenario::Protocol> protocols;
  std::stringstream stream(csv);
  std::string name;
  while (std::getline(stream, name, ',')) {
    const auto protocol = scenario::protocol_from_name(name);
    if (!protocol) usage(argv0);
    protocols.push_back(*protocol);
  }
  if (protocols.empty()) usage(argv0);
  return protocols;
}

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&] {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--budget") {
      options.config.budget = parse_u64(next(), argv[0]);
    } else if (arg == "--seed") {
      options.config.seed = parse_u64(next(), argv[0]);
    } else if (arg == "--corpus") {
      options.corpus_dir = next();
    } else if (arg == "--out") {
      options.out_dir = next();
    } else if (arg == "--protocols") {
      options.config.protocols = parse_protocols(next(), argv[0]);
    } else if (arg == "--random") {
      options.config.guided = false;
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--require-new-signatures") {
      options.require_new_signatures = parse_u64(next(), argv[0]);
    } else if (arg == "--replay") {
      options.replay_path = next();
    } else {
      usage(argv[0]);
    }
  }
  return options;
}

std::optional<scenario::Schedule> load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto schedule = scenario::Schedule::from_json(buffer.str());
  if (!schedule) {
    std::cerr << "cannot parse schedule from " << path << "\n";
    return std::nullopt;
  }
  if (const auto error = schedule->validate()) {
    std::cerr << "invalid schedule in " << path << ": " << *error << "\n";
    return std::nullopt;
  }
  return schedule;
}

/// Loads every *.json in `dir`, sorted by filename so the corpus order
/// (and therefore the campaign trajectory) is stable across filesystems.
bool load_corpus(const std::string& dir,
                 std::vector<scenario::Schedule>& corpus) {
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    if (entry.path().extension() == ".json") paths.push_back(entry.path());
  if (ec) {
    std::cerr << "cannot read corpus dir " << dir << ": " << ec.message()
              << "\n";
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    const auto schedule = load_schedule(path.string());
    if (!schedule) return false;
    corpus.push_back(*schedule);
  }
  return true;
}

/// --replay: one base schedule across every configured protocol, with the
/// per-protocol oracle verdict spelled out.
int replay(const Options& options) {
  const auto schedule = load_schedule(options.replay_path);
  if (!schedule) return 2;
  campaign::CampaignConfig config = options.config;
  config.budget = 0;
  config.corpus_seeds = {*schedule};
  const campaign::CampaignResult result = campaign::run_campaign(config);
  std::cout << schedule->summary() << "\n";
  for (const campaign::ProtocolOutcome& out :
       result.candidates.front().outcomes) {
    std::cout << scenario::protocol_name(out.protocol) << ": ";
    if (!out.ran) {
      std::cout << "not materializable\n";
      continue;
    }
    std::cout << (out.ok ? "ok" : "VIOLATION") << " (quorums "
              << out.total_quorums << ", max epoch " << out.max_epoch
              << ", gossip " << out.gossip_bytes << "B, view changes "
              << out.view_changes << ")\n";
    for (const std::string& oracle : out.violated)
      std::cout << "  violated: " << oracle << "\n";
  }
  std::cout << "signature " << std::hex << result.candidates.front().signature
            << std::dec << "\n";
  return result.violations == 0 ? 0 : 1;
}

int run(const Options& options) {
  if (!options.replay_path.empty()) return replay(options);

  campaign::CampaignConfig config = options.config;
  if (!options.corpus_dir.empty() &&
      !load_corpus(options.corpus_dir, config.corpus_seeds))
    return 2;

  const campaign::CampaignResult result = campaign::run_campaign(config);

  std::cout << (config.guided ? "guided" : "random") << " campaign: budget "
            << config.budget << ", seed " << config.seed << ", "
            << config.corpus_seeds.size() << " corpus seed(s)\n\n"
            << result.bakeoff_table(config) << "\n"
            << "distinct signatures " << result.distinct_signatures << " ("
            << result.seed_signatures << " from seeds), kept " << result.kept
            << ", violations " << result.violations << "\n"
            << "qs worst per-epoch quorums " << result.qs_worst_epoch_quorums
            << " (Theorem 4 adversary target C(f+2,2) = "
            << result.qs_theorem4_target << ")\n";
  for (const campaign::Candidate& candidate : result.candidates)
    if (candidate.kept && candidate.reason != "seed")
      std::cout << "kept [" << candidate.reason << "] "
                << candidate.base.summary() << "\n";

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::cerr << "cannot write " << options.json_path << "\n";
      return 2;
    }
    out << result.to_json(config) << "\n";
  }

  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    std::size_t index = 0;
    for (const campaign::Candidate& candidate : result.candidates) {
      if (!candidate.kept || candidate.reason == "seed") continue;
      char name[32];
      std::snprintf(name, sizeof name, "kept-%03zu.json", index++);
      std::ofstream out(std::filesystem::path(options.out_dir) / name);
      if (!out) {
        std::cerr << "cannot write to " << options.out_dir << "\n";
        return 2;
      }
      out << candidate.base.to_json() << "\n";
    }
  }

  if (result.violations > 0) return 1;
  const std::uint64_t gained =
      result.distinct_signatures - result.seed_signatures;
  if (gained < options.require_new_signatures) {
    std::cout << "only " << gained << " new signature(s), required "
              << options.require_new_signatures << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  try {
    return run(options);
  } catch (const std::exception& error) {
    std::cerr << "qsel_campaign: " << error.what() << "\n";
    return 2;
  }
}
