// bench_report — the BENCH_5 hot-path benchmark suite (DESIGN.md §11),
// plus the BENCH_6 end-to-end SMR suite behind --bench6 (section 4).
//
// Measures the three layers the delta-gossip PR optimizes and emits one
// flat JSON object (stdout, or --out FILE):
//
//   1. Gossip bytes/round: a deterministic full-mesh of SuspicionCores at
//      n ∈ {8, 32, 64} runs an identical suspicion schedule once in
//      kFullRow and once in kDelta mode; steady-state wire bytes per
//      round (suspicion plane only, framing overhead included) are
//      reported for both, plus their ratio. n = 128 is covered at the
//      codec level (ProcessSet caps live clusters at 64): encoded resync
//      bytes for full-row re-offer vs one row-digest broadcast.
//   2. Quorum recompute: the same randomized update schedule driven
//      through a QuorumSelector (memo + incremental graph + hint) vs a
//      from-scratch build_suspect_graph + first_independent_set per
//      event; average ns per event for both, plus their ratio.
//   3. Transport: a two-node TCP blast on 127.0.0.1 measuring delivered
//      frames/sec and frames per writev call (batching factor), plus a
//      SuspicionMatrix merge microbenchmark (merges/sec).
//
// Regression gate: --baseline FILE --max-regress R re-reads a previously
// committed report and fails (exit 1) when any gate_* metric regressed by
// more than R (default 0.25). Gate metrics are deliberately restricted to
// deterministic byte counts and same-run ratios — wall-clock absolutes
// (merges/sec, frames/sec) vary across machines and are reported for
// information only, so the gate is meaningful on any CI host.
//
// --quick shrinks only the timed workloads; the deterministic gossip and
// codec workloads are identical in both modes so gate values match the
// committed full-run baseline exactly (modulo compiler/code changes,
// which is the point).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "crypto/signer.hpp"
#include "graph/independent_set.hpp"
#include "load/driver.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"
#include "qs/quorum_selector.hpp"
#include "runtime/heartbeat.hpp"
#include "suspect/delta_update_message.hpp"
#include "suspect/suspicion_core.hpp"
#include "suspect/update_message.hpp"

namespace qsel {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Length prefix (4) + MAC (16): what TcpTransport adds around a body.
constexpr double kFrameOverhead = 20.0;

// --------------------------------------------------------------------------
// 1. Gossip bytes/round — deterministic full mesh of SuspicionCores.
// --------------------------------------------------------------------------

struct MeshMessage {
  ProcessId from = 0;
  ProcessId to = kNoProcess;  // kNoProcess = broadcast
  sim::PayloadPtr payload;
};

struct MeshNode {
  crypto::Signer signer;
  ProcessSet suspecting;
  suspect::SuspicionCore core;

  MeshNode(const crypto::KeyRegistry& keys, ProcessId self, ProcessId n,
           suspect::GossipMode mode, std::deque<MeshMessage>* queue)
      : signer(keys, self),
        core(signer, n,
             suspect::SuspicionCore::Hooks{
                 [queue, self](sim::PayloadPtr m) {
                   queue->push_back({self, kNoProcess, std::move(m)});
                 },
                 [] { /* no selector in the byte bench */ },
                 /*persist=*/{},
                 [queue, self](ProcessId to, sim::PayloadPtr m) {
                   queue->push_back({self, to, std::move(m)});
                 }},
             mode) {}
};

void mesh_deliver(MeshNode& node, ProcessId from,
                  const sim::PayloadPtr& payload) {
  if (auto update =
          std::dynamic_pointer_cast<const suspect::UpdateMessage>(payload)) {
    node.core.on_update(update);
  } else if (auto delta =
                 std::dynamic_pointer_cast<const suspect::DeltaUpdateMessage>(
                     payload)) {
    node.core.on_delta(delta);
  } else if (auto digest =
                 std::dynamic_pointer_cast<const suspect::RowDigestMessage>(
                     payload)) {
    node.core.on_row_digests(from, *digest);
  }
}

/// Runs `rounds` rounds over n nodes: suspicion churn in the first half,
/// pure steady state (resync every 16th round only) in the second.
/// Returns average wire bytes per round over the steady half.
double gossip_bytes_per_round(ProcessId n, suspect::GossipMode mode,
                              int rounds, std::uint64_t seed) {
  const crypto::KeyRegistry keys(n, seed);
  std::deque<MeshMessage> queue;
  std::vector<std::unique_ptr<MeshNode>> nodes;
  for (ProcessId id = 0; id < n; ++id)
    nodes.push_back(std::make_unique<MeshNode>(keys, id, n, mode, &queue));

  std::mt19937_64 rng(seed);
  double steady_bytes = 0;
  int steady_rounds = 0;
  // n/2 suspicion events spread over the churn half: steady state holds
  // roughly n/2 nonzero rows, the shape a long-lived cluster settles into.
  int churn_left = static_cast<int>(n) / 2;

  for (int round = 0; round < rounds; ++round) {
    const bool steady = round >= rounds / 2;
    if (!steady && churn_left > 0 &&
        round % std::max(1, (rounds / 2) / (static_cast<int>(n) / 2)) == 0) {
      --churn_left;
      auto& node = *nodes[rng() % n];
      const ProcessId victim = static_cast<ProcessId>(rng() % n);
      if (victim != node.core.self()) {
        node.suspecting.insert(victim);
        node.core.on_suspected(node.suspecting);
      }
    }
    if (round % 16 == 0)
      for (auto& node : nodes) node->core.resync();

    // Flood to fixpoint, counting every (message, destination) copy.
    double round_bytes = 0;
    while (!queue.empty()) {
      const MeshMessage m = queue.front();
      queue.pop_front();
      const double frame =
          static_cast<double>(m.payload->wire_size()) + kFrameOverhead;
      if (m.to != kNoProcess) {
        round_bytes += frame;
        mesh_deliver(*nodes[m.to], m.from, m.payload);
      } else {
        round_bytes += frame * (n - 1);
        for (ProcessId id = 0; id < n; ++id)
          if (id != m.from) mesh_deliver(*nodes[id], m.from, m.payload);
      }
    }
    if (steady) {
      steady_bytes += round_bytes;
      ++steady_rounds;
    }
  }
  return steady_bytes / std::max(1, steady_rounds);
}

// --------------------------------------------------------------------------
// 1b. Codec-level resync bytes at n = 128 (beyond the live-cluster cap).
// --------------------------------------------------------------------------

std::pair<double, double> codec_resync_bytes_n128() {
  // n = 128 exceeds the live-cluster cap (ProcessSet, key registry), so
  // this measures encoded sizes only; signatures are dummies — the codec
  // never checks validity, only shape.
  constexpr ProcessId n = 128;

  // Full-row resync re-offers one signed row per known origin; model half
  // the rows nonzero, matching the mesh benches.
  std::vector<Epoch> row(n, 0);
  for (ProcessId col = 1; col < n; col += 2) row[col] = 3;
  suspect::UpdateMessage update;
  update.origin = 0;
  update.row = row;
  const auto update_body = net::encode_message(update);
  const double full =
      (static_cast<double>(update_body ? update_body->size() : 0) +
       kFrameOverhead) *
      (n / 2);

  // Delta resync broadcasts one digest listing the same nonzero rows.
  suspect::RowDigestMessage digest;
  for (ProcessId r = 1; r < n; r += 2)
    digest.entries.push_back({r, suspect::row_digest(row)});
  const auto digest_body = net::encode_message(digest);
  const double delta =
      static_cast<double>(digest_body ? digest_body->size() : 0) +
      kFrameOverhead;
  return {full, delta};
}

// --------------------------------------------------------------------------
// 2. Quorum recompute — incremental selector vs from-scratch per event.
// --------------------------------------------------------------------------

struct RecomputeResult {
  double incremental_ns = 0;
  double scratch_ns = 0;
};

RecomputeResult quorum_recompute(ProcessId n, int f, int events,
                                 std::uint64_t seed) {
  const crypto::KeyRegistry keys(n, seed);
  const crypto::Signer self(keys, 0);
  const int q = static_cast<int>(n) - f;

  std::vector<std::unique_ptr<crypto::Signer>> peers;
  for (ProcessId id = 1; id < n; ++id)
    peers.push_back(std::make_unique<crypto::Signer>(keys, id));

  // Pre-build the schedule so neither side pays generation cost.
  std::mt19937_64 rng(seed);
  std::vector<std::shared_ptr<const suspect::UpdateMessage>> schedule;
  for (int e = 0; e < events; ++e) {
    auto& peer = *peers[rng() % peers.size()];
    std::vector<Epoch> row(n, 0);
    for (ProcessId col = 0; col < n; ++col)
      if (col != peer.self() && rng() % 16 == 0)
        row[col] = 1 + rng() % 3;
    schedule.push_back(suspect::UpdateMessage::make(peer, row));
  }

  // Best-of-N trials, fresh state each time: the gate compares the
  // *ratio* of the two arms against a committed baseline, and a single
  // pass is at the mercy of whatever else the machine is doing. The
  // per-arm minimum is the load-robust estimator — contention only ever
  // inflates a trial, never deflates it.
  constexpr int kTrials = 3;
  RecomputeResult result;
  for (int trial = 0; trial < kTrials; ++trial) {
    qs::QuorumSelector selector(
        self, qs::QuorumSelectorConfig{n, f},
        qs::QuorumSelector::Hooks{[](ProcessSet) {}, [](sim::PayloadPtr) {},
                                  /*persist=*/{}});
    suspect::SuspicionMatrix mirror(n);
    Epoch mirror_epoch = 1;

    const auto inc_start = Clock::now();
    for (const auto& msg : schedule) selector.on_update(msg);
    const double inc_ns = seconds_since(inc_start) * 1e9 / events;

    const auto scratch_start = Clock::now();
    for (const auto& msg : schedule) {
      // The naive pipeline authenticates incoming updates too — keep the
      // comparison apples to apples.
      if (!msg->verify(self, n)) continue;
      mirror.merge_row(msg->origin, msg->row);
      // The naive per-event pipeline: rebuild and solve, advancing the
      // epoch exactly as Algorithm 1 would when no quorum exists.
      for (;;) {
        const auto graph = mirror.build_suspect_graph(mirror_epoch);
        if (graph::first_independent_set(graph, q).has_value()) break;
        mirror_epoch += 1;
      }
    }
    const double scratch_ns = seconds_since(scratch_start) * 1e9 / events;

    if (trial == 0 || inc_ns < result.incremental_ns)
      result.incremental_ns = inc_ns;
    if (trial == 0 || scratch_ns < result.scratch_ns)
      result.scratch_ns = scratch_ns;
  }
  return result;
}

// --------------------------------------------------------------------------
// 3a. Matrix merge microbenchmark.
// --------------------------------------------------------------------------

double merges_per_sec(ProcessId n, int iters, std::uint64_t seed) {
  suspect::SuspicionMatrix matrix(n);
  std::mt19937_64 rng(seed);
  std::vector<std::vector<Epoch>> rows;
  for (int i = 0; i < 64; ++i) {
    std::vector<Epoch> row(n, 0);
    for (ProcessId col = 0; col < n; ++col)
      if (rng() % 4 == 0) row[col] = 1 + rng() % 8;
    rows.push_back(std::move(row));
  }
  const auto start = Clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < iters; ++i) {
    const auto& row = rows[static_cast<std::size_t>(i) % rows.size()];
    sink += matrix.merge_row(static_cast<ProcessId>(i) % n, row) ? 1u : 0u;
  }
  const double elapsed = seconds_since(start);
  // Keep the loop observable.
  if (sink == static_cast<std::uint64_t>(-1)) std::abort();
  return iters / std::max(elapsed, 1e-9);
}

// --------------------------------------------------------------------------
// 3b. TCP blast — frames/sec and the writev batching factor.
// --------------------------------------------------------------------------

struct BlastResult {
  double frames_per_sec = 0;
  double frames_per_writev = 0;
};

BlastResult tcp_blast(double window_seconds) {
  net::EventLoop loop;
  crypto::KeyRegistry keys(2, 1);

  net::TcpTransport::Config config_a;
  config_a.self = 0;
  config_a.n = 2;
  net::TcpTransport::Config config_b = config_a;
  config_b.self = 1;
  net::TcpTransport a(loop, config_a);
  net::TcpTransport b(loop, config_b);
  a.set_peer(1, b.listen_port());
  b.set_peer(0, a.listen_port());

  std::uint64_t received = 0;
  a.set_handler([](ProcessId, const sim::PayloadPtr&) {});
  b.set_handler([&](ProcessId, const sim::PayloadPtr&) { ++received; });
  a.start();
  b.start();
  const auto connect_deadline = Clock::now() + std::chrono::seconds(5);
  while (!a.connected_to(1) && Clock::now() < connect_deadline)
    loop.poll_once(1'000'000);
  if (!a.connected_to(1)) return {};

  const crypto::Signer signer(keys, 0);
  constexpr int kBurst = 64;  // one EventLoop round's worth per iteration
  std::uint64_t seq = 0;
  const auto start = Clock::now();
  while (seconds_since(start) < window_seconds) {
    for (int i = 0; i < kBurst; ++i)
      a.send(1, runtime::HeartbeatMessage::make(signer, seq++));
    loop.poll_once(0);  // flush the batch, drain what's readable
  }
  // Drain the tail so frames_received matches frames_sent.
  const auto drain_deadline = Clock::now() + std::chrono::seconds(5);
  while (received < seq && Clock::now() < drain_deadline) loop.poll_once(1'000'000);

  const double elapsed = seconds_since(start);
  const net::IoStats stats = a.io_stats();
  BlastResult result;
  result.frames_per_sec = static_cast<double>(received) / elapsed;
  result.frames_per_writev =
      stats.writev_calls == 0
          ? 0
          : static_cast<double>(stats.frames_sent) /
                static_cast<double>(stats.writev_calls);
  return result;
}

struct Metric {
  std::string key;
  double value;
};

// --------------------------------------------------------------------------
// 4. BENCH_6 — end-to-end SMR committed ops through the load driver
// (--bench6; see src/load/driver.hpp). The deterministic gates run on the
// sim substrate in virtual time, identical in --quick and full mode:
//
//   gate_sim_serial_over_pipelined  committed ops, window 1 / window 16
//                                   over the same virtual duration —
//                                   pipelining must keep winning ≥ 2x.
//   gate_batch_prepare_ratio        PREPARE wire messages, batched /
//                                   unbatched, for the same committed set.
//   gate_histogram_determinism      0.0 iff two identical (config, seed)
//                                   sim runs produce bit-identical reports.
//
// The loopback arms (real TCP, wall clock) report committed ops/sec and
// p50/p99/p999 for the serial and pipelined+batched paths, best-of-3
// trials; informational, not gated. --quick shortens only these.
// --------------------------------------------------------------------------

load::LoadConfig bench6_sim_config() {
  load::LoadConfig config;
  config.seed = 6;
  config.clients = 8;
  config.outstanding = 8;
  config.duration_ms = 400;
  return config;
}

void bench6_sim_metrics(std::vector<Metric>& metrics,
                        std::vector<std::string>& gate_keys) {
  load::LoadConfig config = bench6_sim_config();
  config.pipeline_window = 1;
  config.max_batch = 1;
  const load::LoadReport serial = load::run_sim(config);
  config.pipeline_window = 16;
  config.max_batch = 8;
  const load::LoadReport pipelined = load::run_sim(config);
  const load::LoadReport rerun = load::run_sim(config);

  metrics.push_back({"sim_committed_serial",
                     static_cast<double>(serial.committed)});
  metrics.push_back({"sim_committed_pipelined",
                     static_cast<double>(pipelined.committed)});
  metrics.push_back({"gate_sim_serial_over_pipelined",
                     static_cast<double>(serial.committed) /
                         static_cast<double>(pipelined.committed)});
  gate_keys.push_back("gate_sim_serial_over_pipelined");

  const bool deterministic = pipelined.to_json() == rerun.to_json() &&
                             pipelined.latency.digest() ==
                                 rerun.latency.digest();
  metrics.push_back({"gate_histogram_determinism", deterministic ? 0.0 : 1.0});
  gate_keys.push_back("gate_histogram_determinism");

  // Batch amortization: six serial clients behind a window of 2 queue up,
  // so the batched arm packs multiple requests per PREPARE.
  load::LoadConfig amortized;
  amortized.seed = 11;
  amortized.clients = 6;
  amortized.outstanding = 1;
  amortized.requests_per_client = 20;
  amortized.key_space = 16;
  amortized.pipeline_window = 2;
  amortized.max_batch = 8;
  const load::LoadReport batched = load::run_sim(amortized);
  amortized.max_batch = 1;
  const load::LoadReport unbatched = load::run_sim(amortized);
  metrics.push_back({"sim_prepares_batched",
                     static_cast<double>(batched.prepares)});
  metrics.push_back({"sim_prepares_unbatched",
                     static_cast<double>(unbatched.prepares)});
  metrics.push_back({"gate_batch_prepare_ratio",
                     static_cast<double>(batched.prepares) /
                         static_cast<double>(unbatched.prepares)});
  gate_keys.push_back("gate_batch_prepare_ratio");
}

void bench6_loopback_metrics(bool quick, std::vector<Metric>& metrics) {
  // Each arm runs closed-loop at its own peak-stable depth — the usual
  // saturation-throughput comparison. The serial arm is RTT-bound at any
  // depth (one instance in flight, one request per instance), so deeper
  // queues buy nothing but queueing delay and, past ~8×16 outstanding,
  // client-retransmission storms that trip the failure detector into
  // view changes. The pipelined arm needs depth to keep its
  // window×batch = 128-slot flight ceiling full.
  load::LoadConfig config;
  config.seed = 6;
  config.clients = 8;
  config.duration_ms = quick ? 250 : 1000;

  const auto best_of = [&](std::size_t window, std::size_t batch,
                           std::uint32_t outstanding) {
    config.pipeline_window = window;
    config.max_batch = batch;
    config.outstanding = outstanding;
    load::LoadReport best;
    for (int trial = 0; trial < 3; ++trial) {
      load::LoadReport r = load::run_loopback(config);
      if (trial == 0 || r.committed > best.committed) best = std::move(r);
    }
    return best;
  };

  const load::LoadReport serial = best_of(1, 1, 4);
  const load::LoadReport pipelined = best_of(16, 8, 32);
  const auto emit = [&](const char* arm, const load::LoadReport& r) {
    const std::string prefix = std::string("loopback_") + arm;
    metrics.push_back({prefix + "_ops_per_sec", r.throughput_per_sec()});
    metrics.push_back({prefix + "_p50_ns",
                       static_cast<double>(r.latency.p50())});
    metrics.push_back({prefix + "_p99_ns",
                       static_cast<double>(r.latency.p99())});
    metrics.push_back({prefix + "_p999_ns",
                       static_cast<double>(r.latency.p999())});
  };
  emit("serial", serial);
  emit("pipelined", pipelined);
  metrics.push_back(
      {"loopback_pipelined_over_serial_ops",
       serial.committed == 0
           ? 0.0
           : static_cast<double>(pipelined.committed) /
                 static_cast<double>(serial.committed)});
}

// --------------------------------------------------------------------------
// Report plumbing.
// --------------------------------------------------------------------------

std::string render_json(const std::vector<Metric>& metrics) {
  std::ostringstream os;
  os << "{\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", metrics[i].value);
    os << "  \"" << metrics[i].key << "\": " << buf
       << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  os << "}\n";
  return os.str();
}

/// Minimal reader for the flat JSON this tool writes: finds "key": value.
bool read_metric(const std::string& json, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto at = json.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + needle.size(), nullptr);
  return true;
}

/// Renders the report, writes it to stdout (and --out), then applies the
/// baseline gate. Returns the process exit code.
int finish_report(const std::vector<Metric>& metrics,
                  const std::vector<std::string>& gate_keys,
                  const char* out_path, const char* baseline_path,
                  double max_regress) {
  const std::string json = render_json(metrics);
  if (out_path != nullptr) {
    std::ofstream out(out_path);
    out << json;
    if (!out) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", out_path);
      return 1;
    }
  }
  std::fputs(json.c_str(), stdout);

  if (baseline_path == nullptr) return 0;
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "bench_report: cannot read baseline %s\n",
                 baseline_path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string baseline = buffer.str();

  // All gate metrics are lower-is-better ratios in [0, 1]; the small
  // absolute slack keeps near-zero baselines from demanding perfection.
  bool failed = false;
  for (const std::string& key : gate_keys) {
    double base = 0;
    if (!read_metric(baseline, key, &base)) continue;  // older baseline
    double cur = 0;
    for (const Metric& m : metrics)
      if (m.key == key) cur = m.value;
    const double limit = base * (1.0 + max_regress) + 0.02;
    if (cur > limit) {
      std::fprintf(stderr,
                   "bench_report: REGRESSION %s: %.4f vs baseline %.4f "
                   "(limit %.4f)\n",
                   key.c_str(), cur, base, limit);
      failed = true;
    } else {
      std::fprintf(stderr, "bench_report: ok %s: %.4f (baseline %.4f)\n",
                   key.c_str(), cur, base);
    }
  }
  return failed ? 1 : 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--bench6] [--out FILE] [--baseline FILE]"
               " [--max-regress R]\n",
               argv0);
  return 2;
}

}  // namespace
}  // namespace qsel

int main(int argc, char** argv) {
  using namespace qsel;
  bool quick = false;
  bool bench6 = false;
  const char* out_path = nullptr;
  const char* baseline_path = nullptr;
  double max_regress = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--bench6") == 0) {
      bench6 = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
      max_regress = std::strtod(argv[++i], nullptr);
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<Metric> metrics;
  std::vector<std::string> gate_keys;

  if (bench6) {
    bench6_sim_metrics(metrics, gate_keys);
    bench6_loopback_metrics(quick, metrics);
    metrics.push_back({"quick", quick ? 1.0 : 0.0});
    return finish_report(metrics, gate_keys, out_path, baseline_path,
                         max_regress);
  }

  // Gossip bytes/round: identical deterministic workload in both modes
  // (and in --quick), so the values — and the gate ratios — are exact.
  for (const ProcessId n : {ProcessId{8}, ProcessId{32}, ProcessId{64}}) {
    const int rounds = 64;
    const double full = gossip_bytes_per_round(
        n, suspect::GossipMode::kFullRow, rounds, /*seed=*/5);
    const double delta = gossip_bytes_per_round(
        n, suspect::GossipMode::kDelta, rounds, /*seed=*/5);
    const std::string suffix = "_n" + std::to_string(n);
    metrics.push_back({"gossip_bytes_per_round_full" + suffix, full});
    metrics.push_back({"gossip_bytes_per_round_delta" + suffix, delta});
    metrics.push_back({"gate_gossip_ratio" + suffix, delta / full});
    gate_keys.push_back("gate_gossip_ratio" + suffix);
  }
  {
    const auto [full, delta] = codec_resync_bytes_n128();
    metrics.push_back({"gossip_resync_bytes_full_n128", full});
    metrics.push_back({"gossip_resync_bytes_delta_n128", delta});
    metrics.push_back({"gate_resync_ratio_n128", delta / full});
    gate_keys.push_back("gate_resync_ratio_n128");
  }

  // Quorum recompute: same-run ratio is the gate; absolutes informational.
  {
    const auto r =
        quorum_recompute(/*n=*/48, /*f=*/8, quick ? 400 : 2000, /*seed=*/7);
    metrics.push_back({"quorum_recompute_ns_incremental", r.incremental_ns});
    metrics.push_back({"quorum_recompute_ns_scratch", r.scratch_ns});
    metrics.push_back(
        {"gate_recompute_ratio", r.incremental_ns / r.scratch_ns});
    gate_keys.push_back("gate_recompute_ratio");
  }

  metrics.push_back(
      {"matrix_merges_per_sec",
       merges_per_sec(/*n=*/64, quick ? 100'000 : 1'000'000, /*seed=*/3)});

  {
    const BlastResult blast = tcp_blast(quick ? 0.25 : 1.5);
    metrics.push_back({"loopback_frames_per_sec", blast.frames_per_sec});
    metrics.push_back({"loopback_frames_per_writev", blast.frames_per_writev});
  }

  metrics.push_back({"quick", quick ? 1.0 : 0.0});
  return finish_report(metrics, gate_keys, out_path, baseline_path,
                       max_regress);
}
