#!/usr/bin/env bash
# CI gate (ROADMAP "CI sanitizer pass" item):
#
#   1. tier-1: default build, `ctest -L tier1` — the fast suite that must
#      stay green on every commit;
#   2. sanitizers: a separate ASan/UBSan build running the FULL test
#      suite, including the `long`-labelled scenario soak;
#   3. loopback integration, sanitized: the real-TCP tests (EventLoop,
#      TcpTransport, the 7-node tampered LoopbackCluster scenarios and the
#      simulator/TCP parity check) re-run as an explicitly named gate —
#      socket and reconnect paths must be clean under ASan/UBSan, not just
#      under virtual time;
#   4. fuzz smoke: randomized fault schedules per protocol through
#      tools/qsel_fuzz on the sanitized binary, so memory bugs on fuzz
#      paths surface here and not in the nightly campaign. The generator's
#      archetype mix includes the combined schedules (adversary walk x
#      partition, partition x crashes) and the qs crash-then-restart
#      archetype, so a 100-run smoke exercises ~20 of them per protocol;
#   5. kill/restart soak, sanitized: a 5-node f=1 authenticated loopback
#      cluster with per-node WAL stores, killed and restarted for
#      SOAK_CYCLES (default 6, >= 5) cycles. Gates on the agreement
#      oracle after every cycle and on epoch non-regression across every
#      recovery — the durability contract under ASan/UBSan, where a
#      use-after-free in the teardown/rebuild path would actually abort;
#   6. benchmark regression gate: tools/bench_report --quick against the
#      committed BENCH_5.json (the `bench` ctest label). Gate metrics are
#      deterministic ratios (delta/full gossip bytes, incremental/scratch
#      recompute), so the 25% margin is meaningful on any host.
#   7. sharded loopback soak, sanitized: the 2-shard / 3-group cluster
#      (4 node processes, 2 routing clients) under client load on both
#      shards, with one live whole-shard migration and one whole-node
#      kill/restart mid-migration. Gates on zero acknowledged-op loss
#      through routing clients after the dust settles. Long-labelled, so
#      tier-1 runs skip it; QSEL_SHARD_SOAK_OPS scales the load.
#   8. campaign smoke, sanitized: a small coverage-guided campaign
#      (tools/qsel_campaign) seeded from the pinned corpus/, running
#      every candidate across all four protocols (qs/fs/bchain/pbft).
#      Gates on replaying every pinned reproducer green, finding at
#      least one coverage signature beyond the seed corpus, and zero
#      oracle violations — the campaign_smoke ctest (long label);
#   9. end-to-end SMR throughput gate: tools/bench_report --bench6
#      --quick against the committed BENCH_6.json. The gated metrics are
#      deterministic sim-substrate ratios (serial/pipelined committed
#      ops, batched/unbatched PREPAREs, histogram-report determinism), so
#      the 25% margin is meaningful on any host; the loopback timed arms
#      (best-of-3) are reported but not gated.
#
# Environment knobs: FUZZ_RUNS (default 100), FUZZ_SEED (default 1 —
# nightly jobs should pass a varying seed, e.g. the date), SOAK_CYCLES,
# SHARD_SOAK_OPS.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
cd "$ROOT"

echo "== [1/9] tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest -L tier1 --output-on-failure -j"$JOBS")

echo "== [2/9] ASan/UBSan full suite =="
cmake -B build-asan -S . -DQSEL_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"
(cd build-asan && ctest --output-on-failure -j"$JOBS")

echo "== [3/9] loopback integration (real TCP, sanitized) =="
(cd build-asan && ctest -L tier1 -R "EventLoopTest|TcpTransportTest|LoopbackClusterTest|LoopbackResilienceTest|WireTest" \
  --output-on-failure)

echo "== [4/9] fuzz smoke (${FUZZ_RUNS:-100} runs/protocol, sanitized, combined archetypes included) =="
./build-asan/tools/qsel_fuzz --runs "${FUZZ_RUNS:-100}" --seed "${FUZZ_SEED:-1}"

echo "== [5/9] kill/restart durability soak (${SOAK_CYCLES:-6} cycles, 5-node f=1, sanitized) =="
(cd build-asan && QSEL_SOAK_CYCLES="${SOAK_CYCLES:-6}" \
  ctest -R "RestartSoakTest" --output-on-failure)

echo "== [6/9] benchmark regression gate (bench_report --quick vs committed BENCH_5.json) =="
(cd build && ctest -R '^bench_report_quick$' --output-on-failure)

echo "== [7/9] sharded loopback soak (migration + node kill/restart under load, sanitized) =="
(cd build-asan && QSEL_SHARD_SOAK_OPS="${SHARD_SOAK_OPS:-30}" \
  ctest -R "ShardSoakTest" --output-on-failure)

echo "== [8/9] campaign smoke (guided, 4-protocol bake-off, seed corpus replay, sanitized) =="
(cd build-asan && ctest -R "campaign_smoke" --output-on-failure)

echo "== [9/9] end-to-end SMR gate (bench_report --bench6 --quick vs committed BENCH_6.json) =="
(cd build && ctest -R '^bench6_report_quick$' --output-on-failure)

echo "CI gate passed."
