#!/usr/bin/env bash
# CI gate (ROADMAP "CI sanitizer pass" item):
#
#   1. tier-1: default build, `ctest -L tier1` — the fast suite that must
#      stay green on every commit;
#   2. sanitizers: a separate ASan/UBSan build running the FULL test
#      suite, including the `long`-labelled scenario soak;
#   3. fuzz smoke: 100 randomized fault schedules per protocol through
#      tools/qsel_fuzz on the sanitized binary, so memory bugs on fuzz
#      paths surface here and not in the nightly campaign.
#
# Environment knobs: FUZZ_RUNS (default 100), FUZZ_SEED (default 1 —
# nightly jobs should pass a varying seed, e.g. the date).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
cd "$ROOT"

echo "== [1/3] tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest -L tier1 --output-on-failure -j"$JOBS")

echo "== [2/3] ASan/UBSan full suite =="
cmake -B build-asan -S . -DQSEL_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"
(cd build-asan && ctest --output-on-failure -j"$JOBS")

echo "== [3/3] fuzz smoke (${FUZZ_RUNS:-100} runs/protocol, sanitized) =="
./build-asan/tools/qsel_fuzz --runs "${FUZZ_RUNS:-100}" --seed "${FUZZ_SEED:-1}"

echo "CI gate passed."
