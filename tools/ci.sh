#!/usr/bin/env bash
# CI gate (ROADMAP "CI sanitizer pass" item):
#
#   1. tier-1: default build, `ctest -L tier1` — the fast suite that must
#      stay green on every commit;
#   2. sanitizers: a separate ASan/UBSan build running the FULL test
#      suite, including the `long`-labelled scenario soak;
#   3. loopback integration, sanitized: the real-TCP tests (EventLoop,
#      TcpTransport, the 7-node tampered LoopbackCluster scenarios and the
#      simulator/TCP parity check) re-run as an explicitly named gate —
#      socket and reconnect paths must be clean under ASan/UBSan, not just
#      under virtual time;
#   4. fuzz smoke: randomized fault schedules per protocol through
#      tools/qsel_fuzz on the sanitized binary, so memory bugs on fuzz
#      paths surface here and not in the nightly campaign. The generator's
#      archetype mix includes the combined schedules (adversary walk x
#      partition, partition x crashes), so a 100-run smoke exercises ~20
#      of them per protocol.
#
# Environment knobs: FUZZ_RUNS (default 100), FUZZ_SEED (default 1 —
# nightly jobs should pass a varying seed, e.g. the date).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
cd "$ROOT"

echo "== [1/4] tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest -L tier1 --output-on-failure -j"$JOBS")

echo "== [2/4] ASan/UBSan full suite =="
cmake -B build-asan -S . -DQSEL_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"
(cd build-asan && ctest --output-on-failure -j"$JOBS")

echo "== [3/4] loopback integration (real TCP, sanitized) =="
(cd build-asan && ctest -L tier1 -R "EventLoopTest|TcpTransportTest|LoopbackClusterTest|WireTest" \
  --output-on-failure)

echo "== [4/4] fuzz smoke (${FUZZ_RUNS:-100} runs/protocol, sanitized, combined archetypes included) =="
./build-asan/tools/qsel_fuzz --runs "${FUZZ_RUNS:-100}" --seed "${FUZZ_SEED:-1}"

echo "CI gate passed."
