// qsel_fuzz — randomized fault-schedule fuzzer for the selection stack.
//
// Generates `--runs` schedules per protocol from a base `--seed`, runs
// each against the simulated cluster, checks every property oracle plus
// trace-digest determinism (each schedule runs twice), and on failure
// shrinks the schedule to a minimal reproducer and prints it as JSON.
//
//   qsel_fuzz --runs 1000 --seed 7 --n 4 10 --f 1 3 --protocol qs
//
// --protocol accepts qs, fs, xpaxos, bchain, pbft or all (default: the
// three selection-stack protocols). Exits 1 when any run violates an
// oracle, 0 otherwise — tools/ci.sh relies on that.
// --replay FILE runs a single schedule from a JSON reproducer (as printed
// after shrinking) instead of generating schedules; on failure it names
// every violated oracle and, for a determinism failure, reruns with full
// event retention and prints the first diverging trace event.
// --test-bug stuck|nondet injects a synthetic failure into --replay so the
// failure paths stay exit-code-testable against the real binary.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "metrics/table.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/shrinker.hpp"

namespace {

using namespace qsel;

struct Options {
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  scenario::GeneratorConfig gen;
  std::vector<scenario::Protocol> protocols = {
      scenario::Protocol::kQuorumSelection,
      scenario::Protocol::kFollowerSelection, scenario::Protocol::kXPaxos};
  bool shrink = true;
  std::uint64_t max_failures = 3;  // stop shrinking/printing after this many
  std::string replay_path;
  std::string test_bug;  // "", "stuck" or "nondet" (replay only)
  bool digests = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--runs N] [--seed S] [--n MIN MAX] [--f MIN MAX]\n"
      << "       [--protocol qs|fs|xpaxos|bchain|pbft|all] [--no-shrink]\n"
      << "       [--replay FILE] [--test-bug stuck|nondet]\n";
  std::exit(2);
}

std::uint64_t parse_u64(const char* arg, const char* argv0) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') usage(argv0);
  return value;
}

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&] {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--runs") {
      options.runs = parse_u64(next(), argv[0]);
    } else if (arg == "--seed") {
      options.seed = parse_u64(next(), argv[0]);
    } else if (arg == "--n") {
      options.gen.n_min = static_cast<ProcessId>(parse_u64(next(), argv[0]));
      options.gen.n_max = static_cast<ProcessId>(parse_u64(next(), argv[0]));
    } else if (arg == "--f") {
      options.gen.f_min = static_cast<int>(parse_u64(next(), argv[0]));
      options.gen.f_max = static_cast<int>(parse_u64(next(), argv[0]));
    } else if (arg == "--protocol") {
      const std::string name = next();
      if (name == "all") continue;
      const auto protocol = scenario::protocol_from_name(name);
      if (!protocol) usage(argv[0]);
      options.protocols = {*protocol};
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--replay") {
      options.replay_path = next();
    } else if (arg == "--test-bug") {
      options.test_bug = next();
      if (options.test_bug != "stuck" && options.test_bug != "nondet")
        usage(argv[0]);
    } else if (arg == "--digests") {
      // Prints "<protocol> <seed> <digest>" per run instead of fuzzing;
      // used to (re)generate the pins in tests/scenario/corpus_test.cpp.
      options.digests = true;
    } else {
      usage(argv[0]);
    }
  }
  return options;
}

struct ProtocolStats {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t actions = 0;
  std::uint64_t quorums = 0;
  std::uint64_t messages = 0;
  Epoch max_epoch = 1;
};

void report_failure(const Options& options, const scenario::Schedule& schedule,
                    const scenario::OracleReport& report) {
  std::cout << "\nFAILURE " << schedule.summary() << "\n  "
            << report.to_string() << "\n";
  if (!options.shrink) return;
  const auto result = scenario::shrink_schedule(
      schedule, [](const scenario::Schedule& candidate) {
        return scenario::run_schedule(candidate).report;
      });
  std::cout << "shrunk to " << result.schedule.actions.size()
            << " fault action(s) in " << result.runs << " runs ("
            << result.report.to_string() << "):\n"
            << result.schedule.to_json() << "\n";
}

/// Reruns `schedule` twice with full event retention and prints the first
/// event where the two traces diverge — the actionable pointer when a
/// digest mismatch says "nondeterministic" but not where.
void report_divergence(const scenario::Schedule& schedule) {
  scenario::RunOptions full;
  full.ring_capacity = 0;  // unbounded: divergence may be early
  full.keep_events = true;
  const scenario::RunResult a = scenario::run_schedule(schedule, full);
  const scenario::RunResult b = scenario::run_schedule(schedule, full);
  const std::size_t limit = std::min(a.events.size(), b.events.size());
  std::size_t i = 0;
  while (i < limit && a.events[i] == b.events[i]) ++i;
  if (i == limit && a.events.size() == b.events.size()) {
    std::cout << "  (no diverging event in " << limit
              << " retained events; divergence not reproduced)\n";
    return;
  }
  std::cout << "  first diverging event at index " << i << ":\n"
            << "    run 1: "
            << (i < a.events.size() ? a.events[i].to_string()
                                    : "<trace ended>")
            << "\n    run 2: "
            << (i < b.events.size() ? b.events[i].to_string()
                                    : "<trace ended>")
            << "\n";
}

int replay(const std::string& path, const std::string& test_bug) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto schedule = scenario::Schedule::from_json(buffer.str());
  if (!schedule) {
    std::cerr << "cannot parse schedule from " << path << "\n";
    return 2;
  }
  // A reproducer that parses but violates the schedule invariants (edited
  // by hand, truncated, wrong ids) must be a clean CLI error: run_schedule
  // asserts well-formedness and would otherwise terminate on a
  // QSEL_REQUIRE/QSEL_ASSERT throw deep inside the cluster.
  if (const auto error = schedule->validate()) {
    std::cerr << "invalid schedule in " << path << ": " << *error << "\n";
    return 2;
  }
  const scenario::RunResult result = scenario::run_schedule(*schedule);
  const scenario::RunResult again = scenario::run_schedule(*schedule);

  scenario::OracleReport report = result.report;
  if (test_bug == "stuck")
    report.violations.push_back(
        {"epoch_progress", "synthetic violation (--test-bug stuck)"});
  const bool deterministic =
      again.digest == result.digest && test_bug != "nondet";

  std::cout << schedule->summary() << "\n"
            << "digest " << result.digest.to_hex()
            << (deterministic ? "" : " NOT DETERMINISTIC") << "\nevents "
            << result.events_processed << ", messages "
            << result.messages_sent << ", quorums " << result.total_quorums
            << ", max epoch " << result.max_epoch << "\n";
  if (report.ok()) {
    std::cout << "oracles: " << report.to_string() << "\n";
  } else {
    std::cout << "violated oracles:\n";
    for (const scenario::Violation& violation : report.violations)
      std::cout << "  " << violation.oracle << ": " << violation.detail
                << "\n";
  }
  if (!deterministic) report_divergence(*schedule);
  return report.ok() && deterministic ? 0 : 1;
}

int run(const Options& options) {
  if (!options.replay_path.empty())
    return replay(options.replay_path, options.test_bug);
  if (options.digests) {
    const scenario::ScheduleGenerator generator(options.gen);
    for (scenario::Protocol protocol : options.protocols)
      for (std::uint64_t i = 0; i < options.runs; ++i) {
        const std::uint64_t seed = options.seed + i;
        const auto result =
            scenario::run_schedule(generator.generate(protocol, seed));
        std::cout << scenario::protocol_name(protocol) << " " << seed << " "
                  << result.digest.to_hex() << "\n";
      }
    return 0;
  }
  const scenario::ScheduleGenerator generator(options.gen);

  std::map<scenario::Protocol, ProtocolStats> stats;
  std::uint64_t failures = 0;
  for (scenario::Protocol protocol : options.protocols) {
    ProtocolStats& ps = stats[protocol];
    for (std::uint64_t i = 0; i < options.runs; ++i) {
      const scenario::Schedule schedule =
          generator.generate(protocol, options.seed + i);
      const scenario::RunResult result = scenario::run_schedule(schedule);
      ++ps.runs;
      ps.actions += schedule.actions.size();
      ps.quorums += result.total_quorums;
      ps.messages += result.messages_sent;
      ps.max_epoch = std::max(ps.max_epoch, result.max_epoch);

      scenario::OracleReport report = result.report;
      // Determinism oracle: the same schedule must replay to the same
      // chained trace digest.
      const scenario::RunResult replay = scenario::run_schedule(schedule);
      if (replay.digest != result.digest)
        report.violations.push_back(
            {"determinism", "same schedule produced different trace digests"});

      if (!report.ok()) {
        ++ps.failures;
        if (failures++ < options.max_failures)
          report_failure(options, schedule, report);
      }
    }
  }

  metrics::Table table(
      {"protocol", "runs", "failures", "actions", "quorums", "msgs/run",
       "max epoch"});
  for (const auto& [protocol, ps] : stats)
    table.row(scenario::protocol_name(protocol), ps.runs, ps.failures,
              ps.actions, ps.quorums, ps.runs ? ps.messages / ps.runs : 0,
              ps.max_epoch);
  table.print(std::cout);

  if (failures > 0) {
    std::cout << failures << " failing run(s)\n";
    return 1;
  }
  std::cout << "all runs satisfied every oracle\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  // Range preconditions (n_min <= n_max, f >= 1, n >= 3f+1, ...) are
  // enforced by QSEL_REQUIRE throws inside the generator; surface them as
  // CLI errors rather than an uncaught-exception abort.
  try {
    return run(options);
  } catch (const std::invalid_argument& error) {
    std::cerr << "qsel_fuzz: invalid parameters: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    // Last-resort guard: anything escaping here (filesystem surprises, a
    // QSEL_ASSERT tripped by a hostile reproducer) is a tool error, not a
    // property violation — report and exit 2 instead of aborting.
    std::cerr << "qsel_fuzz: " << error.what() << "\n";
    return 2;
  }
}
