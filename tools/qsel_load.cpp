// qsel_load — deterministic closed-/open-loop load generator for the
// XPaxos SMR path (src/load/driver.hpp).
//
//   qsel_load --clients 8 --outstanding 8 --duration-ms 400 --json
//   qsel_load --substrate loopback --requests 200 --window 16 --batch 8
//
// Two substrates: `sim` (default) runs on the simulated network in
// virtual time — the report is a bit-identical function of (config,
// seed), which is what the BENCH_6 deterministic gates and the CLI
// determinism test rely on. `loopback` runs the same client logic over
// real TCP on 127.0.0.1 and reports wall-clock throughput.
//
// --json prints the single-line report JSON (fixed key order); without it
// a short human-readable summary goes to stdout. Bad arguments exit 2; a
// zero-length run (--duration-ms 0, no --requests) is valid and prints a
// clean empty report.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "load/driver.hpp"

namespace {

using namespace qsel;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--substrate sim|loopback] [--seed S]\n"
      "       [--clients N] [--outstanding N] [--rate PER_SEC]"
      " [--max-outstanding N]\n"
      "       [--requests PER_CLIENT] [--duration-ms MS]\n"
      "       [--window W] [--batch B] [--key-space K] [--value-bytes B]\n"
      "       [--zipf THETA] [--json]\n",
      argv0);
  std::exit(2);
}

std::uint64_t parse_u64(const char* arg, const char* argv0) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') usage(argv0);
  return value;
}

double parse_double(const char* arg, const char* argv0) {
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || value < 0.0) usage(argv0);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  load::LoadConfig config;
  config.duration_ms = 200;
  bool loopback = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&] {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--substrate") {
      const std::string value = next();
      if (value == "loopback") {
        loopback = true;
      } else if (value == "sim") {
        loopback = false;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      config.seed = parse_u64(next(), argv[0]);
    } else if (arg == "--clients") {
      config.clients = static_cast<std::uint32_t>(parse_u64(next(), argv[0]));
      if (config.clients == 0) usage(argv[0]);
    } else if (arg == "--outstanding") {
      config.outstanding =
          static_cast<std::uint32_t>(parse_u64(next(), argv[0]));
      if (config.outstanding == 0) usage(argv[0]);
    } else if (arg == "--rate") {
      config.open_rate_per_sec = parse_u64(next(), argv[0]);
    } else if (arg == "--max-outstanding") {
      config.max_outstanding =
          static_cast<std::uint32_t>(parse_u64(next(), argv[0]));
      if (config.max_outstanding == 0) usage(argv[0]);
    } else if (arg == "--requests") {
      config.requests_per_client = parse_u64(next(), argv[0]);
    } else if (arg == "--duration-ms") {
      config.duration_ms = parse_u64(next(), argv[0]);
    } else if (arg == "--window") {
      config.pipeline_window =
          static_cast<std::size_t>(parse_u64(next(), argv[0]));
      if (config.pipeline_window == 0) usage(argv[0]);
    } else if (arg == "--batch") {
      config.max_batch = static_cast<std::size_t>(parse_u64(next(), argv[0]));
      if (config.max_batch == 0) usage(argv[0]);
    } else if (arg == "--key-space") {
      config.key_space = static_cast<std::uint32_t>(parse_u64(next(), argv[0]));
      if (config.key_space == 0) usage(argv[0]);
    } else if (arg == "--value-bytes") {
      config.value_bytes =
          static_cast<std::uint32_t>(parse_u64(next(), argv[0]));
    } else if (arg == "--zipf") {
      config.zipf_theta = parse_double(next(), argv[0]);
    } else if (arg == "--json") {
      json = true;
    } else {
      usage(argv[0]);
    }
  }

  const load::LoadReport report =
      loopback ? load::run_loopback(config) : load::run_sim(config);

  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("substrate        %s\n", loopback ? "loopback" : "sim");
    std::printf("committed        %llu\n",
                static_cast<unsigned long long>(report.committed));
    std::printf("submitted        %llu\n",
                static_cast<unsigned long long>(report.submitted));
    std::printf("shed             %llu\n",
                static_cast<unsigned long long>(report.shed));
    std::printf("retransmissions  %llu\n",
                static_cast<unsigned long long>(report.retransmissions));
    std::printf("view changes     %llu\n",
                static_cast<unsigned long long>(report.view_changes));
    std::printf("duration         %.3f ms\n",
                static_cast<double>(report.duration_ns) / 1e6);
    std::printf("throughput       %.1f ops/sec\n",
                report.throughput_per_sec());
    std::printf("latency p50      %.3f ms\n",
                static_cast<double>(report.latency.p50()) / 1e6);
    std::printf("latency p99      %.3f ms\n",
                static_cast<double>(report.latency.p99()) / 1e6);
    std::printf("latency p999     %.3f ms\n",
                static_cast<double>(report.latency.p999()) / 1e6);
    std::printf("app digest       %s\n", report.app_digest.to_hex().c_str());
    if (!report.history_error.empty())
      std::printf("HISTORY VIOLATION %s\n", report.history_error.c_str());
  }
  return report.history_error.empty() ? 0 : 1;
}
