// trace_inspect — offline analysis of a JSONL event trace.
//
//   trace_inspect <trace.jsonl>                  summary view
//   trace_inspect <trace.jsonl> --process 2      timeline for process 2
//   trace_inspect <trace.jsonl> --limit 200      cap timeline length
//
// The summary recomputes the chained SHA-256 trace digest from the file,
// so two runs can be compared by their files alone; it then breaks the
// run down the way the paper's experiments reason about it: message
// volume per payload type, quorum changes per epoch, and per-process
// event activity.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "trace/jsonl.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace qsel;

struct TagStats {
  std::uint64_t sends = 0;
  std::uint64_t delivers = 0;
  std::uint64_t drops = 0;
  std::uint64_t bytes = 0;  // bytes offered to the network (sends + drops)
};

struct ProcessStats {
  std::uint64_t sends = 0;
  std::uint64_t delivers = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t updates = 0;
  std::uint64_t epochs = 0;
  std::uint64_t quorums = 0;
  std::uint64_t shard = 0;  // freeze/install/config-epoch events
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace.jsonl> [--process <id>] [--limit <n>]\n";
  return 2;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string path;
  long long only_process = -1;
  std::uint64_t limit = 50;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--process" && i + 1 < argc) {
      only_process = std::stoll(argv[++i]);
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = static_cast<std::uint64_t>(std::stoll(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "trace_inspect: cannot open " << path << "\n";
    return 1;
  }
  std::uint64_t malformed = 0;
  const std::vector<trace::Event> events = trace::read_jsonl(in, &malformed);
  if (events.empty()) {
    std::cerr << "trace_inspect: no events in " << path << " (" << malformed
              << " malformed lines)\n";
    return 1;
  }

  // --- per-process timeline mode --------------------------------------
  if (only_process >= 0) {
    const auto pid = static_cast<ProcessId>(only_process);
    std::uint64_t shown = 0, total = 0;
    for (const trace::Event& e : events) {
      if (e.actor != pid && e.peer != pid) continue;
      ++total;
      if (shown < limit) {
        std::cout << e.to_string() << "\n";
        ++shown;
      }
    }
    if (shown < total)
      std::cout << "... (" << (total - shown) << " more; raise --limit)\n";
    std::cout << total << " events involving p" << pid << "\n";
    return 0;
  }

  // --- summary ---------------------------------------------------------
  std::cout << "trace: " << path << "\n";
  std::cout << "events: " << events.size();
  if (malformed > 0) std::cout << "  (malformed lines skipped: " << malformed << ")";
  std::cout << "\n";
  std::cout << "span:   " << ms(events.front().time) << " ms .. "
            << ms(events.back().time) << " ms\n";
  std::cout << "digest: " << trace::digest_of(events).to_hex() << "\n";

  std::map<std::string, TagStats> by_tag;
  std::map<ProcessId, ProcessStats> by_process;
  // (epoch, process) -> quorum changes; epoch alone for the headline.
  std::map<Epoch, std::uint64_t> quorum_changes_by_epoch;
  std::uint64_t drops = 0, faults = 0, crashes = 0;
  std::uint64_t freezes = 0, installs = 0, epoch_bumps = 0;

  for (const trace::Event& e : events) {
    ProcessStats& p = by_process[e.actor];
    switch (e.type) {
      case trace::EventType::kSend:
        by_tag[e.tag].sends++;
        by_tag[e.tag].bytes += e.arg1;
        p.sends++;
        break;
      case trace::EventType::kDeliver:
        by_tag[e.tag].delivers++;
        p.delivers++;
        break;
      case trace::EventType::kDrop:
        by_tag[e.tag].drops++;
        by_tag[e.tag].bytes += e.arg1;
        ++drops;
        break;
      case trace::EventType::kLinkFault:
        ++faults;
        break;
      case trace::EventType::kCrash:
        ++crashes;
        break;
      case trace::EventType::kSuspected:
        p.suspicions++;
        break;
      case trace::EventType::kUpdateReceive:
      case trace::EventType::kUpdateMerge:
      case trace::EventType::kUpdateForward:
      case trace::EventType::kUpdateReject:
        p.updates++;
        break;
      case trace::EventType::kEpochAdvance:
        p.epochs++;
        break;
      case trace::EventType::kQuorum:
        p.quorums++;
        quorum_changes_by_epoch[e.arg1]++;
        break;
      case trace::EventType::kShardFreeze:
        p.shard++;
        ++freezes;
        break;
      case trace::EventType::kShardInstall:
        p.shard++;
        ++installs;
        break;
      case trace::EventType::kConfigEpochBump:
        p.shard++;
        ++epoch_bumps;
        break;
      default:
        break;
    }
  }

  std::cout << "faults: " << faults << " link fault(s), " << crashes
            << " crash(es), " << drops << " dropped message(s)\n";

  std::cout << "\nmessage volume by type\n";
  std::cout << "  type                     sends  delivers  drops      bytes\n";
  for (const auto& [tag, s] : by_tag) {
    std::printf("  %-22s %8llu  %8llu %6llu %10llu\n",
                tag.empty() ? "(untagged)" : tag.c_str(),
                static_cast<unsigned long long>(s.sends),
                static_cast<unsigned long long>(s.delivers),
                static_cast<unsigned long long>(s.drops),
                static_cast<unsigned long long>(s.bytes));
  }

  if (freezes + installs + epoch_bumps > 0) {
    std::cout << "\nshard migration activity\n";
    std::cout << "  " << freezes << " range freeze(s), " << installs
              << " chunk/adopt install(s), " << epoch_bumps
              << " config epoch bump(s)\n";
  }

  if (!quorum_changes_by_epoch.empty()) {
    std::cout << "\nquorum changes per epoch (Theorem 3 bound: f(f+1) per "
                 "process per epoch)\n";
    for (const auto& [epoch, count] : quorum_changes_by_epoch)
      std::cout << "  epoch " << epoch << ": " << count
                << " <QUORUM> output(s) across all processes\n";
  }

  std::cout << "\nper-process activity\n";
  std::cout
      << "  proc     sends  delivers  suspected  updates  epochs  quorums\n";
  for (const auto& [id, p] : by_process) {
    if (id == kNoProcess) continue;
    std::printf("  p%-6u %7llu  %8llu  %9llu  %7llu  %6llu  %7llu\n", id,
                static_cast<unsigned long long>(p.sends),
                static_cast<unsigned long long>(p.delivers),
                static_cast<unsigned long long>(p.suspicions),
                static_cast<unsigned long long>(p.updates),
                static_cast<unsigned long long>(p.epochs),
                static_cast<unsigned long long>(p.quorums));
  }
  std::cout << "\nuse --process <id> for a per-process timeline\n";
  return 0;
}
