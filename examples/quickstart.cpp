// Quickstart — Quorum Selection in ~40 lines.
//
// Builds a 4-process cluster (f = 1) running the paper's full stack
// (heartbeat application -> failure detector -> Algorithm 1), crashes one
// member of the active quorum, and watches the quorum reconfigure around
// it. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "runtime/quorum_cluster.hpp"

using namespace qsel;
using namespace qsel::runtime;

int main() {
  constexpr SimDuration kMs = 1'000'000;  // virtual nanoseconds per ms

  QuorumClusterConfig config;
  config.n = 4;
  config.f = 1;  // quorum size q = n - f = 3
  config.seed = 42;
  QuorumCluster cluster(config);
  cluster.start();

  auto show = [&](const char* when) {
    std::cout << when << " (t = "
              << static_cast<double>(cluster.simulator().now()) / 1e6
              << " ms)\n";
    const auto quorum = cluster.agreed_quorum();
    std::cout << "  agreed quorum: "
              << (quorum ? quorum->to_string() : "(processes disagree)")
              << "\n";
    for (ProcessId id : cluster.alive()) {
      auto& p = cluster.process(id);
      std::cout << "  p" << id << ": suspects "
                << p.failure_detector().suspected().to_string() << ", epoch "
                << p.selector().epoch() << ", quorums issued "
                << p.selector().quorums_issued() << "\n";
    }
  };

  cluster.simulator().run_until(100 * kMs);
  show("fault-free");

  std::cout << "\n>>> crashing process 1 (a member of the active quorum)\n\n";
  cluster.network().crash(1);
  cluster.simulator().run_until(200 * kMs);
  show("after the crash");

  cluster.simulator().run_until(1000 * kMs);
  show("steady state");
  std::cout << "\nThe quorum excludes the crashed process after one quorum\n"
               "change; omissions from processes outside the active quorum\n"
               "have no further effect (Section I of the paper).\n";
  return 0;
}
