// Adversary duel — replay the paper's worst cases move by move.
//
// Pits the optimal adversary (Theorem 4 strategy, computed by exhaustive
// game search) against Algorithm 1, printing every suspicion and the
// quorum Algorithm 1 answers with; then does the same against Follower
// Selection to show the O(f) walk. Run with an optional f (default 2):
//
//   ./build/examples/adversary_duel [f]
#include <cstdlib>
#include <iostream>

#include "adversary/follower_game.hpp"
#include "adversary/quorum_game.hpp"
#include "common/combinatorics.hpp"

using namespace qsel;
using namespace qsel::adversary;

int main(int argc, char** argv) {
  int f = 2;
  if (argc > 1) f = std::atoi(argv[1]);
  if (f < 1 || f > 4) {
    std::cerr << "f must be in 1..4 (exhaustive search)\n";
    return 1;
  }
  const auto n = static_cast<ProcessId>(3 * f + 1);

  std::cout << "=== Round 1: adversary vs Quorum Selection (Algorithm 1), "
               "f = " << f << ", n = " << n << " ===\n";
  QuorumGame qs_game(QuorumGameConfig{n, f, 0});
  const GameResult qs = qs_game.max_changes();
  graph::SimpleGraph g(n);
  std::cout << "initial quorum " << qs_game.quorum_for(g).to_string() << "\n";
  for (auto [u, v] : qs.suspicions) {
    g.add_edge(u, v);
    std::cout << "adversary: p" << u << " suspects p" << v
              << "   ->  new quorum " << qs_game.quorum_for(g).to_string()
              << "\n";
  }
  std::cout << "total quorums: " << qs.changes + 1 << " = C(f+2,2) = "
            << binomial(static_cast<std::uint64_t>(f) + 2, 2)
            << " (Theorem 4 tight)\n\n";

  std::cout << "=== Round 2: adversary vs Follower Selection (Algorithm 2) "
               "===\n";
  FollowerGame fs_game(FollowerGameConfig{n, f, 0});
  const FollowerGameResult fs = f <= 2 ? fs_game.max_changes()
                                       : fs_game.constructive_changes();
  graph::SimpleGraph h(n);
  std::cout << "initial leader p" << fs_game.leader_for(h) << "\n";
  for (auto [u, v] : fs.suspicions) {
    h.add_edge(u, v);
    std::cout << "adversary: p" << u << " suspects p" << v
              << "   ->  leader p" << fs_game.leader_for(h) << "\n";
  }
  std::cout << "total quorums: " << fs.leader_changes + 1
            << " (bound 3f+1 = " << 3 * f + 1 << ", Theorem 9)\n\n";

  const auto qs_quorums = static_cast<long long>(qs.changes) + 1;
  const auto fs_quorums = static_cast<long long>(fs.leader_changes) + 1;
  if (fs_quorums < qs_quorums) {
    std::cout << "Follower Selection needs " << qs_quorums - fs_quorums
              << " fewer quorums than general Quorum Selection — and the "
                 "gap grows quadratically with f (O(f) vs C(f+2,2)).\n";
  } else {
    std::cout << "At f <= 3 the linear 3f+1 still meets or exceeds "
                 "C(f+2,2); rerun with f = 4 to see Follower Selection win "
                 "(13 vs 15 quorums), and the gap grows quadratically from "
                 "there.\n";
  }
  return 0;
}
