// Replicated key-value store on XPaxos with Quorum Selection (Section V).
//
// Seven replicas tolerate f = 2 arbitrary failures; three clients hammer
// the KV store while we crash one quorum member and cut a single link of
// another. Quorum Selection identifies the culprits from individual-link
// omission evidence and installs a working quorum; the enumeration
// baseline (original XPaxos) is run side by side for comparison.
//
//   ./build/examples/xpaxos_kv
#include <iostream>

#include "metrics/table.hpp"
#include "xpaxos/cluster.hpp"

using namespace qsel;
using namespace qsel::xpaxos;

namespace {

constexpr SimDuration kMs = 1'000'000;

struct RunStats {
  std::uint64_t completed;
  std::uint64_t view_changes;
  double median_latency_ms;
  bool consistent;
  std::string final_quorum;
};

RunStats run(QuorumPolicy policy) {
  ClusterConfig config;
  config.n = 7;
  config.f = 2;
  config.policy = policy;
  config.clients = 3;
  config.seed = 2026;
  config.fd.initial_timeout = 10 * kMs;
  Cluster cluster(config);
  cluster.start_clients(60);  // 60 requests per client

  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(1);  // quorum member dies
  cluster.simulator().run_until(150 * kMs);
  // Process 3 starts omitting messages to process 0 only — a failure on a
  // single link (Section I).
  cluster.network().set_link_enabled(3, 0, false);
  cluster.simulator().run_until(20'000 * kMs);

  RunStats stats{};
  stats.completed = cluster.total_completed();
  stats.view_changes = cluster.max_view_changes();
  stats.median_latency_ms = cluster.client(0).latencies().median() / 1e6;
  stats.consistent = cluster.histories_consistent();
  ProcessId probe = cluster.alive_replicas().min();
  stats.final_quorum = cluster.replica(probe).active_quorum().to_string();
  return stats;
}

}  // namespace

int main() {
  std::cout << "XPaxos replicated KV store, n = 7, f = 2, 3 clients x 60 "
               "requests\nfaults: crash p1 at 50 ms, p3 omits to p0 from "
               "150 ms\n\n";
  metrics::Table table({"policy", "completed", "view changes",
                        "median lat (ms)", "final quorum", "consistent"});
  for (const auto policy :
       {QuorumPolicy::kQuorumSelection, QuorumPolicy::kEnumeration}) {
    const RunStats stats = run(policy);
    table.row(policy == QuorumPolicy::kQuorumSelection ? "quorum-selection"
                                                       : "enumeration",
              stats.completed, stats.view_changes, stats.median_latency_ms,
              stats.final_quorum, stats.consistent ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "\nBoth policies keep the store consistent; Quorum Selection\n"
               "needs far fewer view changes because the failure detector\n"
               "identifies the culprits instead of trying quorums blindly.\n";
  return 0;
}
