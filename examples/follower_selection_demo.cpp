// Follower Selection (Section VIII) — leader-centric quorums in O(f).
//
// Seven processes, f = 2. We repeatedly knock out whoever is leading:
// first a crash, then a leader that starts omitting heartbeats to one
// follower. Watch the leader walk upward monotonically — Algorithm 2
// changes the quorum only when the *leader* must change, which is what
// caps interruptions at 3f+1 per epoch (Theorem 9).
//
//   ./build/examples/follower_selection_demo
#include <iostream>

#include "runtime/follower_cluster.hpp"

using namespace qsel;
using namespace qsel::runtime;

int main() {
  constexpr SimDuration kMs = 1'000'000;

  FollowerClusterConfig config;
  config.n = 7;
  config.f = 2;
  config.seed = 7;
  FollowerCluster cluster(config);
  cluster.start();

  auto show = [&](const char* when) {
    std::cout << when << " (t = "
              << static_cast<double>(cluster.simulator().now()) / 1e6
              << " ms)\n";
    const auto agreed = cluster.agreed_leader_quorum();
    if (agreed) {
      std::cout << "  leader p" << agreed->first << ", quorum "
                << agreed->second.to_string() << "\n";
    } else {
      std::cout << "  (processes still converging)\n";
    }
    std::cout << "  quorums issued so far (max per process): "
              << cluster.max_quorums_issued() << "\n";
  };

  cluster.simulator().run_until(100 * kMs);
  show("initial");

  std::cout << "\n>>> crashing the leader p0\n\n";
  cluster.network().crash(0);
  cluster.simulator().run_until(1200 * kMs);
  show("after leader crash");

  const auto agreed = cluster.agreed_leader_quorum();
  if (agreed) {
    const ProcessId leader = agreed->first;
    const ProcessId victim = (agreed->second - ProcessSet{leader}).max();
    std::cout << "\n>>> leader p" << leader
              << " now omits heartbeats to follower p" << victim
              << " (single-link omission)\n\n";
    cluster.network().set_link_enabled(leader, victim, false);
    cluster.network().set_link_enabled(victim, leader, false);
  }
  cluster.simulator().run_until(3000 * kMs);
  show("after the omitting leader is replaced");

  std::cout << "\nNo-leader-suspicion (Section VIII): followers may even\n"
               "suspect each other, but whenever a quorum member and the\n"
               "leader suspect each other, the maximal-line-subgraph rule\n"
               "designates the next leader — at most 3f+1 quorums per epoch\n"
               "(Theorem 9) instead of the Omega(f^2) of general Quorum\n"
               "Selection.\n";
  return 0;
}
