#include "fd/failure_detector.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::fd {

FailureDetector::FailureDetector(sim::Simulator& simulator, ProcessId self,
                                 ProcessId n, FailureDetectorConfig config,
                                 SuspectCallback on_suspected)
    : sim_(simulator),
      self_(self),
      config_(config),
      on_suspected_(std::move(on_suspected)),
      timeout_(n, config.initial_timeout) {
  QSEL_REQUIRE(self < n);
  QSEL_REQUIRE(config.initial_timeout > 0);
}

ProcessSet FailureDetector::compute_suspects() const {
  ProcessSet suspects = detected_;
  for (const Expectation& e : expectations_)
    if (e.overdue) suspects.insert(e.from);
  return suspects;
}

void FailureDetector::republish() {
  const ProcessSet now_suspected = compute_suspects();
  if (now_suspected == current_suspects_) return;
  current_suspects_ = now_suspected;
  QSEL_LOG(kDebug, "fd") << "p" << self_ << " SUSPECTED "
                         << now_suspected.to_string();
  // SUSPECTED is delivered as its own module event (Section IV: events
  // between modules at one process are processed in the order they were
  // produced). Delivering through the event queue also keeps consumers
  // from being re-entered while they are mid-update (a CANCEL issued
  // inside updateQuorum may cancel an overdue expectation and change S).
  if (on_suspected_)
    sim_.schedule_after(
        0, [cb = on_suspected_, now_suspected] { cb(now_suspected); });
}

void FailureDetector::expect(ProcessId from, Predicate predicate,
                             std::string label, bool backoff_on_cancel) {
  QSEL_REQUIRE(predicate != nullptr);
  QSEL_REQUIRE(from < timeout_.size());
  ++expectations_issued_;
  const std::uint64_t id = next_expectation_id_++;
  sim::TimerHandle timer = sim_.schedule_timer(
      timeout_[from], [this, id] { on_timeout(id); });
  expectations_.push_back(Expectation{id, from, std::move(predicate),
                                      std::move(label), backoff_on_cancel,
                                      false, std::move(timer)});
}

void FailureDetector::on_timeout(std::uint64_t expectation_id) {
  const auto it =
      std::find_if(expectations_.begin(), expectations_.end(),
                   [&](const Expectation& e) { return e.id == expectation_id; });
  if (it == expectations_.end()) return;  // matched or cancelled meanwhile
  it->overdue = true;
  ++suspicions_raised_;
  QSEL_LOG(kDebug, "fd") << "p" << self_ << " expectation '" << it->label
                         << "' from p" << it->from << " overdue";
  republish();
}

void FailureDetector::on_receive(ProcessId from,
                                 const sim::PayloadPtr& message) {
  bool matched_overdue = false;
  for (auto it = expectations_.begin(); it != expectations_.end();) {
    if (it->from == from && it->predicate(from, message)) {
      if (it->overdue) {
        // A false suspicion: the expected message was late, not omitted.
        // Cancel it and back the timeout off (eventual strong accuracy).
        matched_overdue = true;
        ++suspicions_cancelled_;
        if (config_.adaptive) {
          const SimDuration doubled =
              std::min(timeout_[from] * 2, config_.max_timeout);
          if (doubled != timeout_[from]) {
            timeout_[from] = doubled;
            ++timeout_generation_;
          }
        }
      }
      it->timer.cancel();
      it = expectations_.erase(it);
    } else {
      ++it;
    }
  }
  if (matched_overdue) republish();
}

void FailureDetector::detected(ProcessId culprit) {
  QSEL_REQUIRE(culprit < timeout_.size());
  if (detected_.contains(culprit)) return;
  QSEL_LOG(kInfo, "fd") << "p" << self_ << " DETECTED p" << culprit;
  detected_.insert(culprit);
  republish();
}

FailureDetector::~FailureDetector() {
  for (Expectation& e : expectations_) e.timer.cancel();
}

void FailureDetector::restore_timeouts(std::span<const SimDuration> recovered) {
  if (recovered.empty()) return;
  QSEL_REQUIRE(recovered.size() == timeout_.size());
  bool changed = false;
  for (std::size_t i = 0; i < timeout_.size(); ++i) {
    const SimDuration joined = std::min(
        config_.max_timeout, std::max(timeout_[i], recovered[i]));
    if (joined != timeout_[i]) {
      timeout_[i] = joined;
      changed = true;
    }
  }
  if (changed) ++timeout_generation_;
}

void FailureDetector::cancel_all() {
  bool had_overdue = false;
  for (Expectation& e : expectations_) {
    if (e.overdue) {
      had_overdue = true;
      // The application withdrew an expectation that had already raised a
      // suspicion: the suspicion was spurious. For expectations that can
      // never be matched by a late delivery (see expect()), this is the
      // only place the adaptive backoff can engage.
      if (e.backoff_on_cancel && config_.adaptive) {
        const SimDuration doubled =
            std::min(timeout_[e.from] * 2, config_.max_timeout);
        if (doubled != timeout_[e.from]) {
          timeout_[e.from] = doubled;
          ++timeout_generation_;
        }
      }
    }
    e.timer.cancel();
  }
  expectations_.clear();
  if (had_overdue) republish();
}

}  // namespace qsel::fd
