// Expectation-based Byzantine failure detector (Section IV-B).
//
// The detector cannot decide on its own which messages a process should
// send (Doudou et al.: Byzantine failure detection is application
// dependent), so the application drives it through the paper's events:
//
//   EXPECT   — expect(i, predicate):  a message satisfying the predicate is
//              expected from process i; if none is delivered before the
//              (adaptive) timeout, i is suspected.
//   RECEIVE  — on_receive(i, m):      a correctly-authenticated message m
//              arrived from i; matches (and retires) open expectations and
//              cancels the suspicion an overdue expectation raised.
//   DETECTED — detected(i):           the application found a proof of
//              misbehaviour (commission failure); i is suspected forever.
//   CANCEL   — cancel_all():          withdraw all open expectations (and
//              the suspicions they raised) — used during view changes when
//              expected messages legitimately stop flowing.
//   SUSPECTED — the publish callback, invoked with the full current suspect
//              set S whenever S changes.
//
// Properties (Section IV-B1) and how they are met:
//  * Expectation completeness — every uncancelled expectation either
//    matches a delivery or fires its timeout and suspects the sender.
//  * Detection completeness — detected() inserts into a permanent set that
//    is part of every published S.
//  * Eventual strong accuracy — timeouts double each time a suspicion is
//    cancelled by a late message, so after GST (bounded delay) correct
//    processes stop being suspected, provided the application meets the
//    paper's accuracy requirements (expected messages within two
//    communication rounds).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "sim/payload.hpp"
#include "sim/simulator.hpp"

namespace qsel::fd {

struct FailureDetectorConfig {
  /// Initial expectation timeout. The paper's accuracy requirement allows
  /// two communication rounds; default callers pass
  /// 2 * network.round_length() plus slack.
  SimDuration initial_timeout = 4'000'000;  // 4 ms
  /// Timeouts double on each false suspicion up to this cap (eventual
  /// strong accuracy under eventual synchrony).
  SimDuration max_timeout = 1'000'000'000;  // 1 s
  bool adaptive = true;
};

class FailureDetector {
 public:
  using Predicate =
      std::function<bool(ProcessId from, const sim::PayloadPtr& message)>;
  /// SUSPECTED event: receives the complete current suspect set.
  using SuspectCallback = std::function<void(ProcessSet)>;

  FailureDetector(sim::Simulator& simulator, ProcessId self, ProcessId n,
                  FailureDetectorConfig config, SuspectCallback on_suspected);

  /// Cancels every open expectation timer: a detector may be destroyed
  /// (node restart) while its timer queue still holds callbacks into it.
  ~FailureDetector();

  ProcessId self() const { return self_; }

  /// <EXPECT, P, i>: expect a message matching `predicate` from process
  /// `from`. `label` is for logs/traces only.
  ///
  /// `backoff_on_cancel`: adaptive timeouts normally only grow when a late
  /// message MATCHES an overdue expectation (on_receive). Some expectations
  /// can never match — e.g. a FOLLOWERS announcement expected from a
  /// process that never considered itself leader — so a too-short timeout
  /// raises a false suspicion every round and the doubling never engages.
  /// With this flag set, an expectation that is still overdue when the
  /// application withdraws it (cancel_all) also doubles the timeout: the
  /// withdrawal says the suspicion was spurious (a view change made the
  /// expectation moot), so eventual strong accuracy needs the backoff.
  void expect(ProcessId from, Predicate predicate, std::string label = {},
              bool backoff_on_cancel = false);

  /// <RECEIVE, m, i>: feed every authenticated message through here; the
  /// caller remains responsible for delivering it to the application.
  void on_receive(ProcessId from, const sim::PayloadPtr& message);

  /// <DETECTED, i>.
  void detected(ProcessId culprit);

  /// <CANCEL>: drop all open expectations and the suspicions they raised.
  void cancel_all();

  /// Current suspect set S (overdue expectations plus permanent detections).
  ProcessSet suspected() const { return current_suspects_; }

  /// Permanently detected processes (subset of suspected()).
  ProcessSet detected_set() const { return detected_; }

  /// Current adaptive timeout used for new expectations from `from`.
  SimDuration timeout_for(ProcessId from) const { return timeout_[from]; }

  /// All adaptive timeouts, indexed by peer (persisted by durable nodes:
  /// they only ever grow, and a restart from the initial timeout would
  /// re-suspect every slow-but-correct peer during re-integration).
  const std::vector<SimDuration>& timeouts() const { return timeout_; }

  /// Joins timeouts recovered from stable storage (cell-wise max, clamped
  /// to max_timeout). Empty is a no-op; otherwise the width must match.
  void restore_timeouts(std::span<const SimDuration> recovered);

  /// Monotone counter, bumped whenever any adaptive timeout changes.
  /// Lets per-heartbeat callers skip rebuilding O(n) durable snapshots
  /// when no timeout moved (the common steady-state case).
  std::uint64_t timeout_generation() const { return timeout_generation_; }

  // --- statistics (experiment E7) --------------------------------------
  std::uint64_t suspicions_raised() const { return suspicions_raised_; }
  std::uint64_t suspicions_cancelled() const { return suspicions_cancelled_; }
  std::uint64_t expectations_issued() const { return expectations_issued_; }

 private:
  struct Expectation {
    std::uint64_t id;
    ProcessId from;
    Predicate predicate;
    std::string label;
    bool backoff_on_cancel = false;
    bool overdue = false;
    sim::TimerHandle timer;
  };

  void on_timeout(std::uint64_t expectation_id);
  void republish();
  ProcessSet compute_suspects() const;

  sim::Simulator& sim_;
  ProcessId self_;
  FailureDetectorConfig config_;
  SuspectCallback on_suspected_;
  std::list<Expectation> expectations_;
  ProcessSet detected_;
  ProcessSet current_suspects_;
  std::vector<SimDuration> timeout_;
  std::uint64_t next_expectation_id_ = 0;
  std::uint64_t timeout_generation_ = 0;
  std::uint64_t suspicions_raised_ = 0;
  std::uint64_t suspicions_cancelled_ = 0;
  std::uint64_t expectations_issued_ = 0;
};

}  // namespace qsel::fd
