#include "fs/followers_message.hpp"

namespace qsel::fs {

std::vector<std::uint8_t> FollowersMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("fs.followers");  // domain separation
  enc.process_id(leader);
  enc.process_set(followers);
  enc.u64(line_edges.size());
  for (auto [u, v] : line_edges) {
    enc.process_id(u);
    enc.process_id(v);
  }
  enc.u64(epoch);
  return std::move(enc).take();
}

std::optional<graph::SimpleGraph> FollowersMessage::line_subgraph(
    ProcessId n) const {
  graph::SimpleGraph g(n);
  for (auto [u, v] : line_edges) {
    if (u >= n || v >= n || u == v) return std::nullopt;
    g.add_edge(u, v);
  }
  return g;
}

std::shared_ptr<const FollowersMessage> FollowersMessage::make(
    const crypto::Signer& signer, ProcessSet followers,
    const graph::SimpleGraph& line, Epoch epoch) {
  auto msg = std::make_shared<FollowersMessage>();
  msg->leader = signer.self();
  msg->followers = followers;
  msg->line_edges = line.edges();
  msg->epoch = epoch;
  msg->sig = signer.sign(msg->signed_bytes());
  return msg;
}

bool FollowersMessage::verify(const crypto::Signer& verifier,
                              ProcessId n) const {
  if (leader >= n) return false;
  if (sig.signer != leader) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::fs
