// FollowerSelector — Algorithm 2 (Section VIII), Follower Selection.
//
// A variant of Quorum Selection for leader-centric applications (a single
// leader talks to q-1 followers; followers do not talk to each other).
// The *no suspicion* property weakens to *no leader suspicion*: eventually
// no correct quorum member suspects the leader and the correct leader
// suspects no quorum member. Under |Pi| > 3f and FIFO channels this
// circumvents the Omega(f^2) lower bound of Theorem 4: at most 3f + 1
// quorums per epoch (Theorem 9) and 6f + 2 after the failure detector
// becomes accurate (Corollary 10).
//
// Mechanics: suspicions propagate exactly as in Algorithm 1; the leader is
// the node designated by a maximal line subgraph of the suspect graph
// (Definition 1); the leader picks q-1 possible followers (Definition 2)
// and broadcasts a signed FOLLOWERS message, which receivers validate
// against Definition 3 — a malformed or equivocating message is a
// detectable commission failure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fs/followers_message.hpp"
#include "suspect/suspicion_core.hpp"
#include "trace/tracer.hpp"

namespace qsel::fs {

struct FollowerSelectorConfig {
  ProcessId n = 0;
  int f = 0;
  /// Wire format for suspicion dissemination (suspicion_core.hpp).
  suspect::GossipMode gossip = suspect::GossipMode::kFullRow;

  int quorum_size() const { return static_cast<int>(n) - f; }
};

struct LeaderQuorumRecord {
  ProcessId leader;
  ProcessSet quorum;  // leader + followers
  Epoch epoch;
};

class FollowerSelector {
 public:
  struct Hooks {
    /// <QUORUM, leader, Q> output.
    std::function<void(ProcessId leader, ProcessSet quorum)> issue_quorum;
    /// Broadcast to every other process.
    std::function<void(sim::PayloadPtr)> broadcast;
    /// <EXPECT, P_{Fw, epoch}, leader>: expect a FOLLOWERS message for
    /// `epoch` from `leader` (Line 23).
    std::function<void(ProcessId leader, Epoch epoch)> fd_expect_followers;
    /// <CANCEL> previously issued expectations (Lines 11, 21).
    std::function<void()> fd_cancel;
    /// <DETECTED, culprit> (Lines 30, 32).
    std::function<void(ProcessId culprit)> fd_detected;
    /// Optional point-to-point send for digest anti-entropy repairs;
    /// unset falls back to broadcast.
    std::function<void(ProcessId, sim::PayloadPtr)> send = {};
  };

  FollowerSelector(const crypto::Signer& signer, FollowerSelectorConfig config,
                   Hooks hooks);

  /// <SUSPECTED, S> from the local failure detector.
  void on_suspected(ProcessSet s) { core_.on_suspected(s); }

  /// UPDATE message from the network.
  void on_update(const std::shared_ptr<const suspect::UpdateMessage>& msg) {
    core_.on_update(msg);
  }

  /// DELTA-UPDATE message from the network.
  void on_delta(const std::shared_ptr<const suspect::DeltaUpdateMessage>& msg) {
    core_.on_delta(msg);
  }

  /// ROW-DIGEST anti-entropy summary from `from` (delta gossip mode).
  void on_row_digests(ProcessId from, const suspect::RowDigestMessage& msg) {
    core_.on_row_digests(from, msg);
  }

  /// FOLLOWERS message from the network (possibly forwarded; authenticated
  /// by the embedded leader signature).
  void on_followers(const std::shared_ptr<const FollowersMessage>& msg);

  /// Anti-entropy tick: re-broadcasts the own matrix row so state lost to
  /// a dropped UPDATE is eventually re-offered (SuspicionCore::resync).
  void resync() { core_.resync(); }

  /// Attaches an event tracer to this selector and its suspicion core:
  /// <QUORUM, leader, Q> outputs (peer = leader), suspicion and UPDATE
  /// traffic are journaled.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    core_.set_tracer(tracer);
  }

  // --- observers --------------------------------------------------------

  ProcessId leader() const { return leader_; }
  ProcessSet quorum() const { return qlast_; }
  bool stable() const { return stable_; }
  Epoch epoch() const { return core_.epoch(); }
  const suspect::SuspicionCore& core() const { return core_; }

  const std::vector<LeaderQuorumRecord>& history() const { return history_; }
  std::uint64_t quorums_issued() const { return history_.size(); }

  /// The FOLLOWERS message this process broadcast as the stable leader of
  /// the current epoch, for retransmission to processes with a stale view
  /// (a single lost broadcast — e.g. across a partition — must not wedge
  /// a receiver forever); null whenever this process is not that leader.
  std::shared_ptr<const FollowersMessage> announcement() const;

 private:
  void update_quorum();
  void issue(ProcessId leader, ProcessSet quorum);
  /// The q-1 lexicographically smallest possible followers of `line`,
  /// excluding the leader (Definition 2 + Definition 3a).
  ProcessSet select_followers(const graph::SimpleGraph& line,
                              ProcessId leader) const;
  bool well_formed(const FollowersMessage& msg,
                   const graph::SimpleGraph& line) const;

  const crypto::Signer& signer_;
  FollowerSelectorConfig config_;
  Hooks hooks_;
  suspect::SuspicionCore core_;
  ProcessId leader_ = 0;  // initial leader p_1 (index 0)
  bool stable_ = true;
  ProcessSet qlast_;
  std::shared_ptr<const FollowersMessage> last_announcement_;
  std::vector<LeaderQuorumRecord> history_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace qsel::fs
