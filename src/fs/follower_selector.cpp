#include "fs/follower_selector.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "graph/independent_set.hpp"
#include "graph/line_subgraph.hpp"

namespace qsel::fs {

FollowerSelector::FollowerSelector(const crypto::Signer& signer,
                                   FollowerSelectorConfig config, Hooks hooks)
    : signer_(signer),
      config_(config),
      hooks_(std::move(hooks)),
      core_(signer, config.n,
            suspect::SuspicionCore::Hooks{
                [this](sim::PayloadPtr msg) { hooks_.broadcast(msg); },
                [this] { update_quorum(); },
                /*persist=*/{},
                [this](ProcessId to, sim::PayloadPtr msg) {
                  if (hooks_.send)
                    hooks_.send(to, std::move(msg));
                  else
                    hooks_.broadcast(std::move(msg));
                }},
            config.gossip),
      qlast_(ProcessSet::full(static_cast<ProcessId>(config.quorum_size()))) {
  QSEL_REQUIRE(config.n <= kMaxProcesses);
  QSEL_REQUIRE_MSG(config.f >= 1, "follower selection needs f >= 1");
  QSEL_REQUIRE_MSG(config.n > 3 * static_cast<ProcessId>(config.f),
                   "follower selection assumes |Pi| > 3f (Section VIII)");
  QSEL_REQUIRE(hooks_.issue_quorum != nullptr);
  QSEL_REQUIRE(hooks_.broadcast != nullptr);
  QSEL_REQUIRE(hooks_.fd_expect_followers != nullptr);
  QSEL_REQUIRE(hooks_.fd_cancel != nullptr);
  QSEL_REQUIRE(hooks_.fd_detected != nullptr);
}

void FollowerSelector::issue(ProcessId leader, ProcessSet quorum) {
  history_.push_back(LeaderQuorumRecord{leader, quorum, core_.epoch()});
  if (tracer_)
    tracer_->quorum(core_.self(), quorum.mask(), core_.epoch(), leader);
  QSEL_LOG(kInfo, "fs") << "p" << core_.self() << " QUORUM leader=p" << leader
                        << " " << quorum.to_string() << " (epoch "
                        << core_.epoch() << ")";
  hooks_.issue_quorum(leader, quorum);
}

ProcessSet FollowerSelector::select_followers(const graph::SimpleGraph& line,
                                              ProcessId leader) const {
  ProcessSet candidates = graph::possible_followers(line);
  candidates.erase(leader);
  const int wanted = config_.quorum_size() - 1;
  QSEL_ASSERT_MSG(candidates.size() >= wanted,
                  "an independent set of size q exists, so at least q-1 "
                  "possible followers must exist");
  ProcessSet followers;
  for (ProcessId id : candidates) {
    if (followers.size() == wanted) break;
    followers.insert(id);
  }
  return followers;
}

void FollowerSelector::update_quorum() {
  const int q = config_.quorum_size();
  for (;;) {
    const graph::SimpleGraph& g = core_.current_graph();
    // Seed feasibility with the previous quorum; it is validated as an
    // independent set before use (leader+followers need not be one).
    if (!graph::has_independent_set(g, q, qlast_)) {
      // Lines 10-16: enter the next epoch with the default leader/quorum.
      core_.advance_epoch(core_.next_epoch_candidate());
      hooks_.fd_cancel();
      leader_ = 0;
      qlast_ = ProcessSet::full(static_cast<ProcessId>(q));
      issue(leader_, qlast_);
      continue;  // re-evaluate in the new epoch (paper: via self-delivery)
    }

    const graph::SimpleGraph line = graph::maximal_line_subgraph(g);
    const auto lead = graph::line_leader(line);
    QSEL_ASSERT_MSG(lead.has_value(),
                    "maximal_line_subgraph leaves its leader uncovered");
    if (leader_ != *lead) {
      stable_ = false;
      leader_ = *lead;
      hooks_.fd_cancel();
      if (leader_ != core_.self()) {
        QSEL_LOG(kDebug, "fs") << "p" << core_.self()
                               << " expects FOLLOWERS from p" << leader_
                               << " in epoch " << core_.epoch();
        hooks_.fd_expect_followers(leader_, core_.epoch());
      } else {
        const ProcessSet followers = select_followers(line, leader_);
        QSEL_LOG(kDebug, "fs") << "p" << core_.self()
                               << " is leader, selecting followers "
                               << followers.to_string();
        auto msg =
            FollowersMessage::make(signer_, followers, line, core_.epoch());
        last_announcement_ = msg;
        hooks_.broadcast(msg);
        // Accept the own choice immediately (the paper broadcasts to self
        // and accepts on the stable=false path of Line 33).
        stable_ = true;
        qlast_ = followers;
        qlast_.insert(leader_);
        issue(leader_, qlast_);
      }
    }
    return;
  }
}

std::shared_ptr<const FollowersMessage> FollowerSelector::announcement()
    const {
  if (!stable_ || leader_ != core_.self() || last_announcement_ == nullptr ||
      last_announcement_->epoch != core_.epoch())
    return nullptr;
  return last_announcement_;
}

bool FollowerSelector::well_formed(const FollowersMessage& msg,
                                   const graph::SimpleGraph& line) const {
  const int q = config_.quorum_size();
  // Definition 3 a): l not in Fw and |Fw| = q - 1 (and Fw names real
  // processes — a Byzantine mask could have bits >= n).
  if (!msg.followers.is_subset_of(ProcessSet::full(config_.n))) return false;
  if (msg.followers.contains(msg.leader)) return false;
  if (msg.followers.size() != q - 1) return false;
  // Definition 3 b): L' is a line subgraph of the local suspect graph.
  if (!graph::is_line_subgraph(line)) return false;
  if (!line.is_subgraph_of(core_.current_graph())) return false;
  // Definition 3 c): L' designates the sender as leader.
  if (graph::line_leader(line) != msg.leader) return false;
  // Definition 3 d): all followers are possible followers for L'.
  if (!msg.followers.is_subset_of(graph::possible_followers(line)))
    return false;
  return true;
}

void FollowerSelector::on_followers(
    const std::shared_ptr<const FollowersMessage>& msg) {
  QSEL_REQUIRE(msg != nullptr);
  if (!msg->verify(signer_, config_.n)) return;  // not authenticated: drop
  // Line 28 gate: only the current leader's message for the current epoch.
  if (msg->leader != leader_ || msg->epoch != core_.epoch()) return;

  const auto line = msg->line_subgraph(config_.n);
  if (!line || !well_formed(*msg, *line)) {
    QSEL_LOG(kInfo, "fs") << "p" << core_.self()
                          << " detected malformed FOLLOWERS from p"
                          << msg->leader;
    hooks_.fd_detected(msg->leader);  // Line 30
    return;
  }
  if (stable_) {
    ProcessSet claimed = msg->followers;
    claimed.insert(msg->leader);
    if (claimed != qlast_) {
      QSEL_LOG(kInfo, "fs") << "p" << core_.self()
                            << " detected FOLLOWERS equivocation by p"
                            << msg->leader;
      hooks_.fd_detected(msg->leader);  // Line 32
    }
    return;
  }
  // Lines 33-37: adopt the leader's choice and forward it.
  stable_ = true;
  qlast_ = msg->followers;
  qlast_.insert(leader_);
  hooks_.broadcast(msg);
  issue(leader_, qlast_);
}

}  // namespace qsel::fs
