// FOLLOWERS message (Algorithm 2, Lines 26/27 and Definition 3).
//
// The leader designated by the maximal line subgraph selects q-1 possible
// followers and broadcasts its choice together with the line subgraph L
// that justifies it. Receivers validate well-formedness (Definition 3)
// against their own suspect graph; a malformed or equivocating FOLLOWERS
// message is a commission failure and triggers <DETECTED, leader>.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "graph/simple_graph.hpp"
#include "net/codec.hpp"
#include "sim/payload.hpp"

namespace qsel::fs {

struct FollowersMessage final : sim::Payload {
  ProcessId leader = kNoProcess;
  ProcessSet followers;  // Fw, |Fw| = q - 1
  /// Edges of the line subgraph L justifying the choice, (u, v) with u < v,
  /// sorted — part of the signed contents.
  std::vector<std::pair<ProcessId, ProcessId>> line_edges;
  Epoch epoch = 0;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "fs.followers"; }
  std::size_t wire_size() const override {
    return 4 + 8 + 8 * line_edges.size() + 8 + 36;
  }

  std::vector<std::uint8_t> signed_bytes() const;

  /// Reconstructs L on n nodes from the edge list; nullopt when any edge is
  /// out of range or a self-loop (malformed Byzantine input).
  std::optional<graph::SimpleGraph> line_subgraph(ProcessId n) const;

  static std::shared_ptr<const FollowersMessage> make(
      const crypto::Signer& signer, ProcessSet followers,
      const graph::SimpleGraph& line, Epoch epoch);

  /// Signature + structural authenticity (signer == claimed leader).
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::fs
