#include "smr/typed_result.hpp"

namespace qsel::smr {

namespace {

/// First byte of every typed envelope. 0x1F is an ASCII control character
/// (unit separator) no human-readable result starts with; collisions with
/// binary KvStore values are tolerable because only shard-aware clients
/// parse, and shard state machines wrap every result they produce.
constexpr char kMagic = '\x1f';

}  // namespace

std::string_view result_status_name(ResultStatus status) {
  switch (status) {
    case ResultStatus::kOk:
      return "OK";
    case ResultStatus::kWrongGroup:
      return "WRONG_GROUP";
    case ResultStatus::kFrozen:
      return "FROZEN";
    case ResultStatus::kStaleEpoch:
      return "STALE_EPOCH";
  }
  return "UNKNOWN";
}

std::string TypedResult::encode() const {
  std::string out;
  out.reserve(10 + value.size());
  out.push_back(kMagic);
  out.push_back(static_cast<char>(status));
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((epoch >> shift) & 0xff));
  out += value;
  return out;
}

std::optional<TypedResult> TypedResult::parse(std::string_view result) {
  if (result.size() < 10 || result[0] != kMagic) return std::nullopt;
  const auto raw_status = static_cast<std::uint8_t>(result[1]);
  if (raw_status > static_cast<std::uint8_t>(ResultStatus::kStaleEpoch))
    return std::nullopt;
  TypedResult out;
  out.status = static_cast<ResultStatus>(raw_status);
  for (std::size_t i = 0; i < 8; ++i)
    out.epoch |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(result[2 + i]))
                 << (8 * i);
  out.value = std::string(result.substr(10));
  return out;
}

std::string TypedResult::ok(std::uint64_t epoch, std::string value) {
  return TypedResult{ResultStatus::kOk, epoch, std::move(value)}.encode();
}

std::string TypedResult::wrong_group(std::uint64_t epoch) {
  return TypedResult{ResultStatus::kWrongGroup, epoch, {}}.encode();
}

std::string TypedResult::frozen(std::uint64_t epoch) {
  return TypedResult{ResultStatus::kFrozen, epoch, {}}.encode();
}

std::string TypedResult::stale_epoch(std::uint64_t epoch) {
  return TypedResult{ResultStatus::kStaleEpoch, epoch, {}}.encode();
}

}  // namespace qsel::smr
