#include "smr/client.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::smr {

RequestEngine::RequestEngine(net::Transport& transport,
                             const crypto::KeyRegistry& keys, ProcessId self,
                             RequestEngineConfig config)
    : transport_(transport), signer_(keys, self), config_(config) {
  if (config_.replica_set.empty())
    config_.replica_set = ProcessSet::full(config_.replicas);
  QSEL_REQUIRE(!config_.replica_set.contains(self));
  QSEL_REQUIRE(static_cast<int>(config_.replica_set.size()) > config_.f);
}

void RequestEngine::submit(std::vector<std::uint8_t> op, Callback done) {
  QSEL_REQUIRE(in_flight_ == nullptr);
  in_flight_ = ClientRequest::make(signer_, next_seq_++, std::move(op));
  done_ = std::move(done);
  replies_.clear();
  issued_at_ = transport_.timers().now();
  send_current();
}

void RequestEngine::abort() {
  in_flight_ = nullptr;
  done_ = nullptr;
  replies_.clear();
  retry_timer_.cancel();
}

void RequestEngine::send_current() {
  QSEL_ASSERT(in_flight_ != nullptr);
  transport_.broadcast(config_.replica_set, in_flight_);
  arm_retry();
}

void RequestEngine::arm_retry() {
  retry_timer_.cancel();
  retry_timer_ =
      transport_.timers().schedule_timer(config_.retry_timeout, [this] {
        if (in_flight_ == nullptr) return;
        ++retransmissions_;
        send_current();
      });
}

void RequestEngine::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;
  const auto reply = std::dynamic_pointer_cast<const ReplyMessage>(message);
  if (reply == nullptr || in_flight_ == nullptr) return;
  if (!reply->verify(signer_, config_.replicas)) return;
  if (!config_.replica_set.contains(reply->replica)) return;
  if (reply->client != self() || reply->client_seq != in_flight_->client_seq)
    return;
  ProcessSet& voters = replies_[reply->result];
  voters.insert(reply->replica);
  if (voters.size() <= config_.f) return;  // need f+1 matching

  Outcome outcome;
  outcome.client_seq = in_flight_->client_seq;
  outcome.latency = transport_.timers().now() - issued_at_;
  if (const auto typed = TypedResult::parse(reply->result)) {
    outcome.status = typed->status;
    outcome.config_epoch = typed->epoch;
    outcome.value = typed->value;
  } else {
    outcome.value = reply->result;
  }
  in_flight_ = nullptr;
  retry_timer_.cancel();
  replies_.clear();
  Callback done = std::move(done_);
  done_ = nullptr;
  QSEL_LOG(kTrace, "client")
      << "c" << self() << " completed seq " << outcome.client_seq << " ("
      << result_status_name(outcome.status) << ")";
  if (done) done(outcome);
}

// --------------------------------------------------------------------------

Client::Client(net::Transport& transport, const crypto::KeyRegistry& keys,
               ClientConfig config)
    : engine_(transport, keys, transport.self(),
              RequestEngineConfig{config.replicas, config.f,
                                  config.replica_set, config.retry_timeout}),
      workload_(config.workload) {
  transport.set_handler([this](ProcessId from, const sim::PayloadPtr& m) {
    engine_.on_message(from, m);
  });
}

void Client::start(std::uint64_t count) {
  target_ = count;
  issue_next();
}

std::uint64_t Client::rejects(ResultStatus status) const {
  const auto it = rejects_.find(status);
  return it == rejects_.end() ? 0 : it->second;
}

void Client::issue_next() {
  if (target_ != 0 && completed_ >= target_) return;
  const app::Operation op = workload_.next();
  engine_.submit(op.encode(), [this](const Outcome& outcome) {
    if (outcome.status == ResultStatus::kOk) {
      ++completed_;
      latencies_.record(static_cast<double>(outcome.latency));
    } else {
      // Typed reject: surfaced to the hook/counters; the plain workload
      // client has no shard map to refetch, so it just moves on (the
      // routing client is the component that re-routes).
      ++rejects_[outcome.status];
    }
    if (outcome_hook_) outcome_hook_(outcome);
    issue_next();
  });
}

}  // namespace qsel::smr
