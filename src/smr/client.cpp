#include "smr/client.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::smr {

Client::Client(sim::Network& network, const crypto::KeyRegistry& keys,
               ProcessId self, ClientConfig config)
    : network_(network),
      signer_(keys, self),
      config_(config),
      workload_(config.workload) {
  QSEL_REQUIRE(self >= config.replicas);
}

void Client::start(std::uint64_t count) {
  target_ = count;
  issue_next();
}

void Client::issue_next() {
  if (target_ != 0 && completed_ >= target_) return;
  const app::Operation op = workload_.next();
  in_flight_ = ClientRequest::make(signer_, next_seq_++, op.encode());
  replies_.clear();
  issued_at_ = network_.simulator().now();
  send_current();
}

void Client::send_current() {
  QSEL_ASSERT(in_flight_ != nullptr);
  for (ProcessId replica = 0; replica < config_.replicas; ++replica)
    network_.send(self(), replica, in_flight_);
  arm_retry();
}

void Client::arm_retry() {
  retry_timer_.cancel();
  retry_timer_ =
      network_.simulator().schedule_timer(config_.retry_timeout, [this] {
        if (in_flight_ == nullptr) return;
        ++retransmissions_;
        send_current();
      });
}

void Client::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;
  const auto reply = std::dynamic_pointer_cast<const ReplyMessage>(message);
  if (reply == nullptr || in_flight_ == nullptr) return;
  if (!reply->verify(signer_, config_.replicas)) return;
  if (reply->client != self() || reply->client_seq != in_flight_->client_seq)
    return;
  ProcessSet& voters = replies_[reply->result];
  voters.insert(reply->replica);
  if (voters.size() <= config_.f) return;  // need f+1 matching
  // Accepted.
  ++completed_;
  latencies_.record(
      static_cast<double>(network_.simulator().now() - issued_at_));
  in_flight_ = nullptr;
  retry_timer_.cancel();
  QSEL_LOG(kTrace, "client") << "c" << self() << " completed seq "
                             << reply->client_seq;
  issue_next();
}

}  // namespace qsel::smr
