#include "smr/client_messages.hpp"

#include "net/codec.hpp"

namespace qsel::smr {

std::vector<std::uint8_t> ClientRequest::signed_bytes() const {
  net::Encoder enc;
  enc.str("smr.request");
  enc.u32(client);
  enc.u64(client_seq);
  enc.bytes(op);
  return std::move(enc).take();
}

std::shared_ptr<const ClientRequest> ClientRequest::make(
    const crypto::Signer& client, std::uint64_t client_seq,
    std::vector<std::uint8_t> op) {
  auto msg = std::make_shared<ClientRequest>();
  msg->client = client.self();
  msg->client_seq = client_seq;
  msg->op = std::move(op);
  msg->sig = client.sign(msg->signed_bytes());
  return msg;
}

bool ClientRequest::verify(const crypto::Signer& verifier) const {
  if (sig.signer != client) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::vector<std::uint8_t> ReplyMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("smr.reply");
  enc.u64(view);
  enc.u32(client);
  enc.u64(client_seq);
  enc.str(result);
  enc.process_id(replica);
  return std::move(enc).take();
}

std::shared_ptr<const ReplyMessage> ReplyMessage::make(
    const crypto::Signer& replica, ViewId view, std::uint32_t client,
    std::uint64_t client_seq, std::string result) {
  auto msg = std::make_shared<ReplyMessage>();
  msg->view = view;
  msg->client = client;
  msg->client_seq = client_seq;
  msg->result = std::move(result);
  msg->replica = replica.self();
  msg->sig = replica.sign(msg->signed_bytes());
  return msg;
}

bool ReplyMessage::verify(const crypto::Signer& verifier, ProcessId n) const {
  if (replica >= n || sig.signer != replica) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::smr
