// TypedResult — structured reply payloads for sharded state machines.
//
// A plain KvStore result is an opaque string the client hands back to the
// application. A sharded service needs more: a replica that does not own
// the requested key range must answer with a machine-readable reject —
// WRONG_GROUP plus the config epoch it is at — so the routing client can
// refetch the shard map instead of treating the bytes as data (the old
// behaviour: the mismatch never accumulated f+1 matching votes and the
// request just timed out, a silent drop).
//
// The envelope rides inside ReplyMessage::result, so the reply signature
// and the f+1 matching rule cover it unchanged: a status is accepted
// exactly like a value, once f+1 replicas agree on the same bytes
// (same status, same epoch). Shard state machines wrap every result —
// including successes — so the leading magic byte is unambiguous within a
// shard group; plain state machines never produce it and their results
// parse as nullopt, which clients treat as kOk with epoch 0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qsel::smr {

enum class ResultStatus : std::uint8_t {
  kOk = 0,
  /// The replica's group does not own the key's range at its current
  /// config epoch; refetch the shard map and re-route.
  kWrongGroup = 1,
  /// The range is frozen for an in-flight migration; back off and retry
  /// (possibly against the new owner after a map refetch).
  kFrozen = 2,
  /// The request carried a config epoch older than the replica's; refetch
  /// the shard map and retry with the current epoch.
  kStaleEpoch = 3,
};

std::string_view result_status_name(ResultStatus status);

struct TypedResult {
  ResultStatus status = ResultStatus::kOk;
  /// The replier's shard-config epoch (rejects carry the epoch that
  /// proves the client stale; successes carry the serving epoch).
  std::uint64_t epoch = 0;
  std::string value;  // application result; empty on rejects

  bool operator==(const TypedResult&) const = default;

  /// Serializes into a ReplyMessage::result string.
  std::string encode() const;

  /// Inverse of encode(); nullopt when `result` is not a typed envelope
  /// (a plain state machine's raw value).
  static std::optional<TypedResult> parse(std::string_view result);

  static std::string ok(std::uint64_t epoch, std::string value);
  static std::string wrong_group(std::uint64_t epoch);
  static std::string frozen(std::uint64_t epoch);
  static std::string stale_epoch(std::uint64_t epoch);
};

}  // namespace qsel::smr
