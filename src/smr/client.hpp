// Generic SMR client used against every protocol in the repository.
//
// Broadcasts each signed request to all replicas (leader/primary tracking
// is unnecessary: non-leaders drop the request and the retransmission
// timer rides out view changes) and accepts a result once f+1 replicas
// replied with the same value — at least one of them is correct.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "app/workload.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "metrics/histogram.hpp"
#include "sim/network.hpp"
#include "smr/client_messages.hpp"

namespace qsel::smr {

struct ClientConfig {
  ProcessId replicas = 4;  // n; replica ids are 0..n-1
  int f = 1;
  SimDuration retry_timeout = 50'000'000;  // 50 ms
  app::WorkloadConfig workload;
};

class Client final : public sim::Actor {
 public:
  Client(sim::Network& network, const crypto::KeyRegistry& keys,
         ProcessId self, ClientConfig config);

  /// Issues `count` requests back to back; 0 = keep issuing forever.
  void start(std::uint64_t count);

  void on_message(ProcessId from, const sim::PayloadPtr& message) override;

  ProcessId self() const { return signer_.self(); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  const metrics::Histogram& latencies() const { return latencies_; }

 private:
  void issue_next();
  void send_current();
  void arm_retry();

  sim::Network& network_;
  crypto::Signer signer_;
  ClientConfig config_;
  app::Workload workload_;

  std::uint64_t target_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t retransmissions_ = 0;
  metrics::Histogram latencies_;

  std::shared_ptr<const ClientRequest> in_flight_;
  SimTime issued_at_ = 0;
  sim::TimerHandle retry_timer_;
  std::map<std::string, ProcessSet> replies_;
};

}  // namespace qsel::smr
