// Generic SMR client machinery used against every protocol in the repo.
//
// RequestEngine is the reusable core: it signs one operation at a time,
// broadcasts it to a *replica set* (any subset of the transport's id
// space — a shard group, not necessarily processes 0..n-1; leader/primary
// tracking is unnecessary because non-leaders relay and the retransmission
// timer rides out view changes), and accepts an outcome once f+1 replicas
// replied with the same result bytes — at least one of them is correct.
// Outcomes are surfaced typed: results carrying a smr::TypedResult
// envelope (WRONG_GROUP / FROZEN / STALE_EPOCH with the replier's config
// epoch) are parsed and reported as such instead of being mistaken for
// data or silently never matching.
//
// Client wraps one engine with a synthetic workload and completion
// counters — the closed-loop driver the protocol experiments use. Both
// run over net::Transport, so the same code drives the simulator (via
// runtime::SimTransport) and real TCP (via net::TcpTransport or a
// shard::GroupTransport view of one).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "metrics/histogram.hpp"
#include "net/transport.hpp"
#include "smr/client_messages.hpp"
#include "smr/typed_result.hpp"

namespace qsel::smr {

/// The settled result of one submitted operation.
struct Outcome {
  std::uint64_t client_seq = 0;
  ResultStatus status = ResultStatus::kOk;
  /// The replier's config epoch (0 when the result was untyped).
  std::uint64_t config_epoch = 0;
  /// Application-level result value: the TypedResult payload when the
  /// result was typed, the raw result string otherwise.
  std::string value;
  SimDuration latency = 0;
};

struct RequestEngineConfig {
  /// Replica id upper bound in this transport's id space (reply signer
  /// ids are validated against it).
  ProcessId replicas = 4;
  int f = 1;
  /// The replicas to address. Empty = all of 0..replicas-1; a shard
  /// client sets the group's member set.
  ProcessSet replica_set;
  SimDuration retry_timeout = 50'000'000;  // 50 ms
};

class RequestEngine {
 public:
  using Callback = std::function<void(const Outcome&)>;

  /// Does not install a transport handler: the owner routes incoming
  /// payloads to on_message (a transport may be shared).
  RequestEngine(net::Transport& transport, const crypto::KeyRegistry& keys,
                ProcessId self, RequestEngineConfig config);

  /// Signs and broadcasts `op`; `done` fires exactly once, when f+1
  /// matching replies are in. One request in flight at a time.
  void submit(std::vector<std::uint8_t> op, Callback done);

  /// Abandons the in-flight request (no callback); used when the owner
  /// decides to re-route.
  void abort();

  void on_message(ProcessId from, const sim::PayloadPtr& message);

  bool idle() const { return in_flight_ == nullptr; }
  ProcessId self() const { return signer_.self(); }
  const crypto::Signer& signer() const { return signer_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t next_seq() const { return next_seq_; }
  const RequestEngineConfig& config() const { return config_; }

 private:
  void send_current();
  void arm_retry();

  net::Transport& transport_;
  crypto::Signer signer_;
  RequestEngineConfig config_;

  std::uint64_t next_seq_ = 1;
  std::uint64_t retransmissions_ = 0;
  std::shared_ptr<const ClientRequest> in_flight_;
  Callback done_;
  SimTime issued_at_ = 0;
  sim::TimerHandle retry_timer_;
  std::map<std::string, ProcessSet> replies_;
};

struct ClientConfig {
  ProcessId replicas = 4;  // n; replica ids are 0..n-1
  int f = 1;
  /// Subset of replicas to address; empty = all of 0..replicas-1.
  ProcessSet replica_set;
  SimDuration retry_timeout = 50'000'000;  // 50 ms
  app::WorkloadConfig workload;
};

class Client {
 public:
  /// Installs itself as `transport`'s handler; the transport must be this
  /// client's own (its slot of the simulated network, or a dedicated TCP
  /// transport).
  Client(net::Transport& transport, const crypto::KeyRegistry& keys,
         ClientConfig config);

  /// Issues `count` requests back to back; 0 = keep issuing forever.
  void start(std::uint64_t count);

  /// Observes every settled outcome (tests; typed-reject assertions).
  void set_outcome_hook(std::function<void(const Outcome&)> hook) {
    outcome_hook_ = std::move(hook);
  }

  ProcessId self() const { return engine_.self(); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t retransmissions() const { return engine_.retransmissions(); }
  /// Typed rejects seen, by status (kWrongGroup / kFrozen / kStaleEpoch).
  std::uint64_t rejects(ResultStatus status) const;
  const metrics::Histogram& latencies() const { return latencies_; }

 private:
  void issue_next();

  RequestEngine engine_;
  app::Workload workload_;
  std::uint64_t target_ = 0;
  std::uint64_t completed_ = 0;
  std::map<ResultStatus, std::uint64_t> rejects_;
  metrics::Histogram latencies_;
  std::function<void(const Outcome&)> outcome_hook_;
};

}  // namespace qsel::smr
