// Client-facing messages shared by all replicated-state-machine protocols
// in this repository (XPaxos, the PBFT baseline, the BChain baseline).
//
// Clients occupy network ids >= n (outside Pi); requests and replies are
// signed so Byzantine replicas cannot forge either.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "sim/payload.hpp"

namespace qsel::smr {

struct ClientRequest final : sim::Payload {
  std::uint32_t client = 0;  // the client's network id
  std::uint64_t client_seq = 0;
  std::vector<std::uint8_t> op;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "smr.request"; }
  std::size_t wire_size() const override { return 12 + op.size() + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const ClientRequest> make(const crypto::Signer& client,
                                                   std::uint64_t client_seq,
                                                   std::vector<std::uint8_t> op);
  bool verify(const crypto::Signer& verifier) const;
};

struct ReplyMessage final : sim::Payload {
  ViewId view = 0;
  std::uint32_t client = 0;
  std::uint64_t client_seq = 0;
  std::string result;
  ProcessId replica = kNoProcess;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "smr.reply"; }
  std::size_t wire_size() const override { return 28 + result.size() + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const ReplyMessage> make(const crypto::Signer& replica,
                                                  ViewId view,
                                                  std::uint32_t client,
                                                  std::uint64_t client_seq,
                                                  std::string result);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::smr
