// Coverage signatures — a run's trace reduced to a cheap fingerprint.
//
// The campaign engine (src/campaign/) needs to answer "did this schedule
// make the system do anything it has not done before?" without storing or
// diffing whole traces. A CoverageSignature folds the per-event-type
// counts the Tracer already maintains into two values:
//
//   * type_bits — one bit per EventType that occurred at least once (the
//     coarse "which code paths lit up" map: did a DROP happen, did an
//     epoch advance fire, did a shard freeze run?);
//   * key — a 64-bit fold of (type, log2-bucketed count) pairs, taken in
//     type order. Bucketing by floor(log2(count)) + 1 makes the key
//     insensitive to noise (37 vs 41 sends is the same behaviour) but
//     sensitive to magnitude (37 vs 4100 is not).
//
// Callers fold additional scalar signals (quorum changes, epochs burned,
// gossip bytes) into the key with mix(); two runs share a signature iff
// every folded observable landed in the same bucket. Deterministic by
// construction — no time, no allocation, no floating point.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace qsel::trace {

struct CoverageSignature {
  std::uint32_t type_bits = 0;
  std::uint64_t key = 0;

  /// log2 bucket of a count: 0 for 0, floor(log2(v)) + 1 otherwise.
  static std::uint64_t bucket(std::uint64_t value);

  /// Folds one more observable into the key (order-sensitive: callers
  /// must mix signals in a fixed order).
  void mix(std::uint64_t value);

  bool operator==(const CoverageSignature&) const = default;
};

/// Signature of a run from the Tracer's per-type event counts
/// (Tracer::type_counts(); index = EventType value).
CoverageSignature coverage_of(std::span<const std::uint64_t> type_counts);

}  // namespace qsel::trace
