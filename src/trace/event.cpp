#include "trace/event.hpp"

#include <array>
#include <sstream>

#include "net/codec.hpp"

namespace qsel::trace {

namespace {

struct Name {
  EventType type;
  std::string_view name;
};

constexpr std::array<Name, 17> kNames{{
    {EventType::kSend, "SEND"},
    {EventType::kDeliver, "DELIVER"},
    {EventType::kDrop, "DROP"},
    {EventType::kLinkFault, "LINK"},
    {EventType::kCrash, "CRASH"},
    {EventType::kSuspected, "SUSPECTED"},
    {EventType::kRestored, "RESTORED"},
    {EventType::kUpdateReceive, "UPD_RECV"},
    {EventType::kUpdateMerge, "UPD_MERGE"},
    {EventType::kUpdateForward, "UPD_FWD"},
    {EventType::kUpdateReject, "UPD_REJECT"},
    {EventType::kEpochAdvance, "EPOCH"},
    {EventType::kQuorum, "QUORUM"},
    {EventType::kRestart, "RESTART"},
    {EventType::kShardFreeze, "SHARD_FREEZE"},
    {EventType::kShardInstall, "SHARD_INSTALL"},
    {EventType::kConfigEpochBump, "CONFIG_EPOCH"},
}};

}  // namespace

void Event::encode(net::Encoder& enc) const {
  enc.u64(time);
  enc.u8(static_cast<std::uint8_t>(type));
  enc.process_id(actor);
  enc.process_id(peer);
  enc.u64(arg0);
  enc.u64(arg1);
  enc.str(tag);
}

std::string_view event_type_name(EventType type) {
  for (const Name& n : kNames)
    if (n.type == type) return n.name;
  return "UNKNOWN";
}

std::optional<EventType> event_type_from_name(std::string_view name) {
  for (const Name& n : kNames)
    if (n.name == name) return n.type;
  return std::nullopt;
}

std::string Event::to_string() const {
  std::ostringstream out;
  out << "[" << time << "] p";
  if (actor == kNoProcess)
    out << "?";
  else
    out << actor;
  out << " " << event_type_name(type);
  if (peer != kNoProcess) out << " <-> p" << peer;
  out << " arg0=" << arg0 << " arg1=" << arg1;
  if (!tag.empty()) out << " tag=" << tag;
  return out.str();
}

}  // namespace qsel::trace
