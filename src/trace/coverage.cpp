#include "trace/coverage.hpp"

#include <bit>

#include "common/rng.hpp"

namespace qsel::trace {

std::uint64_t CoverageSignature::bucket(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::uint64_t>(std::bit_width(value));
}

void CoverageSignature::mix(std::uint64_t value) {
  std::uint64_t state = key ^ (bucket(value) + 0x517cc1b727220a95ULL);
  key = splitmix64(state);
}

CoverageSignature coverage_of(std::span<const std::uint64_t> type_counts) {
  CoverageSignature signature;
  for (std::size_t type = 0; type < type_counts.size(); ++type) {
    if (type_counts[type] == 0) continue;
    if (type < 32) signature.type_bits |= std::uint32_t{1} << type;
    std::uint64_t state = signature.key ^
                          (static_cast<std::uint64_t>(type) << 32 ^
                           CoverageSignature::bucket(type_counts[type]));
    signature.key = splitmix64(state);
  }
  return signature;
}

}  // namespace qsel::trace
