// Tracer — per-run event journal with a running SHA-256 trace digest.
//
// Records typed Events (trace/event.hpp) into an in-memory ring buffer
// with an optional JSONL sink, and maintains a *chained* digest over the
// canonical encoding of every event recorded so far:
//
//     digest_0 = 0^32
//     digest_i = SHA-256(digest_{i-1} || encode(e_i))
//
// The chain makes the digest order- and content-sensitive: two runs have
// equal digests iff they recorded identical event sequences, and the
// digest is O(1) to read at any point. The same fold is recomputable from
// a JSONL trace file (digest_of), so `trace_inspect` can verify a file
// against a digest printed by the run that produced it.
//
// Overhead discipline: every emission point in the hot path goes through
// an inline `if (!enabled())` check before touching any event state, and
// components hold a nullable Tracer* (null by default), so an untraced run
// pays one predictable branch per emission site. Building with
// -DQSEL_TRACE=OFF defines QSEL_TRACE_DISABLED, which turns enabled() into
// a constant `false` and lets the compiler delete the emission calls
// entirely. bench/bench_trace_overhead.cpp quantifies all three modes.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "trace/event.hpp"

namespace qsel::trace {

/// digest_{i} = SHA-256(digest_{i-1} || canonical encoding of `event`).
crypto::Digest chain_digest(const crypto::Digest& prev, const Event& event);

/// Folds chain_digest over `events` starting from the zero digest.
crypto::Digest digest_of(std::span<const Event> events);

struct TracerConfig {
  bool enabled = true;
  /// Events retained in memory; older events are evicted (and counted in
  /// events_evicted()). 0 means unbounded — required for ReplayChecker.
  std::size_t ring_capacity = 65536;
  /// When non-empty, every event is also appended to this JSONL file.
  std::string jsonl_path;
};

class Tracer {
 public:
  /// Virtual-time source, typically [&sim] { return sim.now(); }. The
  /// trace library cannot depend on sim:: (sim depends on trace), so the
  /// clock is injected.
  using Clock = std::function<std::uint64_t()>;

  Tracer() : Tracer(TracerConfig{}) {}
  explicit Tracer(TracerConfig config);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const {
#ifdef QSEL_TRACE_DISABLED
    return false;
#else
    return config_.enabled;
#endif
  }

  void set_clock(Clock clock) { clock_ = std::move(clock); }

  // --- emission ---------------------------------------------------------

  void record(EventType type, ProcessId actor, ProcessId peer,
              std::uint64_t arg0, std::uint64_t arg1, std::string_view tag) {
    if (!enabled()) return;
    record_slow(type, actor, peer, arg0, arg1, tag);
  }

  void send(ProcessId from, ProcessId to, std::string_view tag,
            std::uint64_t deliver_at, std::uint64_t wire_size) {
    record(EventType::kSend, from, to, deliver_at, wire_size, tag);
  }
  void deliver(ProcessId to, ProcessId from, std::string_view tag,
               std::uint64_t wire_size) {
    record(EventType::kDeliver, to, from, 0, wire_size, tag);
  }
  void drop(ProcessId from, ProcessId to, std::string_view tag,
            DropReason reason, std::uint64_t wire_size) {
    record(EventType::kDrop, from, to, static_cast<std::uint64_t>(reason),
           wire_size, tag);
  }
  void link_fault(ProcessId from, ProcessId to, LinkFaultKind kind,
                  std::uint64_t extra_delay) {
    record(EventType::kLinkFault, from, to, static_cast<std::uint64_t>(kind),
           extra_delay, {});
  }
  void crash(ProcessId id) {
    record(EventType::kCrash, id, kNoProcess, 0, 0, {});
  }
  void restart(ProcessId id) {
    record(EventType::kRestart, id, kNoProcess, 0, 0, {});
  }
  void suspected(ProcessId self, std::uint64_t suspect_mask, Epoch epoch) {
    record(EventType::kSuspected, self, kNoProcess, suspect_mask, epoch, {});
  }
  void restored(ProcessId self, std::uint64_t restored_mask, Epoch epoch) {
    record(EventType::kRestored, self, kNoProcess, restored_mask, epoch, {});
  }
  void update_receive(ProcessId self, ProcessId origin,
                      std::uint64_t content_tag) {
    record(EventType::kUpdateReceive, self, origin, content_tag, 0, {});
  }
  void update_merge(ProcessId self, ProcessId origin,
                    std::uint64_t content_tag) {
    record(EventType::kUpdateMerge, self, origin, content_tag, 0, {});
  }
  void update_forward(ProcessId self, ProcessId origin,
                      std::uint64_t content_tag) {
    record(EventType::kUpdateForward, self, origin, content_tag, 0, {});
  }
  void update_reject(ProcessId self, ProcessId claimed_origin) {
    record(EventType::kUpdateReject, self, claimed_origin, 0, 0, {});
  }
  void epoch_advance(ProcessId self, Epoch new_epoch) {
    record(EventType::kEpochAdvance, self, kNoProcess, new_epoch, 0, {});
  }
  void quorum(ProcessId self, std::uint64_t quorum_mask, Epoch epoch,
              ProcessId leader = kNoProcess) {
    record(EventType::kQuorum, self, leader, quorum_mask, epoch, {});
  }
  void shard_freeze(ProcessId self, std::uint64_t migration_id,
                    std::uint64_t config_epoch, std::string_view range_lo) {
    record(EventType::kShardFreeze, self, kNoProcess, migration_id,
           config_epoch, range_lo);
  }
  void shard_install(ProcessId self, std::uint64_t migration_id,
                     std::uint64_t chunk_or_adopt, std::string_view range_lo) {
    record(EventType::kShardInstall, self, kNoProcess, migration_id,
           chunk_or_adopt, range_lo);
  }
  void config_epoch_bump(ProcessId self, std::uint64_t new_epoch,
                         std::uint64_t old_epoch) {
    record(EventType::kConfigEpochBump, self, kNoProcess, new_epoch,
           old_epoch, {});
  }

  // --- observers --------------------------------------------------------

  /// Total events recorded (including evicted ones).
  std::uint64_t events_recorded() const { return events_recorded_; }
  /// Events evicted from the ring; nonzero means events() is a suffix.
  std::uint64_t events_evicted() const { return events_evicted_; }
  /// Global index of the first event still retained.
  std::uint64_t first_retained_index() const { return events_evicted_; }
  /// Running chained digest over all recorded events.
  const crypto::Digest& digest() const { return digest_; }
  /// Events recorded per EventType (index = enum value), over the WHOLE
  /// run — eviction does not forget counts. Feeds trace/coverage.hpp.
  std::span<const std::uint64_t> type_counts() const { return type_counts_; }

  /// Snapshot of retained events, oldest first.
  std::vector<Event> events() const;

  /// Flushes the JSONL sink, if any.
  void flush();

 private:
  void record_slow(EventType type, ProcessId actor, ProcessId peer,
                   std::uint64_t arg0, std::uint64_t arg1,
                   std::string_view tag);

  TracerConfig config_;
  Clock clock_;
  std::array<std::uint64_t, 32> type_counts_{};
  std::vector<Event> ring_;
  std::size_t ring_head_ = 0;  // next overwrite position (bounded mode)
  std::uint64_t events_recorded_ = 0;
  std::uint64_t events_evicted_ = 0;
  crypto::Digest digest_{};  // zero digest until the first event
  std::ofstream sink_;
};

}  // namespace qsel::trace
