#include "trace/replay.hpp"

#include <algorithm>
#include <sstream>

namespace qsel::trace {

std::string Divergence::to_string() const {
  std::ostringstream out;
  out << "first divergence at event #" << index << "\n";
  out << "  run A: " << (first ? first->to_string() : "<no event — journal ended>")
      << "\n";
  out << "  run B: "
      << (second ? second->to_string() : "<no event — journal ended>");
  if (!first && !second)
    out << "\n  (divergence lies in a ring-evicted prefix; "
           "re-run with ring_capacity = 0)";
  return out.str();
}

std::optional<Divergence> ReplayChecker::check(const Scenario& scenario) {
  TracerConfig config;
  config.ring_capacity = 0;  // retain everything for exact localisation
  Tracer first(config);
  Tracer second(config);
  scenario(first);
  scenario(second);
  return compare(first, second);
}

std::optional<Divergence> ReplayChecker::compare(const Tracer& first,
                                                 const Tracer& second) {
  if (first.digest() == second.digest()) return std::nullopt;

  const std::vector<Event> a = first.events();
  const std::vector<Event> b = second.events();
  const std::uint64_t base_a = first.first_retained_index();
  const std::uint64_t base_b = second.first_retained_index();
  // Compare the overlap of the retained windows, aligned on global index.
  const std::uint64_t base = std::max(base_a, base_b);
  const std::size_t skip_a = static_cast<std::size_t>(base - base_a);
  const std::size_t skip_b = static_cast<std::size_t>(base - base_b);
  const std::size_t len_a = a.size() > skip_a ? a.size() - skip_a : 0;
  const std::size_t len_b = b.size() > skip_b ? b.size() - skip_b : 0;

  const std::size_t common = std::min(len_a, len_b);
  for (std::size_t i = 0; i < common; ++i) {
    if (a[skip_a + i] != b[skip_b + i])
      return Divergence{base + i, a[skip_a + i], b[skip_b + i]};
  }
  if (len_a != len_b) {
    Divergence d;
    d.index = base + common;
    if (len_a > common) d.first = a[skip_a + common];
    if (len_b > common) d.second = b[skip_b + common];
    return d;
  }
  // Retained windows agree, yet digests differ: the divergence happened in
  // an evicted prefix (or before the overlap).
  return Divergence{std::min(base_a, base_b), std::nullopt, std::nullopt};
}

}  // namespace qsel::trace
