#include "trace/jsonl.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <string>

namespace qsel::trace {

namespace {

void write_escaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

/// Locates `"key":` at object level and returns the offset just past the
/// colon, or npos. Keys are searched literally; event tags are short
/// protocol identifiers, so collisions with quoted values do not arise in
/// traces this library writes.
std::size_t value_offset(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string_view::npos ? std::string_view::npos
                                      : at + needle.size();
}

std::optional<std::uint64_t> parse_u64_field(std::string_view line,
                                             std::string_view key) {
  std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  std::uint64_t value = 0;
  bool any = false;
  while (at < line.size() && std::isdigit(static_cast<unsigned char>(line[at]))) {
    value = value * 10 + static_cast<std::uint64_t>(line[at] - '0');
    ++at;
    any = true;
  }
  if (!any) return std::nullopt;
  return value;
}

std::optional<std::string> parse_str_field(std::string_view line,
                                           std::string_view key) {
  std::size_t at = value_offset(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"')
    return std::nullopt;
  ++at;
  std::string value;
  while (at < line.size() && line[at] != '"') {
    if (line[at] == '\\') {
      if (++at >= line.size()) return std::nullopt;  // dangling escape
    }
    value.push_back(line[at]);
    ++at;
  }
  if (at >= line.size()) return std::nullopt;  // unterminated string
  return value;
}

}  // namespace

void write_jsonl_line(std::ostream& out, const Event& event,
                      std::uint64_t index) {
  out << "{\"i\":" << index << ",\"t\":" << event.time << ",\"e\":\""
      << event_type_name(event.type) << "\",\"p\":" << event.actor;
  if (event.peer != kNoProcess) out << ",\"q\":" << event.peer;
  out << ",\"a0\":" << event.arg0 << ",\"a1\":" << event.arg1;
  if (!event.tag.empty()) {
    out << ",\"tag\":\"";
    write_escaped(out, event.tag);
    out << "\"";
  }
  out << "}\n";
}

std::optional<Event> parse_jsonl_line(std::string_view line) {
  const auto time = parse_u64_field(line, "t");
  const auto name = parse_str_field(line, "e");
  const auto actor = parse_u64_field(line, "p");
  const auto arg0 = parse_u64_field(line, "a0");
  const auto arg1 = parse_u64_field(line, "a1");
  if (!time || !name || !actor || !arg0 || !arg1) return std::nullopt;
  const auto type = event_type_from_name(*name);
  if (!type) return std::nullopt;

  Event event;
  event.time = *time;
  event.type = *type;
  event.actor = static_cast<ProcessId>(*actor);
  const auto peer = parse_u64_field(line, "q");
  event.peer = peer ? static_cast<ProcessId>(*peer) : kNoProcess;
  event.arg0 = *arg0;
  event.arg1 = *arg1;
  event.tag = parse_str_field(line, "tag").value_or("");
  return event;
}

std::vector<Event> read_jsonl(std::istream& in, std::uint64_t* malformed) {
  std::vector<Event> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto event = parse_jsonl_line(line)) {
      events.push_back(std::move(*event));
    } else if (malformed) {
      ++*malformed;
    }
  }
  return events;
}

}  // namespace qsel::trace
