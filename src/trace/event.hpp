// Trace events — the typed vocabulary of the tracing subsystem.
//
// A run of the simulated system is a pure function of its seeds, so the
// sequence of events it produces is a *fingerprint* of the run: two runs
// with the same seeds must produce byte-identical event sequences, and the
// first index where two sequences differ localises a nondeterminism bug
// (or an intentional behaviour change) to a single message, suspicion or
// quorum output. Events mirror the paper's event-based module interfaces:
// the network's SEND/DELIVER/DROP, the failure-detector/suspicion plane's
// SUSPECTED/RESTORED and UPDATE receive/merge/forward, epoch bumps, and
// the <QUORUM, Q> outputs of Algorithms 1 and 2.
//
// Every event has one canonical byte encoding (net::Encoder, the same
// codec signed protocol messages use), which is what the running trace
// digest hashes and what makes digests comparable across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace qsel::net {
class Encoder;
}

namespace qsel::trace {

enum class EventType : std::uint8_t {
  kSend = 1,       // actor=from, peer=to, arg0=delivery time, arg1=wire size
  kDeliver,        // actor=to, peer=from, arg1=wire size
  kDrop,           // actor=from, peer=to, arg0=DropReason, arg1=wire size
  kLinkFault,      // actor=from, peer=to, arg0=LinkFaultKind, arg1=extra delay
  kCrash,          // actor=crashed process
  kSuspected,      // actor=self, arg0=suspect-set mask, arg1=epoch
  kRestored,       // actor=self, arg0=mask of no-longer-suspected, arg1=epoch
  kUpdateReceive,  // actor=self, peer=origin, arg0=signature tag prefix
  kUpdateMerge,    // actor=self, peer=origin, arg0=signature tag prefix
  kUpdateForward,  // actor=self, peer=origin, arg0=signature tag prefix
  kUpdateReject,   // actor=self, peer=claimed origin
  kEpochAdvance,   // actor=self, arg0=new epoch
  kQuorum,         // actor=self, peer=leader (kNoProcess for Algorithm 1),
                   // arg0=quorum mask, arg1=epoch
  kRestart,        // actor=restarted process (crash-recovery rejoin)
  kShardFreeze,    // actor=replica, arg0=migration id, arg1=config epoch;
                   // tag=frozen range lo (shard migration source)
  kShardInstall,   // actor=replica, arg0=migration id, arg1=chunk seq or
                   // ~0 for the final adopt; tag=range lo (destination)
  kConfigEpochBump,  // actor=replica, arg0=new config epoch, arg1=old
};

/// Drop causes (arg0 of kDrop).
enum class DropReason : std::uint64_t {
  kLinkDisabled = 0,    // omission fault injected on the link
  kReceiverCrashed,     // receiver crashed before delivery
  kReceiverUnattached,  // no actor installed (down from the start)
  kDisconnected,        // TCP: no established connection to the peer
  kMalformed            // TCP: frame failed to decode; connection closed
};

/// Link fault kinds (arg0 of kLinkFault).
enum class LinkFaultKind : std::uint64_t {
  kDisable = 0,  // omission failures begin
  kEnable,       // link healed
  kExtraDelay    // timing failure; arg1 carries the extra delay
};

struct Event {
  std::uint64_t time = 0;  // virtual time (sim::Simulator::now())
  EventType type = EventType::kSend;
  ProcessId actor = kNoProcess;  // the process the event happened at
  ProcessId peer = kNoProcess;   // counterpart, if any
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::string tag;  // payload type tag ("suspect.update", ...) or empty

  /// Appends the canonical byte encoding (the bytes the trace digest
  /// covers) to `enc`.
  void encode(net::Encoder& enc) const;

  /// Human-readable one-liner, e.g. "[12.3ms] p0 SEND ->p2 suspect.update".
  std::string to_string() const;

  bool operator==(const Event&) const = default;
};

/// Stable uppercase name, e.g. "SEND"; used in JSONL output.
std::string_view event_type_name(EventType type);

/// Inverse of event_type_name; nullopt for unknown names.
std::optional<EventType> event_type_from_name(std::string_view name);

}  // namespace qsel::trace
