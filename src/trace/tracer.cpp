#include "trace/tracer.hpp"

#include "common/assert.hpp"
#include "net/codec.hpp"
#include "trace/jsonl.hpp"

namespace qsel::trace {

crypto::Digest chain_digest(const crypto::Digest& prev, const Event& event) {
  net::Encoder enc;
  event.encode(enc);
  crypto::Sha256 hasher;
  hasher.update(prev.bytes);
  hasher.update(enc.view());
  return hasher.finish();
}

crypto::Digest digest_of(std::span<const Event> events) {
  crypto::Digest digest{};
  for (const Event& event : events) digest = chain_digest(digest, event);
  return digest;
}

Tracer::Tracer(TracerConfig config) : config_(std::move(config)) {
  if (config_.ring_capacity > 0) ring_.reserve(config_.ring_capacity);
  if (!config_.jsonl_path.empty()) {
    sink_.open(config_.jsonl_path, std::ios::out | std::ios::trunc);
    QSEL_REQUIRE_MSG(sink_.is_open(), "cannot open trace JSONL sink");
  }
}

Tracer::~Tracer() { flush(); }

void Tracer::flush() {
  if (sink_.is_open()) sink_.flush();
}

void Tracer::record_slow(EventType type, ProcessId actor, ProcessId peer,
                         std::uint64_t arg0, std::uint64_t arg1,
                         std::string_view tag) {
  Event event;
  event.time = clock_ ? clock_() : 0;
  event.type = type;
  event.actor = actor;
  event.peer = peer;
  event.arg0 = arg0;
  event.arg1 = arg1;
  event.tag.assign(tag);

  digest_ = chain_digest(digest_, event);
  const auto type_index = static_cast<std::size_t>(type);
  if (type_index < type_counts_.size()) ++type_counts_[type_index];
  if (sink_.is_open())
    write_jsonl_line(sink_, event, events_recorded_);

  if (config_.ring_capacity == 0 || ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(event));
  } else {
    ring_[ring_head_] = std::move(event);
    ring_head_ = (ring_head_ + 1) % config_.ring_capacity;
    ++events_evicted_;
  }
  ++events_recorded_;
}

std::vector<Event> Tracer::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // In bounded mode ring_head_ points at the oldest retained event once
  // the buffer wrapped; before wrapping (and in unbounded mode) it is 0.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  return out;
}

}  // namespace qsel::trace
