// JSONL serialization for trace events.
//
// One event per line, a flat object with fixed keys:
//
//   {"i":0,"t":1000,"e":"SEND","p":0,"q":1,"a0":1200000,"a1":52,"tag":"x"}
//
//   i   global event index        t    virtual time (ns)
//   e   event_type_name()         p/q  actor / peer (q omitted when none)
//   a0/a1  type-specific args     tag  payload type tag (omitted if empty)
//
// The reader is a purpose-built parser for exactly this schema (the repo
// has no JSON dependency and does not want one); it tolerates unknown
// keys and returns nullopt on malformed lines rather than throwing.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace qsel::trace {

/// Writes one event as a JSONL line (with trailing newline).
void write_jsonl_line(std::ostream& out, const Event& event,
                      std::uint64_t index);

/// Parses one JSONL line; nullopt on malformed input (never throws).
std::optional<Event> parse_jsonl_line(std::string_view line);

/// Reads every well-formed event line from `in`, in order. Malformed
/// lines are counted in `*malformed` when provided, and skipped.
std::vector<Event> read_jsonl(std::istream& in,
                              std::uint64_t* malformed = nullptr);

}  // namespace qsel::trace
