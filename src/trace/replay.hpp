// ReplayChecker — deterministic-replay verification.
//
// The simulator makes every run a pure function of its seeds, so a
// scenario re-run with the same seeds must reproduce the *exact* event
// sequence, and hence the same chained trace digest. The checker runs a
// scenario twice against fresh tracers and, when the digests differ, does
// better than "digests differ": it walks both journals and reports the
// first diverging event — its global index and both decoded events — which
// localises a nondeterminism regression (wall-clock leakage, unordered
// container iteration, uninitialised reads) to one emission.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "trace/tracer.hpp"

namespace qsel::trace {

struct Divergence {
  /// Global index of the first differing event.
  std::uint64_t index = 0;
  /// The event each run recorded at `index`; nullopt when that run's
  /// journal ended before `index` (one run produced fewer events), or for
  /// both when the divergence lies in a ring-evicted prefix.
  std::optional<Event> first;
  std::optional<Event> second;

  std::string to_string() const;
};

class ReplayChecker {
 public:
  /// A reproducible experiment: constructs its own system (seeds and all)
  /// and drives it with the given tracer attached.
  using Scenario = std::function<void(Tracer&)>;

  /// Runs `scenario` twice with fresh unbounded tracers; nullopt when the
  /// two runs produced byte-identical traces.
  static std::optional<Divergence> check(const Scenario& scenario);

  /// Compares two journals; nullopt when their digests match. Use
  /// unbounded tracers (ring_capacity = 0) for exact localisation —
  /// evicted prefixes can only be compared by digest.
  static std::optional<Divergence> compare(const Tracer& first,
                                           const Tracer& second);
};

}  // namespace qsel::trace
