#include "load/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "load/async_engine.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "runtime/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace qsel::load {
namespace {

/// One load client: engine + its private workload stream + counters.
struct ClientRig {
  net::Transport* transport = nullptr;
  std::unique_ptr<AsyncEngine> engine;
  std::unique_ptr<app::Workload> workload;
  std::uint64_t target = 0;  // 0 = unbounded
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t shed = 0;
  /// Chained digest over (client_seq, response value) in settle order.
  std::uint64_t response_chain = 0;
  sim::TimerHandle pacer;
};

app::WorkloadConfig client_workload(const LoadConfig& config,
                                    std::uint32_t i) {
  app::WorkloadConfig w;
  w.seed = config.seed * 1000003 + i;
  w.key_space = config.key_space;
  w.value_bytes = config.value_bytes;
  w.put_fraction = config.put_fraction;
  w.get_fraction = config.get_fraction;
  w.zipf_theta = config.zipf_theta;
  w.key_offset = i * config.key_space;  // disjoint per-client key ranges
  return w;
}

void settle(ClientRig& rig, LatencyHistogram& hist,
            const smr::Outcome& outcome) {
  if (outcome.status != smr::ResultStatus::kOk) return;
  ++rig.committed;
  hist.record(static_cast<std::uint64_t>(outcome.latency));
  std::uint64_t value_hash = 1469598103934665603ULL;  // FNV-1a
  for (const char c : outcome.value)
    value_hash = (value_hash ^ static_cast<unsigned char>(c)) *
                 1099511628211ULL;
  std::uint64_t state =
      rig.response_chain ^ outcome.client_seq ^ value_hash;
  rig.response_chain = splitmix64(state);
}

/// Closed loop: keep the window full until the target (if any) is met.
void pump_closed(ClientRig& rig, const LoadConfig& config,
                 LatencyHistogram& hist) {
  while (rig.engine->outstanding() < config.outstanding &&
         (rig.target == 0 || rig.submitted < rig.target)) {
    ++rig.submitted;
    rig.engine->submit(rig.workload->next().encode(),
                       [&rig, &config, &hist](const smr::Outcome& outcome) {
                         settle(rig, hist, outcome);
                         pump_closed(rig, config, hist);
                       });
  }
}

/// Open loop: submit on a fixed cadence regardless of completions; shed
/// (and count) arrivals past the in-flight cap.
void arm_pacer(ClientRig& rig, const LoadConfig& config,
               LatencyHistogram& hist, SimDuration interval) {
  rig.pacer = rig.transport->timers().schedule_timer(
      interval, [&rig, &config, &hist, interval] {
        if (rig.target != 0 && rig.submitted >= rig.target) return;
        if (rig.engine->outstanding() >= config.max_outstanding) {
          ++rig.shed;
        } else {
          ++rig.submitted;
          rig.engine->submit(rig.workload->next().encode(),
                             [&rig, &hist](const smr::Outcome& outcome) {
                               settle(rig, hist, outcome);
                             });
        }
        arm_pacer(rig, config, hist, interval);
      });
}

void start_load(std::vector<ClientRig>& rigs, const LoadConfig& config,
                LatencyHistogram& hist) {
  if (config.open_rate_per_sec > 0) {
    const auto interval = static_cast<SimDuration>(
        1'000'000'000ULL * config.clients / config.open_rate_per_sec);
    QSEL_REQUIRE(interval >= 1);
    for (auto& rig : rigs) arm_pacer(rig, config, hist, interval);
  } else {
    QSEL_REQUIRE(config.outstanding >= 1);
    for (auto& rig : rigs) pump_closed(rig, config, hist);
  }
}

bool all_done(const std::vector<ClientRig>& rigs) {
  for (const auto& rig : rigs)
    if (rig.committed < rig.target) return false;
  return true;
}

xpaxos::ReplicaConfig replica_config(const LoadConfig& config) {
  xpaxos::ReplicaConfig rc;
  rc.n = config.n;
  rc.f = config.f;
  rc.policy = config.policy;
  rc.view_change_retry = config.view_change_retry;
  rc.pipeline_window = config.pipeline_window;
  rc.max_batch = config.max_batch;
  return rc;
}

void harvest_clients(const std::vector<ClientRig>& rigs, LoadReport& report) {
  for (const auto& rig : rigs) {
    report.committed += rig.committed;
    report.submitted += rig.submitted;
    report.shed += rig.shed;
    report.retransmissions += rig.engine->retransmissions();
    report.responses_digest ^= rig.response_chain;
  }
}

/// Ordering oracle over one replica's executed history: slots contiguous
/// from 1 (batch entries share their slot), no client request executed
/// twice, and — when clients are serial — per-client seqs ascending.
std::string check_history(const xpaxos::Replica& replica, ProcessId n,
                          bool serial_clients) {
  SeqNum prev_slot = 0;
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  std::map<std::uint32_t, std::uint64_t> last_seq;
  for (const auto& e : replica.executed_history()) {
    if (e.slot != prev_slot && e.slot != prev_slot + 1)
      return "slot gap: executed " + std::to_string(e.slot) + " after " +
             std::to_string(prev_slot);
    prev_slot = e.slot;
    if (e.client < n) continue;  // no-op filler (replica-id client)
    if (!seen.insert({e.client, e.client_seq}).second)
      return "duplicate execution: client " + std::to_string(e.client) +
             " seq " + std::to_string(e.client_seq);
    if (serial_clients) {
      std::uint64_t& last = last_seq[e.client];
      if (e.client_seq <= last)
        return "out-of-order execution: client " + std::to_string(e.client) +
               " seq " + std::to_string(e.client_seq) + " after " +
               std::to_string(last);
      last = e.client_seq;
    }
  }
  return {};
}

}  // namespace

LoadReport run_sim(const LoadConfig& config) {
  QSEL_REQUIRE(config.n >= 1 && config.clients >= 1);
  sim::Simulator sim;
  const auto total = static_cast<ProcessId>(config.n + config.clients);
  crypto::KeyRegistry keys(total, config.seed);
  sim::Network network(sim, total, config.network, config.seed);

  std::vector<std::unique_ptr<runtime::SimTransport>> transports;
  std::vector<std::unique_ptr<xpaxos::Replica>> replicas;
  const xpaxos::ReplicaConfig rc = replica_config(config);
  for (ProcessId id = 0; id < config.n; ++id) {
    transports.push_back(
        std::make_unique<runtime::SimTransport>(network, id));
    replicas.push_back(
        std::make_unique<xpaxos::Replica>(*transports.back(), keys, rc));
  }

  LoadReport report;
  AsyncEngineConfig ec;
  ec.replicas = config.n;
  ec.f = config.f;
  ec.retry_timeout = config.client_retry;
  std::vector<ClientRig> rigs(config.clients);
  for (std::uint32_t i = 0; i < config.clients; ++i) {
    const auto id = static_cast<ProcessId>(config.n + i);
    transports.push_back(
        std::make_unique<runtime::SimTransport>(network, id));
    rigs[i].transport = transports.back().get();
    rigs[i].engine =
        std::make_unique<AsyncEngine>(*transports.back(), keys, ec);
    rigs[i].workload =
        std::make_unique<app::Workload>(client_workload(config, i));
    rigs[i].target = config.requests_per_client;
    rigs[i].response_chain = id;
  }

  if (config.sim_faults) config.sim_faults(sim, network);
  start_load(rigs, config, report.latency);
  if (config.requests_per_client > 0) {
    // Run until every client's target committed; the cap only bounds a
    // run that has genuinely wedged (a liveness bug the caller asserts
    // on via committed != expected).
    constexpr SimDuration kCap = 300'000'000'000;  // 300 virtual seconds
    while (!all_done(rigs) && sim.now() < kCap)
      sim.run_for(10'000'000);  // 10 ms slices
    report.duration_ns = static_cast<std::uint64_t>(sim.now());
  } else {
    sim.run_for(static_cast<SimDuration>(config.duration_ms) * 1'000'000);
    report.duration_ns = config.duration_ms * 1'000'000;
  }
  for (auto& rig : rigs) rig.pacer.cancel();

  harvest_clients(rigs, report);
  for (const auto& replica : replicas)
    report.view_changes += replica->view_changes();
  // Digest the most-executed surviving replica: every replica that
  // executed through slot S applied the identical prefix, and the
  // furthest one has applied every committed request (fault schedules may
  // leave crashed or lagging peers behind).
  const xpaxos::Replica* best = nullptr;
  for (ProcessId id = 0; id < config.n; ++id) {
    if (network.is_crashed(id)) continue;
    if (best == nullptr || replicas[id]->last_executed() > best->last_executed())
      best = replicas[id].get();
  }
  QSEL_REQUIRE(best != nullptr);
  report.app_digest = best->store().state_digest();
  report.history_error = check_history(
      *best, config.n,
      config.outstanding == 1 && config.open_rate_per_sec == 0);
  report.net_messages = network.stats().total_messages();
  report.net_bytes = network.stats().total_bytes();
  report.prepares = network.stats().by_type("xpaxos.prepare");
  return report;
}

LoadReport run_loopback(const LoadConfig& config) {
  QSEL_REQUIRE(config.n >= 1 && config.clients >= 1);
  net::EventLoop loop;
  const auto total = static_cast<ProcessId>(config.n + config.clients);
  crypto::KeyRegistry keys(total, config.seed);

  std::vector<std::unique_ptr<net::TcpTransport>> transports(total);
  std::vector<std::uint16_t> ports(total, 0);
  for (ProcessId id = 0; id < total; ++id) {
    net::TcpTransport::Config tcp;
    tcp.self = id;
    tcp.n = total;
    tcp.auth_seed = config.seed;
    transports[id] = std::make_unique<net::TcpTransport>(loop, tcp);
    ports[id] = transports[id]->listen_port();
  }
  for (ProcessId from = 0; from < total; ++from)
    for (ProcessId to = 0; to < total; ++to)
      if (from != to) transports[from]->set_peer(to, ports[to]);

  // Real-time failure-detector pacing (loopback_cluster.hpp rationale):
  // virtual-time defaults would suspect healthy peers on scheduler jitter.
  xpaxos::ReplicaConfig rc = replica_config(config);
  rc.fd = fd::FailureDetectorConfig{/*initial_timeout=*/40'000'000,
                                    /*max_timeout=*/1'000'000'000,
                                    /*adaptive=*/true};
  std::vector<std::unique_ptr<xpaxos::Replica>> replicas;
  for (ProcessId id = 0; id < config.n; ++id)
    replicas.push_back(
        std::make_unique<xpaxos::Replica>(*transports[id], keys, rc));

  LoadReport report;
  AsyncEngineConfig ec;
  ec.replicas = config.n;
  ec.f = config.f;
  ec.retry_timeout = config.client_retry;
  std::vector<ClientRig> rigs(config.clients);
  for (std::uint32_t i = 0; i < config.clients; ++i) {
    const auto id = static_cast<ProcessId>(config.n + i);
    rigs[i].transport = transports[id].get();
    rigs[i].engine =
        std::make_unique<AsyncEngine>(*transports[id], keys, ec);
    rigs[i].workload =
        std::make_unique<app::Workload>(client_workload(config, i));
    rigs[i].target = config.requests_per_client;
    rigs[i].response_chain = id;
  }

  for (auto& transport : transports) transport->start();
  const auto run_until = [&](const std::function<bool()>& pred,
                             std::uint64_t timeout_ns) {
    const std::uint64_t deadline = loop.now_ns() + timeout_ns;
    while (!pred()) {
      const std::uint64_t now = loop.now_ns();
      if (now >= deadline) return false;
      loop.poll_once(std::min<std::uint64_t>(deadline - now, 5'000'000));
    }
    return true;
  };
  const auto fully_connected = [&] {
    for (ProcessId from = 0; from < total; ++from)
      for (ProcessId to = 0; to < total; ++to)
        if (from != to && !transports[from]->connected_to(to)) return false;
    return true;
  };
  QSEL_REQUIRE_MSG(run_until(fully_connected, 10'000'000'000),
                   "loopback mesh did not connect");

  const auto started = std::chrono::steady_clock::now();
  start_load(rigs, config, report.latency);
  if (config.requests_per_client > 0) {
    run_until([&] { return all_done(rigs); }, 120'000'000'000ULL);
  } else {
    loop.run_for(config.duration_ms * 1'000'000);
  }
  for (auto& rig : rigs) rig.pacer.cancel();
  report.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());

  harvest_clients(rigs, report);
  for (const auto& replica : replicas)
    report.view_changes += replica->view_changes();
  report.app_digest = replicas[0]->store().state_digest();
  for (const auto& transport : transports) {
    report.net_messages += transport->io_stats().frames_sent;
    report.net_bytes += transport->io_stats().bytes_sent;
    report.frames_shared += transport->io_stats().frames_shared;
  }
  // PREPARE counting is a sim-substrate metric (per-type tags live in
  // sim::Network's MessageStats); the loopback report leaves it 0.
  replicas.clear();  // protocol first: timers cancelled before sockets die
  for (auto& transport : transports) transport->shutdown();
  return report;
}

double LoadReport::throughput_per_sec() const {
  if (duration_ns == 0) return 0.0;
  return static_cast<double>(committed) * 1e9 /
         static_cast<double>(duration_ns);
}

std::string LoadReport::to_json() const {
  char buf[128];
  std::string json = "{";
  const auto field = [&](const char* key, std::uint64_t value,
                         bool comma = true) {
    json += '"';
    json += key;
    json += "\":";
    json += std::to_string(value);
    if (comma) json += ',';
  };
  field("committed", committed);
  field("submitted", submitted);
  field("shed", shed);
  field("retransmissions", retransmissions);
  field("view_changes", view_changes);
  field("duration_ns", duration_ns);
  std::snprintf(buf, sizeof buf, "\"throughput_per_sec\":%.3f,",
                throughput_per_sec());
  json += buf;
  json += "\"latency_ns\":{";
  field("count", latency.count());
  field("min", latency.min());
  field("mean", latency.mean());
  field("p50", latency.p50());
  field("p99", latency.p99());
  field("p999", latency.p999());
  field("max", latency.max());
  std::snprintf(buf, sizeof buf, "\"digest\":\"%016llx\"},",
                static_cast<unsigned long long>(latency.digest()));
  json += buf;
  json += "\"app_digest\":\"" + app_digest.to_hex() + "\",";
  std::snprintf(buf, sizeof buf, "\"responses_digest\":\"%016llx\",",
                static_cast<unsigned long long>(responses_digest));
  json += buf;
  json += "\"history_error\":\"" + history_error + "\",";
  json += "\"net\":{";
  field("messages", net_messages);
  field("bytes", net_bytes);
  field("frames_shared", frames_shared);
  field("prepares", prepares, /*comma=*/false);
  json += "}}";
  return json;
}

}  // namespace qsel::load
