// Multi-in-flight SMR client engine.
//
// smr::RequestEngine is deliberately one-request-at-a-time — that is what
// the protocol experiments and the routing clients want, and it stays
// untouched. The load generator needs the opposite: a single client
// identity keeping a whole window of signed requests outstanding, so the
// leader's pipeline actually fills. AsyncEngine keeps a map of pending
// requests keyed by client_seq, each with its own retransmission timer and
// f+1-matching reply tally; outcomes settle independently and in any
// order.
//
// Like smr::Client it installs itself as the transport's handler — each
// load client owns a dedicated transport (its slot of the simulated
// network, or its own loopback TcpTransport).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "net/transport.hpp"
#include "smr/client.hpp"
#include "smr/client_messages.hpp"

namespace qsel::load {

struct AsyncEngineConfig {
  /// Replica id upper bound (reply signers are validated against it).
  ProcessId replicas = 4;
  int f = 1;
  /// Replicas to address; empty = all of 0..replicas-1.
  ProcessSet replica_set;
  SimDuration retry_timeout = 50'000'000;  // 50 ms
};

class AsyncEngine {
 public:
  using Callback = std::function<void(const smr::Outcome&)>;

  /// Installs itself as `transport`'s handler; self() = transport.self().
  AsyncEngine(net::Transport& transport, const crypto::KeyRegistry& keys,
              AsyncEngineConfig config);

  /// Signs and broadcasts `op`; `done` fires exactly once, when f+1
  /// matching replies are in. Any number of requests may be in flight.
  /// Returns the request's client_seq.
  std::uint64_t submit(std::vector<std::uint8_t> op, Callback done);

  std::size_t outstanding() const { return pending_.size(); }
  ProcessId self() const { return signer_.self(); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t submitted() const { return next_seq_ - 1; }

 private:
  struct Pending {
    std::shared_ptr<const smr::ClientRequest> request;
    Callback done;
    SimTime issued_at = 0;
    sim::TimerHandle retry;
    std::map<std::string, ProcessSet> replies;  // result -> voters
  };

  void on_message(ProcessId from, const sim::PayloadPtr& message);
  void arm_retry(std::uint64_t client_seq);

  net::Transport& transport_;
  crypto::Signer signer_;
  AsyncEngineConfig config_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t retransmissions_ = 0;
  std::map<std::uint64_t, Pending> pending_;  // by client_seq
};

}  // namespace qsel::load
