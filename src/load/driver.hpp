// Deterministic closed-/open-loop load generator for the XPaxos SMR path.
//
// One LoadConfig drives two substrates with the same client logic:
//
//  * run_sim()      — virtual time over sim::Network. Bit-for-bit
//                     deterministic given (config, seed): committed counts,
//                     latency histograms and the replicated-state digest
//                     are pure functions of the config. This is what the
//                     equivalence battery and the BENCH_6 gate ratios use.
//  * run_loopback() — real time over TcpTransports on 127.0.0.1, the
//                     measurement substrate for wall-clock throughput
//                     (timed arms of BENCH_6, informational).
//
// Closed loop: each of `clients` keeps `outstanding` signed requests in
// flight (outstanding = 1 reproduces the classic serial client). Open
// loop: requests are paced at `open_rate_per_sec` aggregate regardless of
// completions, with a per-client `max_outstanding` cap beyond which
// arrivals are shed (and counted — a shed arrival is a latency the
// histogram would otherwise hide).
//
// Each client draws from its own disjoint key range by default
// (workload key_offset = client_index * key_space), so the final KV state
// is independent of cross-client interleaving — the property the
// pipelining equivalence tests turn into a bit-identical digest check.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "app/workload.hpp"
#include "crypto/sha256.hpp"
#include "load/histogram.hpp"
#include "sim/network.hpp"
#include "xpaxos/replica.hpp"

namespace qsel::load {

struct LoadConfig {
  ProcessId n = 4;
  int f = 1;
  xpaxos::QuorumPolicy policy = xpaxos::QuorumPolicy::kQuorumSelection;
  std::uint64_t seed = 1;

  // --- client shape ----------------------------------------------------
  std::uint32_t clients = 4;
  /// Closed loop: in-flight window per client.
  std::uint32_t outstanding = 4;
  /// > 0 switches to open loop: aggregate request arrivals per second,
  /// split evenly across clients.
  std::uint64_t open_rate_per_sec = 0;
  /// Open loop: per-client in-flight cap; arrivals beyond it are shed.
  std::uint32_t max_outstanding = 64;

  // --- stop condition --------------------------------------------------
  /// > 0: each client submits exactly this many requests and the run ends
  /// when all have committed (the equivalence-battery mode). 0: run for
  /// duration_ms and report what committed.
  std::uint64_t requests_per_client = 0;
  std::uint64_t duration_ms = 200;

  // --- server shape ----------------------------------------------------
  std::size_t pipeline_window = 16;
  std::size_t max_batch = 8;
  SimDuration view_change_retry = 30'000'000;
  SimDuration client_retry = 50'000'000;

  // --- workload --------------------------------------------------------
  /// Per-client key range size (ranges are disjoint across clients).
  std::uint32_t key_space = 64;
  std::uint32_t value_bytes = 16;
  double put_fraction = 0.5;
  double get_fraction = 0.4;
  double zipf_theta = 0.0;

  /// Sim substrate only.
  sim::NetworkConfig network;
  /// Sim substrate only: called once after the cluster is built, before
  /// the clock starts. Tests use it to schedule fault injection —
  /// sim.schedule_after(t, [&]{ network.crash(leader); }) and friends.
  std::function<void(sim::Simulator&, sim::Network&)> sim_faults;
};

struct LoadReport {
  std::uint64_t committed = 0;
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;  // open loop only
  std::uint64_t retransmissions = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t duration_ns = 0;  // virtual (sim) or wall (loopback)
  LatencyHistogram latency;
  /// State digest of the furthest-executed surviving replica (the
  /// equivalence battery compares it across pipeline windows).
  crypto::Digest app_digest{};
  /// Order-sensitive per-client digest of (client_seq, response value)
  /// chains, combined order-independently across clients: batching and
  /// pipelining may not change what any client was told.
  std::uint64_t responses_digest = 0;
  /// Sim substrate: empty when the executed history passed the ordering
  /// oracle (contiguous slots from 1, no duplicate (client, seq); with
  /// serial clients, per-client seqs strictly increasing), else a
  /// description of the first violation.
  std::string history_error;
  /// Substrate traffic: sim reports network messages/bytes, loopback
  /// reports TCP frames/bytes plus how many frames rode the zero-copy
  /// broadcast path.
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t frames_shared = 0;
  /// PREPAREs sent, for the batch-amortization ratio committed/prepares.
  std::uint64_t prepares = 0;

  double throughput_per_sec() const;
  /// Deterministic single-line JSON (fixed key order; doubles printed
  /// with fixed precision) — two runs of the same (config, seed) on the
  /// sim substrate are bit-identical.
  std::string to_json() const;
};

/// Runs the workload on the simulated network (virtual time).
LoadReport run_sim(const LoadConfig& config);

/// Runs the workload over real loopback TCP (wall-clock time).
LoadReport run_loopback(const LoadConfig& config);

}  // namespace qsel::load
