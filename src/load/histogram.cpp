#include "load/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qsel::load {

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const auto e =
      static_cast<std::size_t>(std::bit_width(value)) - 1;  // top bit, >= 4
  const auto sub =
      static_cast<std::size_t>((value >> (e - 4)) & (kSubBuckets - 1));
  return kLinearBuckets + (e - 4) * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t index) {
  QSEL_REQUIRE(index < kBucketCount);
  if (index < kLinearBuckets) return index;
  const std::size_t decade = (index - kLinearBuckets) / kSubBuckets;
  const std::uint64_t sub = (index - kLinearBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << decade;
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  QSEL_REQUIRE(index < kBucketCount);
  if (index < kLinearBuckets) return index;
  const std::size_t decade = (index - kLinearBuckets) / kSubBuckets;
  return bucket_lower(index) + ((std::uint64_t{1} << decade) - 1);
}

void LatencyHistogram::record(std::uint64_t value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

std::uint64_t LatencyHistogram::quantile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_upper(i);
  }
  return max_;  // unreachable: seen reaches count_ >= rank
}

std::uint64_t LatencyHistogram::digest() const {
  std::uint64_t state = 0x716c6f6164686973ULL;  // arbitrary fixed seed
  std::uint64_t h = splitmix64(state);
  const auto fold = [&](std::uint64_t word) {
    state ^= word;
    h ^= splitmix64(state);
  };
  fold(count_);
  fold(sum_);
  fold(min_);
  fold(max_);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    fold(i);
    fold(buckets_[i]);
  }
  return h;
}

}  // namespace qsel::load
