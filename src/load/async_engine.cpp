#include "load/async_engine.hpp"

#include <utility>

#include "common/assert.hpp"
#include "smr/typed_result.hpp"

namespace qsel::load {

AsyncEngine::AsyncEngine(net::Transport& transport,
                         const crypto::KeyRegistry& keys,
                         AsyncEngineConfig config)
    : transport_(transport),
      signer_(keys, transport.self()),
      config_(config) {
  if (config_.replica_set.empty())
    config_.replica_set = ProcessSet::full(config_.replicas);
  QSEL_REQUIRE(!config_.replica_set.contains(self()));
  QSEL_REQUIRE(static_cast<int>(config_.replica_set.size()) > config_.f);
  transport_.set_handler([this](ProcessId from, const sim::PayloadPtr& m) {
    on_message(from, m);
  });
}

std::uint64_t AsyncEngine::submit(std::vector<std::uint8_t> op,
                                  Callback done) {
  const std::uint64_t seq = next_seq_++;
  Pending& pending = pending_[seq];
  pending.request = smr::ClientRequest::make(signer_, seq, std::move(op));
  pending.done = std::move(done);
  pending.issued_at = transport_.timers().now();
  transport_.broadcast(config_.replica_set, pending.request);
  arm_retry(seq);
  return seq;
}

void AsyncEngine::arm_retry(std::uint64_t client_seq) {
  Pending& pending = pending_.at(client_seq);
  pending.retry = transport_.timers().schedule_timer(
      config_.retry_timeout, [this, client_seq] {
        const auto it = pending_.find(client_seq);
        if (it == pending_.end()) return;
        ++retransmissions_;
        transport_.broadcast(config_.replica_set, it->second.request);
        arm_retry(client_seq);
      });
}

void AsyncEngine::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;
  const auto reply =
      std::dynamic_pointer_cast<const smr::ReplyMessage>(message);
  if (reply == nullptr) return;
  if (reply->client != self()) return;
  const auto it = pending_.find(reply->client_seq);
  if (it == pending_.end()) return;  // already settled (or never ours)
  if (!reply->verify(signer_, config_.replicas)) return;
  if (!config_.replica_set.contains(reply->replica)) return;
  Pending& pending = it->second;
  ProcessSet& voters = pending.replies[reply->result];
  voters.insert(reply->replica);
  if (voters.size() <= config_.f) return;  // need f+1 matching

  smr::Outcome outcome;
  outcome.client_seq = reply->client_seq;
  outcome.latency = transport_.timers().now() - pending.issued_at;
  if (const auto typed = smr::TypedResult::parse(reply->result)) {
    outcome.status = typed->status;
    outcome.config_epoch = typed->epoch;
    outcome.value = typed->value;
  } else {
    outcome.value = reply->result;
  }
  pending.retry.cancel();
  Callback done = std::move(pending.done);
  pending_.erase(it);  // before the callback: it may submit re-entrantly
  if (done) done(outcome);
}

}  // namespace qsel::load
