// Fixed-bucket log-scale latency histogram.
//
// The load generator records nanosecond latencies at arbitrary volume, so
// unlike metrics::Histogram it cannot keep every sample. Instead values
// land in a fixed layout of 976 buckets: values below 16 get exact
// unit-width buckets, and every power-of-two decade above that is split
// into 16 sub-buckets (HdrHistogram's scheme with 4 significant bits).
// Bucket width is at most 1/16 of the bucket's lower bound, so any
// reported quantile overstates the true sample by at most 6.25%.
//
// The layout is identical in every instance, which buys two properties the
// tests pin down: merge() is plain bucket-wise addition (associative and
// commutative), and digest() is a deterministic function of the recorded
// multiset — two processes that observed the same latencies produce
// bit-identical digests.
#pragma once

#include <array>
#include <cstdint>

namespace qsel::load {

class LatencyHistogram {
 public:
  /// Exact unit buckets for values 0..15.
  static constexpr std::size_t kLinearBuckets = 16;
  /// Sub-buckets per power-of-two decade (4 significant bits).
  static constexpr std::size_t kSubBuckets = 16;
  /// Decades cover exponents 4..63 of a 64-bit value.
  static constexpr std::size_t kBucketCount =
      kLinearBuckets + (64 - 4) * kSubBuckets;  // 976

  /// Bucket index holding `value`; total over all 64-bit values.
  static std::size_t bucket_index(std::uint64_t value);
  /// Smallest / largest value mapping to bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  static std::uint64_t bucket_upper(std::size_t index);

  void record(std::uint64_t value);
  /// Bucket-wise addition; min/max/sum/count fold in too.
  void merge(const LatencyHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t count_at(std::size_t index) const { return buckets_[index]; }
  /// Exact extrema and sum (tracked beside the buckets).
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  /// Nearest-rank quantile, p in [0, 1]; returns the upper bound of the
  /// bucket holding the ranked sample (so the true value is never
  /// overstated by more than the bucket width). 0 when empty.
  std::uint64_t quantile(double p) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  /// Order-independent 64-bit digest of the recorded multiset (bucket
  /// counts + count/sum/min/max), for cross-process determinism checks.
  std::uint64_t digest() const;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace qsel::load
