#include "xpaxos/view_map.hpp"

#include "common/assert.hpp"

namespace qsel::xpaxos {

ViewMap::ViewMap(ProcessId n, int f)
    : n_(n),
      f_(f),
      count_(binomial(n, static_cast<std::uint64_t>(
                             static_cast<int>(n) - f))) {
  QSEL_REQUIRE(n > 0 && n <= kMaxProcesses);
  QSEL_REQUIRE(f >= 1 && static_cast<ProcessId>(f) < n);
}

ProcessSet ViewMap::quorum_of(ViewId view) const {
  QSEL_REQUIRE(view >= 1);
  return subset_unrank((view - 1) % count_, n_, quorum_size());
}

ViewId ViewMap::first_view_from(ViewId from, ProcessSet quorum) const {
  QSEL_REQUIRE(from >= 1);
  QSEL_REQUIRE(quorum.size() == quorum_size());
  const std::uint64_t rank = subset_rank(quorum, n_);
  // Views with this quorum are rank+1, rank+1+count, rank+1+2*count, ...
  if (rank + 1 >= from) return rank + 1;
  const std::uint64_t cycles = (from - (rank + 1) + count_ - 1) / count_;
  return rank + 1 + cycles * count_;
}

}  // namespace qsel::xpaxos
