// XPaxos replica with pluggable quorum policy (Section V).
//
// Normal case follows Fig. 2: the view's leader PREPAREs client requests
// to the active quorum; members COMMIT to each other; a slot executes when
// commits from the *whole* quorum are in (XPaxos requires all q members to
// participate, which is exactly why any single active fault forces a view
// change — and why Quorum Selection pays off).
//
// Failure detection is integrated per Section V-A:
//  * on sending/receiving a PREPARE, expect a matching COMMIT from every
//    quorum member whose COMMIT has not already arrived (first subtlety);
//  * a COMMIT embeds the leader's PREPARE; if the embedded PREPARE is
//    invalid the *sender* is DETECTED, if it conflicts with the leader's
//    PREPARE for the same (view, slot) the *leader* is DETECTED
//    (equivocation — second subtlety);
//  * a COMMIT arriving before its PREPARE is acted upon immediately and an
//    expectation for the PREPARE is issued against the leader (Fig. 3 —
//    third subtlety).
//
// Quorum policy (Section V-B):
//  * kEnumeration — the original XPaxos strategy: suspicion of the active
//    quorum moves to the next of the C(n, q) quorums in a fixed
//    enumeration, cycling round-robin;
//  * kQuorumSelection — this paper: the failure detector feeds Algorithm 1
//    and <QUORUM, Q> outputs jump straight to the first view that installs
//    Q ("suspect all quorums ordered before Q"), cancelling outstanding
//    expectations.
//
// The replica runs over net::Transport, so the same code drives the
// simulator (runtime::SimTransport), real TCP, and a shard group's slice
// of a shared TCP transport (shard::GroupTransport). The application is
// pluggable (app_factory): a plain KvStore by default, a ShardMap or
// fenced ShardKv machine in the sharded service.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "app/state_machine.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "net/transport.hpp"
#include "qs/quorum_selector.hpp"
#include "store/node_store.hpp"
#include "xpaxos/messages.hpp"
#include "xpaxos/view_map.hpp"

namespace qsel::xpaxos {

enum class QuorumPolicy { kEnumeration, kQuorumSelection };

struct ReplicaConfig {
  ProcessId n = 4;  // replica count (transport id space may be larger: clients)
  int f = 1;
  QuorumPolicy policy = QuorumPolicy::kQuorumSelection;
  fd::FailureDetectorConfig fd;
  /// While a view change is pending, retry/advance after this long.
  SimDuration view_change_retry = 30'000'000;  // 30 ms
  /// Commit pipelining: the leader keeps at most this many consensus
  /// instances between PREPARE and execution; 1 = the serial pre-pipeline
  /// behavior (propose, wait for execution, propose the next).
  std::size_t pipeline_window = 16;
  /// Max client requests packed into one PREPARE. Batches form reactively:
  /// a PREPARE carries more than one request only when the window is full
  /// and a queue builds behind it, so an idle system keeps 1-request
  /// latency.
  std::size_t max_batch = 8;
  /// Builds the replicated application; unset = app::KvStore.
  std::function<std::unique_ptr<app::StateMachine>()> app_factory;
  /// Optional durable store for the node's quorum-selection state (epoch,
  /// own suspicion row, FD timeouts). Recovered at construction, written
  /// ahead of every own-row/epoch change. Nullptr = memory-only.
  store::NodeStore* node_store = nullptr;
};

class Replica final {
 public:
  /// Installs itself as `transport`'s handler; self() = transport.self(),
  /// which must be a replica id (< config.n).
  Replica(net::Transport& transport, const crypto::KeyRegistry& keys,
          ReplicaConfig config);
  /// Cancels pending timers and detaches from the transport, so a replica
  /// can be destroyed while its transport (and timer queue) live on.
  ~Replica();

  void on_message(ProcessId from, const sim::PayloadPtr& message);

  // --- observers --------------------------------------------------------

  ProcessId self() const { return signer_.self(); }
  ViewId view() const { return view_; }
  ProcessSet active_quorum() const { return view_map_.quorum_of(view_); }
  ProcessId leader() const { return view_map_.leader_of(view_); }
  bool is_leader() const { return leader() == self(); }
  bool in_active_quorum() const { return active_quorum().contains(self()); }
  enum class Status { kNormal, kViewChange };
  Status status() const { return status_; }

  const app::StateMachine& store() const { return *app_; }
  app::StateMachine& store() { return *app_; }
  SeqNum last_executed() const { return last_executed_; }
  std::uint64_t view_changes() const { return view_changes_; }
  std::uint64_t requests_executed() const { return requests_executed_; }
  /// Instances this leader has proposed but not yet executed (the pipeline
  /// occupancy); meaningful on the current leader only.
  std::size_t in_flight_instances() const;
  /// Requests queued behind a full pipeline window (leader only).
  std::size_t pending_proposals() const { return pending_requests_.size(); }
  fd::FailureDetector& failure_detector() { return fd_; }
  /// Null under the enumeration policy.
  const qs::QuorumSelector* selector() const { return selector_.get(); }

  /// Executed history as (slot, client, client_seq) triples, for
  /// cross-replica consistency checks.
  struct ExecutedEntry {
    SeqNum slot;
    std::uint32_t client;
    std::uint64_t client_seq;
    crypto::Digest op_digest;
  };
  const std::vector<ExecutedEntry>& executed_history() const {
    return executed_history_;
  }

 private:
  struct Slot {
    std::optional<PrepareMessage> prepare;
    ProcessSet commits;  // senders of valid matching COMMITs
    bool own_commit_sent = false;
    bool executed = false;
  };

  void handle_request(const std::shared_ptr<const ClientRequest>& request);
  void propose_batch(std::vector<BatchEntry> batch);
  /// Drains pending_requests_ into PREPARE batches while the pipeline
  /// window has room. Re-entrancy-safe (a no-op while already pumping).
  void pump_proposals();
  void handle_prepare(const PrepareMessage& prepare, bool via_commit);
  void handle_commit(const std::shared_ptr<const CommitMessage>& commit);
  void handle_viewchange(const std::shared_ptr<const ViewChangeMessage>& msg);
  void handle_newview(const std::shared_ptr<const NewViewMessage>& msg);

  void on_suspected(ProcessSet suspects);
  void on_selected_quorum(ProcessSet quorum);
  void start_view_change(ViewId target);
  void broadcast_viewchange();
  void maybe_assemble_new_view();
  void arm_view_change_timer();
  void try_execute();
  void record_commit(SeqNum slot_no, ProcessId sender);
  void expect_commit(ProcessId from, ViewId view, SeqNum slot_no);
  void maybe_persist();

  /// Sends to every member of the view's quorum except self.
  void send_to_quorum(const sim::PayloadPtr& message);
  void broadcast_all(const sim::PayloadPtr& message);

  std::vector<PrepareMessage> prepared_log() const;

  net::Transport& transport_;
  crypto::Signer signer_;
  ReplicaConfig config_;
  ViewMap view_map_;
  fd::FailureDetector fd_;
  std::unique_ptr<qs::QuorumSelector> selector_;  // policy == kQuorumSelection
  std::unique_ptr<app::StateMachine> app_;

  ViewId view_ = 1;
  Status status_ = Status::kNormal;
  std::uint64_t view_changes_ = 0;
  sim::TimerHandle view_change_timer_;

  std::map<SeqNum, Slot> log_;
  SeqNum next_slot_ = 1;  // leader only
  SeqNum last_executed_ = 0;
  std::uint64_t requests_executed_ = 0;
  std::vector<ExecutedEntry> executed_history_;

  /// (client, client_seq) -> slot, for duplicate suppression.
  std::map<std::pair<std::uint32_t, std::uint64_t>, SeqNum> client_index_;
  /// Executed results, for replying to retransmitted requests.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> results_;
  /// Leader-side proposal queue: requests wait here while the pipeline
  /// window is full (and across view changes). pending_keys_ mirrors the
  /// queue so retransmissions cannot enqueue a request twice.
  std::deque<std::shared_ptr<const ClientRequest>> pending_requests_;
  std::set<std::pair<std::uint32_t, std::uint64_t>> pending_keys_;
  bool pumping_ = false;

  /// VIEWCHANGE messages collected for view_ (by everyone: the
  /// leader-elect assembles from them; members use completeness of the set
  /// as the trigger to start expecting the NEWVIEW — before that the
  /// leader-elect legitimately cannot assemble, so expecting earlier would
  /// violate the accuracy requirement).
  std::map<ProcessId, std::shared_ptr<const ViewChangeMessage>> viewchanges_;
  bool newview_expected_ = false;
  /// PREPARE/COMMIT messages for the *target* view that raced ahead of the
  /// NEWVIEW (links are not FIFO); replayed once the view installs.
  std::vector<sim::PayloadPtr> buffered_protocol_;

  // Durable-state bookkeeping (config_.node_store != nullptr): dirty
  // counters so steady-state messages skip the O(n) persist.
  bool has_persisted_ = false;
  std::uint64_t persisted_row_version_ = 0;
  Epoch persisted_epoch_ = 0;
  std::uint64_t persisted_fd_generation_ = 0;
};

}  // namespace qsel::xpaxos
