#include "xpaxos/replica.hpp"

#include <algorithm>
#include <utility>

#include "app/kv_store.hpp"
#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::xpaxos {

Replica::Replica(net::Transport& transport, const crypto::KeyRegistry& keys,
                 ReplicaConfig config)
    : transport_(transport),
      signer_(keys, transport.self()),
      config_(std::move(config)),
      view_map_(config_.n, config_.f),
      fd_(transport.timers(), transport.self(), config_.n, config_.fd,
          [this](ProcessSet s) { on_suspected(s); }) {
  QSEL_REQUIRE(self() < config_.n);
  QSEL_REQUIRE(config_.pipeline_window >= 1);
  QSEL_REQUIRE(config_.max_batch >= 1 &&
               config_.max_batch <= PrepareMessage::kMaxBatch);
  if (config_.policy == QuorumPolicy::kQuorumSelection) {
    selector_ = std::make_unique<qs::QuorumSelector>(
        signer_, qs::QuorumSelectorConfig{config_.n, config_.f},
        qs::QuorumSelector::Hooks{
            [this](ProcessSet q) { on_selected_quorum(q); },
            [this](sim::PayloadPtr msg) { broadcast_all(msg); },
            [this] { maybe_persist(); },
            [this](ProcessId to, sim::PayloadPtr msg) {
              transport_.send(to, std::move(msg));
            }});
  }
  app_ = config_.app_factory ? config_.app_factory()
                             : std::make_unique<app::KvStore>();
  QSEL_REQUIRE(app_ != nullptr);
  transport_.set_handler([this](ProcessId from, const sim::PayloadPtr& msg) {
    on_message(from, msg);
  });
  if (config_.node_store != nullptr) {
    if (const auto recovered = config_.node_store->recover()) {
      // Timeouts first: restore() re-evaluates the quorum, and any epoch
      // advance it triggers should persist a state that already includes
      // the recovered timeouts.
      fd_.restore_timeouts(recovered->fd_timeouts);
      if (selector_ != nullptr)
        selector_->restore(recovered->epoch, recovered->own_row);
    }
    maybe_persist();  // first boot journals the initial state
  }
}

Replica::~Replica() {
  // The transport and its timer queue may outlive this replica (a
  // GroupHost can retire one group while the node keeps running), so
  // nothing scheduled may touch a dead `this`.
  view_change_timer_.cancel();
  transport_.set_handler(nullptr);
}

void Replica::maybe_persist() {
  if (config_.node_store == nullptr) return;
  // Dirty check before any O(n) work (mirrors runtime::NodeProcess): the
  // own-row version counter moves exactly when a cell of the own row
  // increases, the FD generation exactly when a timeout adapts.
  const std::uint64_t row_version =
      selector_ != nullptr ? selector_->matrix().row_version(self()) : 0;
  const Epoch epoch = selector_ != nullptr ? selector_->epoch() : 0;
  const std::uint64_t fd_generation = fd_.timeout_generation();
  if (has_persisted_ && row_version == persisted_row_version_ &&
      epoch == persisted_epoch_ && fd_generation == persisted_fd_generation_)
    return;
  store::DurableNodeState state;
  state.epoch = epoch;
  if (selector_ != nullptr) {
    const auto row = selector_->matrix().row(self());
    state.own_row.assign(row.begin(), row.end());
  }
  state.fd_timeouts = fd_.timeouts();
  config_.node_store->persist(state);
  persisted_row_version_ = row_version;
  persisted_epoch_ = epoch;
  persisted_fd_generation_ = fd_generation;
  has_persisted_ = true;
}

void Replica::broadcast_all(const sim::PayloadPtr& message) {
  transport_.broadcast(ProcessSet::full(config_.n) - ProcessSet{self()},
                       message);
}

void Replica::send_to_quorum(const sim::PayloadPtr& message) {
  for (ProcessId member : active_quorum())
    if (member != self()) transport_.send(member, message);
}

void Replica::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;  // authentication is by signature; `from` may be a forwarder
  if (auto request = std::dynamic_pointer_cast<const ClientRequest>(message)) {
    handle_request(request);
  } else if (auto prepare =
                 std::dynamic_pointer_cast<const PrepareMessage>(message)) {
    if (!prepare->verify(signer_, config_.n,
                         view_map_.leader_of(prepare->view)))
      return;
    fd_.on_receive(prepare->sig.signer, message);
    handle_prepare(*prepare, /*via_commit=*/false);
  } else if (auto commit =
                 std::dynamic_pointer_cast<const CommitMessage>(message)) {
    handle_commit(commit);
  } else if (auto viewchange =
                 std::dynamic_pointer_cast<const ViewChangeMessage>(message)) {
    handle_viewchange(viewchange);
  } else if (auto newview =
                 std::dynamic_pointer_cast<const NewViewMessage>(message)) {
    handle_newview(newview);
  } else if (auto update = std::dynamic_pointer_cast<
                 const suspect::UpdateMessage>(message)) {
    if (selector_ != nullptr &&
        update->verify(signer_, config_.n)) {
      fd_.on_receive(update->origin, message);
      selector_->on_update(update);
    }
  }
  // Catch FD timeout adaptation, which has no write-ahead hook; the dirty
  // check makes this a few integer compares in the steady state.
  maybe_persist();
}

// --------------------------------------------------------------------------
// Normal case (Fig. 2)

void Replica::handle_request(
    const std::shared_ptr<const ClientRequest>& request) {
  if (!request->verify(signer_)) return;
  const auto key = std::make_pair(request->client, request->client_seq);
  if (const auto it = results_.find(key); it != results_.end()) {
    // Retransmission of an executed request: resend the cached reply.
    if (request->client < transport_.process_count())
      transport_.send(request->client,
                      ReplyMessage::make(signer_, view_, request->client,
                                         request->client_seq, it->second));
    return;
  }
  if (!is_leader()) {
    // Quorum members relay the request to the leader and expect the
    // corresponding PREPARE: a correct leader proposes within two
    // communication rounds (accuracy holds), a crashed or omitting leader
    // becomes a suspicion that drives quorum selection even when no other
    // traffic is in flight.
    if (status_ != Status::kNormal || !in_active_quorum()) return;
    if (client_index_.contains(key)) return;  // already proposed
    transport_.send(leader(), request);
    if (!fd_.suspected().contains(leader())) {
      const ViewId view = view_;
      const auto client = request->client;
      const auto client_seq = request->client_seq;
      fd_.expect(leader(),
                 [view, client, client_seq](ProcessId,
                                            const sim::PayloadPtr& m) {
                   const auto* p =
                       dynamic_cast<const PrepareMessage*>(m.get());
                   return p != nullptr && p->view == view &&
                          p->contains(client, client_seq);
                 },
                 "proposal");
    }
    return;
  }
  if (status_ != Status::kNormal) {
    if (pending_keys_.insert(key).second) pending_requests_.push_back(request);
    return;
  }
  if (const auto it = client_index_.find(key); it != client_index_.end()) {
    // Only trust the index if the slot still carries this request — a view
    // change may have replaced a lost slot with a no-op, in which case the
    // retransmission must be re-proposed.
    const auto slot_it = log_.find(it->second);
    if (slot_it != log_.end() && slot_it->second.prepare &&
        slot_it->second.prepare->contains(key.first, key.second))
      return;  // genuinely in flight
    client_index_.erase(it);
  }
  if (!pending_keys_.insert(key).second) return;  // already queued
  pending_requests_.push_back(request);
  pump_proposals();
}

std::size_t Replica::in_flight_instances() const {
  QSEL_ASSERT(next_slot_ >= last_executed_ + 1);
  return static_cast<std::size_t>(next_slot_ - 1 - last_executed_);
}

void Replica::pump_proposals() {
  if (pumping_) return;
  pumping_ = true;
  while (is_leader() && status_ == Status::kNormal &&
         !pending_requests_.empty() &&
         in_flight_instances() < config_.pipeline_window) {
    std::vector<BatchEntry> batch;
    batch.reserve(std::min(config_.max_batch, pending_requests_.size()));
    while (!pending_requests_.empty() && batch.size() < config_.max_batch) {
      const auto request = pending_requests_.front();
      pending_requests_.pop_front();
      const auto key = std::make_pair(request->client, request->client_seq);
      pending_keys_.erase(key);
      // Re-validate: the request may have executed or been re-proposed
      // (view-change replay) while it sat in the queue.
      if (results_.contains(key)) continue;
      if (const auto it = client_index_.find(key);
          it != client_index_.end()) {
        const auto slot_it = log_.find(it->second);
        if (slot_it != log_.end() && slot_it->second.prepare &&
            slot_it->second.prepare->contains(key.first, key.second))
          continue;  // already in flight
      }
      batch.push_back(
          BatchEntry{request->client, request->client_seq, request->op});
    }
    if (!batch.empty()) propose_batch(std::move(batch));
  }
  pumping_ = false;
}

void Replica::propose_batch(std::vector<BatchEntry> batch) {
  QSEL_ASSERT(is_leader() && status_ == Status::kNormal);
  const SeqNum slot = next_slot_++;
  const PrepareMessage prepare =
      PrepareMessage::make_batch(signer_, view_, slot, std::move(batch));
  QSEL_LOG(kDebug, "xpaxos") << "p" << self() << " proposes slot " << slot
                             << " (" << prepare.requests.size()
                             << " requests) in view " << view_;
  send_to_quorum(std::make_shared<PrepareMessage>(prepare));
  handle_prepare(prepare, /*via_commit=*/false);
}

void Replica::expect_commit(ProcessId from, ViewId view, SeqNum slot_no) {
  fd_.expect(from,
             [view, slot_no](ProcessId, const sim::PayloadPtr& m) {
               const auto* c = dynamic_cast<const CommitMessage*>(m.get());
               return c != nullptr && c->prepare.view == view &&
                      c->prepare.slot == slot_no;
             },
             "commit");
}

void Replica::handle_prepare(const PrepareMessage& prepare, bool via_commit) {
  if (prepare.view != view_) return;
  if (status_ != Status::kNormal) {
    // The leader installed the view before us and its normal-case traffic
    // overtook the NEWVIEW; replay once we install (links are not FIFO).
    buffered_protocol_.push_back(std::make_shared<PrepareMessage>(prepare));
    return;
  }
  QSEL_ASSERT(prepare.verify(signer_, config_.n, leader()));

  Slot& slot = log_[prepare.slot];
  if (slot.prepare) {
    if (slot.prepare->view == prepare.view) {
      if (!slot.prepare->same_proposal(prepare)) {
        // Two conflicting leader-signed proposals for the same (view,
        // slot): equivocation, a provable commission failure.
        QSEL_LOG(kInfo, "xpaxos") << "p" << self()
                                  << " detected equivocation by leader p"
                                  << leader();
        fd_.detected(leader());
        return;
      }
    } else if (slot.prepare->view < prepare.view) {
      // A re-proposal from a newer view supersedes; commits are per-view.
      slot.prepare = prepare;
      slot.commits.clear();
      slot.own_commit_sent = false;
    } else {
      return;  // stale
    }
  } else {
    slot.prepare = prepare;
  }
  for (const BatchEntry& e : prepare.requests)
    client_index_[{e.client, e.client_seq}] = prepare.slot;

  if (!in_active_quorum()) return;  // passive replicas only track the log
  if (!slot.own_commit_sent) {
    slot.own_commit_sent = true;
    send_to_quorum(CommitMessage::make(signer_, *slot.prepare));
    record_commit(prepare.slot, self());
    // Section V-A: expect a COMMIT from every quorum member — except those
    // whose COMMIT already arrived (first subtlety) and self.
    for (ProcessId member : active_quorum()) {
      if (member == self() || slot.commits.contains(member)) continue;
      expect_commit(member, view_, prepare.slot);
    }
  }
  (void)via_commit;
  try_execute();
}

void Replica::handle_commit(const std::shared_ptr<const CommitMessage>& commit) {
  if (!commit->verify_sender(signer_, config_.n)) return;
  fd_.on_receive(commit->sender, commit);
  if (commit->prepare.view != view_) return;
  if (status_ != Status::kNormal) {
    buffered_protocol_.push_back(commit);
    return;
  }
  if (!in_active_quorum()) return;
  if (!active_quorum().contains(commit->sender)) return;

  // Second subtlety: the embedded PREPARE must be a valid leader proposal;
  // otherwise the commit is malformed and its *sender* is detected.
  if (!commit->prepare.verify(signer_, config_.n, leader())) {
    QSEL_LOG(kInfo, "xpaxos") << "p" << self()
                              << " detected malformed COMMIT from p"
                              << commit->sender;
    fd_.detected(commit->sender);
    return;
  }

  Slot& slot = log_[commit->prepare.slot];
  if (slot.prepare && slot.prepare->view == view_ &&
      !slot.prepare->same_proposal(commit->prepare)) {
    // Valid leader-signed PREPARE conflicting with the one we hold:
    // the leader equivocated.
    QSEL_LOG(kInfo, "xpaxos") << "p" << self()
                              << " detected equivocation via COMMIT (leader p"
                              << leader() << ")";
    fd_.detected(leader());
    return;
  }

  record_commit(commit->prepare.slot, commit->sender);
  if (!slot.prepare) {
    // Third subtlety (Fig. 3): the COMMIT overtook the PREPARE. Act on the
    // embedded PREPARE right away and expect the leader's own PREPARE.
    if (leader() != self()) {
      const ViewId view = view_;
      const SeqNum slot_no = commit->prepare.slot;
      fd_.expect(leader(),
                 [view, slot_no](ProcessId, const sim::PayloadPtr& m) {
                   const auto* p =
                       dynamic_cast<const PrepareMessage*>(m.get());
                   return p != nullptr && p->view == view &&
                          p->slot == slot_no;
                 },
                 "prepare");
    }
    handle_prepare(commit->prepare, /*via_commit=*/true);
  } else {
    try_execute();
  }
}

void Replica::record_commit(SeqNum slot_no, ProcessId sender) {
  log_[slot_no].commits.insert(sender);
}

void Replica::try_execute() {
  for (;;) {
    const auto it = log_.find(last_executed_ + 1);
    if (it == log_.end()) break;
    Slot& slot = it->second;
    if (!slot.prepare || slot.executed) break;
    const ProcessSet required = view_map_.quorum_of(slot.prepare->view);
    if (!required.is_subset_of(slot.commits)) break;

    slot.executed = true;
    ++last_executed_;
    const PrepareMessage& p = *slot.prepare;
    for (const BatchEntry& e : p.requests) {
      const bool noop = e.op.empty() && e.client == 0;
      const auto key = std::make_pair(e.client, e.client_seq);
      if (!noop) {
        // Exactly-once: a view change can resurrect a request that
        // already executed in an earlier slot (see the NEWVIEW merge
        // dedup); the cached result answers it without re-applying. The
        // cache is identical across replicas with the same executed
        // prefix, so this stays deterministic.
        if (const auto done = results_.find(key); done != results_.end()) {
          if (e.client < transport_.process_count() && e.client >= config_.n)
            transport_.send(e.client,
                            ReplyMessage::make(signer_, view_, e.client,
                                               e.client_seq, done->second));
          continue;
        }
      }
      std::string result;
      if (!noop) {
        result = app_->apply_encoded(e.op);
        ++requests_executed_;
      }
      executed_history_.push_back(
          ExecutedEntry{p.slot, e.client, e.client_seq, crypto::sha256(e.op)});
      results_[key] = result;
      if (!noop && e.client < transport_.process_count() &&
          e.client >= config_.n) {
        transport_.send(e.client,
                        ReplyMessage::make(signer_, view_, e.client,
                                           e.client_seq, result));
      }
    }
    QSEL_LOG(kDebug, "xpaxos") << "p" << self() << " executed slot " << p.slot;
  }
  // Executions free pipeline-window slots; the leader refills them.
  pump_proposals();
}

// --------------------------------------------------------------------------
// View changes and quorum installation (Section V-B)

void Replica::on_suspected(ProcessSet suspects) {
  if (selector_ != nullptr) {
    // Quorum Selection policy: suspicions feed Algorithm 1; view changes
    // are driven by <QUORUM, Q> outputs only.
    selector_->on_suspected(suspects);
    return;
  }
  // Enumeration policy: XPaxos detects failures at the granularity of the
  // quorum — any suspicion touching the active quorum moves to the next
  // quorum in the enumeration.
  if (suspects.intersects(active_quorum())) start_view_change(view_ + 1);
}

void Replica::on_selected_quorum(ProcessSet quorum) {
  if (quorum == active_quorum() && status_ == Status::kNormal) return;
  if (quorum == active_quorum() && status_ == Status::kViewChange) return;
  // "Process i suspects all quorums ordered before Q": jump to the first
  // view from view_+1 that installs exactly Q.
  start_view_change(view_map_.first_view_from(view_ + 1, quorum));
}

void Replica::start_view_change(ViewId target) {
  QSEL_REQUIRE(target > view_ ||
               (target == view_ && status_ == Status::kViewChange));
  if (target == view_) return;
  view_ = target;
  status_ = Status::kViewChange;
  ++view_changes_;
  QSEL_LOG(kInfo, "xpaxos") << "p" << self() << " view change to " << view_
                            << " quorum " << active_quorum().to_string();
  fd_.cancel_all();  // Section V-B: PREPARE/COMMIT expectations are void now
  viewchanges_.clear();
  newview_expected_ = false;
  buffered_protocol_.clear();
  broadcast_viewchange();
  // Every participant expects a VIEWCHANGE from every other member of the
  // target quorum: correct members emit theirs within a communication
  // round of seeing the same suspicion gossip, so this meets the accuracy
  // requirement, while a crashed member's silence becomes the suspicion
  // that lets Quorum Selection move on. The NEWVIEW expectation is issued
  // later, only once the full VIEWCHANGE set is visible (before that a
  // correct leader-elect legitimately cannot assemble).
  for (ProcessId member : active_quorum()) {
    if (member == self()) continue;
    const ViewId view = view_;
    fd_.expect(member,
               [view](ProcessId, const sim::PayloadPtr& m) {
                 const auto* vc =
                     dynamic_cast<const ViewChangeMessage*>(m.get());
                 return vc != nullptr && vc->new_view >= view;
               },
               "viewchange");
  }
  arm_view_change_timer();
}

void Replica::arm_view_change_timer() {
  view_change_timer_.cancel();
  view_change_timer_ = transport_.timers().schedule_timer(
      config_.view_change_retry, [this] {
        if (status_ != Status::kViewChange) return;
        if (config_.policy == QuorumPolicy::kEnumeration) {
          // Quorum-granularity detection: this quorum did not complete the
          // view change in time; try the next one.
          start_view_change(view_ + 1);
        } else {
          // Retransmit; Algorithm 1 will move the quorum when suspicions
          // propagate.
          broadcast_viewchange();
          arm_view_change_timer();
        }
      });
}

std::vector<PrepareMessage> Replica::prepared_log() const {
  std::vector<PrepareMessage> prepared;
  prepared.reserve(log_.size());
  for (const auto& [slot_no, slot] : log_)
    if (slot.prepare) prepared.push_back(*slot.prepare);
  return prepared;
}

void Replica::broadcast_viewchange() {
  const auto msg = ViewChangeMessage::make(signer_, view_, prepared_log());
  broadcast_all(msg);
  viewchanges_[self()] = msg;
  maybe_assemble_new_view();
}

void Replica::handle_viewchange(
    const std::shared_ptr<const ViewChangeMessage>& msg) {
  if (!msg->verify(signer_, config_.n)) return;
  fd_.on_receive(msg->sender, msg);
  if (msg->new_view < view_) return;  // stale
  if (msg->new_view > view_) {
    // Another correct process moved ahead (its timer fired or its quorum
    // selection output arrived first); join its view change.
    start_view_change(msg->new_view);
  }
  if (status_ != Status::kViewChange) return;
  if (msg->new_view != view_) return;
  if (!active_quorum().contains(msg->sender)) return;
  viewchanges_[msg->sender] = msg;
  maybe_assemble_new_view();
}

void Replica::maybe_assemble_new_view() {
  if (status_ != Status::kViewChange) return;
  for (ProcessId member : active_quorum())
    if (!viewchanges_.contains(member)) return;
  if (leader() != self()) {
    // The full VIEWCHANGE set is visible, so the leader-elect can assemble
    // now: from here on a correct leader delivers the NEWVIEW within two
    // communication rounds — the accuracy-compliant moment to expect it.
    if (!newview_expected_) {
      newview_expected_ = true;
      const ViewId view = view_;
      fd_.expect(leader(),
                 [view](ProcessId, const sim::PayloadPtr& m) {
                   const auto* nv =
                       dynamic_cast<const NewViewMessage*>(m.get());
                   return nv != nullptr && nv->view >= view;
                 },
                 "newview");
    }
    return;
  }

  // Merge: for every slot keep the prepare from the highest view (ignoring
  // anything that fails leader-signature validation — Byzantine members
  // cannot inject entries).
  std::map<SeqNum, PrepareMessage> merged;
  for (const auto& [sender, vc] : viewchanges_) {
    (void)sender;
    for (const PrepareMessage& p : vc->prepared) {
      if (p.view > view_) continue;
      if (!p.verify(signer_, config_.n, view_map_.leader_of(p.view)))
        continue;
      const auto it = merged.find(p.slot);
      if (it == merged.end() || it->second.view < p.view)
        merged.insert_or_assign(p.slot, p);
    }
  }
  const SeqNum max_slot = merged.empty() ? 0 : merged.rbegin()->first;

  // A request may survive in two slots: its original proposal lost by an
  // earlier merge (stale, never committed — a fully committed slot is
  // carried by every quorum intersection) plus the re-proposal the client
  // retransmission earned in a later view. Re-proposing both would execute
  // it twice, so keep only the highest-view occurrence of each (client,
  // seq) — the only one that can have committed.
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::pair<ViewId, SeqNum>>
      winners;
  for (const auto& [slot_no, p] : merged) {
    for (const BatchEntry& e : p.requests) {
      if (e.client == 0 && e.op.empty()) continue;  // per-slot no-op filler
      const auto key = std::make_pair(e.client, e.client_seq);
      const auto it = winners.find(key);
      if (it == winners.end() || it->second.first < p.view)
        winners.insert_or_assign(key, std::make_pair(p.view, slot_no));
    }
  }

  std::vector<PrepareMessage> reproposals;
  reproposals.reserve(static_cast<std::size_t>(max_slot));
  for (SeqNum slot_no = 1; slot_no <= max_slot; ++slot_no) {
    std::vector<BatchEntry> batch;
    if (const auto it = merged.find(slot_no); it != merged.end()) {
      for (const BatchEntry& e : it->second.requests) {
        if (e.client == 0 && e.op.empty()) continue;
        const auto win = winners.find({e.client, e.client_seq});
        if (win != winners.end() && win->second.second == slot_no)
          batch.push_back(e);
      }
    }
    if (batch.empty())
      batch.push_back(BatchEntry{0, slot_no, {}});  // no-op filler for gaps
    reproposals.push_back(
        PrepareMessage::make_batch(signer_, view_, slot_no, std::move(batch)));
  }
  next_slot_ = max_slot + 1;
  const auto nv = NewViewMessage::make(signer_, view_, std::move(reproposals));
  broadcast_all(nv);
  handle_newview(nv);
}

void Replica::handle_newview(const std::shared_ptr<const NewViewMessage>& msg) {
  if (!msg->verify(signer_, config_.n)) return;
  fd_.on_receive(msg->leader, msg);
  if (msg->view < view_) return;
  if (msg->leader != view_map_.leader_of(msg->view)) return;
  if (msg->view > view_) {
    // Catch up to the installed view directly.
    view_ = msg->view;
    status_ = Status::kViewChange;
    ++view_changes_;
    fd_.cancel_all();
    viewchanges_.clear();
    newview_expected_ = false;
    buffered_protocol_.clear();
  }
  if (status_ == Status::kNormal) return;  // duplicate NEWVIEW

  status_ = Status::kNormal;
  view_change_timer_.cancel();
  fd_.cancel_all();
  QSEL_LOG(kInfo, "xpaxos") << "p" << self() << " installed view " << view_
                            << " (" << msg->reproposals.size()
                            << " reproposals)";
  SeqNum max_slot = 0;
  for (const PrepareMessage& p : msg->reproposals) {
    if (p.view != view_) continue;
    if (!p.verify(signer_, config_.n, leader())) continue;
    max_slot = std::max(max_slot, p.slot);
    handle_prepare(p, /*via_commit=*/false);
  }
  // Replay normal-case traffic that overtook this NEWVIEW.
  auto buffered = std::move(buffered_protocol_);
  buffered_protocol_.clear();
  for (const sim::PayloadPtr& message : buffered) {
    if (auto prepare =
            std::dynamic_pointer_cast<const PrepareMessage>(message)) {
      handle_prepare(*prepare, /*via_commit=*/false);
    } else if (auto commit =
                   std::dynamic_pointer_cast<const CommitMessage>(message)) {
      handle_commit(commit);
    }
  }
  if (is_leader()) {
    next_slot_ = std::max(next_slot_, max_slot + 1);
    auto pending = std::move(pending_requests_);
    pending_requests_.clear();
    pending_keys_.clear();
    for (const auto& request : pending) handle_request(request);
  }
  try_execute();
}

}  // namespace qsel::xpaxos
