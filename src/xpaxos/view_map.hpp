// View <-> quorum mapping (Section V-B).
//
// XPaxos enumerates all C(n, q) possible active quorums in a fixed order
// and cycles round-robin when the list is exhausted. View v (1-based) runs
// on quorum number (v-1) mod C(n, q); the leader is the quorum member
// with the lowest id (Section V-A). Quorum Selection plugs in through
// first_view_from(): "process i suspects all quorums ordered before Q",
// i.e. jumps to the next view that installs exactly the selected quorum.
#pragma once

#include <cstdint>

#include "common/combinatorics.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"

namespace qsel::xpaxos {

class ViewMap {
 public:
  ViewMap(ProcessId n, int f);

  ProcessId n() const { return n_; }
  int f() const { return f_; }
  int quorum_size() const { return static_cast<int>(n_) - f_; }

  /// Number of distinct quorums, C(n, n-f).
  std::uint64_t quorum_count() const { return count_; }

  /// Active quorum of view v (views are 1-based).
  ProcessSet quorum_of(ViewId view) const;

  /// Leader of view v: lowest id in its quorum.
  ProcessId leader_of(ViewId view) const { return quorum_of(view).min(); }

  /// Smallest view >= from whose quorum is exactly q.
  ViewId first_view_from(ViewId from, ProcessSet quorum) const;

 private:
  ProcessId n_;
  int f_;
  std::uint64_t count_;
};

}  // namespace qsel::xpaxos
