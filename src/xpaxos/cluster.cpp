#include "xpaxos/cluster.hpp"

#include "common/assert.hpp"

namespace qsel::xpaxos {

Cluster::Cluster(ClusterConfig config, ProcessSet byzantine)
    : config_(config),
      keys_(static_cast<ProcessId>(config.n + config.clients), config.seed),
      network_(std::make_unique<sim::Network>(
          sim_, static_cast<ProcessId>(config.n + config.clients),
          config.network, config.seed)),
      honest_replicas_(ProcessSet::full(config.n) - byzantine),
      replicas_(config.n) {
  QSEL_REQUIRE(byzantine.is_subset_of(ProcessSet::full(config.n)));
  ReplicaConfig replica_config;
  replica_config.n = config.n;
  replica_config.f = config.f;
  replica_config.policy = config.policy;
  replica_config.fd = config.fd;
  replica_config.view_change_retry = config.view_change_retry;
  replica_config.pipeline_window = config.pipeline_window;
  replica_config.max_batch = config.max_batch;
  for (ProcessId id : honest_replicas_) {
    transports_.push_back(
        std::make_unique<runtime::SimTransport>(*network_, id));
    replicas_[id] =
        std::make_unique<Replica>(*transports_.back(), keys_, replica_config);
  }
  smr::ClientConfig client_config;
  client_config.replicas = config.n;
  client_config.f = config.f;
  client_config.retry_timeout = config.client_retry;
  client_config.workload = config.workload;
  for (std::uint32_t i = 0; i < config.clients; ++i) {
    const auto id = static_cast<ProcessId>(config.n + i);
    client_config.workload.seed = config.workload.seed + i;
    transports_.push_back(
        std::make_unique<runtime::SimTransport>(*network_, id));
    clients_.push_back(
        std::make_unique<smr::Client>(*transports_.back(), keys_,
                                      client_config));
  }
}

Replica& Cluster::replica(ProcessId id) {
  QSEL_REQUIRE(id < config_.n && replicas_[id] != nullptr);
  return *replicas_[id];
}

smr::Client& Cluster::client(std::uint32_t index) {
  QSEL_REQUIRE(index < clients_.size());
  return *clients_[index];
}

ProcessSet Cluster::alive_replicas() const {
  ProcessSet alive;
  for (ProcessId id : honest_replicas_)
    if (!network_->is_crashed(id)) alive.insert(id);
  return alive;
}

void Cluster::start_clients(std::uint64_t requests_per_client) {
  for (auto& client : clients_) client->start(requests_per_client);
}

std::uint64_t Cluster::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& client : clients_) total += client->completed();
  return total;
}

std::uint64_t Cluster::total_view_changes() const {
  std::uint64_t total = 0;
  for (ProcessId id : alive_replicas())
    total += replicas_[id]->view_changes();
  return total;
}

std::uint64_t Cluster::max_view_changes() const {
  std::uint64_t most = 0;
  for (ProcessId id : alive_replicas())
    most = std::max(most, replicas_[id]->view_changes());
  return most;
}

bool Cluster::histories_consistent() const {
  // For every slot executed by two honest live replicas, the entries must
  // match exactly.
  for (ProcessId a : alive_replicas()) {
    for (ProcessId b : alive_replicas()) {
      if (a >= b) continue;
      const auto& ha = replicas_[a]->executed_history();
      const auto& hb = replicas_[b]->executed_history();
      const std::size_t common = std::min(ha.size(), hb.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (ha[i].slot != hb[i].slot || ha[i].client != hb[i].client ||
            ha[i].client_seq != hb[i].client_seq ||
            ha[i].op_digest != hb[i].op_digest)
          return false;
      }
    }
  }
  return true;
}

}  // namespace qsel::xpaxos
