// XPaxosCluster — replicas + clients over the simulated network.
//
// Builds n replicas (ids 0..n-1, minus any reserved Byzantine slots) and c
// clients (ids n..n+c-1) and exposes the observations the experiments
// need: committed requests, view-change counts, history consistency and
// per-type message counts (network().stats()).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "runtime/sim_transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/client.hpp"
#include "xpaxos/replica.hpp"

namespace qsel::xpaxos {

struct ClusterConfig {
  ProcessId n = 4;
  int f = 1;
  QuorumPolicy policy = QuorumPolicy::kQuorumSelection;
  std::uint32_t clients = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig network;
  fd::FailureDetectorConfig fd;
  SimDuration view_change_retry = 30'000'000;
  SimDuration client_retry = 50'000'000;
  /// Commit pipelining / batching knobs, forwarded to every replica.
  std::size_t pipeline_window = 16;
  std::size_t max_batch = 8;
  app::WorkloadConfig workload;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config, ProcessSet byzantine = {});

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  const ClusterConfig& config() const { return config_; }

  Replica& replica(ProcessId id);
  smr::Client& client(std::uint32_t index);

  /// Honest replica ids that have not crashed.
  ProcessSet alive_replicas() const;

  /// Starts every client with `requests_per_client` requests.
  void start_clients(std::uint64_t requests_per_client);

  std::uint64_t total_completed() const;
  std::uint64_t total_view_changes() const;
  std::uint64_t max_view_changes() const;

  /// True when the executed histories of all honest live replicas agree
  /// slot by slot (prefix consistency of the replicated log).
  bool histories_consistent() const;

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet honest_replicas_;
  /// One per live process (replica or client); each attaches itself to its
  /// slot of the network. Declared before the protocol objects that borrow
  /// them so destruction runs protocol-first.
  std::vector<std::unique_ptr<runtime::SimTransport>> transports_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<smr::Client>> clients_;
};

}  // namespace qsel::xpaxos
