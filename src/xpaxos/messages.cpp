#include "xpaxos/messages.hpp"

#include "common/assert.hpp"

namespace qsel::xpaxos {
namespace {

void encode_prepare_body(net::Encoder& enc, const PrepareMessage& p) {
  enc.str("xpaxos.prepare");
  enc.u64(p.view);
  enc.u64(p.slot);
  enc.u32(static_cast<std::uint32_t>(p.requests.size()));
  for (const BatchEntry& e : p.requests) {
    enc.u32(e.client);
    enc.u64(e.client_seq);
    enc.bytes(e.op);
  }
}

}  // namespace

std::size_t PrepareMessage::wire_size() const {
  std::size_t size = 20 + 36;  // view, slot, count, signature
  for (const BatchEntry& e : requests) size += 16 + e.op.size();
  return size;
}

std::vector<std::uint8_t> PrepareMessage::signed_bytes() const {
  net::Encoder enc;
  encode_prepare_body(enc, *this);
  return std::move(enc).take();
}

PrepareMessage PrepareMessage::make(const crypto::Signer& leader, ViewId view,
                                    SeqNum slot,
                                    const ClientRequest& request) {
  return make_batch(leader, view, slot,
                    {BatchEntry{request.client, request.client_seq,
                                request.op}});
}

PrepareMessage PrepareMessage::make_batch(const crypto::Signer& leader,
                                          ViewId view, SeqNum slot,
                                          std::vector<BatchEntry> requests) {
  QSEL_REQUIRE(!requests.empty() && requests.size() <= kMaxBatch);
  PrepareMessage p;
  p.view = view;
  p.slot = slot;
  p.requests = std::move(requests);
  p.sig = leader.sign(p.signed_bytes());
  return p;
}

bool PrepareMessage::verify(const crypto::Signer& verifier, ProcessId n,
                            ProcessId expected_leader) const {
  if (sig.signer != expected_leader || expected_leader >= n) return false;
  if (requests.empty() || requests.size() > kMaxBatch) return false;
  return verifier.verify(signed_bytes(), sig);
}

bool PrepareMessage::same_proposal(const PrepareMessage& other) const {
  return view == other.view && slot == other.slot &&
         requests == other.requests;
}

bool PrepareMessage::contains(std::uint32_t client,
                              std::uint64_t client_seq) const {
  for (const BatchEntry& e : requests)
    if (e.client == client && e.client_seq == client_seq) return true;
  return false;
}

std::vector<std::uint8_t> CommitMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("xpaxos.commit");
  encode_prepare_body(enc, prepare);
  enc.signature(prepare.sig);
  enc.process_id(sender);
  return std::move(enc).take();
}

std::shared_ptr<const CommitMessage> CommitMessage::make(
    const crypto::Signer& sender, const PrepareMessage& prepare) {
  auto msg = std::make_shared<CommitMessage>();
  msg->prepare = prepare;
  msg->sender = sender.self();
  msg->sig = sender.sign(msg->signed_bytes());
  return msg;
}

bool CommitMessage::verify_sender(const crypto::Signer& verifier,
                                  ProcessId n) const {
  if (sender >= n || sig.signer != sender) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::size_t ViewChangeMessage::wire_size() const {
  std::size_t size = 16 + 36;
  for (const auto& p : prepared) size += p.wire_size();
  return size;
}

std::vector<std::uint8_t> ViewChangeMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("xpaxos.viewchange");
  enc.u64(new_view);
  enc.process_id(sender);
  enc.u64(prepared.size());
  for (const auto& p : prepared) {
    encode_prepare_body(enc, p);
    enc.signature(p.sig);
  }
  return std::move(enc).take();
}

std::shared_ptr<const ViewChangeMessage> ViewChangeMessage::make(
    const crypto::Signer& sender, ViewId new_view,
    std::vector<PrepareMessage> prepared) {
  auto msg = std::make_shared<ViewChangeMessage>();
  msg->new_view = new_view;
  msg->sender = sender.self();
  msg->prepared = std::move(prepared);
  msg->sig = sender.sign(msg->signed_bytes());
  return msg;
}

bool ViewChangeMessage::verify(const crypto::Signer& verifier,
                               ProcessId n) const {
  if (sender >= n || sig.signer != sender) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::size_t NewViewMessage::wire_size() const {
  std::size_t size = 16 + 36;
  for (const auto& p : reproposals) size += p.wire_size();
  return size;
}

std::vector<std::uint8_t> NewViewMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("xpaxos.newview");
  enc.u64(view);
  enc.process_id(leader);
  enc.u64(reproposals.size());
  for (const auto& p : reproposals) {
    encode_prepare_body(enc, p);
    enc.signature(p.sig);
  }
  return std::move(enc).take();
}

std::shared_ptr<const NewViewMessage> NewViewMessage::make(
    const crypto::Signer& leader, ViewId view,
    std::vector<PrepareMessage> reproposals) {
  auto msg = std::make_shared<NewViewMessage>();
  msg->view = view;
  msg->leader = leader.self();
  msg->reproposals = std::move(reproposals);
  msg->sig = leader.sign(msg->signed_bytes());
  return msg;
}

bool NewViewMessage::verify(const crypto::Signer& verifier,
                            ProcessId n) const {
  if (leader >= n || sig.signer != leader) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::xpaxos
