// XPaxos protocol messages (Section V).
//
// Normal case (Fig. 2): the leader PREPAREs a client request to the active
// quorum; every quorum member COMMITs to every other member; a request
// executes once COMMITs from the whole quorum are in. Per the paper's
// failure-detection integration, a COMMIT embeds the leader's full PREPARE
// (footnote 1), so a receiver can (a) act on a COMMIT that overtook its
// PREPARE (Fig. 3) and (b) detect leader equivocation or malformed
// commits as provable commission failures.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "net/codec.hpp"
#include "sim/payload.hpp"
#include "smr/client_messages.hpp"

namespace qsel::xpaxos {

using ClientRequest = smr::ClientRequest;
using ReplyMessage = smr::ReplyMessage;

/// One client request inside a PREPARE batch. A no-op filler (view-change
/// gap) is the single entry {client = 0, client_seq = slot, op = {}}.
struct BatchEntry {
  std::uint32_t client = 0;
  std::uint64_t client_seq = 0;
  std::vector<std::uint8_t> op;

  bool operator==(const BatchEntry&) const = default;
};

/// The leader-signed proposal binding (view, slot) to a *batch* of client
/// requests — one consensus instance amortized over up to kMaxBatch
/// operations. Used both as a standalone payload and embedded inside
/// CommitMessage. A PREPARE always carries at least one entry; an empty
/// batch is malformed on the wire.
struct PrepareMessage final : sim::Payload {
  /// Wire-format ceiling on entries per PREPARE; a decoded count outside
  /// [1, kMaxBatch] is rejected before any allocation is amplified.
  static constexpr std::size_t kMaxBatch = 256;

  ViewId view = 0;
  SeqNum slot = 0;
  std::vector<BatchEntry> requests;
  crypto::Signature sig;  // by the leader of `view`

  std::string_view type_tag() const override { return "xpaxos.prepare"; }
  std::size_t wire_size() const override;

  std::vector<std::uint8_t> signed_bytes() const;
  static PrepareMessage make(const crypto::Signer& leader, ViewId view,
                             SeqNum slot, const ClientRequest& request);
  static PrepareMessage make_batch(const crypto::Signer& leader, ViewId view,
                                   SeqNum slot,
                                   std::vector<BatchEntry> requests);

  /// Valid iff signed by `expected_leader` over the contents, with a
  /// well-formed batch (1..kMaxBatch entries).
  bool verify(const crypto::Signer& verifier, ProcessId n,
              ProcessId expected_leader) const;

  /// Same proposal identity (everything except the signature bits).
  bool same_proposal(const PrepareMessage& other) const;

  /// True when the batch carries (client, client_seq).
  bool contains(std::uint32_t client, std::uint64_t client_seq) const;
};

struct CommitMessage final : sim::Payload {
  PrepareMessage prepare;  // the embedded leader PREPARE (footnote 1)
  ProcessId sender = kNoProcess;
  crypto::Signature sig;  // by `sender` over (prepare bytes, sender)

  std::string_view type_tag() const override { return "xpaxos.commit"; }
  std::size_t wire_size() const override { return prepare.wire_size() + 40; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const CommitMessage> make(
      const crypto::Signer& sender, const PrepareMessage& prepare);

  /// Verifies the *sender's* signature only; the embedded PREPARE is
  /// validated separately so its failure can be attributed (DETECTED).
  bool verify_sender(const crypto::Signer& verifier, ProcessId n) const;
};

/// Sent when moving to `new_view`; carries the sender's prepared log so
/// the new leader can preserve ordered-but-unexecuted requests.
struct ViewChangeMessage final : sim::Payload {
  ViewId new_view = 0;
  ProcessId sender = kNoProcess;
  std::vector<PrepareMessage> prepared;  // leader-signed originals as proof
  crypto::Signature sig;

  std::string_view type_tag() const override { return "xpaxos.viewchange"; }
  std::size_t wire_size() const override;

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const ViewChangeMessage> make(
      const crypto::Signer& sender, ViewId new_view,
      std::vector<PrepareMessage> prepared);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

/// The new leader's view installation: re-proposals (signed by the new
/// leader) of every undecided slot it learned from the VIEWCHANGE set.
struct NewViewMessage final : sim::Payload {
  ViewId view = 0;
  ProcessId leader = kNoProcess;
  std::vector<PrepareMessage> reproposals;  // signed by `leader`, in `view`
  crypto::Signature sig;

  std::string_view type_tag() const override { return "xpaxos.newview"; }
  std::size_t wire_size() const override;

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const NewViewMessage> make(
      const crypto::Signer& leader, ViewId view,
      std::vector<PrepareMessage> reproposals);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::xpaxos
