// QuorumSelector — Algorithm 1 (Section VI).
//
// Outputs quorums <QUORUM, Q> with |Q| = q = n - f, satisfying the Quorum
// Selection specification (Section IV-A):
//   Termination — a correct process changes the quorum only finitely often;
//   No suspicion — eventually no quorum member suspects another member;
//   Agreement  — eventually correct processes output the same quorum.
//
// The quorum is the lexicographically first independent set of size q in
// the suspect graph of the current epoch; when none exists (some correct
// process suspected another correct process in this epoch) the epoch is
// advanced, dropping the stale suspicions, and the own suspicions are
// re-issued (Lines 25-34).
//
// Hot-path costs (DESIGN.md §11): the selector memoizes the last solved
// (epoch, graph) → quorum. The key stores the exact adjacency image, not a
// hash — two different graphs can never alias, so "signature collisions"
// are impossible by construction. Cache misses seed the FPT branching with
// the previously issued quorum, which is usually still independent and
// collapses the feasibility guards to popcounts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "graph/simple_graph.hpp"
#include "suspect/suspicion_core.hpp"
#include "trace/tracer.hpp"

namespace qsel::qs {

struct QuorumSelectorConfig {
  ProcessId n = 0;
  int f = 0;  // q = n - f
  /// Wire format for suspicion dissemination (suspicion_core.hpp).
  /// Defaults to the paper's full-row gossip; composed runtimes opt into
  /// delta gossip + digest anti-entropy.
  suspect::GossipMode gossip = suspect::GossipMode::kFullRow;

  int quorum_size() const { return static_cast<int>(n) - f; }
};

/// A <QUORUM, Q> output, with the epoch it was issued in (used by the
/// bound checks of Theorem 3).
struct QuorumRecord {
  ProcessSet quorum;
  Epoch epoch;
};

class QuorumSelector {
 public:
  struct Hooks {
    /// <QUORUM, Q> output to the application.
    std::function<void(ProcessSet quorum)> issue_quorum;
    /// Broadcast to every other process (UPDATE dissemination).
    std::function<void(sim::PayloadPtr)> broadcast;
    /// Optional write-ahead hook, forwarded to the suspicion core: runs
    /// after the own row or epoch changed, before the change leaves the
    /// process (suspicion_core.hpp).
    std::function<void()> persist;
    /// Optional point-to-point send for digest anti-entropy repairs;
    /// unset falls back to broadcast.
    std::function<void(ProcessId, sim::PayloadPtr)> send = {};
  };

  QuorumSelector(const crypto::Signer& signer, QuorumSelectorConfig config,
                 Hooks hooks);

  /// <SUSPECTED, S> from the local failure detector.
  void on_suspected(ProcessSet s) { core_.on_suspected(s); }

  /// A (possibly forwarded) UPDATE message from the network.
  void on_update(const std::shared_ptr<const suspect::UpdateMessage>& msg) {
    core_.on_update(msg);
  }

  /// A (possibly forwarded) DELTA-UPDATE message from the network.
  void on_delta(const std::shared_ptr<const suspect::DeltaUpdateMessage>& msg) {
    core_.on_delta(msg);
  }

  /// A ROW-DIGEST anti-entropy summary from `from` (delta gossip mode).
  void on_row_digests(ProcessId from, const suspect::RowDigestMessage& msg) {
    core_.on_row_digests(from, msg);
  }

  /// Anti-entropy tick: re-offers suspicion state lost to dropped
  /// messages (SuspicionCore::resync; digest-first in delta mode).
  void resync() { core_.resync(); }

  /// Reinstalls durable state recovered from a NodeStore (join semantics,
  /// SuspicionCore::restore) and re-evaluates the quorum so the first
  /// issued quorum already reflects the recovered evidence. Call before
  /// any protocol activity.
  void restore(Epoch epoch, std::span<const Epoch> own_row) {
    core_.restore(epoch, own_row);
    update_quorum();
  }

  /// Attaches an event tracer to this selector and its suspicion core:
  /// <QUORUM, Q> outputs, suspicion and UPDATE traffic are journaled.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    core_.set_tracer(tracer);
  }

  // --- observers --------------------------------------------------------

  ProcessSet quorum() const { return qlast_; }
  Epoch epoch() const { return core_.epoch(); }
  const suspect::SuspicionMatrix& matrix() const { return core_.matrix(); }
  const suspect::SuspicionCore& core() const { return core_; }

  /// Every quorum issued, in order, with its epoch; the initial default
  /// quorum {p_0..p_{q-1}} is not an "issued" quorum (it was never output).
  const std::vector<QuorumRecord>& history() const { return history_; }
  std::uint64_t quorums_issued() const { return history_.size(); }

  /// Solver invocations vs. memo hits (BENCH_5 observability).
  std::uint64_t solver_runs() const { return solver_runs_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  void update_quorum();

  QuorumSelectorConfig config_;
  Hooks hooks_;
  suspect::SuspicionCore core_;
  ProcessSet qlast_;
  std::vector<QuorumRecord> history_;
  /// Last solved key/value: valid_ only after a successful solve. The
  /// graph is compared by exact adjacency equality.
  bool cache_valid_ = false;
  Epoch cache_epoch_ = 0;
  graph::SimpleGraph cache_graph_;
  ProcessSet cache_quorum_;
  std::uint64_t solver_runs_ = 0;
  std::uint64_t cache_hits_ = 0;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace qsel::qs
