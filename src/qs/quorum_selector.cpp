#include "qs/quorum_selector.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "graph/independent_set.hpp"

namespace qsel::qs {

QuorumSelector::QuorumSelector(const crypto::Signer& signer,
                               QuorumSelectorConfig config, Hooks hooks)
    : config_(config),
      hooks_(std::move(hooks)),
      core_(signer, config.n,
            suspect::SuspicionCore::Hooks{
                [this](sim::PayloadPtr msg) { hooks_.broadcast(msg); },
                [this] { update_quorum(); },
                [this] {
                  if (hooks_.persist) hooks_.persist();
                },
                [this](ProcessId to, sim::PayloadPtr msg) {
                  if (hooks_.send)
                    hooks_.send(to, std::move(msg));
                  else
                    hooks_.broadcast(std::move(msg));
                }},
            config.gossip),
      qlast_(ProcessSet::full(static_cast<ProcessId>(config.quorum_size()))),
      cache_graph_(config.n) {
  QSEL_REQUIRE(config.n > 0 && config.n <= kMaxProcesses);
  QSEL_REQUIRE_MSG(config.f >= 1, "quorum selection needs f >= 1");
  QSEL_REQUIRE_MSG(config.quorum_size() > config.f,
                   "paper assumes a correct majority: n - f > f");
  QSEL_REQUIRE(hooks_.issue_quorum != nullptr);
  QSEL_REQUIRE(hooks_.broadcast != nullptr);
}

void QuorumSelector::update_quorum() {
  const int q = config_.quorum_size();
  for (;;) {
    const graph::SimpleGraph& g = core_.current_graph();
    // Memo: the quorum is a pure function of (epoch, graph). The key is
    // the exact adjacency image, so distinct graphs can never alias (no
    // signature to collide); only successful solves are cached, and the
    // epoch advance below always changes the key.
    if (cache_valid_ && cache_epoch_ == core_.epoch() && cache_graph_ == g) {
      ++cache_hits_;
      if (cache_quorum_ == qlast_) return;
      // qlast_ can trail the cache after restore(); fall through to issue.
    } else {
      ++solver_runs_;
      // Seed the feasibility guards with the previous quorum: while it
      // stays independent (the common case — most merges touch already-
      // suspected processes) the guards collapse to popcounts.
      const auto quorum = graph::first_independent_set(g, q, qlast_);
      if (!quorum) {
        // Suspicions in the current epoch are inconsistent (some correct
        // process suspected another): advance the epoch and re-issue the
        // own suspicions (Lines 28-29), then re-evaluate.
        core_.advance_epoch(core_.next_epoch_candidate());
        continue;
      }
      cache_valid_ = true;
      cache_epoch_ = core_.epoch();
      cache_graph_ = g;
      cache_quorum_ = *quorum;
    }
    if (cache_quorum_ != qlast_) {
      qlast_ = cache_quorum_;
      history_.push_back(QuorumRecord{cache_quorum_, core_.epoch()});
      if (tracer_)
        tracer_->quorum(core_.self(), cache_quorum_.mask(), core_.epoch());
      QSEL_LOG(kInfo, "qs") << "p" << core_.self() << " QUORUM "
                            << cache_quorum_.to_string() << " (epoch "
                            << core_.epoch() << ")";
      hooks_.issue_quorum(cache_quorum_);
    }
    return;
  }
}

}  // namespace qsel::qs
