#include "qs/quorum_selector.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "graph/independent_set.hpp"

namespace qsel::qs {

QuorumSelector::QuorumSelector(const crypto::Signer& signer,
                               QuorumSelectorConfig config, Hooks hooks)
    : config_(config),
      hooks_(std::move(hooks)),
      core_(signer, config.n,
            suspect::SuspicionCore::Hooks{
                [this](sim::PayloadPtr msg) { hooks_.broadcast(msg); },
                [this] { update_quorum(); },
                [this] {
                  if (hooks_.persist) hooks_.persist();
                }}),
      qlast_(ProcessSet::full(static_cast<ProcessId>(config.quorum_size()))) {
  QSEL_REQUIRE(config.n > 0 && config.n <= kMaxProcesses);
  QSEL_REQUIRE_MSG(config.f >= 1, "quorum selection needs f >= 1");
  QSEL_REQUIRE_MSG(config.quorum_size() > config.f,
                   "paper assumes a correct majority: n - f > f");
  QSEL_REQUIRE(hooks_.issue_quorum != nullptr);
  QSEL_REQUIRE(hooks_.broadcast != nullptr);
}

void QuorumSelector::update_quorum() {
  const int q = config_.quorum_size();
  for (;;) {
    const graph::SimpleGraph g = core_.current_graph();
    const auto quorum = graph::first_independent_set(g, q);
    if (!quorum) {
      // Suspicions in the current epoch are inconsistent (some correct
      // process suspected another): advance the epoch and re-issue the own
      // suspicions (Lines 28-29), then re-evaluate.
      core_.advance_epoch(core_.next_epoch_candidate());
      continue;
    }
    if (*quorum != qlast_) {
      qlast_ = *quorum;
      history_.push_back(QuorumRecord{*quorum, core_.epoch()});
      if (tracer_) tracer_->quorum(core_.self(), quorum->mask(), core_.epoch());
      QSEL_LOG(kInfo, "qs") << "p" << core_.self() << " QUORUM "
                            << quorum->to_string() << " (epoch "
                            << core_.epoch() << ")";
      hooks_.issue_quorum(*quorum);
    }
    return;
  }
}

}  // namespace qsel::qs
