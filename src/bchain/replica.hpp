// BChain-style baseline replica.
//
// The active quorum is a chain of q = n - f replicas (initially ids
// 0..q-1, head first); the remaining f are spares. A request travels head
// -> tail as a CHAIN message (each hop forwards), the tail answers with an
// ACK that travels tail -> head; a node executes a slot when it has both
// the CHAIN message and the ACK. Messages per request: (q-1) + (q-1) hops
// — the chain dissemination the paper cites from BChain [7].
//
// Reconfiguration by replacement: a node that misses the ACK after
// forwarding blames its successor; chain members that see a client
// request starve blame the head. Blames are a grow-only set gossiped with
// forward-on-change, and the chain is a deterministic function of the
// blamed set — the first q unblamed ids in order, re-admitting blamed
// nodes lowest-first when spares run out. That re-admission is exactly
// the weakness the paper points out: replacement assumes fresh processes
// are correct and has no way to converge on the actual culprit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "app/kv_store.hpp"
#include "bchain/messages.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "sim/network.hpp"
#include "smr/client_messages.hpp"

namespace qsel::bchain {

struct ReplicaConfig {
  ProcessId n = 4;
  int f = 1;
  /// How long a node waits for the ACK after forwarding a CHAIN message.
  SimDuration ack_timeout = 20'000'000;  // 20 ms
  /// How long a chain member lets a buffered client request starve before
  /// blaming the head.
  SimDuration request_timeout = 40'000'000;  // 40 ms
};

class Replica final : public sim::Actor {
 public:
  Replica(sim::Network& network, const crypto::KeyRegistry& keys,
          ProcessId self, ReplicaConfig config);

  void on_message(ProcessId from, const sim::PayloadPtr& message) override;

  ProcessId self() const { return signer_.self(); }
  /// Monotone count of applied blames (the reconfiguration counter).
  std::uint64_t reconfigurations() const {
    return static_cast<std::uint64_t>(blamed_.size());
  }
  ProcessSet blamed() const { return blamed_; }
  /// Chain order, head first — a pure function of blamed().
  const std::vector<ProcessId>& chain() const { return chain_; }
  ProcessId head() const { return chain_.front(); }
  bool in_chain() const;
  std::uint64_t requests_executed() const { return requests_executed_; }
  const app::KvStore& store() const { return store_; }
  SeqNum last_executed() const { return last_executed_; }

  /// Executed history as (slot, client, client_seq, op digest) tuples, for
  /// cross-replica consistency checks (same shape as xpaxos::Replica).
  struct ExecutedEntry {
    SeqNum slot;
    std::uint32_t client;
    std::uint64_t client_seq;
    crypto::Digest op_digest;
  };
  const std::vector<ExecutedEntry>& executed_history() const {
    return executed_history_;
  }

 private:
  struct Slot {
    std::optional<ChainMessage> chain_msg;
    /// Config epoch whose ACK has passed through this node (0 = none).
    /// Epoch-scoped: after a reconfiguration the slot needs a fresh ACK,
    /// and an executed node must still *relay* fresh ACKs upstream.
    std::uint64_t acked_epoch = 0;
    bool executed = false;
    sim::TimerHandle ack_timer;
  };

  void handle_request(const std::shared_ptr<const smr::ClientRequest>& request);
  void handle_chain(const std::shared_ptr<const ChainMessage>& msg);
  void handle_ack(const std::shared_ptr<const AckMessage>& msg);
  void handle_reconfig(const std::shared_ptr<const ReconfigMessage>& msg);
  void blame(ProcessId culprit);
  void rebuild_chain();
  void redrive_as_head();
  void forward_down(const std::shared_ptr<const ChainMessage>& msg);
  void arm_request_timer();
  void try_execute();
  ProcessId successor() const;
  ProcessId predecessor() const;

  sim::Network& network_;
  crypto::Signer signer_;
  ReplicaConfig config_;

  ProcessSet blamed_;
  std::vector<ProcessId> chain_;  // size q, head first

  app::KvStore store_;
  std::map<SeqNum, Slot> log_;
  SeqNum next_slot_ = 1;  // head only
  SeqNum last_executed_ = 0;
  std::uint64_t requests_executed_ = 0;
  std::vector<ExecutedEntry> executed_history_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SeqNum> client_index_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> results_;
  struct BacklogEntry {
    std::shared_ptr<const smr::ClientRequest> request;
    SimTime since;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, BacklogEntry> backlog_;
  sim::TimerHandle request_timer_;
  sim::TimerHandle redrive_timer_;
};

}  // namespace qsel::bchain
