#include "bchain/qs_replica.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "suspect/update_message.hpp"

namespace qsel::bchain {

QsReplica::QsReplica(sim::Network& network, const crypto::KeyRegistry& keys,
                     ProcessId self, QsReplicaConfig config)
    : network_(network),
      signer_(keys, self),
      config_(config),
      fd_(network.simulator(), self, config.n, config.fd,
          [this](ProcessSet suspects) { selector_.on_suspected(suspects); }),
      selector_(signer_, qs::QuorumSelectorConfig{config.n, config.f},
                qs::QuorumSelector::Hooks{
                    [this](ProcessSet quorum) { on_selected_quorum(quorum); },
                    [this](sim::PayloadPtr msg) { broadcast_others(msg); },
                    /*persist=*/{}}) {
  QSEL_REQUIRE(self < config.n);
  for (ProcessId id : selector_.quorum()) chain_.push_back(id);
}

void QsReplica::broadcast_others(const sim::PayloadPtr& message) {
  network_.broadcast(self(),
                     ProcessSet::full(config_.n) - ProcessSet{self()},
                     message);
}

ProcessId QsReplica::successor() const {
  const auto it = std::find(chain_.begin(), chain_.end(), self());
  if (it == chain_.end() || it + 1 == chain_.end()) return kNoProcess;
  return *(it + 1);
}

ProcessId QsReplica::predecessor() const {
  const auto it = std::find(chain_.begin(), chain_.end(), self());
  if (it == chain_.end() || it == chain_.begin()) return kNoProcess;
  return *(it - 1);
}

void QsReplica::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;
  if (auto request =
          std::dynamic_pointer_cast<const smr::ClientRequest>(message)) {
    handle_request(request);
  } else if (auto chain =
                 std::dynamic_pointer_cast<const ChainMessage>(message)) {
    handle_chain(chain);
  } else if (auto ack = std::dynamic_pointer_cast<const AckMessage>(message)) {
    handle_ack(ack);
  } else if (auto update = std::dynamic_pointer_cast<
                 const suspect::UpdateMessage>(message)) {
    if (update->verify(signer_, config_.n)) {
      fd_.on_receive(update->origin, message);
      selector_.on_update(update);
    }
  }
}

void QsReplica::handle_request(
    const std::shared_ptr<const smr::ClientRequest>& request) {
  if (!request->verify(signer_)) return;
  const auto key = std::make_pair(request->client, request->client_seq);
  if (const auto it = results_.find(key); it != results_.end()) {
    if (request->client < network_.process_count())
      network_.send(self(), request->client,
                    smr::ReplyMessage::make(signer_, config_id(),
                                            request->client,
                                            request->client_seq, it->second));
    return;
  }
  if (client_index_.contains(key)) return;
  if (head() == self()) {
    const SeqNum slot = next_slot_++;
    client_index_[key] = slot;
    handle_chain(ChainMessage::make(signer_, config_id(), slot, *request));
    return;
  }
  if (!in_chain()) return;
  // Chain member: the head owes the chain a CHAIN message for this
  // request; a starving request surfaces as an expectation timeout, i.e.
  // as a *suspicion* against the head rather than an unattributed blame.
  if (fd_.suspected().contains(head())) return;
  const auto client = request->client;
  const auto client_seq = request->client_seq;
  fd_.expect(head(),
             [client, client_seq](ProcessId, const sim::PayloadPtr& m) {
               const auto* c = dynamic_cast<const ChainMessage*>(m.get());
               return c != nullptr && c->client == client &&
                      c->client_seq == client_seq;
             },
             "chain-proposal");
}

void QsReplica::forward_down(const std::shared_ptr<const ChainMessage>& msg) {
  const ProcessId next = successor();
  Slot& slot = log_[msg->slot];
  if (next == kNoProcess) {
    slot.acked_config = msg->config_epoch;
    const ProcessId prev = predecessor();
    if (prev != kNoProcess)
      network_.send(self(), prev,
                    AckMessage::make(signer_, msg->config_epoch, msg->slot));
    try_execute();
    return;
  }
  network_.send(self(), next, msg);
  // The ACK for this slot is *expected* from the successor; its absence is
  // a suspicion the failure detector turns into quorum-selection input.
  if (!fd_.suspected().contains(next)) {
    const SeqNum slot_no = msg->slot;
    const std::uint64_t config = msg->config_epoch;
    fd_.expect(next,
               [slot_no, config](ProcessId, const sim::PayloadPtr& m) {
                 const auto* a = dynamic_cast<const AckMessage*>(m.get());
                 return a != nullptr && a->slot == slot_no &&
                        a->config_epoch == config;
               },
               "ack");
  }
}

void QsReplica::handle_chain(const std::shared_ptr<const ChainMessage>& msg) {
  if (msg->config_epoch != config_id()) return;  // other configuration
  if (!msg->verify(signer_, config_.n, head())) return;
  // Expectations target the head (the signer), regardless of the relaying
  // predecessor.
  fd_.on_receive(msg->sig.signer, msg);
  if (!in_chain()) return;
  Slot& slot = log_[msg->slot];
  if (!slot.chain_msg || slot.chain_msg->config_epoch != msg->config_epoch) {
    slot.chain_msg = *msg;
    client_index_[{msg->client, msg->client_seq}] = msg->slot;
    forward_down(msg);
  }
  try_execute();
}

void QsReplica::handle_ack(const std::shared_ptr<const AckMessage>& msg) {
  if (!msg->verify(signer_, config_.n)) return;
  fd_.on_receive(msg->sender, msg);
  if (msg->config_epoch != config_id()) return;
  const auto it = log_.find(msg->slot);
  if (it == log_.end() || !it->second.chain_msg) return;
  if (it->second.acked_config == msg->config_epoch)
    return;  // duplicate in this configuration
  it->second.acked_config = msg->config_epoch;
  const ProcessId prev = predecessor();
  if (prev != kNoProcess)
    network_.send(self(), prev,
                  AckMessage::make(signer_, msg->config_epoch, msg->slot));
  try_execute();
}

void QsReplica::on_selected_quorum(ProcessSet quorum) {
  chain_.clear();
  for (ProcessId id : quorum) chain_.push_back(id);
  QSEL_LOG(kInfo, "bchain.qs") << "p" << self() << " new chain (config "
                               << quorum.to_string() << ")";
  // Expectations from the previous configuration are void (the paper's
  // CANCEL on quorum installation, Section V-B).
  fd_.cancel_all();
  redrive_timer_.cancel();
  if (head() == self()) {
    redrive_timer_ = network_.simulator().schedule_timer(
        config_.redrive_delay, [this] { redrive_as_head(); });
  }
}

void QsReplica::redrive_as_head() {
  if (head() != self()) return;
  if (!log_.empty())
    next_slot_ = std::max(next_slot_, log_.rbegin()->first + 1);
  for (auto& [slot_no, slot] : log_) {
    if (slot.executed || !slot.chain_msg) continue;
    smr::ClientRequest request;
    request.client = slot.chain_msg->client;
    request.client_seq = slot.chain_msg->client_seq;
    request.op = slot.chain_msg->op;
    auto fresh = ChainMessage::make(signer_, config_id(), slot_no, request);
    slot.chain_msg = *fresh;
    forward_down(fresh);
  }
}

void QsReplica::try_execute() {
  for (;;) {
    const auto it = log_.find(last_executed_ + 1);
    if (it == log_.end()) return;
    Slot& slot = it->second;
    if (!slot.chain_msg || slot.executed) return;
    if (slot.acked_config != slot.chain_msg->config_epoch) return;
    slot.executed = true;
    ++last_executed_;
    const ChainMessage& m = *slot.chain_msg;
    const std::string result = store_.apply_encoded(m.op);
    ++requests_executed_;
    results_[{m.client, m.client_seq}] = result;
    if (m.client >= config_.n && m.client < network_.process_count()) {
      network_.send(self(), m.client,
                    smr::ReplyMessage::make(signer_, config_id(), m.client,
                                            m.client_seq, result));
    }
  }
}

}  // namespace qsel::bchain
