#include "bchain/messages.hpp"

namespace qsel::bchain {

std::vector<std::uint8_t> ChainMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("bchain.chain");
  enc.u64(config_epoch);
  enc.u64(slot);
  enc.u32(client);
  enc.u64(client_seq);
  enc.bytes(op);
  return std::move(enc).take();
}

std::shared_ptr<const ChainMessage> ChainMessage::make(
    const crypto::Signer& head, std::uint64_t config_epoch, SeqNum slot,
    const smr::ClientRequest& request) {
  auto msg = std::make_shared<ChainMessage>();
  msg->config_epoch = config_epoch;
  msg->slot = slot;
  msg->client = request.client;
  msg->client_seq = request.client_seq;
  msg->op = request.op;
  msg->sig = head.sign(msg->signed_bytes());
  return msg;
}

bool ChainMessage::verify(const crypto::Signer& verifier, ProcessId n,
                          ProcessId expected_head) const {
  if (expected_head >= n || sig.signer != expected_head) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::vector<std::uint8_t> AckMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("bchain.ack");
  enc.u64(config_epoch);
  enc.u64(slot);
  enc.process_id(sender);
  return std::move(enc).take();
}

std::shared_ptr<const AckMessage> AckMessage::make(
    const crypto::Signer& sender, std::uint64_t config_epoch, SeqNum slot) {
  auto msg = std::make_shared<AckMessage>();
  msg->config_epoch = config_epoch;
  msg->slot = slot;
  msg->sender = sender.self();
  msg->sig = sender.sign(msg->signed_bytes());
  return msg;
}

bool AckMessage::verify(const crypto::Signer& verifier, ProcessId n) const {
  if (sender >= n || sig.signer != sender) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::vector<std::uint8_t> ReconfigMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("bchain.reconfig");
  enc.u64(new_epoch);
  enc.process_id(failed);
  enc.process_id(sender);
  return std::move(enc).take();
}

std::shared_ptr<const ReconfigMessage> ReconfigMessage::make(
    const crypto::Signer& sender, std::uint64_t new_epoch, ProcessId failed) {
  auto msg = std::make_shared<ReconfigMessage>();
  msg->new_epoch = new_epoch;
  msg->failed = failed;
  msg->sender = sender.self();
  msg->sig = sender.sign(msg->signed_bytes());
  return msg;
}

bool ReconfigMessage::verify(const crypto::Signer& verifier,
                             ProcessId n) const {
  if (sender >= n || sig.signer != sender) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::bchain
