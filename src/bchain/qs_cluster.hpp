// QsChainCluster — chain replication with Quorum-Selection-driven
// reconfiguration over the simulated network (future-work integration,
// Section X).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bchain/qs_replica.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "runtime/sim_transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/client.hpp"

namespace qsel::bchain {

struct QsClusterConfig {
  ProcessId n = 4;
  int f = 1;
  std::uint32_t clients = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig network;
  fd::FailureDetectorConfig fd;
  SimDuration client_retry = 50'000'000;
  app::WorkloadConfig workload;
};

class QsChainCluster {
 public:
  explicit QsChainCluster(QsClusterConfig config, ProcessSet byzantine = {});

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }

  QsReplica& replica(ProcessId id);
  smr::Client& client(std::uint32_t index);

  ProcessSet alive_replicas() const;

  /// Wires `tracer` into the run: network events plus every honest
  /// replica's suspicion/reconfiguration plane. Call before
  /// start_clients(); the tracer must outlive the cluster.
  void attach_tracer(trace::Tracer& tracer);

  void start_clients(std::uint64_t requests_per_client);
  std::uint64_t total_completed() const;
  std::uint64_t max_reconfigurations() const;

 private:
  QsClusterConfig config_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet honest_replicas_;
  /// Client transports; declared before clients_ so clients die first.
  std::vector<std::unique_ptr<runtime::SimTransport>> client_transports_;
  std::vector<std::unique_ptr<QsReplica>> replicas_;
  std::vector<std::unique_ptr<smr::Client>> clients_;
};

}  // namespace qsel::bchain
