#include "bchain/replica.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::bchain {

Replica::Replica(sim::Network& network, const crypto::KeyRegistry& keys,
                 ProcessId self, ReplicaConfig config)
    : network_(network), signer_(keys, self), config_(config) {
  QSEL_REQUIRE(self < config.n);
  QSEL_REQUIRE(config.f >= 1 &&
               static_cast<ProcessId>(config.f) * 2 < config.n);
  rebuild_chain();
}

void Replica::rebuild_chain() {
  // Deterministic function of the blamed set: first q unblamed ids in
  // ascending order; when spares are exhausted, re-admit blamed nodes
  // lowest-first (there is no better information — the BChain weakness).
  const auto q =
      static_cast<std::size_t>(static_cast<int>(config_.n) - config_.f);
  chain_.clear();
  for (ProcessId id = 0; id < config_.n && chain_.size() < q; ++id)
    if (!blamed_.contains(id)) chain_.push_back(id);
  for (ProcessId id = 0; id < config_.n && chain_.size() < q; ++id)
    if (blamed_.contains(id)) chain_.push_back(id);
  QSEL_ASSERT(chain_.size() == q);
}

bool Replica::in_chain() const {
  return std::find(chain_.begin(), chain_.end(), self()) != chain_.end();
}

ProcessId Replica::successor() const {
  const auto it = std::find(chain_.begin(), chain_.end(), self());
  if (it == chain_.end() || it + 1 == chain_.end()) return kNoProcess;
  return *(it + 1);
}

ProcessId Replica::predecessor() const {
  const auto it = std::find(chain_.begin(), chain_.end(), self());
  if (it == chain_.end() || it == chain_.begin()) return kNoProcess;
  return *(it - 1);
}

void Replica::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;
  if (auto request =
          std::dynamic_pointer_cast<const smr::ClientRequest>(message)) {
    handle_request(request);
  } else if (auto chain =
                 std::dynamic_pointer_cast<const ChainMessage>(message)) {
    handle_chain(chain);
  } else if (auto ack = std::dynamic_pointer_cast<const AckMessage>(message)) {
    handle_ack(ack);
  } else if (auto reconfig =
                 std::dynamic_pointer_cast<const ReconfigMessage>(message)) {
    handle_reconfig(reconfig);
  }
}

void Replica::handle_request(
    const std::shared_ptr<const smr::ClientRequest>& request) {
  if (!request->verify(signer_)) return;
  const auto key = std::make_pair(request->client, request->client_seq);
  if (const auto it = results_.find(key); it != results_.end()) {
    if (request->client < network_.process_count())
      network_.send(self(), request->client,
                    smr::ReplyMessage::make(signer_, reconfigurations(),
                                            request->client,
                                            request->client_seq, it->second));
    return;
  }
  if (client_index_.contains(key)) return;
  if (head() == self()) {
    const SeqNum slot = next_slot_++;
    client_index_[key] = slot;
    handle_chain(ChainMessage::make(signer_, reconfigurations() + 1, slot,
                                    *request));
    return;
  }
  if (!in_chain()) return;
  // Chain member: watch the head. A starving request means the head is
  // not driving the chain.
  backlog_.emplace(key,
                   BacklogEntry{request, network_.simulator().now()});
  arm_request_timer();
}

void Replica::arm_request_timer() {
  if (request_timer_.active() || backlog_.empty()) return;
  // Fire when the oldest entry reaches the timeout; entries younger than
  // that must not trigger blame (the head may be handling them right now).
  SimTime oldest = network_.simulator().now();
  for (const auto& [key, entry] : backlog_) {
    (void)key;
    oldest = std::min(oldest, entry.since);
  }
  const SimTime deadline = oldest + config_.request_timeout;
  const SimTime now = network_.simulator().now();
  const SimDuration delay = deadline > now ? deadline - now : 1;
  request_timer_ = network_.simulator().schedule_timer(delay, [this] {
    for (auto it = backlog_.begin(); it != backlog_.end();) {
      if (results_.contains(it->first) || client_index_.contains(it->first))
        it = backlog_.erase(it);
      else
        ++it;
    }
    if (backlog_.empty()) return;
    if (!in_chain()) {
      // Evicted nodes see no chain traffic; their stale backlog says
      // nothing about the current head.
      backlog_.clear();
      return;
    }
    const SimTime now2 = network_.simulator().now();
    bool starved = false;
    for (const auto& [key, entry] : backlog_) {
      (void)key;
      if (now2 - entry.since >= config_.request_timeout) starved = true;
    }
    if (starved) {
      QSEL_LOG(kInfo, "bchain") << "p" << self() << " blames head p"
                                << head() << " (starving requests)";
      blame(head());
      // Fresh grace period even when the blame was a no-op (head already
      // blamed): without it the timer would re-arm with zero delay.
      for (auto& [key, entry] : backlog_) {
        (void)key;
        entry.since = network_.simulator().now();
      }
    }
    arm_request_timer();
  });
}

void Replica::blame(ProcessId culprit) {
  if (blamed_.contains(culprit)) return;
  const auto msg = ReconfigMessage::make(signer_, reconfigurations() + 1,
                                         culprit);
  network_.broadcast(self(), ProcessSet::full(config_.n) - ProcessSet{self()},
                     msg);
  handle_reconfig(msg);
}

void Replica::forward_down(const std::shared_ptr<const ChainMessage>& msg) {
  const ProcessId next = successor();
  Slot& slot = log_[msg->slot];
  if (next == kNoProcess) {
    // Tail: start the ACK on its way back up.
    slot.acked_epoch = msg->config_epoch;
    const ProcessId prev = predecessor();
    if (prev != kNoProcess)
      network_.send(self(), prev,
                    AckMessage::make(signer_, msg->config_epoch, msg->slot));
    try_execute();
    return;
  }
  network_.send(self(), next, msg);
  // Watch for the ACK; a missing ACK means someone below us in the chain
  // failed — blame the successor (all this node can observe).
  const SeqNum slot_no = msg->slot;
  const std::uint64_t epoch_at_send = msg->config_epoch;
  slot.ack_timer.cancel();
  slot.ack_timer = network_.simulator().schedule_timer(
      config_.ack_timeout, [this, slot_no, epoch_at_send] {
        if (epoch_at_send != reconfigurations() + 1) return;  // stale config
        const auto it = log_.find(slot_no);
        if (it == log_.end() || it->second.acked_epoch >= epoch_at_send)
          return;
        const ProcessId suspect = successor();
        if (suspect == kNoProcess) return;
        QSEL_LOG(kInfo, "bchain") << "p" << self() << " blames p" << suspect
                                  << " (no ACK for slot " << slot_no << ")";
        blame(suspect);
      });
}

void Replica::handle_chain(const std::shared_ptr<const ChainMessage>& msg) {
  if (msg->config_epoch != reconfigurations() + 1) return;  // other config
  if (!msg->verify(signer_, config_.n, head())) return;
  if (!in_chain()) return;
  Slot& slot = log_[msg->slot];
  if (!slot.chain_msg ||
      slot.chain_msg->config_epoch != msg->config_epoch) {
    slot.chain_msg = *msg;
    client_index_[{msg->client, msg->client_seq}] = msg->slot;
    backlog_.erase({msg->client, msg->client_seq});
    forward_down(msg);
  }
  try_execute();
}

void Replica::handle_ack(const std::shared_ptr<const AckMessage>& msg) {
  if (msg->config_epoch != reconfigurations() + 1) return;
  if (!msg->verify(signer_, config_.n)) return;
  const auto it = log_.find(msg->slot);
  if (it == log_.end() || !it->second.chain_msg) return;
  if (it->second.acked_epoch >= msg->config_epoch) return;  // duplicate
  it->second.acked_epoch = msg->config_epoch;
  it->second.ack_timer.cancel();
  const ProcessId prev = predecessor();
  if (prev != kNoProcess)
    network_.send(self(), prev,
                  AckMessage::make(signer_, msg->config_epoch, msg->slot));
  try_execute();
}

void Replica::handle_reconfig(
    const std::shared_ptr<const ReconfigMessage>& msg) {
  if (!msg->verify(signer_, config_.n)) return;
  if (msg->failed >= config_.n) return;
  if (blamed_.contains(msg->failed)) return;
  blamed_.insert(msg->failed);
  // Forward-on-change so every replica converges on the same blamed set
  // regardless of arrival order (grow-only union).
  network_.broadcast(self(), ProcessSet::full(config_.n) - ProcessSet{self()},
                     msg);
  QSEL_LOG(kInfo, "bchain") << "p" << self() << " reconfig #"
                            << reconfigurations() << ": evicted p"
                            << msg->failed;
  rebuild_chain();
  // Reset in-flight transport state; the (possibly new) head re-drives —
  // after the reconfiguration had time to reach everyone, otherwise the
  // re-driven CHAIN messages overtake the RECONFIG, get dropped for their
  // "future" epoch and trigger a blame cascade against correct nodes.
  for (auto& [slot_no, slot] : log_) {
    (void)slot_no;
    slot.ack_timer.cancel();  // acked_epoch is epoch-scoped already
  }
  redrive_timer_.cancel();
  if (head() == self()) {
    redrive_timer_ = network_.simulator().schedule_timer(
        2 * network_.latency_bound(), [this] { redrive_as_head(); });
  }
  // The new chain gets a fresh grace period for starving requests.
  for (auto& [key, entry] : backlog_) {
    (void)key;
    entry.since = network_.simulator().now();
  }
  request_timer_.cancel();
  arm_request_timer();
}

void Replica::redrive_as_head() {
  if (head() != self()) return;  // leadership moved while waiting
  if (!log_.empty())
    next_slot_ = std::max(next_slot_, log_.rbegin()->first + 1);
  for (auto& [slot_no, slot] : log_) {
    if (slot.executed || !slot.chain_msg) continue;
    smr::ClientRequest request;
    request.client = slot.chain_msg->client;
    request.client_seq = slot.chain_msg->client_seq;
    request.op = slot.chain_msg->op;
    auto fresh = ChainMessage::make(signer_, reconfigurations() + 1, slot_no,
                                    request);
    slot.chain_msg = *fresh;
    forward_down(fresh);
  }
}

void Replica::try_execute() {
  for (;;) {
    const auto it = log_.find(last_executed_ + 1);
    if (it == log_.end()) return;
    Slot& slot = it->second;
    if (!slot.chain_msg || slot.executed) return;
    if (slot.acked_epoch < slot.chain_msg->config_epoch) return;
    slot.executed = true;
    ++last_executed_;
    const ChainMessage& m = *slot.chain_msg;
    const std::string result = store_.apply_encoded(m.op);
    ++requests_executed_;
    executed_history_.push_back(ExecutedEntry{
        it->first, m.client, m.client_seq, crypto::sha256(m.op)});
    results_[{m.client, m.client_seq}] = result;
    backlog_.erase({m.client, m.client_seq});
    if (m.client >= config_.n && m.client < network_.process_count()) {
      network_.send(self(), m.client,
                    smr::ReplyMessage::make(signer_, reconfigurations(),
                                            m.client, m.client_seq, result));
    }
  }
}

}  // namespace qsel::bchain
