// BChain-style baseline messages.
//
// BChain [7] runs the active quorum as a *chain*: the head orders a
// request and forwards it down the chain; the tail answers with an ACK
// that travels back up; every chain node executes on ACK. This costs
// ~2(q-1) messages per request — the dramatic message reduction the paper
// credits BChain with — but its reconfiguration simply *replaces* a
// suspected node with a spare that is assumed correct, the weakness
// Quorum Selection addresses.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "net/codec.hpp"
#include "sim/payload.hpp"
#include "smr/client_messages.hpp"

namespace qsel::bchain {

struct ChainMessage final : sim::Payload {
  std::uint64_t config_epoch = 1;
  SeqNum slot = 0;
  std::uint32_t client = 0;
  std::uint64_t client_seq = 0;
  std::vector<std::uint8_t> op;
  crypto::Signature sig;  // by the chain head

  std::string_view type_tag() const override { return "bchain.chain"; }
  std::size_t wire_size() const override { return 32 + op.size() + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const ChainMessage> make(
      const crypto::Signer& head, std::uint64_t config_epoch, SeqNum slot,
      const smr::ClientRequest& request);
  bool verify(const crypto::Signer& verifier, ProcessId n,
              ProcessId expected_head) const;
};

struct AckMessage final : sim::Payload {
  std::uint64_t config_epoch = 1;
  SeqNum slot = 0;
  ProcessId sender = kNoProcess;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "bchain.ack"; }
  std::size_t wire_size() const override { return 20 + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const AckMessage> make(const crypto::Signer& sender,
                                                std::uint64_t config_epoch,
                                                SeqNum slot);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

/// Deterministic replacement: everyone who accepts this message moves
/// `failed` out of the chain and promotes the first spare.
struct ReconfigMessage final : sim::Payload {
  std::uint64_t new_epoch = 0;
  ProcessId failed = kNoProcess;
  ProcessId sender = kNoProcess;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "bchain.reconfig"; }
  std::size_t wire_size() const override { return 20 + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const ReconfigMessage> make(
      const crypto::Signer& sender, std::uint64_t new_epoch,
      ProcessId failed);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::bchain
