// Chain replication driven by Quorum Selection — the paper's future-work
// case ("integrate Quorum Selection in ... other special cases, e.g. when
// processes are communicating along a chain", Section X).
//
// Same data path as the BChain baseline (CHAIN down, ACK up, ~2(q-1)
// messages per request), but reconfiguration runs the paper's full stack:
// a missing ACK or a starving request becomes an *expectation timeout* in
// the failure detector, the suspicion gossips through Algorithm 1's
// eventually-consistent matrix, and the chain is the selected quorum in
// ascending id order. Configurations are identified by the quorum mask,
// so every replica derives the same chain identity without extra
// agreement; no blamed-set churn, no assumed-correct spares — suspicions
// against the real culprit accumulate in the matrix and keep it out.
//
// Limitation shared with the BChain baseline: there is no state transfer,
// so a previously-passive process promoted into the chain relays traffic
// but only executes slots from its join point onward (the executing
// majority still answers clients).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "app/kv_store.hpp"
#include "bchain/messages.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "qs/quorum_selector.hpp"
#include "sim/network.hpp"
#include "smr/client_messages.hpp"

namespace qsel::bchain {

struct QsReplicaConfig {
  ProcessId n = 4;
  int f = 1;
  fd::FailureDetectorConfig fd;
  /// Delay before the head re-drives unexecuted slots after a chain
  /// change, letting the UPDATE gossip settle first.
  SimDuration redrive_delay = 3'000'000;  // 3 ms
};

class QsReplica final : public sim::Actor {
 public:
  QsReplica(sim::Network& network, const crypto::KeyRegistry& keys,
            ProcessId self, QsReplicaConfig config);

  void on_message(ProcessId from, const sim::PayloadPtr& message) override;

  ProcessId self() const { return signer_.self(); }
  /// The selected quorum in ascending order is the chain; its mask is the
  /// shared configuration id.
  const std::vector<ProcessId>& chain() const { return chain_; }
  std::uint64_t config_id() const { return selector_.quorum().mask(); }
  ProcessId head() const { return chain_.front(); }
  bool in_chain() const { return selector_.quorum().contains(self()); }
  std::uint64_t reconfigurations() const {
    return selector_.quorums_issued();
  }
  std::uint64_t requests_executed() const { return requests_executed_; }
  const app::KvStore& store() const { return store_; }
  SeqNum last_executed() const { return last_executed_; }
  fd::FailureDetector& failure_detector() { return fd_; }
  const qs::QuorumSelector& selector() const { return selector_; }

  /// Journals this replica's suspicion plane and reconfiguration
  /// (<QUORUM, Q>) outputs into `tracer` (null detaches).
  void set_tracer(trace::Tracer* tracer) { selector_.set_tracer(tracer); }

 private:
  struct Slot {
    std::optional<ChainMessage> chain_msg;
    std::uint64_t acked_config = 0;  // config_id whose ACK passed through
    bool executed = false;
  };

  void handle_request(const std::shared_ptr<const smr::ClientRequest>& request);
  void handle_chain(const std::shared_ptr<const ChainMessage>& msg);
  void handle_ack(const std::shared_ptr<const AckMessage>& msg);
  void on_selected_quorum(ProcessSet quorum);
  void forward_down(const std::shared_ptr<const ChainMessage>& msg);
  void redrive_as_head();
  void try_execute();
  ProcessId successor() const;
  ProcessId predecessor() const;
  void broadcast_others(const sim::PayloadPtr& message);

  sim::Network& network_;
  crypto::Signer signer_;
  QsReplicaConfig config_;
  fd::FailureDetector fd_;
  qs::QuorumSelector selector_;

  std::vector<ProcessId> chain_;
  sim::TimerHandle redrive_timer_;

  app::KvStore store_;
  std::map<SeqNum, Slot> log_;
  SeqNum next_slot_ = 1;
  SeqNum last_executed_ = 0;
  std::uint64_t requests_executed_ = 0;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SeqNum> client_index_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> results_;
};

}  // namespace qsel::bchain
