// HMAC-SHA256 (RFC 2104).
//
// The simulated signature scheme (crypto/signer.hpp) authenticates message
// bytes with HMAC under a per-process private key, giving the paper's
// "cryptographic primitives cannot be broken" abstraction inside the
// simulator.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace qsel::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

}  // namespace qsel::crypto
