#include "crypto/signer.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"

namespace qsel::crypto {

KeyRegistry::KeyRegistry(ProcessId n, std::uint64_t seed) {
  QSEL_REQUIRE(n <= kMaxProcesses);
  keys_.resize(n);
  Rng rng(seed ^ 0x51676e6572210000ULL);
  for (auto& key : keys_) {
    for (std::size_t i = 0; i < key.size(); i += 8) {
      const std::uint64_t word = rng();
      for (std::size_t b = 0; b < 8; ++b)
        key[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

Signature KeyRegistry::sign(ProcessId signer,
                            std::span<const std::uint8_t> message) const {
  QSEL_REQUIRE(signer < keys_.size());
  return Signature{hmac_sha256(keys_[signer], message), signer};
}

bool KeyRegistry::verify(std::span<const std::uint8_t> message,
                         const Signature& sig) const {
  if (sig.signer >= keys_.size()) return false;
  return hmac_sha256(keys_[sig.signer], message) == sig.tag;
}

}  // namespace qsel::crypto
