// Self-contained SHA-256 (FIPS 180-4).
//
// Used for request digests in the replicated application (XPaxos COMMIT
// messages carry a hash of the client request, Section V-A) and as the
// compression core of HMAC-based simulated signatures. Implemented from
// the specification; test vectors in tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace qsel::crypto {

struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  bool operator==(const Digest&) const = default;
  auto operator<=>(const Digest&) const = default;

  std::string to_hex() const;

  /// First 8 bytes as an integer, handy as a short deterministic tag.
  std::uint64_t prefix64() const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v = (v << 8) | bytes[static_cast<std::size_t>(i)];
    return v;
  }
};

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalizes and resets the hasher for reuse.
  Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(std::span<const std::uint8_t> data);

}  // namespace qsel::crypto
