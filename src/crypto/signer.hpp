// Simulated digital signatures.
//
// The paper authenticates UPDATE, FOLLOWERS, PREPARE and COMMIT messages
// with signatures sigma_l and assumes they cannot be forged (Section IV).
// Inside the simulator we realize this with HMAC-SHA256 under per-process
// private keys held by a KeyRegistry: the registry hands process i only
// its own signing key, while verification recomputes the tag from the
// registry's copy. A Byzantine actor in the simulation can therefore sign
// anything *as itself* (including equivocating contents) but cannot
// produce a valid tag for another process — exactly the adversary model
// the paper assumes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace qsel::crypto {

struct Signature {
  Digest tag;
  ProcessId signer = kNoProcess;

  bool operator==(const Signature&) const = default;
};

/// Holds every process's signing key; created once per simulation from a
/// seed. Distributing only private handles (Signer) mirrors a PKI.
class KeyRegistry {
 public:
  KeyRegistry(ProcessId n, std::uint64_t seed);

  ProcessId process_count() const {
    return static_cast<ProcessId>(keys_.size());
  }

  /// Signs message bytes with process `signer`'s key. Call through Signer
  /// in protocol code; exposed here for adversary implementations that
  /// legitimately own their key.
  Signature sign(ProcessId signer, std::span<const std::uint8_t> message) const;

  /// True when `sig` is a valid tag by `sig.signer` over `message`.
  bool verify(std::span<const std::uint8_t> message,
              const Signature& sig) const;

 private:
  std::vector<std::array<std::uint8_t, 32>> keys_;
};

/// A process's own signing capability: wraps the registry but fixes the
/// signer id, so protocol modules cannot accidentally sign as peers.
class Signer {
 public:
  Signer(const KeyRegistry& registry, ProcessId self)
      : registry_(&registry), self_(self) {}

  ProcessId self() const { return self_; }

  Signature sign(std::span<const std::uint8_t> message) const {
    return registry_->sign(self_, message);
  }

  bool verify(std::span<const std::uint8_t> message,
              const Signature& sig) const {
    return registry_->verify(message, sig);
  }

 private:
  const KeyRegistry* registry_;
  ProcessId self_;
};

}  // namespace qsel::crypto
