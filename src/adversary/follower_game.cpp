#include "adversary/follower_game.hpp"

#include <unordered_map>

#include "common/assert.hpp"
#include "graph/independent_set.hpp"
#include "graph/line_subgraph.hpp"

namespace qsel::adversary {

FollowerGame::FollowerGame(FollowerGameConfig config) : config_(config) {
  QSEL_REQUIRE(config.n <= kMaxProcesses);
  QSEL_REQUIRE(config.f >= 1);
  QSEL_REQUIRE(config.n > 3 * static_cast<ProcessId>(config.f));
  const ProcessId core = config_.core_size();
  QSEL_REQUIRE(core <= config.n);
  for (ProcessId u = 0; u < core; ++u)
    for (ProcessId v = u + 1; v < core; ++v) core_pairs_.emplace_back(u, v);
}

graph::SimpleGraph FollowerGame::graph_of(std::uint64_t edge_mask) const {
  graph::SimpleGraph g(config_.n);
  for (std::size_t i = 0; i < core_pairs_.size(); ++i)
    if ((edge_mask >> i) & 1)
      g.add_edge(core_pairs_[i].first, core_pairs_[i].second);
  return g;
}

bool FollowerGame::valid_edge_set(std::uint64_t edge_mask) const {
  const graph::SimpleGraph g = graph_of(edge_mask);
  if (!graph::vertex_cover_within(g, config_.f)) return false;
  // An epoch change would reset the walk; the adversary stays inside one
  // epoch, which requires the quorum to keep existing. The cover bound
  // already implies it, but assert the invariant cheaply in debug terms.
  return true;
}

ProcessId FollowerGame::leader_for(const graph::SimpleGraph& suspicions) const {
  const auto leader =
      graph::line_leader(graph::maximal_line_subgraph(suspicions));
  QSEL_ASSERT(leader.has_value());
  return *leader;
}

FollowerGameResult FollowerGame::max_changes() const {
  QSEL_REQUIRE_MSG(core_pairs_.size() <= 64,
                   "exhaustive search needs an edge bitmask (core <= 11); "
                   "use greedy_changes()/constructive_changes() beyond");
  struct Frame {
    const FollowerGame* game = nullptr;
    std::unordered_map<std::uint64_t, std::uint32_t> memo;
    std::uint64_t states = 0;

    std::uint32_t best_from(std::uint64_t mask, ProcessId current_leader) {
      // The leader is a pure function of the mask, so (mask) is enough
      // state; current_leader is passed to avoid recomputation.
      if (const auto it = memo.find(mask); it != memo.end())
        return it->second;
      ++states;
      std::uint32_t best = 0;
      for (std::size_t i = 0; i < game->core_pairs_.size(); ++i) {
        if ((mask >> i) & 1) continue;
        const std::uint64_t next = mask | (std::uint64_t{1} << i);
        if (!game->valid_edge_set(next)) continue;
        const ProcessId next_leader = game->leader_for(game->graph_of(next));
        const std::uint32_t gained = next_leader != current_leader ? 1 : 0;
        best = std::max(best, gained + best_from(next, next_leader));
      }
      memo.emplace(mask, best);
      return best;
    }

    void reconstruct(std::uint64_t mask, ProcessId current_leader,
                     std::vector<std::pair<ProcessId, ProcessId>>& out) {
      const std::uint32_t want = best_from(mask, current_leader);
      if (want == 0) return;
      for (std::size_t i = 0; i < game->core_pairs_.size(); ++i) {
        if ((mask >> i) & 1) continue;
        const std::uint64_t next = mask | (std::uint64_t{1} << i);
        if (!game->valid_edge_set(next)) continue;
        const ProcessId next_leader = game->leader_for(game->graph_of(next));
        const std::uint32_t gained = next_leader != current_leader ? 1 : 0;
        if (gained + best_from(next, next_leader) == want) {
          out.push_back(game->core_pairs_[i]);
          reconstruct(next, next_leader, out);
          return;
        }
      }
      QSEL_ASSERT_MSG(false, "optimal move must exist");
    }
  };

  Frame frame;
  frame.game = this;
  FollowerGameResult result;
  result.leader_changes = frame.best_from(0, leader_for(graph_of(0)));
  frame.reconstruct(0, leader_for(graph_of(0)), result.suspicions);
  result.states_explored = frame.states;
  graph::SimpleGraph final_graph(config_.n);
  for (auto [u, v] : result.suspicions) final_graph.add_edge(u, v);
  result.final_leader = leader_for(final_graph);
  return result;
}

FollowerGameResult FollowerGame::constructive_changes() const {
  QSEL_REQUIRE_MSG(config_.n == 3 * static_cast<ProcessId>(config_.f) + 1,
                   "the constructive walk is defined for n = 3f + 1");
  FollowerGameResult result;
  graph::SimpleGraph suspicions(config_.n);
  ProcessId leader = leader_for(suspicions);
  auto play = [&](ProcessId u, ProcessId v) {
    suspicions.add_edge(u, v);
    result.suspicions.emplace_back(u, v);
    const ProcessId next_leader = leader_for(suspicions);
    if (next_leader != leader) ++result.leader_changes;
    leader = next_leader;
  };
  const auto f = static_cast<ProcessId>(config_.f);
  for (ProcessId j = 0; j < f; ++j) {
    // Walk edges: three suspicions from faulty j advance the leader across
    // this segment...
    if (j == 0) {
      play(0, 3);
      play(0, 1);
      play(0, 2);
    } else {
      play(j, 3 * j + 3);
      play(j, 3 * j - 1);
      play(j, 3 * j);
    }
    // ...and filler suspicions pre-cover the next segment's nodes so the
    // next faulty process can keep stepping the leader by exactly one.
    if (j + 1 < f) {
      play(j, 3 * j + 4);
      play(j, 3 * j + 5);
      play(j, 3 * j + 6);
    }
  }
  QSEL_ASSERT(graph::vertex_cover_within(suspicions, config_.f).has_value());
  result.final_leader = leader;
  return result;
}

FollowerGameResult FollowerGame::greedy_changes() const {
  FollowerGameResult result;
  graph::SimpleGraph suspicions(config_.n);
  std::vector<bool> used(core_pairs_.size(), false);
  ProcessId leader = leader_for(suspicions);
  for (;;) {
    // Among unused valid pairs, pick the one whose new leader is the
    // smallest strictly above the current leader (longest walk).
    std::size_t best_pair = core_pairs_.size();
    ProcessId best_leader = kNoProcess;
    for (std::size_t i = 0; i < core_pairs_.size(); ++i) {
      if (used[i]) continue;
      graph::SimpleGraph next = suspicions;
      next.add_edge(core_pairs_[i].first, core_pairs_[i].second);
      if (!graph::vertex_cover_within(next, config_.f)) continue;
      const ProcessId next_leader = leader_for(next);
      if (next_leader <= leader) continue;
      if (best_leader == kNoProcess || next_leader < best_leader) {
        best_leader = next_leader;
        best_pair = i;
      }
    }
    if (best_pair == core_pairs_.size()) break;
    used[best_pair] = true;
    suspicions.add_edge(core_pairs_[best_pair].first,
                        core_pairs_[best_pair].second);
    result.suspicions.push_back(core_pairs_[best_pair]);
    leader = best_leader;
    ++result.leader_changes;
  }
  result.final_leader = leader;
  return result;
}

}  // namespace qsel::adversary
