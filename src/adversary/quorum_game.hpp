// The quorum-interruption game (Theorems 3 and 4).
//
// Models the adversary of Section VII playing against Algorithm 1 after
// the failure detector has become accurate: the adversary waits until all
// correct processes output the current quorum (so the game needs no
// network — everyone computes the quorum from the same suspect graph),
// then causes one suspicion between two members of that quorum. By Lemma
// 2 every such suspicion forces a new quorum.
//
// Adversary constraints (realizability):
//  * each unordered pair is usable once — repeating an edge changes
//    nothing in the suspect graph;
//  * the set of all caused suspicions must be attributable to f faulty
//    processes: every edge needs a faulty endpoint (a correct process
//    only suspects processes that actually misbehaved towards it, and
//    correct processes do not misbehave), i.e. the used-edge graph must
//    have a vertex cover of size <= f;
//  * following the Theorem 4 strategy, suspicions are confined to a core
//    of f+2 processes (two designated "victims" plus the f faulty — the
//    proof shows this suffices for the C(f+2,2) lower bound).
//
// max_changes() explores the full game tree with memoization on the edge
// set (the quorum is a pure function of the edge set), yielding the exact
// worst case for Algorithm 1 — the number the paper reports as
// "simulations suggest ... at most C(f+2,2)". greedy_changes() runs the
// cheap constructive strategy for large f.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::adversary {

struct QuorumGameConfig {
  ProcessId n = 4;
  int f = 1;
  /// Number of processes the adversary confines suspicions to; the
  /// Theorem 4 strategy uses f + 2. Must be <= n.
  ProcessId core = 0;  // 0 = use f + 2

  ProcessId core_size() const {
    return core != 0 ? core : static_cast<ProcessId>(f + 2);
  }
};

struct GameResult {
  /// Quorum changes the adversary forced.
  std::uint64_t changes = 0;
  /// The suspicion sequence achieving it, as (suspecter, suspected) pairs.
  std::vector<std::pair<ProcessId, ProcessId>> suspicions;
  /// Game-tree states explored (exact search only).
  std::uint64_t states_explored = 0;
};

class QuorumGame {
 public:
  explicit QuorumGame(QuorumGameConfig config);

  /// Exact maximum via exhaustive search with memoization. Feasible for
  /// core sizes up to ~7 (C(7,2) = 21 edge bits).
  GameResult max_changes() const;

  /// Greedy: plays the lexicographically first valid suspicion each turn.
  GameResult greedy_changes() const;

  /// The quorum Algorithm 1 outputs for a given suspicion edge set.
  ProcessSet quorum_for(const graph::SimpleGraph& suspicions) const;

 private:
  QuorumGameConfig config_;
  std::vector<std::pair<ProcessId, ProcessId>> core_pairs_;

  graph::SimpleGraph graph_of(std::uint32_t edge_mask) const;
  bool cover_within_f(std::uint32_t edge_mask) const;
};

}  // namespace qsel::adversary
