// The leader-interruption game for Follower Selection (Theorem 9).
//
// Same setting as QuorumGame but against Algorithm 2: the quorum changes
// only when the *leader* — the node designated by a maximal line subgraph
// of the suspect graph — changes (Line 18), so the adversary's objective
// is to maximize leader changes. Any suspicion pair is playable (not just
// in-quorum ones: an edge between two bystanders can extend the covering
// paths and move the leader), but the total edge set must stay
// attributable to f faulty processes (vertex cover <= f). Because the
// leader is monotone non-decreasing under edge additions and the walk
// ends when it reaches node 3f (Lemma 8), Algorithm 2 caps at 3f + 1
// quorums per epoch — the O(f) result that beats the Omega(f^2) lower
// bound of Theorem 4.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::adversary {

struct FollowerGameConfig {
  ProcessId n = 4;  // must satisfy n > 3f
  int f = 1;
  /// Nodes the adversary may involve in suspicions; 0 = all of them.
  ProcessId core = 0;

  ProcessId core_size() const { return core != 0 ? core : n; }
};

struct FollowerGameResult {
  std::uint64_t leader_changes = 0;
  std::vector<std::pair<ProcessId, ProcessId>> suspicions;
  std::uint64_t states_explored = 0;
  ProcessId final_leader = 0;
};

class FollowerGame {
 public:
  explicit FollowerGame(FollowerGameConfig config);

  /// Exact maximum number of leader changes (exhaustive, memoized on the
  /// edge set). Feasible while C(core, 2) <= 24 or so.
  FollowerGameResult max_changes() const;

  /// Greedy: each turn plays the unused pair that yields the *smallest*
  /// strictly-larger leader, stretching the walk over as many steps as
  /// possible.
  FollowerGameResult greedy_changes() const;

  /// The constructive worst-case strategy extracted from the exact search
  /// at small f: faulty process j plays three walk suspicions that step
  /// the leader across its segment plus three fillers that pre-cover the
  /// next segment. Achieves the full 3f leader changes (3f+1 quorums
  /// including the initial one — Theorem 9 tight) for f <= 5; for larger f
  /// it remains a strong lower bound (the pattern's cover interactions
  /// start skipping leaders).
  FollowerGameResult constructive_changes() const;

  /// The leader Algorithm 2 derives from a suspicion edge set.
  ProcessId leader_for(const graph::SimpleGraph& suspicions) const;

 private:
  graph::SimpleGraph graph_of(std::uint64_t edge_mask) const;
  bool valid_edge_set(std::uint64_t edge_mask) const;

  FollowerGameConfig config_;
  std::vector<std::pair<ProcessId, ProcessId>> core_pairs_;
};

}  // namespace qsel::adversary
