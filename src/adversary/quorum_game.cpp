#include "adversary/quorum_game.hpp"

#include <unordered_map>

#include "common/assert.hpp"
#include "graph/independent_set.hpp"

namespace qsel::adversary {

QuorumGame::QuorumGame(QuorumGameConfig config) : config_(config) {
  QSEL_REQUIRE(config.n <= kMaxProcesses);
  QSEL_REQUIRE(config.f >= 1);
  QSEL_REQUIRE(static_cast<int>(config.n) - config.f > config.f);
  const ProcessId core = config_.core_size();
  QSEL_REQUIRE(core <= config.n);
  for (ProcessId u = 0; u < core; ++u)
    for (ProcessId v = u + 1; v < core; ++v) core_pairs_.emplace_back(u, v);
  QSEL_REQUIRE_MSG(core_pairs_.size() <= 32,
                   "edge bitmask limited to 32 pairs (core <= 8)");
}

graph::SimpleGraph QuorumGame::graph_of(std::uint32_t edge_mask) const {
  graph::SimpleGraph g(config_.n);
  for (std::size_t i = 0; i < core_pairs_.size(); ++i)
    if ((edge_mask >> i) & 1)
      g.add_edge(core_pairs_[i].first, core_pairs_[i].second);
  return g;
}

bool QuorumGame::cover_within_f(std::uint32_t edge_mask) const {
  return graph::vertex_cover_within(graph_of(edge_mask), config_.f)
      .has_value();
}

ProcessSet QuorumGame::quorum_for(const graph::SimpleGraph& suspicions) const {
  const auto quorum = graph::first_independent_set(
      suspicions, static_cast<int>(config_.n) - config_.f);
  // The adversary keeps the used-edge cover within f, so a quorum always
  // exists (no epoch changes happen after accuracy — Section VII-A).
  QSEL_ASSERT(quorum.has_value());
  return *quorum;
}

GameResult QuorumGame::max_changes() const {
  struct Frame {
    const QuorumGame* game = nullptr;
    std::unordered_map<std::uint32_t, std::uint32_t> memo;
    std::uint64_t states = 0;

    std::uint32_t best_from(std::uint32_t mask) {
      if (const auto it = memo.find(mask); it != memo.end())
        return it->second;
      ++states;
      const ProcessSet quorum = game->quorum_for(game->graph_of(mask));
      std::uint32_t best = 0;
      for (std::size_t i = 0; i < game->core_pairs_.size(); ++i) {
        if ((mask >> i) & 1) continue;  // pair already used
        const auto [u, v] = game->core_pairs_[i];
        // Rule (1): both endpoints must be inside the current quorum,
        // otherwise the suspicion does not interrupt anything.
        if (!quorum.contains(u) || !quorum.contains(v)) continue;
        const std::uint32_t next = mask | (1u << i);
        if (!game->cover_within_f(next)) continue;  // not attributable to f
        best = std::max(best, 1 + best_from(next));
      }
      memo.emplace(mask, best);
      return best;
    }

    /// Reconstructs one optimal suspicion sequence.
    void reconstruct(std::uint32_t mask,
                     std::vector<std::pair<ProcessId, ProcessId>>& out) {
      const std::uint32_t want = best_from(mask);
      if (want == 0) return;
      const ProcessSet quorum = game->quorum_for(game->graph_of(mask));
      for (std::size_t i = 0; i < game->core_pairs_.size(); ++i) {
        if ((mask >> i) & 1) continue;
        const auto [u, v] = game->core_pairs_[i];
        if (!quorum.contains(u) || !quorum.contains(v)) continue;
        const std::uint32_t next = mask | (1u << i);
        if (!game->cover_within_f(next)) continue;
        if (1 + best_from(next) == want) {
          out.push_back(game->core_pairs_[i]);
          reconstruct(next, out);
          return;
        }
      }
      QSEL_ASSERT_MSG(false, "optimal move must exist");
    }
  };

  Frame frame;
  frame.game = this;
  GameResult result;
  result.changes = frame.best_from(0);
  frame.reconstruct(0, result.suspicions);
  result.states_explored = frame.states;
  return result;
}

GameResult QuorumGame::greedy_changes() const {
  GameResult result;
  graph::SimpleGraph suspicions(config_.n);
  std::vector<bool> used(core_pairs_.size(), false);
  for (;;) {
    const ProcessSet quorum = quorum_for(suspicions);
    bool moved = false;
    for (std::size_t i = 0; i < core_pairs_.size(); ++i) {
      if (used[i]) continue;
      const auto [u, v] = core_pairs_[i];
      if (!quorum.contains(u) || !quorum.contains(v)) continue;
      graph::SimpleGraph next = suspicions;
      next.add_edge(u, v);
      if (!graph::vertex_cover_within(next, config_.f)) continue;
      used[i] = true;
      suspicions = next;
      result.suspicions.push_back(core_pairs_[i]);
      ++result.changes;
      moved = true;
      break;
    }
    if (!moved) return result;
  }
}

}  // namespace qsel::adversary
