#include "runtime/quorum_cluster.hpp"

#include "common/assert.hpp"

namespace qsel::runtime {

QuorumCluster::QuorumCluster(QuorumClusterConfig config, ProcessSet byzantine)
    : config_(config),
      keys_(config.n, config.seed),
      network_(std::make_unique<sim::Network>(sim_, config.n, config.network,
                                              config.seed)),
      correct_(ProcessSet::full(config.n) - byzantine),
      transports_(config.n),
      stores_(config.n),
      processes_(config.n) {
  QSEL_REQUIRE(byzantine.is_subset_of(ProcessSet::full(config.n)));
  NodeProcessConfig node_config;
  node_config.n = config.n;
  node_config.f = config.f;
  node_config.fd = config.fd;
  node_config.heartbeat_period = config.heartbeat_period;
  node_config.gossip = config.gossip;
  for (ProcessId id : correct_) {
    transports_[id] = std::make_unique<SimTransport>(*network_, id);
    stores_[id] = std::make_unique<store::MemoryNodeStore>();
    processes_[id] = std::make_unique<NodeProcess>(*transports_[id], keys_,
                                                   node_config,
                                                   stores_[id].get());
  }
}

NodeProcess& QuorumCluster::process(ProcessId id) {
  QSEL_REQUIRE(id < config_.n && processes_[id] != nullptr);
  return *processes_[id];
}

void QuorumCluster::attach_tracer(trace::Tracer& tracer) {
  tracer_ = &tracer;
  tracer.set_clock([this] { return sim_.now(); });
  network_->set_tracer(&tracer);
  for (ProcessId id : correct_) processes_[id]->selector().set_tracer(&tracer);
}

void QuorumCluster::start() {
  for (ProcessId id : correct_) processes_[id]->start();
}

void QuorumCluster::restart(ProcessId id) {
  QSEL_REQUIRE(id < config_.n && processes_[id] != nullptr);
  QSEL_REQUIRE_MSG(network_->is_crashed(id), "restart() needs a prior crash()");
  NodeProcessConfig node_config;
  node_config.n = config_.n;
  node_config.f = config_.f;
  node_config.fd = config_.fd;
  node_config.heartbeat_period = config_.heartbeat_period;
  node_config.gossip = config_.gossip;
  // Destroy-then-rebuild over the same transport slot and store: the new
  // process recovers in its constructor (join semantics — a second
  // recovery of the same store is a no-op) and re-registers its handler.
  processes_[id].reset();
  processes_[id] = std::make_unique<NodeProcess>(*transports_[id], keys_,
                                                 node_config,
                                                 stores_[id].get());
  if (tracer_ != nullptr) processes_[id]->selector().set_tracer(tracer_);
  network_->restart(id);
  processes_[id]->start();
}

store::NodeStore& QuorumCluster::store(ProcessId id) {
  QSEL_REQUIRE(id < config_.n && stores_[id] != nullptr);
  return *stores_[id];
}

ProcessSet QuorumCluster::alive() const {
  ProcessSet result;
  for (ProcessId id : correct_)
    if (!network_->is_crashed(id)) result.insert(id);
  return result;
}

std::optional<ProcessSet> QuorumCluster::agreed_quorum() const {
  std::optional<ProcessSet> quorum;
  for (ProcessId id : alive()) {
    const ProcessSet q = processes_[id]->quorum();
    if (!quorum) {
      quorum = q;
    } else if (*quorum != q) {
      return std::nullopt;
    }
  }
  return quorum;
}

std::uint64_t QuorumCluster::total_quorums_issued() const {
  std::uint64_t total = 0;
  for (ProcessId id : alive())
    total += processes_[id]->selector().quorums_issued();
  return total;
}

std::uint64_t QuorumCluster::max_quorums_issued() const {
  std::uint64_t most = 0;
  for (ProcessId id : alive())
    most = std::max(most, processes_[id]->selector().quorums_issued());
  return most;
}

}  // namespace qsel::runtime
