#include "runtime/quorum_cluster.hpp"

#include "common/assert.hpp"

namespace qsel::runtime {

QuorumProcess::QuorumProcess(sim::Network& network,
                             const crypto::KeyRegistry& keys, ProcessId self,
                             const QuorumClusterConfig& config)
    : network_(network),
      signer_(keys, self),
      heartbeat_period_(config.heartbeat_period),
      fd_(network.simulator(), self, config.n, config.fd,
          [this](ProcessSet suspects) { selector_.on_suspected(suspects); }),
      selector_(signer_, qs::QuorumSelectorConfig{config.n, config.f},
                qs::QuorumSelector::Hooks{
                    [](ProcessSet) { /* application consumes the quorum */ },
                    [this](sim::PayloadPtr msg) {
                      // `this->`: the constructor parameter `self` shadows
                      // the member function inside this lambda.
                      network_.broadcast(
                          this->self(),
                          ProcessSet::full(network_.process_count()) -
                              ProcessSet{this->self()},
                          msg);
                    }}) {}

void QuorumProcess::start() {
  if (heartbeat_period_ == 0) return;
  tick();
}

void QuorumProcess::tick() {
  const ProcessSet others =
      ProcessSet::full(network_.process_count()) - ProcessSet{self()};
  network_.broadcast(self(), others,
                     HeartbeatMessage::make(signer_, heartbeat_seq_++));
  for (ProcessId peer : others) {
    // While a suspicion against `peer` is live, piling up further
    // expectations adds nothing: the suspicion only clears when a
    // heartbeat arrives, which re-arms expectations on the next tick.
    if (fd_.suspected().contains(peer)) continue;
    fd_.expect(peer,
               [](ProcessId, const sim::PayloadPtr& m) {
                 return dynamic_cast<const HeartbeatMessage*>(m.get()) !=
                        nullptr;
               },
               "heartbeat");
  }
  // Anti-entropy every 16th tick (same rationale as FollowerProcess):
  // forward-on-change gossip is reliable only over reliable links, so an
  // UPDATE lost to a partition is never re-sent and matrices would stay
  // split after the heal. Re-offering the own row makes dissemination
  // self-healing; receivers absorb duplicates without re-forwarding.
  if (heartbeat_seq_ % 16 == 0) selector_.resync();
  network_.simulator().schedule_after(heartbeat_period_, [this] { tick(); });
}

void QuorumProcess::on_message(ProcessId from, const sim::PayloadPtr& message) {
  // Authenticate, then feed the failure detector (RECEIVE/DELIVER) and
  // dispatch to the module the message belongs to.
  if (auto update =
          std::dynamic_pointer_cast<const suspect::UpdateMessage>(message)) {
    if (!update->verify(signer_, network_.process_count())) return;
    fd_.on_receive(from, message);
    selector_.on_update(update);
    return;
  }
  if (auto heartbeat =
          std::dynamic_pointer_cast<const HeartbeatMessage>(message)) {
    if (!heartbeat->verify(signer_, network_.process_count())) return;
    // Expectations target the *origin*: a heartbeat only counts for the
    // process that signed it.
    fd_.on_receive(heartbeat->origin, message);
    return;
  }
  // Unknown payloads are ignored (Byzantine noise).
}

QuorumCluster::QuorumCluster(QuorumClusterConfig config, ProcessSet byzantine)
    : config_(config),
      keys_(config.n, config.seed),
      network_(std::make_unique<sim::Network>(sim_, config.n, config.network,
                                              config.seed)),
      correct_(ProcessSet::full(config.n) - byzantine),
      processes_(config.n) {
  QSEL_REQUIRE(byzantine.is_subset_of(ProcessSet::full(config.n)));
  for (ProcessId id : correct_) {
    processes_[id] =
        std::make_unique<QuorumProcess>(*network_, keys_, id, config);
    network_->attach(id, *processes_[id]);
  }
}

QuorumProcess& QuorumCluster::process(ProcessId id) {
  QSEL_REQUIRE(id < config_.n && processes_[id] != nullptr);
  return *processes_[id];
}

void QuorumCluster::attach_tracer(trace::Tracer& tracer) {
  tracer.set_clock([this] { return sim_.now(); });
  network_->set_tracer(&tracer);
  for (ProcessId id : correct_) processes_[id]->selector().set_tracer(&tracer);
}

void QuorumCluster::start() {
  for (ProcessId id : correct_) processes_[id]->start();
}

ProcessSet QuorumCluster::alive() const {
  ProcessSet result;
  for (ProcessId id : correct_)
    if (!network_->is_crashed(id)) result.insert(id);
  return result;
}

std::optional<ProcessSet> QuorumCluster::agreed_quorum() const {
  std::optional<ProcessSet> quorum;
  for (ProcessId id : alive()) {
    const ProcessSet q = processes_[id]->quorum();
    if (!quorum) {
      quorum = q;
    } else if (*quorum != q) {
      return std::nullopt;
    }
  }
  return quorum;
}

std::uint64_t QuorumCluster::total_quorums_issued() const {
  std::uint64_t total = 0;
  for (ProcessId id : alive())
    total += processes_[id]->selector().quorums_issued();
  return total;
}

std::uint64_t QuorumCluster::max_quorums_issued() const {
  std::uint64_t most = 0;
  for (ProcessId id : alive())
    most = std::max(most, processes_[id]->selector().quorums_issued());
  return most;
}

}  // namespace qsel::runtime
