#include "runtime/heartbeat.hpp"

#include "net/codec.hpp"

namespace qsel::runtime {

std::vector<std::uint8_t> HeartbeatMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("app.heartbeat");
  enc.process_id(origin);
  enc.u64(seq);
  return std::move(enc).take();
}

std::shared_ptr<const HeartbeatMessage> HeartbeatMessage::make(
    const crypto::Signer& signer, std::uint64_t seq) {
  auto msg = std::make_shared<HeartbeatMessage>();
  msg->origin = signer.self();
  msg->seq = seq;
  msg->sig = signer.sign(msg->signed_bytes());
  return msg;
}

bool HeartbeatMessage::verify(const crypto::Signer& verifier,
                              ProcessId n) const {
  if (origin >= n || sig.signer != origin) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::runtime
