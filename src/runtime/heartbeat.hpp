// Heartbeat application messages.
//
// Section II assumes "every process is expected to send infinitely many
// messages ... systems that use heartbeats to detect crash failures". The
// heartbeat application is the minimal application driving the failure
// detector in the standalone Quorum/Follower Selection experiments: each
// tick a process broadcasts a signed heartbeat and expects its peers'
// heartbeats, so omission and timing failures on individual links surface
// as suspicions.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "sim/payload.hpp"

namespace qsel::runtime {

struct HeartbeatMessage final : sim::Payload {
  ProcessId origin = kNoProcess;
  std::uint64_t seq = 0;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "app.heartbeat"; }
  std::size_t wire_size() const override { return 4 + 8 + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const HeartbeatMessage> make(
      const crypto::Signer& signer, std::uint64_t seq);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::runtime
