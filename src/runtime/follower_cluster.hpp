// FollowerProcess / FollowerCluster — the composed system of Figure 1 for
// Follower Selection (Algorithm 2).
//
// Differences from the QuorumCluster: the selector is the leader-centric
// FollowerSelector, the network runs with FIFO links (the Section VIII
// assumption), and the heartbeat application follows the leader-centric
// pattern the paper motivates — the leader exchanges heartbeats with the
// quorum, followers do not monitor each other, so follower-follower
// suspicions never arise from the application itself.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "fs/follower_selector.hpp"
#include "runtime/heartbeat.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace qsel::runtime {

struct FollowerClusterConfig {
  ProcessId n = 4;
  int f = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig network;  // fifo_links forced on by the cluster
  fd::FailureDetectorConfig fd;
  SimDuration heartbeat_period = 5'000'000;  // 0 disables heartbeats
  /// Suspicion dissemination wire format (node_process.hpp).
  suspect::GossipMode gossip = suspect::GossipMode::kDelta;
};

class FollowerProcess final : public sim::Actor {
 public:
  FollowerProcess(sim::Network& network, const crypto::KeyRegistry& keys,
                  ProcessId self, const FollowerClusterConfig& config);

  void start();
  void on_message(ProcessId from, const sim::PayloadPtr& message) override;

  ProcessId self() const { return signer_.self(); }
  fs::FollowerSelector& selector() { return selector_; }
  const fs::FollowerSelector& selector() const { return selector_; }
  fd::FailureDetector& failure_detector() { return fd_; }
  ProcessId leader() const { return selector_.leader(); }
  ProcessSet quorum() const { return selector_.quorum(); }
  const crypto::Signer& signer() const { return signer_; }

 private:
  void tick();
  void broadcast_others(const sim::PayloadPtr& message);

  sim::Network& network_;
  crypto::Signer signer_;
  SimDuration heartbeat_period_;
  fd::FailureDetector fd_;
  fs::FollowerSelector selector_;
  std::uint64_t heartbeat_seq_ = 0;
};

class FollowerCluster {
 public:
  explicit FollowerCluster(FollowerClusterConfig config,
                           ProcessSet byzantine = {});

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  const FollowerClusterConfig& config() const { return config_; }
  ProcessSet correct() const { return correct_; }

  /// Honest processes that have not crashed.
  ProcessSet alive() const;

  FollowerProcess& process(ProcessId id);

  /// Wires `tracer` into the whole run (network, suspicion plane, quorum
  /// outputs); must outlive the cluster. Call before start().
  void attach_tracer(trace::Tracer& tracer);

  void start();

  /// The (leader, quorum) every honest process agrees on, if they do.
  std::optional<std::pair<ProcessId, ProcessSet>> agreed_leader_quorum() const;

  std::uint64_t total_quorums_issued() const;
  std::uint64_t max_quorums_issued() const;

 private:
  FollowerClusterConfig config_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet correct_;
  std::vector<std::unique_ptr<FollowerProcess>> processes_;
};

}  // namespace qsel::runtime
