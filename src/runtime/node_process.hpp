// NodeProcess — the composed system of Figure 1 for Quorum Selection
// (Algorithm 1), substrate-independent.
//
// Stacks the paper's three modules — a heartbeat application issuing
// expectations, the expectation-based failure detector, and the
// QuorumSelector with its suspicion CRDT — behind the net::Transport
// interface. The same class is instantiated over SimTransport by
// QuorumCluster (virtual time, deterministic) and over TcpTransport by the
// loopback harness and the qsel_node CLI (real sockets, wall-clock time);
// the substrate only decides how messages and timer ticks arrive.
#pragma once

#include <cstdint>
#include <memory>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "net/transport.hpp"
#include "qs/quorum_selector.hpp"
#include "runtime/heartbeat.hpp"
#include "store/node_store.hpp"

namespace qsel::runtime {

struct NodeProcessConfig {
  ProcessId n = 4;
  int f = 1;
  fd::FailureDetectorConfig fd;
  /// Heartbeat period; 0 disables the heartbeat application (experiments
  /// that inject suspicions directly).
  SimDuration heartbeat_period = 5'000'000;  // 5 ms
  /// Suspicion dissemination wire format. The composed runtime defaults
  /// to delta gossip with digest anti-entropy (DESIGN.md §11); kFullRow
  /// reproduces the paper's unconditional full-row UPDATEs.
  suspect::GossipMode gossip = suspect::GossipMode::kDelta;
};

class NodeProcess {
 public:
  /// `store`, when non-null, makes the node durable: construction
  /// recovers epoch, own suspicion row and FD timeouts from it (join
  /// semantics — recovery is idempotent), and every subsequent change to
  /// that state is journaled *before* it is broadcast, so a crash can
  /// never have told peers something a restart forgets. The store must
  /// outlive the process.
  NodeProcess(net::Transport& transport, const crypto::KeyRegistry& keys,
              const NodeProcessConfig& config,
              store::NodeStore* store = nullptr);

  /// Safe to destroy with timer callbacks still queued (node restart):
  /// pending ticks and FD events check the alive flag and no-op.
  ~NodeProcess();

  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;

  /// Begins the heartbeat application (no-op when the period is 0).
  void start();

  /// Stops the heartbeat application (crash induction in the TCP harness;
  /// the simulator models crashes in the network instead).
  void stop();

  ProcessId self() const { return signer_.self(); }
  qs::QuorumSelector& selector() { return selector_; }
  const qs::QuorumSelector& selector() const { return selector_; }
  fd::FailureDetector& failure_detector() { return fd_; }
  ProcessSet quorum() const { return selector_.quorum(); }
  const crypto::Signer& signer() const { return signer_; }

 private:
  void tick();
  void on_message(ProcessId from, const sim::PayloadPtr& message);
  /// Journals the durable state when it differs from the last journaled
  /// value. Wired as the selector's write-ahead hook (row/epoch changes)
  /// and run once per tick (FD timeout adaptation has no hook; losing a
  /// few doublings only costs re-adaptation, never safety).
  void maybe_persist();

  net::Transport& transport_;
  crypto::Signer signer_;
  /// Protocol width: peers are ids 0..n_-1. The transport may expose a
  /// wider id space (a GroupTransport with client slots); heartbeats,
  /// gossip and row-width checks must not span those extra slots.
  ProcessId n_;
  SimDuration heartbeat_period_;
  store::NodeStore* store_;
  /// Set false on destruction; captured (by shared_ptr) in every timer
  /// callback so late firings against a destroyed process are no-ops.
  /// Declared before fd_: its callback captures a copy.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  fd::FailureDetector fd_;
  qs::QuorumSelector selector_;
  std::uint64_t heartbeat_seq_ = 0;
  bool stopped_ = false;
  /// Dirty markers for maybe_persist: the own-row version counter, epoch
  /// and FD timeout generation together cover every field of
  /// DurableNodeState, so an unchanged triple means the O(n) snapshot
  /// build and store write can be skipped (the per-tick common case).
  suspect::RowVersion persisted_row_version_ = 0;
  Epoch persisted_epoch_ = 0;
  std::uint64_t persisted_fd_generation_ = 0;
  bool has_persisted_ = false;
};

}  // namespace qsel::runtime
