// NodeProcess — the composed system of Figure 1 for Quorum Selection
// (Algorithm 1), substrate-independent.
//
// Stacks the paper's three modules — a heartbeat application issuing
// expectations, the expectation-based failure detector, and the
// QuorumSelector with its suspicion CRDT — behind the net::Transport
// interface. The same class is instantiated over SimTransport by
// QuorumCluster (virtual time, deterministic) and over TcpTransport by the
// loopback harness and the qsel_node CLI (real sockets, wall-clock time);
// the substrate only decides how messages and timer ticks arrive.
#pragma once

#include <cstdint>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "net/transport.hpp"
#include "qs/quorum_selector.hpp"
#include "runtime/heartbeat.hpp"

namespace qsel::runtime {

struct NodeProcessConfig {
  ProcessId n = 4;
  int f = 1;
  fd::FailureDetectorConfig fd;
  /// Heartbeat period; 0 disables the heartbeat application (experiments
  /// that inject suspicions directly).
  SimDuration heartbeat_period = 5'000'000;  // 5 ms
};

class NodeProcess {
 public:
  NodeProcess(net::Transport& transport, const crypto::KeyRegistry& keys,
              const NodeProcessConfig& config);

  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;

  /// Begins the heartbeat application (no-op when the period is 0).
  void start();

  /// Stops the heartbeat application (crash induction in the TCP harness;
  /// the simulator models crashes in the network instead).
  void stop();

  ProcessId self() const { return signer_.self(); }
  qs::QuorumSelector& selector() { return selector_; }
  const qs::QuorumSelector& selector() const { return selector_; }
  fd::FailureDetector& failure_detector() { return fd_; }
  ProcessSet quorum() const { return selector_.quorum(); }
  const crypto::Signer& signer() const { return signer_; }

 private:
  void tick();
  void on_message(ProcessId from, const sim::PayloadPtr& message);

  net::Transport& transport_;
  crypto::Signer signer_;
  SimDuration heartbeat_period_;
  fd::FailureDetector fd_;
  qs::QuorumSelector selector_;
  std::uint64_t heartbeat_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace qsel::runtime
