// QuorumProcess / QuorumCluster — the composed system of Figure 1 for
// Quorum Selection (Algorithm 1).
//
// Each QuorumProcess stacks the three modules of the paper's architecture:
// a heartbeat application that issues expectations, the expectation-based
// failure detector, and the QuorumSelector, all wired over the simulated
// network. QuorumCluster builds n such processes (minus any ids reserved
// as Byzantine, which tests/adversaries attach themselves) and exposes the
// cluster-level observations the experiments need: whether correct
// processes agree on a quorum, total quorum changes, epochs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/process_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "qs/quorum_selector.hpp"
#include "runtime/heartbeat.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "suspect/update_message.hpp"

namespace qsel::runtime {

struct QuorumClusterConfig {
  ProcessId n = 4;
  int f = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig network;
  fd::FailureDetectorConfig fd;
  /// Heartbeat period; 0 disables the heartbeat application (experiments
  /// that inject suspicions directly).
  SimDuration heartbeat_period = 5'000'000;  // 5 ms
};

class QuorumProcess final : public sim::Actor {
 public:
  QuorumProcess(sim::Network& network, const crypto::KeyRegistry& keys,
                ProcessId self, const QuorumClusterConfig& config);

  /// Begins the heartbeat application (no-op when the period is 0).
  void start();

  void on_message(ProcessId from, const sim::PayloadPtr& message) override;

  ProcessId self() const { return signer_.self(); }
  qs::QuorumSelector& selector() { return selector_; }
  const qs::QuorumSelector& selector() const { return selector_; }
  fd::FailureDetector& failure_detector() { return fd_; }
  ProcessSet quorum() const { return selector_.quorum(); }
  const crypto::Signer& signer() const { return signer_; }

 private:
  void tick();

  sim::Network& network_;
  crypto::Signer signer_;
  SimDuration heartbeat_period_;
  fd::FailureDetector fd_;
  qs::QuorumSelector selector_;
  std::uint64_t heartbeat_seq_ = 0;
};

class QuorumCluster {
 public:
  /// `byzantine` ids get no honest process; tests may attach their own
  /// actors for them (an unattached id behaves as crashed-from-start).
  explicit QuorumCluster(QuorumClusterConfig config,
                         ProcessSet byzantine = {});

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  const QuorumClusterConfig& config() const { return config_; }

  /// Ids running honest QuorumProcesses (including any that crashed later).
  ProcessSet correct() const { return correct_; }

  /// Honest processes that have not crashed — the processes the paper's
  /// Agreement/Termination properties quantify over.
  ProcessSet alive() const;

  QuorumProcess& process(ProcessId id);

  /// Wires `tracer` into the whole run: simulator clock, network
  /// SEND/DELIVER/DROP and fault injection, every honest process's
  /// suspicion plane and <QUORUM, Q> outputs. The tracer must outlive the
  /// cluster. Call before start().
  void attach_tracer(trace::Tracer& tracer);

  /// Starts heartbeats on all honest processes.
  void start();

  /// True when all honest processes currently report the same quorum;
  /// returns that quorum.
  std::optional<ProcessSet> agreed_quorum() const;

  /// Sum of quorums issued across honest processes.
  std::uint64_t total_quorums_issued() const;

  /// Maximum quorums issued by any single honest process.
  std::uint64_t max_quorums_issued() const;

 private:
  QuorumClusterConfig config_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet correct_;
  std::vector<std::unique_ptr<QuorumProcess>> processes_;  // index = id
};

}  // namespace qsel::runtime
