// QuorumCluster — n NodeProcesses (Figure 1, Algorithm 1) over the
// simulated network.
//
// Each node is a runtime::NodeProcess — the substrate-independent stack of
// heartbeat application, expectation-based failure detector and
// QuorumSelector — instantiated here over a SimTransport slot of the
// shared deterministic Network. QuorumCluster builds n such processes
// (minus any ids reserved as Byzantine, which tests/adversaries attach
// themselves) and exposes the cluster-level observations the experiments
// need: whether correct processes agree on a quorum, total quorum changes,
// epochs. The TCP twin of this class is net::LoopbackCluster.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "runtime/node_process.hpp"
#include "runtime/sim_transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "store/node_store.hpp"

namespace qsel::runtime {

struct QuorumClusterConfig {
  ProcessId n = 4;
  int f = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig network;
  fd::FailureDetectorConfig fd;
  /// Heartbeat period; 0 disables the heartbeat application (experiments
  /// that inject suspicions directly).
  SimDuration heartbeat_period = 5'000'000;  // 5 ms
  /// Suspicion dissemination wire format (node_process.hpp).
  suspect::GossipMode gossip = suspect::GossipMode::kDelta;
};

/// Historical name: the per-process stack now lives in NodeProcess (it is
/// substrate-independent); cluster-facing code keeps the old name.
using QuorumProcess = NodeProcess;

class QuorumCluster {
 public:
  /// `byzantine` ids get no honest process; tests may attach their own
  /// actors for them (an unattached id behaves as crashed-from-start).
  explicit QuorumCluster(QuorumClusterConfig config,
                         ProcessSet byzantine = {});

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  const QuorumClusterConfig& config() const { return config_; }

  /// Ids running honest NodeProcesses (including any that crashed later).
  ProcessSet correct() const { return correct_; }

  /// Honest processes that have not crashed — the processes the paper's
  /// Agreement/Termination properties quantify over.
  ProcessSet alive() const;

  NodeProcess& process(ProcessId id);

  /// Wires `tracer` into the whole run: simulator clock, network
  /// SEND/DELIVER/DROP and fault injection, every honest process's
  /// suspicion plane and <QUORUM, Q> outputs. The tracer must outlive the
  /// cluster. Call before start().
  void attach_tracer(trace::Tracer& tracer);

  /// Starts heartbeats on all honest processes.
  void start();

  /// Crash-recovery: requires a prior network().crash(id) of an honest
  /// process. Rebuilds the NodeProcess over the node's in-memory store
  /// (every process journals to one), so it rejoins holding its persisted
  /// epoch, own suspicion row and FD timeouts — never a pre-crash epoch —
  /// and un-crashes the network slot. Heartbeats resume immediately.
  void restart(ProcessId id);

  store::NodeStore& store(ProcessId id);

  /// True when all honest processes currently report the same quorum;
  /// returns that quorum.
  std::optional<ProcessSet> agreed_quorum() const;

  /// Sum of quorums issued across honest processes.
  std::uint64_t total_quorums_issued() const;

  /// Maximum quorums issued by any single honest process.
  std::uint64_t max_quorums_issued() const;

 private:
  QuorumClusterConfig config_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet correct_;
  std::vector<std::unique_ptr<SimTransport>> transports_;  // index = id
  std::vector<std::unique_ptr<store::NodeStore>> stores_;  // index = id
  std::vector<std::unique_ptr<NodeProcess>> processes_;    // index = id
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace qsel::runtime
