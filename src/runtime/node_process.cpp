#include "runtime/node_process.hpp"

#include <memory>
#include <utility>

#include "suspect/delta_update_message.hpp"
#include "suspect/update_message.hpp"

namespace qsel::runtime {

NodeProcess::NodeProcess(net::Transport& transport,
                         const crypto::KeyRegistry& keys,
                         const NodeProcessConfig& config,
                         store::NodeStore* store)
    : transport_(transport),
      signer_(keys, transport.self()),
      n_(config.n),
      heartbeat_period_(config.heartbeat_period),
      store_(store),
      fd_(transport.timers(), transport.self(), config.n, config.fd,
          // SUSPECTED arrives through the event queue, possibly after this
          // process was destroyed on a restart — hence the alive guard.
          [this, alive = alive_](ProcessSet suspects) {
            if (*alive) selector_.on_suspected(suspects);
          }),
      selector_(signer_,
                qs::QuorumSelectorConfig{config.n, config.f, config.gossip},
                qs::QuorumSelector::Hooks{
                    [](ProcessSet) { /* application consumes the quorum */ },
                    [this](sim::PayloadPtr msg) {
                      transport_.broadcast(
                          ProcessSet::full(n_) - ProcessSet{self()}, msg);
                    },
                    [this] { maybe_persist(); },
                    [this](ProcessId to, sim::PayloadPtr msg) {
                      transport_.send(to, std::move(msg));
                    }}) {
  transport_.set_handler([this](ProcessId from, const sim::PayloadPtr& msg) {
    on_message(from, msg);
  });
  if (store_ != nullptr) {
    if (const auto recovered = store_->recover()) {
      // Timeouts first: restore() re-evaluates the quorum, and any epoch
      // advance it triggers should persist a state that already includes
      // the recovered timeouts.
      fd_.restore_timeouts(recovered->fd_timeouts);
      selector_.restore(recovered->epoch, recovered->own_row);
    }
    maybe_persist();  // first boot journals the initial state
  }
}

NodeProcess::~NodeProcess() { *alive_ = false; }

void NodeProcess::start() {
  if (heartbeat_period_ == 0) return;
  stopped_ = false;
  tick();
}

void NodeProcess::stop() { stopped_ = true; }

void NodeProcess::tick() {
  if (stopped_) return;
  const ProcessSet others = ProcessSet::full(n_) - ProcessSet{self()};
  transport_.broadcast(others,
                       HeartbeatMessage::make(signer_, heartbeat_seq_++));
  for (ProcessId peer : others) {
    // While a suspicion against `peer` is live, piling up further
    // expectations adds nothing: the suspicion only clears when a
    // heartbeat arrives, which re-arms expectations on the next tick.
    if (fd_.suspected().contains(peer)) continue;
    fd_.expect(peer,
               [](ProcessId, const sim::PayloadPtr& m) {
                 return dynamic_cast<const HeartbeatMessage*>(m.get()) !=
                        nullptr;
               },
               "heartbeat");
  }
  // Anti-entropy every 16th tick: forward-on-change gossip is reliable
  // only over reliable links, so an UPDATE lost to a partition (or a TCP
  // reconnect window) is never re-sent and matrices would stay split after
  // the heal. Re-offering the known signed rows makes dissemination
  // self-healing; receivers absorb duplicates without re-forwarding.
  if (heartbeat_seq_ % 16 == 0) selector_.resync();
  // Catch FD timeout adaptation, which has no write-ahead hook.
  maybe_persist();
  transport_.timers().schedule_after(
      heartbeat_period_, [this, alive = alive_] {
        if (*alive) tick();
      });
}

void NodeProcess::maybe_persist() {
  if (store_ == nullptr) return;
  // Dirty check before any O(n) work: the own-row version counter moves
  // exactly when a cell of the own row increases, the FD generation
  // exactly when a timeout adapts. Steady-state ticks exit here without
  // copying the row or the timeout vector.
  const auto row_version = selector_.matrix().row_version(self());
  const Epoch epoch = selector_.epoch();
  const std::uint64_t fd_generation = fd_.timeout_generation();
  if (has_persisted_ && row_version == persisted_row_version_ &&
      epoch == persisted_epoch_ && fd_generation == persisted_fd_generation_)
    return;
  store::DurableNodeState state;
  state.epoch = epoch;
  const auto row = selector_.matrix().row(self());
  state.own_row.assign(row.begin(), row.end());
  state.fd_timeouts = fd_.timeouts();
  store_->persist(state);
  persisted_row_version_ = row_version;
  persisted_epoch_ = epoch;
  persisted_fd_generation_ = fd_generation;
  has_persisted_ = true;
}

void NodeProcess::on_message(ProcessId from, const sim::PayloadPtr& message) {
  // Authenticate, then feed the failure detector (RECEIVE/DELIVER) and
  // dispatch to the module the message belongs to.
  if (auto update =
          std::dynamic_pointer_cast<const suspect::UpdateMessage>(message)) {
    if (!update->verify(signer_, n_)) return;
    fd_.on_receive(from, message);
    selector_.on_update(update);
    return;
  }
  if (auto delta = std::dynamic_pointer_cast<const suspect::DeltaUpdateMessage>(
          message)) {
    if (!delta->verify(signer_, n_)) return;
    fd_.on_receive(from, message);
    selector_.on_delta(delta);
    return;
  }
  if (auto digests =
          std::dynamic_pointer_cast<const suspect::RowDigestMessage>(message)) {
    // Unsigned anti-entropy advice: never fed to the failure detector,
    // and a lying digest costs at most bounded repair traffic
    // (suspicion_core.hpp). The core re-checks well-formedness.
    selector_.on_row_digests(from, *digests);
    return;
  }
  if (auto heartbeat =
          std::dynamic_pointer_cast<const HeartbeatMessage>(message)) {
    if (!heartbeat->verify(signer_, n_)) return;
    // Expectations target the *origin*: a heartbeat only counts for the
    // process that signed it.
    fd_.on_receive(heartbeat->origin, message);
    return;
  }
  // Unknown payloads are ignored (Byzantine noise).
}

}  // namespace qsel::runtime
