#include "runtime/node_process.hpp"

#include <memory>

#include "suspect/update_message.hpp"

namespace qsel::runtime {

NodeProcess::NodeProcess(net::Transport& transport,
                         const crypto::KeyRegistry& keys,
                         const NodeProcessConfig& config)
    : transport_(transport),
      signer_(keys, transport.self()),
      heartbeat_period_(config.heartbeat_period),
      fd_(transport.timers(), transport.self(), config.n, config.fd,
          [this](ProcessSet suspects) { selector_.on_suspected(suspects); }),
      selector_(signer_, qs::QuorumSelectorConfig{config.n, config.f},
                qs::QuorumSelector::Hooks{
                    [](ProcessSet) { /* application consumes the quorum */ },
                    [this](sim::PayloadPtr msg) {
                      transport_.broadcast(
                          ProcessSet::full(transport_.process_count()) -
                              ProcessSet{self()},
                          msg);
                    }}) {
  transport_.set_handler([this](ProcessId from, const sim::PayloadPtr& msg) {
    on_message(from, msg);
  });
}

void NodeProcess::start() {
  if (heartbeat_period_ == 0) return;
  stopped_ = false;
  tick();
}

void NodeProcess::stop() { stopped_ = true; }

void NodeProcess::tick() {
  if (stopped_) return;
  const ProcessSet others =
      ProcessSet::full(transport_.process_count()) - ProcessSet{self()};
  transport_.broadcast(others,
                       HeartbeatMessage::make(signer_, heartbeat_seq_++));
  for (ProcessId peer : others) {
    // While a suspicion against `peer` is live, piling up further
    // expectations adds nothing: the suspicion only clears when a
    // heartbeat arrives, which re-arms expectations on the next tick.
    if (fd_.suspected().contains(peer)) continue;
    fd_.expect(peer,
               [](ProcessId, const sim::PayloadPtr& m) {
                 return dynamic_cast<const HeartbeatMessage*>(m.get()) !=
                        nullptr;
               },
               "heartbeat");
  }
  // Anti-entropy every 16th tick: forward-on-change gossip is reliable
  // only over reliable links, so an UPDATE lost to a partition (or a TCP
  // reconnect window) is never re-sent and matrices would stay split after
  // the heal. Re-offering the known signed rows makes dissemination
  // self-healing; receivers absorb duplicates without re-forwarding.
  if (heartbeat_seq_ % 16 == 0) selector_.resync();
  transport_.timers().schedule_after(heartbeat_period_, [this] { tick(); });
}

void NodeProcess::on_message(ProcessId from, const sim::PayloadPtr& message) {
  // Authenticate, then feed the failure detector (RECEIVE/DELIVER) and
  // dispatch to the module the message belongs to.
  if (auto update =
          std::dynamic_pointer_cast<const suspect::UpdateMessage>(message)) {
    if (!update->verify(signer_, transport_.process_count())) return;
    fd_.on_receive(from, message);
    selector_.on_update(update);
    return;
  }
  if (auto heartbeat =
          std::dynamic_pointer_cast<const HeartbeatMessage>(message)) {
    if (!heartbeat->verify(signer_, transport_.process_count())) return;
    // Expectations target the *origin*: a heartbeat only counts for the
    // process that signed it.
    fd_.on_receive(heartbeat->origin, message);
    return;
  }
  // Unknown payloads are ignored (Byzantine noise).
}

}  // namespace qsel::runtime
