#include "runtime/follower_cluster.hpp"

#include "common/assert.hpp"

namespace qsel::runtime {

FollowerProcess::FollowerProcess(sim::Network& network,
                                 const crypto::KeyRegistry& keys,
                                 ProcessId self,
                                 const FollowerClusterConfig& config)
    : network_(network),
      signer_(keys, self),
      heartbeat_period_(config.heartbeat_period),
      fd_(network.simulator(), self, config.n, config.fd,
          [this](ProcessSet suspects) { selector_.on_suspected(suspects); }),
      selector_(
          signer_,
          fs::FollowerSelectorConfig{config.n, config.f, config.gossip},
          fs::FollowerSelector::Hooks{
              [](ProcessId, ProcessSet) { /* application consumes quorum */ },
              [this](sim::PayloadPtr msg) { broadcast_others(msg); },
              [this](ProcessId leader, Epoch epoch) {
                fd_.expect(
                    leader,
                    [epoch](ProcessId, const sim::PayloadPtr& m) {
                      auto* followers =
                          dynamic_cast<const fs::FollowersMessage*>(m.get());
                      return followers != nullptr && followers->epoch == epoch;
                    },
                    "followers", /*backoff_on_cancel=*/true);
              },
              [this] { fd_.cancel_all(); },
              [this](ProcessId culprit) { fd_.detected(culprit); },
              [this](ProcessId to, sim::PayloadPtr msg) {
                network_.send(signer_.self(), to, msg);
              }}) {}

void FollowerProcess::broadcast_others(const sim::PayloadPtr& message) {
  network_.broadcast(
      self(), ProcessSet::full(network_.process_count()) - ProcessSet{self()},
      message);
}

void FollowerProcess::start() {
  if (heartbeat_period_ == 0) return;
  tick();
}

void FollowerProcess::tick() {
  const auto heartbeat = HeartbeatMessage::make(signer_, heartbeat_seq_++);
  const ProcessId lead = selector_.leader();
  if (lead == self()) {
    // The leader heartbeats everyone and expects heartbeats back from its
    // quorum (the processes whose liveness the application depends on).
    broadcast_others(heartbeat);
    for (ProcessId peer : selector_.quorum()) {
      if (peer == self() || fd_.suspected().contains(peer)) continue;
      fd_.expect(peer,
                 [](ProcessId, const sim::PayloadPtr& m) {
                   return dynamic_cast<const HeartbeatMessage*>(m.get()) !=
                          nullptr;
                 },
                 "heartbeat");
    }
  } else {
    // Followers (and bystanders) heartbeat the leader and expect the
    // leader's heartbeat; they do not monitor each other.
    network_.send(self(), lead, heartbeat);
    if (!fd_.suspected().contains(lead)) {
      fd_.expect(lead,
                 [](ProcessId, const sim::PayloadPtr& m) {
                   return dynamic_cast<const HeartbeatMessage*>(m.get()) !=
                          nullptr;
                 },
                 "heartbeat");
    }
  }
  // Anti-entropy every 16th tick: forward-on-change UPDATE gossip and the
  // one-shot FOLLOWERS broadcast are both reliable only over reliable
  // links, so a message lost to a partition would otherwise leave matrices
  // (and with them leader/quorum state) split forever after the heal.
  // Re-offering the own row and the current announcement makes both
  // propagation paths self-healing; receivers absorb duplicates without
  // re-forwarding or re-evaluating.
  if (heartbeat_seq_ % 16 == 0) {
    selector_.resync();
    if (auto announcement = selector_.announcement(); announcement != nullptr)
      broadcast_others(announcement);
  }
  network_.simulator().schedule_after(heartbeat_period_, [this] { tick(); });
}

void FollowerProcess::on_message(ProcessId from,
                                 const sim::PayloadPtr& message) {
  if (auto update =
          std::dynamic_pointer_cast<const suspect::UpdateMessage>(message)) {
    if (!update->verify(signer_, network_.process_count())) return;
    fd_.on_receive(from, message);
    selector_.on_update(update);
    return;
  }
  if (auto delta = std::dynamic_pointer_cast<const suspect::DeltaUpdateMessage>(
          message)) {
    if (!delta->verify(signer_, network_.process_count())) return;
    fd_.on_receive(from, message);
    selector_.on_delta(delta);
    return;
  }
  if (auto digests =
          std::dynamic_pointer_cast<const suspect::RowDigestMessage>(message)) {
    selector_.on_row_digests(from, *digests);
    return;
  }
  if (auto followers =
          std::dynamic_pointer_cast<const fs::FollowersMessage>(message)) {
    if (!followers->verify(signer_, network_.process_count())) return;
    // The expectation targets the leader that signed the message, not the
    // forwarder it happened to arrive from.
    fd_.on_receive(followers->leader, message);
    selector_.on_followers(followers);
    return;
  }
  if (auto heartbeat =
          std::dynamic_pointer_cast<const HeartbeatMessage>(message)) {
    if (!heartbeat->verify(signer_, network_.process_count())) return;
    fd_.on_receive(heartbeat->origin, message);
    // Every process heartbeats the leader it believes in, so a heartbeat
    // reaching the stable leader from outside its quorum marks a sender
    // whose view may be stale (it missed the FOLLOWERS broadcast, e.g.
    // across a partition). Retransmit the announcement verbatim so one
    // lost broadcast cannot wedge the sender forever; duplicates are
    // idempotent and never read as equivocation.
    if (auto announcement = selector_.announcement();
        announcement != nullptr &&
        !selector_.quorum().contains(heartbeat->origin))
      network_.send(self(), heartbeat->origin, announcement);
    return;
  }
}

FollowerCluster::FollowerCluster(FollowerClusterConfig config,
                                 ProcessSet byzantine)
    : config_([&] {
        config.network.fifo_links = true;  // Section VIII assumption
        return config;
      }()),
      keys_(config_.n, config_.seed),
      network_(std::make_unique<sim::Network>(sim_, config_.n, config_.network,
                                              config_.seed)),
      correct_(ProcessSet::full(config_.n) - byzantine),
      processes_(config_.n) {
  QSEL_REQUIRE(byzantine.is_subset_of(ProcessSet::full(config_.n)));
  for (ProcessId id : correct_) {
    processes_[id] =
        std::make_unique<FollowerProcess>(*network_, keys_, id, config_);
    network_->attach(id, *processes_[id]);
  }
}

FollowerProcess& FollowerCluster::process(ProcessId id) {
  QSEL_REQUIRE(id < config_.n && processes_[id] != nullptr);
  return *processes_[id];
}

void FollowerCluster::attach_tracer(trace::Tracer& tracer) {
  tracer.set_clock([this] { return sim_.now(); });
  network_->set_tracer(&tracer);
  for (ProcessId id : correct_) processes_[id]->selector().set_tracer(&tracer);
}

void FollowerCluster::start() {
  for (ProcessId id : correct_) processes_[id]->start();
}

ProcessSet FollowerCluster::alive() const {
  ProcessSet result;
  for (ProcessId id : correct_)
    if (!network_->is_crashed(id)) result.insert(id);
  return result;
}

std::optional<std::pair<ProcessId, ProcessSet>>
FollowerCluster::agreed_leader_quorum() const {
  std::optional<std::pair<ProcessId, ProcessSet>> agreed;
  for (ProcessId id : alive()) {
    const auto current = std::make_pair(processes_[id]->leader(),
                                        processes_[id]->quorum());
    if (!agreed) {
      agreed = current;
    } else if (*agreed != current) {
      return std::nullopt;
    }
  }
  return agreed;
}

std::uint64_t FollowerCluster::total_quorums_issued() const {
  std::uint64_t total = 0;
  for (ProcessId id : alive())
    total += processes_[id]->selector().quorums_issued();
  return total;
}

std::uint64_t FollowerCluster::max_quorums_issued() const {
  std::uint64_t most = 0;
  for (ProcessId id : alive())
    most = std::max(most, processes_[id]->selector().quorums_issued());
  return most;
}

}  // namespace qsel::runtime
