// SimTransport — one process's view of the simulated network as a
// net::Transport.
//
// Adapts (sim::Network&, self) to the per-node Transport interface that
// runtime::NodeProcess is written against. Delivery stays synchronous with
// the simulator's event loop: the adapter registers itself as the
// process's sim::Actor and forwards on_message straight into the handler,
// so a NodeProcess over SimTransport produces exactly the event order the
// pre-refactor QuorumProcess did (the pinned-digest corpus depends on it).
#pragma once

#include "net/transport.hpp"
#include "sim/network.hpp"

namespace qsel::runtime {

class SimTransport final : public net::Transport, public sim::Actor {
 public:
  SimTransport(sim::Network& network, ProcessId self)
      : network_(network), self_(self) {
    network_.attach(self, *this);
  }

  ProcessId self() const override { return self_; }
  ProcessId process_count() const override {
    return network_.process_count();
  }
  sim::Simulator& timers() override { return network_.simulator(); }
  SimDuration round_length() const override {
    return network_.round_length();
  }

  void set_handler(Handler handler) override {
    handler_ = std::move(handler);
  }

  void send(ProcessId to, sim::PayloadPtr message) override {
    network_.send(self_, to, std::move(message));
  }

  void broadcast(ProcessSet targets, const sim::PayloadPtr& message) override {
    network_.broadcast(self_, targets, message);
  }

  void on_message(ProcessId from, const sim::PayloadPtr& message) override {
    if (handler_) handler_(from, message);
  }

 private:
  sim::Network& network_;
  ProcessId self_;
  Handler handler_;
};

}  // namespace qsel::runtime
