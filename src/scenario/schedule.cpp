#include "scenario/schedule.hpp"

#include <cctype>
#include <set>
#include <sstream>
#include <utility>

namespace qsel::scenario {

namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kCrash, "crash"},
    {FaultKind::kLinkDown, "link_down"},
    {FaultKind::kLinkUp, "link_up"},
    {FaultKind::kLinkDelay, "link_delay"},
    {FaultKind::kPartition, "partition"},
    {FaultKind::kHeal, "heal"},
    {FaultKind::kInjectSuspicion, "inject_suspicion"},
    {FaultKind::kRestart, "restart"},
};

// Flat-field JSON extraction, same discipline as trace/jsonl.cpp: keys are
// fixed identifiers, values are unsigned integers or short quoted names.
std::size_t value_offset(std::string_view text, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string_view::npos) return std::string_view::npos;
  std::size_t offset = at + needle.size();
  while (offset < text.size() &&
         std::isspace(static_cast<unsigned char>(text[offset])))
    ++offset;
  return offset;
}

std::optional<std::uint64_t> parse_u64_field(std::string_view text,
                                             std::string_view key) {
  std::size_t at = value_offset(text, key);
  if (at == std::string_view::npos) return std::nullopt;
  std::uint64_t value = 0;
  bool any = false;
  while (at < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[at]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[at] - '0');
    ++at;
    any = true;
  }
  if (!any) return std::nullopt;
  return value;
}

std::optional<std::string> parse_str_field(std::string_view text,
                                           std::string_view key) {
  std::size_t at = value_offset(text, key);
  if (at == std::string_view::npos || at >= text.size() || text[at] != '"')
    return std::nullopt;
  ++at;
  const std::size_t end = text.find('"', at);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(text.substr(at, end - at));
}

std::optional<FaultAction> parse_action(std::string_view chunk) {
  const auto at = parse_u64_field(chunk, "at");
  const auto kind_name = parse_str_field(chunk, "kind");
  if (!at || !kind_name) return std::nullopt;
  const auto kind = fault_kind_from_name(*kind_name);
  if (!kind) return std::nullopt;
  FaultAction action;
  action.at = *at;
  action.kind = *kind;
  if (const auto a = parse_u64_field(chunk, "a"))
    action.a = static_cast<ProcessId>(*a);
  if (const auto b = parse_u64_field(chunk, "b"))
    action.b = static_cast<ProcessId>(*b);
  action.value = parse_u64_field(chunk, "value").value_or(0);
  return action;
}

}  // namespace

std::string_view protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kQuorumSelection:
      return "qs";
    case Protocol::kFollowerSelection:
      return "fs";
    case Protocol::kXPaxos:
      return "xpaxos";
    case Protocol::kBChain:
      return "bchain";
    case Protocol::kPbft:
      return "pbft";
  }
  return "?";
}

std::optional<Protocol> protocol_from_name(std::string_view name) {
  if (name == "qs") return Protocol::kQuorumSelection;
  if (name == "fs") return Protocol::kFollowerSelection;
  if (name == "xpaxos") return Protocol::kXPaxos;
  if (name == "bchain") return Protocol::kBChain;
  if (name == "pbft") return Protocol::kPbft;
  return std::nullopt;
}

bool protocol_is_smr(Protocol p) {
  return p == Protocol::kXPaxos || p == Protocol::kBChain ||
         p == Protocol::kPbft;
}

std::string_view fault_kind_name(FaultKind kind) {
  for (const auto& [k, name] : kKindNames)
    if (k == kind) return name;
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (const auto& [kind, kind_name] : kKindNames)
    if (kind_name == name) return kind;
  return std::nullopt;
}

std::string FaultAction::to_string() const {
  std::ostringstream os;
  os << "[" << static_cast<double>(at) / 1e6 << "ms] " << fault_kind_name(kind);
  switch (kind) {
    case FaultKind::kCrash:
      os << " p" << a;
      break;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      os << " p" << a << "->p" << b;
      break;
    case FaultKind::kLinkDelay:
      os << " p" << a << "->p" << b << " +"
         << static_cast<double>(value) / 1e6 << "ms";
      break;
    case FaultKind::kPartition:
      os << " sideA=" << ProcessSet(value).to_string();
      break;
    case FaultKind::kHeal:
      break;
    case FaultKind::kInjectSuspicion:
      os << " p" << a << " suspects p" << b;
      break;
    case FaultKind::kRestart:
      os << " p" << a;
      break;
  }
  return os.str();
}

ProcessSet Schedule::culprits() const {
  ProcessSet set = byzantine;
  for (const FaultAction& action : actions) {
    switch (action.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLinkDown:
      case FaultKind::kLinkDelay:
        set.insert(action.a);
        break;
      default:
        break;
    }
  }
  return set;
}

bool Schedule::has_partition() const {
  for (const FaultAction& action : actions)
    if (action.kind == FaultKind::kPartition) return true;
  return false;
}

bool Schedule::attributable() const {
  return !has_partition() && pre_gst_extra == 0 &&
         culprits().size() <= f;
}

std::optional<std::string> Schedule::validate() const {
  const auto err = [](const std::string& what) {
    return std::optional<std::string>(what);
  };
  if (n < 2 || n > kMaxProcesses) return err("n out of range");
  if (f < 1) return err("f must be >= 1");
  if (static_cast<int>(n) - f <= f) return err("need n - f > f");
  if (protocol == Protocol::kFollowerSelection && static_cast<int>(n) <= 3 * f)
    return err("follower selection needs n > 3f");
  if ((protocol == Protocol::kBChain || protocol == Protocol::kPbft) &&
      static_cast<int>(n) < 3 * f + 1)
    return err("bchain/pbft need n >= 3f + 1");
  if (!byzantine.is_subset_of(ProcessSet::full(n)))
    return err("byzantine id out of range");
  if (byzantine.size() > f) return err("more than f byzantine processes");
  if (protocol_is_smr(protocol) && !byzantine.empty())
    return err("smr schedules drive no byzantine adversary");
  if (protocol_is_smr(protocol) && requests == 0)
    return err("smr schedules need requests >= 1");
  if (quiet_window == 0) return err("empty quiet window");
  if (mux_clients != 0 && protocol != Protocol::kQuorumSelection)
    return err("mux_clients needs a quorum-selection schedule");
  if (static_cast<int>(n) + static_cast<int>(mux_clients) >
      static_cast<int>(kMaxProcesses))
    return err("n + mux_clients out of range");
  if (min_final_epoch != 0 && protocol != Protocol::kQuorumSelection &&
      protocol != Protocol::kFollowerSelection)
    return err("min_final_epoch needs a selection schedule");
  // The synchronous family claims the network is synchronous from the
  // start; a pre-GST asynchronous period contradicts that claim.
  if (synchronous && (gst != 0 || pre_gst_extra != 0))
    return err("synchronous schedule cannot have a pre-GST period");

  SimTime prev = 0;
  bool partition_open = false;
  std::set<std::pair<ProcessId, ProcessId>> links_down;
  ProcessSet down;  // crashed and not (yet) restarted
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const FaultAction& action = actions[i];
    const std::string where = "action " + std::to_string(i) + ": ";
    if (action.at < prev) return err(where + "actions not time-ordered");
    prev = action.at;
    if (action.at >= quiet_start)
      return err(where + "action after quiet_start");
    switch (action.kind) {
      case FaultKind::kCrash:
        if (action.a >= n) return err(where + "crash victim out of range");
        if (down.contains(action.a))
          return err(where + "victim already crashed");
        down.insert(action.a);
        break;
      case FaultKind::kRestart:
        // Crash-recovery is only modelled for the durable NodeProcess
        // stack; the other clusters have no recovery path to exercise.
        if (protocol != Protocol::kQuorumSelection)
          return err(where + "restart needs a quorum-selection schedule");
        // The mux-wrapped cluster models no recovery path (one durable
        // stack per substrate is enough; the wedge surface is framing).
        if (mux_clients != 0)
          return err(where + "restart not modelled behind a group mux");
        if (action.a >= n) return err(where + "restart victim out of range");
        // Byzantine processes are never instantiated (the adversary
        // speaks for them at the network layer), so there is no process
        // to rebuild — QuorumCluster::restart() would abort.
        if (byzantine.contains(action.a))
          return err(where + "restart victim is byzantine");
        if (!down.contains(action.a))
          return err(where + "restart without a prior crash");
        down.erase(action.a);
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkDelay:
        if (action.a >= n || action.b >= n || action.a == action.b)
          return err(where + "bad link endpoints");
        if (action.kind == FaultKind::kLinkDown)
          links_down.insert({action.a, action.b});
        else if (action.kind == FaultKind::kLinkUp)
          links_down.erase({action.a, action.b});
        break;
      case FaultKind::kPartition: {
        const ProcessSet side(action.value);
        if (side.empty() || !side.is_subset_of(ProcessSet::full(n)) ||
            side == ProcessSet::full(n))
          return err(where + "partition side not a proper nonempty subset");
        partition_open = true;
        break;
      }
      case FaultKind::kHeal:
        partition_open = false;
        break;
      case FaultKind::kInjectSuspicion:
        if (!byzantine.contains(action.a))
          return err(where + "suspicion author not byzantine");
        if (action.b >= n || action.b == action.a)
          return err(where + "bad suspicion victim");
        break;
    }
  }
  if (partition_open) return err("partition never healed");
  // Messages lost inside a partition are legitimately never re-sent by
  // forward-on-change gossip alone; post-heal repair runs through the
  // anti-entropy resync, which is driven by heartbeat ticks. A partitioned
  // schedule with heartbeats disabled therefore is not owed CRDT
  // convergence (or any eventual property) — reject it here so the
  // convergence oracle can stay unconditional.
  if (has_partition() && heartbeat_period == 0)
    return err("partitioned schedule needs a heartbeat period");
  // Same model boundary as the partition rule: a link between two
  // processes that stays dead through the quiet window means GST never
  // arrives for that pair (one CORRECT endpoint would falsely suspect a
  // live process forever), so the eventual properties are not owed.
  if (!links_down.empty()) return err("link never restored");
  if (culprits().size() > f)
    return err("faults attributed to more than f processes");
  return std::nullopt;
}

std::string Schedule::summary() const {
  std::ostringstream os;
  os << protocol_name(protocol) << " n=" << n << " f=" << f
     << " seed=" << seed << " actions=" << actions.size();
  if (!byzantine.empty()) os << " byz=" << byzantine.to_string();
  if (has_partition()) os << " partition";
  if (pre_gst_extra > 0)
    os << " gst=" << static_cast<double>(gst) / 1e6 << "ms";
  if (mux_clients > 0) os << " mux+" << static_cast<int>(mux_clients);
  if (min_final_epoch > 0) os << " min_epoch=" << min_final_epoch;
  if (synchronous) os << " sync";
  return os.str();
}

std::string Schedule::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"protocol\": \"" << protocol_name(protocol) << "\",\n";
  os << "  \"n\": " << n << ",\n";
  os << "  \"f\": " << f << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"gst\": " << gst << ",\n";
  os << "  \"pre_gst_extra\": " << pre_gst_extra << ",\n";
  os << "  \"heartbeat_period\": " << heartbeat_period << ",\n";
  os << "  \"byzantine\": " << byzantine.mask() << ",\n";
  os << "  \"requests\": " << requests << ",\n";
  os << "  \"quiet_start\": " << quiet_start << ",\n";
  os << "  \"quiet_window\": " << quiet_window << ",\n";
  // Optional fields are emitted only when set, so reproducers from before
  // they existed stay byte-identical and parse with the same defaults.
  if (mux_clients != 0)
    os << "  \"mux_clients\": " << static_cast<int>(mux_clients) << ",\n";
  if (min_final_epoch != 0)
    os << "  \"min_final_epoch\": " << min_final_epoch << ",\n";
  if (synchronous) os << "  \"synchronous\": 1,\n";
  os << "  \"actions\": [";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const FaultAction& action = actions[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"at\":" << action.at << ",\"kind\":\""
       << fault_kind_name(action.kind) << "\"";
    if (action.a != kNoProcess) os << ",\"a\":" << action.a;
    if (action.b != kNoProcess) os << ",\"b\":" << action.b;
    if (action.value != 0) os << ",\"value\":" << action.value;
    os << "}";
  }
  os << (actions.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::optional<Schedule> Schedule::from_json(std::string_view text) {
  const std::size_t actions_at = text.find("\"actions\"");
  if (actions_at == std::string_view::npos) return std::nullopt;
  const std::string_view header = text.substr(0, actions_at);

  Schedule schedule;
  const auto proto_name = parse_str_field(header, "protocol");
  if (!proto_name) return std::nullopt;
  const auto protocol = protocol_from_name(*proto_name);
  if (!protocol) return std::nullopt;
  schedule.protocol = *protocol;
  const auto n = parse_u64_field(header, "n");
  const auto f = parse_u64_field(header, "f");
  const auto seed = parse_u64_field(header, "seed");
  const auto quiet_start = parse_u64_field(header, "quiet_start");
  const auto quiet_window = parse_u64_field(header, "quiet_window");
  if (!n || !f || !seed || !quiet_start || !quiet_window) return std::nullopt;
  schedule.n = static_cast<ProcessId>(*n);
  schedule.f = static_cast<int>(*f);
  schedule.seed = *seed;
  schedule.gst = parse_u64_field(header, "gst").value_or(0);
  schedule.pre_gst_extra = parse_u64_field(header, "pre_gst_extra").value_or(0);
  schedule.heartbeat_period =
      parse_u64_field(header, "heartbeat_period").value_or(5'000'000);
  schedule.byzantine =
      ProcessSet(parse_u64_field(header, "byzantine").value_or(0));
  schedule.requests = parse_u64_field(header, "requests").value_or(0);
  schedule.quiet_start = *quiet_start;
  schedule.quiet_window = *quiet_window;
  schedule.mux_clients = static_cast<ProcessId>(
      parse_u64_field(header, "mux_clients").value_or(0));
  schedule.min_final_epoch =
      static_cast<Epoch>(parse_u64_field(header, "min_final_epoch").value_or(0));
  schedule.synchronous =
      parse_u64_field(header, "synchronous").value_or(0) != 0;

  // Actions: every {...} chunk after "actions" (no nesting in the schema).
  std::size_t cursor = actions_at;
  while (true) {
    const std::size_t open = text.find('{', cursor);
    if (open == std::string_view::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string_view::npos) return std::nullopt;
    const auto action = parse_action(text.substr(open, close - open + 1));
    if (!action) return std::nullopt;
    schedule.actions.push_back(*action);
    cursor = close + 1;
  }
  return schedule;
}

}  // namespace qsel::scenario
