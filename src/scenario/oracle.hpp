// PropertyOracle — the paper's guarantees as machine-checked predicates.
//
// The runner reduces a finished execution to plain Observations; the
// oracles are pure functions over (Schedule, Observations), so every
// check is unit-testable without re-running a simulation. Checked
// properties, with the premises under which each is sound:
//
//   Termination   (Section IV-A)  no quorum is issued inside the quiet
//                                 window — always checked;
//   Agreement     (Section IV-A)  all live correct processes report the
//                                 same quorum (and leader, for Follower
//                                 Selection) of size n - f — always;
//   No suspicion  (Section IV-A / VIII)  no quorum member suspects another
//                                 member (Algorithm 1), resp. no member
//                                 suspects the leader and the leader
//                                 suspects no member (Algorithm 2) — always;
//   Theorem 3     at most f(f+1)+1 quorums per epoch per correct process
//                 for Algorithm 1 — always (the bound needs only that a
//                 quorum exists at each issue, i.e. the live suspicion
//                 edges have a vertex cover of size <= f);
//   Theorem 9 /   at most 3f+1 quorums per epoch, resp. 6f+2 in total,
//   Corollary 10  for Follower Selection — only on attributable()
//                 schedules (the proofs assume all suspicions trace back
//                 to f faulty processes, which partitions and pre-GST
//                 asynchrony deliberately violate);
//   CRDT          alive fully-correct processes hold identical suspicion
//   convergence   matrices — always. Partitioned schedules are covered
//                 too: SuspicionCore::resync's full-matrix anti-entropy
//                 re-offers every origin's latest signed UPDATE, so state
//                 split by a heal-ed partition (or orphaned by a crashed
//                 origin) reunifies epidemically. The one configuration
//                 where the repair cannot run — a partition with
//                 heartbeats disabled — is rejected by Schedule::validate;
//   SMR           executed histories prefix-consistent — always; all
//   comparators   client requests complete — only on fault-free schedules
//                 (XPaxos, BChain and PBFT share the check);
//   Epoch         schedules with min_final_epoch set assert the
//   progress      no-independent-set -> advance-epoch path fired — always.
//
// Trace-digest determinism (same schedule twice => same digest) is the
// one property that needs two runs; the fuzz driver checks it by calling
// the runner twice rather than through this layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "scenario/schedule.hpp"
#include "suspect/suspicion_matrix.hpp"

namespace qsel::scenario {

/// Final state of one honest process, as the oracles need it.
struct ProcessObservation {
  ProcessId id = kNoProcess;
  bool alive = false;    // honest and never crashed
  bool culprit = false;  // schedule faults are attributed to it
  ProcessSet quorum;
  ProcessId leader = kNoProcess;  // Follower Selection only
  ProcessSet suspected;           // failure-detector suspect set
  Epoch epoch = 1;
  std::uint64_t quorums_issued = 0;
  /// (epoch, quorums issued in it), ascending by epoch.
  std::vector<std::pair<Epoch, std::uint64_t>> quorums_per_epoch;
  std::optional<suspect::SuspicionMatrix> matrix;
};

struct Observations {
  std::vector<ProcessObservation> processes;
  /// Sum of quorums issued across honest processes, sampled at
  /// quiet_start and again at quiet_start + quiet_window.
  std::uint64_t issued_at_quiet = 0;
  std::uint64_t issued_at_end = 0;
  // SMR comparators (XPaxos / BChain / PBFT) only.
  bool histories_consistent = true;
  std::uint64_t completed_requests = 0;
  /// View changes (PBFT/XPaxos) resp. chain reconfigurations (BChain).
  std::uint64_t view_changes = 0;
};

struct Violation {
  std::string oracle;  // "termination", "agreement", ...
  std::string detail;

  std::string to_string() const { return oracle + ": " + detail; }
};

struct OracleReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

OracleReport check_oracles(const Schedule& schedule, const Observations& obs);

}  // namespace qsel::scenario
