#include "scenario/runner.hpp"

#include <map>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "runtime/follower_cluster.hpp"
#include "runtime/quorum_cluster.hpp"
#include "suspect/update_message.hpp"
#include "trace/tracer.hpp"
#include "xpaxos/cluster.hpp"

namespace qsel::scenario {

namespace {

constexpr SimDuration kMs = 1'000'000;

sim::NetworkConfig network_config(const Schedule& schedule) {
  sim::NetworkConfig config;
  config.base_latency = 1 * kMs;
  config.jitter = 200'000;
  config.gst = schedule.gst;
  config.pre_gst_extra = schedule.pre_gst_extra;
  return config;
}

trace::TracerConfig tracer_config(const RunOptions& options) {
  trace::TracerConfig config;
  config.enabled = options.trace;
  config.jsonl_path = options.trace_jsonl_path;
  return config;
}

/// Applies the fault timeline plus per-author adversary rows to whichever
/// cluster is running; `honest` is where injected UPDATEs are gossiped.
class ActionApplier {
 public:
  /// `restart` rebuilds a crashed process from its durable store; only the
  /// quorum-selection cluster supplies one (Schedule::validate rejects
  /// kRestart for the other protocols).
  ActionApplier(sim::Network& network, const crypto::KeyRegistry& keys,
                ProcessSet honest,
                std::function<void(ProcessId)> restart = {})
      : network_(network),
        keys_(keys),
        honest_(honest),
        restart_(std::move(restart)) {}

  void apply(const FaultAction& action) {
    const ProcessId n = network_.process_count();
    switch (action.kind) {
      case FaultKind::kCrash:
        network_.crash(action.a);
        break;
      case FaultKind::kLinkDown:
        network_.set_link_enabled(action.a, action.b, false);
        break;
      case FaultKind::kLinkUp:
        network_.set_link_enabled(action.a, action.b, true);
        break;
      case FaultKind::kLinkDelay:
        network_.set_link_extra_delay(action.a, action.b, action.value);
        break;
      case FaultKind::kPartition: {
        const ProcessSet side_a(action.value);
        network_.partition(side_a, ProcessSet::full(n) - side_a);
        break;
      }
      case FaultKind::kHeal:
        network_.heal_partition();
        break;
      case FaultKind::kInjectSuspicion: {
        auto& row = rows_[action.a];
        if (row.empty()) row.assign(n, 0);
        row[action.b] = 1;  // epoch-1 suspicion stamp
        const crypto::Signer signer(keys_, action.a);
        const auto update = suspect::UpdateMessage::make(signer, row);
        for (ProcessId to : honest_) network_.send(action.a, to, update);
        break;
      }
      case FaultKind::kRestart:
        QSEL_REQUIRE_MSG(restart_ != nullptr,
                         "restart action on a cluster without recovery");
        restart_(action.a);
        break;
    }
  }

 private:
  sim::Network& network_;
  const crypto::KeyRegistry& keys_;
  ProcessSet honest_;
  std::function<void(ProcessId)> restart_;
  std::map<ProcessId, std::vector<Epoch>> rows_;
};

void run_timeline(const Schedule& schedule, sim::Simulator& sim,
                  ActionApplier& applier) {
  for (const FaultAction& action : schedule.actions) {
    sim.run_until(action.at);
    applier.apply(action);
  }
}

std::vector<std::pair<Epoch, std::uint64_t>> per_epoch_counts(
    const auto& history) {
  std::map<Epoch, std::uint64_t> counts;
  for (const auto& record : history) ++counts[record.epoch];
  return {counts.begin(), counts.end()};
}

/// Test-only corruption (see TestBug): the lowest-id live process reports
/// its initial default configuration instead of its real one.
void apply_test_bug(const Schedule& schedule, Observations& obs) {
  for (ProcessObservation& process : obs.processes) {
    if (!process.alive) continue;
    if (process.quorums_issued == 0) return;  // bug needs a quorum change
    process.quorum = ProcessSet::range(
        0, static_cast<ProcessId>(static_cast<int>(schedule.n) - schedule.f));
    process.leader = 0;
    return;
  }
}

template <class Cluster>
void finish(const Schedule& schedule, const RunOptions& options,
            Cluster& cluster, const trace::Tracer& tracer,
            Observations& obs, RunResult& result) {
  if (options.test_bug == TestBug::kStuckQuorum)
    apply_test_bug(schedule, obs);
  result.observations = obs;
  result.report = check_oracles(schedule, result.observations);
  if (options.trace) result.digest = tracer.digest();
  result.events_processed = cluster.simulator().events_processed();
  result.messages_sent = cluster.network().stats().total_messages();
}

RunResult run_quorum_selection(const Schedule& schedule,
                               const RunOptions& options) {
  runtime::QuorumClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.seed = schedule.seed;
  config.network = network_config(schedule);
  config.fd.initial_timeout = 12 * kMs;
  config.heartbeat_period = schedule.heartbeat_period;

  trace::Tracer tracer(tracer_config(options));
  runtime::QuorumCluster cluster(config, schedule.byzantine);
  if (options.trace) cluster.attach_tracer(tracer);
  cluster.start();

  ActionApplier applier(
      cluster.network(), cluster.keys(), cluster.correct(),
      [&cluster](ProcessId id) { cluster.restart(id); });
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  obs.issued_at_quiet = cluster.total_quorums_issued();
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.issued_at_end = cluster.total_quorums_issued();

  const ProcessSet culprits = schedule.culprits();
  for (ProcessId id : cluster.correct()) {
    runtime::QuorumProcess& process = cluster.process(id);
    ProcessObservation po;
    po.id = id;
    po.alive = !cluster.network().is_crashed(id);
    po.culprit = culprits.contains(id);
    po.quorum = process.quorum();
    po.suspected = process.failure_detector().suspected();
    po.epoch = process.selector().epoch();
    po.quorums_issued = process.selector().quorums_issued();
    po.quorums_per_epoch = per_epoch_counts(process.selector().history());
    po.matrix = process.selector().matrix();
    result.max_epoch = std::max(result.max_epoch, po.epoch);
    result.total_quorums += po.quorums_issued;
    obs.processes.push_back(std::move(po));
  }
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

RunResult run_follower_selection(const Schedule& schedule,
                                 const RunOptions& options) {
  runtime::FollowerClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.seed = schedule.seed;
  config.network = network_config(schedule);
  config.fd.initial_timeout = 12 * kMs;
  config.heartbeat_period = schedule.heartbeat_period;

  trace::Tracer tracer(tracer_config(options));
  runtime::FollowerCluster cluster(config, schedule.byzantine);
  if (options.trace) cluster.attach_tracer(tracer);
  cluster.start();

  ActionApplier applier(cluster.network(), cluster.keys(), cluster.correct());
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  obs.issued_at_quiet = cluster.total_quorums_issued();
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.issued_at_end = cluster.total_quorums_issued();

  const ProcessSet culprits = schedule.culprits();
  for (ProcessId id : cluster.correct()) {
    runtime::FollowerProcess& process = cluster.process(id);
    ProcessObservation po;
    po.id = id;
    po.alive = !cluster.network().is_crashed(id);
    po.culprit = culprits.contains(id);
    po.quorum = process.quorum();
    po.leader = process.leader();
    po.suspected = process.failure_detector().suspected();
    po.epoch = process.selector().epoch();
    po.quorums_issued = process.selector().quorums_issued();
    po.quorums_per_epoch = per_epoch_counts(process.selector().history());
    po.matrix = process.selector().core().matrix();
    result.max_epoch = std::max(result.max_epoch, po.epoch);
    result.total_quorums += po.quorums_issued;
    obs.processes.push_back(std::move(po));
  }
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

RunResult run_xpaxos(const Schedule& schedule, const RunOptions& options) {
  xpaxos::ClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.policy = xpaxos::QuorumPolicy::kQuorumSelection;
  config.clients = 1;
  config.seed = schedule.seed;
  config.network = network_config(schedule);
  config.fd.initial_timeout = 12 * kMs;

  trace::Tracer tracer(tracer_config(options));
  xpaxos::Cluster cluster(config);
  if (options.trace) {
    tracer.set_clock(
        [&sim = cluster.simulator()] { return sim.now(); });
    cluster.network().set_tracer(&tracer);
  }
  cluster.start_clients(schedule.requests);

  ActionApplier applier(cluster.network(), cluster.keys(), {});
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.histories_consistent = cluster.histories_consistent();
  obs.completed_requests = cluster.total_completed();
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

}  // namespace

RunResult run_schedule(const Schedule& schedule, const RunOptions& options) {
  const auto error = schedule.validate();
  QSEL_REQUIRE_MSG(!error.has_value(), "invalid schedule");
  switch (schedule.protocol) {
    case Protocol::kQuorumSelection:
      return run_quorum_selection(schedule, options);
    case Protocol::kFollowerSelection:
      return run_follower_selection(schedule, options);
    case Protocol::kXPaxos:
      return run_xpaxos(schedule, options);
  }
  QSEL_ASSERT_MSG(false, "unreachable");
  return {};
}

}  // namespace qsel::scenario
