#include "scenario/runner.hpp"

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bchain/cluster.hpp"
#include "common/assert.hpp"
#include "pbft/cluster.hpp"
#include "runtime/follower_cluster.hpp"
#include "runtime/quorum_cluster.hpp"
#include "shard/group_transport.hpp"
#include "suspect/update_message.hpp"
#include "trace/tracer.hpp"
#include "xpaxos/cluster.hpp"

namespace qsel::scenario {

namespace {

constexpr SimDuration kMs = 1'000'000;

sim::NetworkConfig network_config(const Schedule& schedule) {
  sim::NetworkConfig config;
  config.base_latency = 1 * kMs;
  // Synchronous-optimized mode: zero jitter, so delivery order is a pure
  // function of send order and the fault timeline. Schedules use it to
  // probe behaviour that only shows under (or only under the absence of)
  // timing noise.
  config.jitter = schedule.synchronous ? 0 : 200'000;
  config.gst = schedule.gst;
  config.pre_gst_extra = schedule.pre_gst_extra;
  return config;
}

trace::TracerConfig tracer_config(const RunOptions& options) {
  trace::TracerConfig config;
  config.enabled = options.trace;
  config.ring_capacity = options.ring_capacity;
  config.jsonl_path = options.trace_jsonl_path;
  return config;
}

/// Applies the fault timeline plus per-author adversary rows to whichever
/// cluster is running; `honest` is where injected UPDATEs are gossiped.
class ActionApplier {
 public:
  using InjectSend =
      std::function<void(ProcessId from, ProcessId to, sim::PayloadPtr)>;

  /// `row_width` is the protocol's process count n — injected suspicion
  /// rows must be n wide even when the network has extra client slots.
  /// `restart` rebuilds a crashed process from its durable store; only the
  /// quorum-selection cluster supplies one (Schedule::validate rejects
  /// kRestart for the other protocols). `inject_send`, when set, routes
  /// injected UPDATEs through the author's own transport stack instead of
  /// raw network sends (the GroupMux cluster needs the GroupFrame wrap).
  ActionApplier(sim::Network& network, const crypto::KeyRegistry& keys,
                ProcessSet honest, ProcessId row_width,
                std::function<void(ProcessId)> restart = {},
                InjectSend inject_send = {})
      : network_(network),
        keys_(keys),
        honest_(honest),
        row_width_(row_width),
        restart_(std::move(restart)),
        inject_send_(std::move(inject_send)) {}

  void apply(const FaultAction& action) {
    const ProcessId n = network_.process_count();
    switch (action.kind) {
      case FaultKind::kCrash:
        network_.crash(action.a);
        break;
      case FaultKind::kLinkDown:
        network_.set_link_enabled(action.a, action.b, false);
        break;
      case FaultKind::kLinkUp:
        network_.set_link_enabled(action.a, action.b, true);
        break;
      case FaultKind::kLinkDelay:
        network_.set_link_extra_delay(action.a, action.b, action.value);
        break;
      case FaultKind::kPartition: {
        const ProcessSet side_a(action.value);
        network_.partition(side_a, ProcessSet::full(n) - side_a);
        break;
      }
      case FaultKind::kHeal:
        network_.heal_partition();
        break;
      case FaultKind::kInjectSuspicion: {
        auto& row = rows_[action.a];
        if (row.empty()) row.assign(row_width_, 0);
        row[action.b] = 1;  // epoch-1 suspicion stamp
        const crypto::Signer signer(keys_, action.a);
        const auto update = suspect::UpdateMessage::make(signer, row);
        for (ProcessId to : honest_) {
          if (inject_send_ != nullptr)
            inject_send_(action.a, to, update);
          else
            network_.send(action.a, to, update);
        }
        break;
      }
      case FaultKind::kRestart:
        QSEL_REQUIRE_MSG(restart_ != nullptr,
                         "restart action on a cluster without recovery");
        restart_(action.a);
        break;
    }
  }

 private:
  sim::Network& network_;
  const crypto::KeyRegistry& keys_;
  ProcessSet honest_;
  ProcessId row_width_;
  std::function<void(ProcessId)> restart_;
  InjectSend inject_send_;
  std::map<ProcessId, std::vector<Epoch>> rows_;
};

void run_timeline(const Schedule& schedule, sim::Simulator& sim,
                  ActionApplier& applier) {
  for (const FaultAction& action : schedule.actions) {
    sim.run_until(action.at);
    applier.apply(action);
  }
}

std::vector<std::pair<Epoch, std::uint64_t>> per_epoch_counts(
    const auto& history) {
  std::map<Epoch, std::uint64_t> counts;
  for (const auto& record : history) ++counts[record.epoch];
  return {counts.begin(), counts.end()};
}

/// Test-only corruption (see TestBug): the lowest-id live process reports
/// its initial default configuration instead of its real one.
void apply_test_bug(const Schedule& schedule, Observations& obs) {
  for (ProcessObservation& process : obs.processes) {
    if (!process.alive) continue;
    if (process.quorums_issued == 0) return;  // bug needs a quorum change
    process.quorum = ProcessSet::range(
        0, static_cast<ProcessId>(static_cast<int>(schedule.n) - schedule.f));
    process.leader = 0;
    return;
  }
}

template <class Cluster>
void finish(const Schedule& schedule, const RunOptions& options,
            Cluster& cluster, const trace::Tracer& tracer,
            Observations& obs, RunResult& result) {
  if (options.test_bug == TestBug::kStuckQuorum)
    apply_test_bug(schedule, obs);
  result.observations = obs;
  result.report = check_oracles(schedule, result.observations);
  if (options.trace) {
    result.digest = tracer.digest();
    result.coverage = trace::coverage_of(tracer.type_counts());
    if (options.keep_events) result.events = tracer.events();
  }
  result.events_processed = cluster.simulator().events_processed();
  const auto& stats = cluster.network().stats();
  result.messages_sent = stats.total_messages();
  result.gossip_bytes = stats.bytes_by_type("suspect.update") +
                        stats.bytes_by_type("suspect.delta") +
                        stats.bytes_by_type("suspect.digest");
  result.view_changes = obs.view_changes;
}

/// The quorum-selection stack behind a GroupMux: every member gets a
/// SimTransport slot, a GroupMux, and one group whose id space is widened
/// by `mux_clients` client slots (members keep global == local ids). The
/// honest members run a plain NodeProcess over the group slice, so all
/// suspicion gossip crosses the GroupFrame wrap/decode path — the layer PR
/// 7's wedge lived in. Client slots stay unattached; Byzantine members
/// keep their transport stack so injected UPDATEs are framed like any
/// member's.
class MuxQuorumCluster {
 public:
  MuxQuorumCluster(const Schedule& schedule,
                   const runtime::QuorumClusterConfig& config)
      : total_(static_cast<ProcessId>(schedule.n + schedule.mux_clients)),
        keys_(total_, config.seed),
        network_(std::make_unique<sim::Network>(sim_, total_, config.network,
                                                config.seed)),
        correct_(ProcessSet::full(schedule.n) - schedule.byzantine),
        stores_(schedule.n),
        processes_(schedule.n) {
    shard::GroupSpec spec;
    spec.id = 0;
    for (ProcessId id = 0; id < schedule.n; ++id) spec.members.push_back(id);
    for (ProcessId id = schedule.n; id < total_; ++id)
      spec.clients.push_back(id);

    runtime::NodeProcessConfig node_config;
    node_config.n = config.n;
    node_config.f = config.f;
    node_config.fd = config.fd;
    node_config.heartbeat_period = config.heartbeat_period;
    node_config.gossip = config.gossip;
    for (ProcessId id = 0; id < schedule.n; ++id) {
      transports_.push_back(
          std::make_unique<runtime::SimTransport>(*network_, id));
      muxes_.push_back(std::make_unique<shard::GroupMux>(*transports_.back()));
      groups_.push_back(&muxes_.back()->add_group(spec));
    }
    for (ProcessId id : correct_) {
      stores_[id] = std::make_unique<store::MemoryNodeStore>();
      processes_[id] = std::make_unique<runtime::NodeProcess>(
          *groups_[id], keys_, node_config, stores_[id].get());
    }
  }

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }
  ProcessSet correct() const { return correct_; }

  runtime::NodeProcess& process(ProcessId id) {
    QSEL_REQUIRE(id < processes_.size() && processes_[id] != nullptr);
    return *processes_[id];
  }

  shard::GroupTransport& group(ProcessId id) {
    QSEL_REQUIRE(id < groups_.size());
    return *groups_[id];
  }

  void attach_tracer(trace::Tracer& tracer) {
    tracer.set_clock([this] { return sim_.now(); });
    network_->set_tracer(&tracer);
    for (ProcessId id : correct_)
      processes_[id]->selector().set_tracer(&tracer);
  }

  void start() {
    for (ProcessId id : correct_) processes_[id]->start();
  }

  std::uint64_t total_quorums_issued() const {
    std::uint64_t total = 0;
    for (ProcessId id : correct_)
      if (!network_->is_crashed(id))
        total += processes_[id]->selector().quorums_issued();
    return total;
  }

 private:
  ProcessId total_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet correct_;
  std::vector<std::unique_ptr<runtime::SimTransport>> transports_;
  std::vector<std::unique_ptr<shard::GroupMux>> muxes_;
  std::vector<shard::GroupTransport*> groups_;  // owned by muxes_
  std::vector<std::unique_ptr<store::NodeStore>> stores_;
  std::vector<std::unique_ptr<runtime::NodeProcess>> processes_;
};

/// Shared tail of both quorum-selection variants: replay the timeline,
/// observe every correct NodeProcess, check oracles.
template <class Cluster>
RunResult run_qs_tail(const Schedule& schedule, const RunOptions& options,
                      trace::Tracer& tracer, Cluster& cluster,
                      ActionApplier& applier) {
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  obs.issued_at_quiet = cluster.total_quorums_issued();
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.issued_at_end = cluster.total_quorums_issued();

  const ProcessSet culprits = schedule.culprits();
  for (ProcessId id : cluster.correct()) {
    runtime::NodeProcess& process = cluster.process(id);
    ProcessObservation po;
    po.id = id;
    po.alive = !cluster.network().is_crashed(id);
    po.culprit = culprits.contains(id);
    po.quorum = process.quorum();
    po.suspected = process.failure_detector().suspected();
    po.epoch = process.selector().epoch();
    po.quorums_issued = process.selector().quorums_issued();
    po.quorums_per_epoch = per_epoch_counts(process.selector().history());
    po.matrix = process.selector().matrix();
    result.max_epoch = std::max(result.max_epoch, po.epoch);
    result.total_quorums += po.quorums_issued;
    obs.processes.push_back(std::move(po));
  }
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

RunResult run_quorum_selection(const Schedule& schedule,
                               const RunOptions& options) {
  runtime::QuorumClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.seed = schedule.seed;
  config.network = network_config(schedule);
  config.fd.initial_timeout = 12 * kMs;
  config.heartbeat_period = schedule.heartbeat_period;

  trace::Tracer tracer(tracer_config(options));
  if (schedule.mux_clients == 0) {
    runtime::QuorumCluster cluster(config, schedule.byzantine);
    if (options.trace) cluster.attach_tracer(tracer);
    cluster.start();
    ActionApplier applier(
        cluster.network(), cluster.keys(), cluster.correct(), schedule.n,
        [&cluster](ProcessId id) { cluster.restart(id); });
    return run_qs_tail(schedule, options, tracer, cluster, applier);
  }
  MuxQuorumCluster cluster(schedule, config);
  if (options.trace) cluster.attach_tracer(tracer);
  cluster.start();
  ActionApplier applier(
      cluster.network(), cluster.keys(), cluster.correct(), schedule.n, {},
      [&cluster](ProcessId from, ProcessId to, sim::PayloadPtr message) {
        cluster.group(from).send(to, std::move(message));
      });
  return run_qs_tail(schedule, options, tracer, cluster, applier);
}

RunResult run_follower_selection(const Schedule& schedule,
                                 const RunOptions& options) {
  runtime::FollowerClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.seed = schedule.seed;
  config.network = network_config(schedule);
  config.fd.initial_timeout = 12 * kMs;
  config.heartbeat_period = schedule.heartbeat_period;

  trace::Tracer tracer(tracer_config(options));
  runtime::FollowerCluster cluster(config, schedule.byzantine);
  if (options.trace) cluster.attach_tracer(tracer);
  cluster.start();

  ActionApplier applier(cluster.network(), cluster.keys(), cluster.correct(),
                        schedule.n);
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  obs.issued_at_quiet = cluster.total_quorums_issued();
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.issued_at_end = cluster.total_quorums_issued();

  const ProcessSet culprits = schedule.culprits();
  for (ProcessId id : cluster.correct()) {
    runtime::FollowerProcess& process = cluster.process(id);
    ProcessObservation po;
    po.id = id;
    po.alive = !cluster.network().is_crashed(id);
    po.culprit = culprits.contains(id);
    po.quorum = process.quorum();
    po.leader = process.leader();
    po.suspected = process.failure_detector().suspected();
    po.epoch = process.selector().epoch();
    po.quorums_issued = process.selector().quorums_issued();
    po.quorums_per_epoch = per_epoch_counts(process.selector().history());
    po.matrix = process.selector().core().matrix();
    result.max_epoch = std::max(result.max_epoch, po.epoch);
    result.total_quorums += po.quorums_issued;
    obs.processes.push_back(std::move(po));
  }
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

RunResult run_xpaxos(const Schedule& schedule, const RunOptions& options) {
  xpaxos::ClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.policy = xpaxos::QuorumPolicy::kQuorumSelection;
  config.clients = 1;
  config.seed = schedule.seed;
  config.network = network_config(schedule);
  config.fd.initial_timeout = 12 * kMs;

  trace::Tracer tracer(tracer_config(options));
  xpaxos::Cluster cluster(config);
  if (options.trace) {
    tracer.set_clock(
        [&sim = cluster.simulator()] { return sim.now(); });
    cluster.network().set_tracer(&tracer);
  }
  cluster.start_clients(schedule.requests);

  ActionApplier applier(cluster.network(), cluster.keys(), {}, schedule.n);
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.histories_consistent = cluster.histories_consistent();
  obs.completed_requests = cluster.total_completed();
  obs.view_changes = cluster.total_view_changes();
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

RunResult run_pbft(const Schedule& schedule, const RunOptions& options) {
  pbft::ClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.clients = 1;
  config.seed = schedule.seed;
  config.network = network_config(schedule);

  trace::Tracer tracer(tracer_config(options));
  pbft::Cluster cluster(config);
  if (options.trace) {
    tracer.set_clock(
        [&sim = cluster.simulator()] { return sim.now(); });
    cluster.network().set_tracer(&tracer);
  }
  cluster.start_clients(schedule.requests);

  ActionApplier applier(cluster.network(), cluster.keys(), {}, schedule.n);
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.histories_consistent = cluster.histories_consistent();
  obs.completed_requests = cluster.total_completed();
  obs.view_changes = cluster.total_view_changes();
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

RunResult run_bchain(const Schedule& schedule, const RunOptions& options) {
  bchain::ClusterConfig config;
  config.n = schedule.n;
  config.f = schedule.f;
  config.clients = 1;
  config.seed = schedule.seed;
  config.network = network_config(schedule);

  trace::Tracer tracer(tracer_config(options));
  bchain::Cluster cluster(config);
  if (options.trace) {
    tracer.set_clock(
        [&sim = cluster.simulator()] { return sim.now(); });
    cluster.network().set_tracer(&tracer);
  }
  cluster.start_clients(schedule.requests);

  ActionApplier applier(cluster.network(), cluster.keys(), {}, schedule.n);
  run_timeline(schedule, cluster.simulator(), applier);
  cluster.simulator().run_until(schedule.quiet_start);

  RunResult result;
  Observations obs;
  cluster.simulator().run_until(schedule.quiet_start + schedule.quiet_window);
  obs.histories_consistent = cluster.histories_consistent();
  obs.completed_requests = cluster.total_completed();
  obs.view_changes = cluster.max_reconfigurations();
  finish(schedule, options, cluster, tracer, obs, result);
  return result;
}

}  // namespace

RunResult run_schedule(const Schedule& schedule, const RunOptions& options) {
  const auto error = schedule.validate();
  QSEL_REQUIRE_MSG(!error.has_value(), "invalid schedule");
  switch (schedule.protocol) {
    case Protocol::kQuorumSelection:
      return run_quorum_selection(schedule, options);
    case Protocol::kFollowerSelection:
      return run_follower_selection(schedule, options);
    case Protocol::kXPaxos:
      return run_xpaxos(schedule, options);
    case Protocol::kPbft:
      return run_pbft(schedule, options);
    case Protocol::kBChain:
      return run_bchain(schedule, options);
  }
  QSEL_ASSERT_MSG(false, "unreachable");
  return {};
}

}  // namespace qsel::scenario
