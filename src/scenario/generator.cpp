#include "scenario/generator.hpp"

#include <algorithm>

#include "adversary/follower_game.hpp"
#include "adversary/quorum_game.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/independent_set.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::scenario {

namespace {

constexpr SimDuration kMs = 1'000'000;

ProcessId pick_not(Rng& rng, ProcessId n, ProcessId avoid) {
  ProcessId id;
  do {
    id = static_cast<ProcessId>(rng.below(n));
  } while (id == avoid);
  return id;
}

ProcessSet pick_subset(Rng& rng, ProcessId n, int size) {
  ProcessSet set;
  while (set.size() < size)
    set.insert(static_cast<ProcessId>(rng.below(n)));
  return set;
}

void maybe_gst(Rng& rng, Schedule& schedule) {
  if (!rng.chance(0.35)) return;
  schedule.gst = rng.between(60, 150) * kMs;
  schedule.pre_gst_extra = rng.between(10, 40) * kMs;
}

/// Omission/timing faults on links adjacent to `culprits` (outgoing side,
/// so every caused suspicion has a culprit endpoint).
void add_link_faults(Rng& rng, Schedule& schedule, ProcessSet culprits,
                     int events, SimTime& t) {
  for (int i = 0; i < events; ++i) {
    t += rng.between(10, 60) * kMs;
    ProcessId culprit = culprits.min();
    for (ProcessId id : culprits)
      if (rng.chance(0.5)) culprit = id;
    const ProcessId victim = pick_not(rng, schedule.n, culprit);
    if (rng.chance(0.5)) {
      schedule.actions.push_back(
          {t, FaultKind::kLinkDown, culprit, victim, 0});
      // Always restore the link: a link that stays dead through the quiet
      // window would leave one CORRECT endpoint falsely suspecting a live
      // process forever, i.e. GST never arrives for that pair and the
      // eventual properties are not owed (Schedule::validate enforces
      // this model boundary).
      const SimTime up = t + rng.between(40, 200) * kMs;
      schedule.actions.push_back(
          {up, FaultKind::kLinkUp, culprit, victim, 0});
    } else {
      schedule.actions.push_back({t, FaultKind::kLinkDelay, culprit, victim,
                                  rng.between(15, 90) * kMs});
    }
  }
}

void generate_adversary_walk(Rng& rng, Schedule& schedule) {
  std::vector<std::pair<ProcessId, ProcessId>> walk;
  ProcessSet cover;
  if (schedule.protocol == Protocol::kQuorumSelection) {
    // Theorem-4 strategy: suspicions confined to a core of f + 2. The
    // exact game is feasible for the fuzzer's f range; fall back to the
    // greedy adversary beyond it.
    adversary::QuorumGame game(
        adversary::QuorumGameConfig{schedule.n, schedule.f, 0});
    const auto result = static_cast<ProcessId>(schedule.f + 2) <= 6
                            ? game.max_changes()
                            : game.greedy_changes();
    walk = result.suspicions;
    graph::SimpleGraph edges(schedule.n);
    for (const auto& [u, v] : walk) edges.add_edge(u, v);
    const auto attributed = graph::vertex_cover_within(edges, schedule.f);
    QSEL_ASSERT_MSG(attributed.has_value(),
                    "game plays are attributable by construction");
    cover = *attributed;
  } else {
    // Theorem-9 constructive walk (defined for n = 3f + 1); authors are
    // the faulty processes 0..f-1. When the schedule has spare bystanders
    // (n > 3f + 1, the follower-stress family) the walk plays on the
    // first 3f + 1 processes and leaves the rest untouched.
    const auto core = static_cast<ProcessId>(3 * schedule.f + 1);
    adversary::FollowerGame game(
        adversary::FollowerGameConfig{core, schedule.f, 0});
    walk = game.constructive_changes().suspicions;
    cover = ProcessSet::range(0, static_cast<ProcessId>(schedule.f));
  }
  schedule.byzantine = cover;
  // The paper's adversary waits for the quorum to be (re-)output before
  // the next suspicion; generous spacing models that without needing
  // feedback from the run.
  SimTime t = 20 * kMs;
  for (const auto& [u, v] : walk) {
    const ProcessId author = cover.contains(u) ? u : v;
    const ProcessId victim = author == u ? v : u;
    QSEL_ASSERT_MSG(cover.contains(author),
                    "every game edge has a faulty endpoint");
    schedule.actions.push_back(
        {t, FaultKind::kInjectSuspicion, author, victim, 0});
    t += rng.between(12, 30) * kMs;
  }
}

}  // namespace

ScheduleGenerator::ScheduleGenerator(GeneratorConfig config)
    : config_(config) {
  QSEL_REQUIRE(config.n_min >= 3 && config.n_max <= kMaxProcesses);
  QSEL_REQUIRE(config.n_min <= config.n_max);
  QSEL_REQUIRE(config.f_min >= 1 && config.f_min <= config.f_max);
  QSEL_REQUIRE_MSG(2 * config.f_min + 1 <= static_cast<int>(config.n_max),
                   "f_min infeasible for n_max");
}

Schedule ScheduleGenerator::generate(Protocol protocol,
                                     std::uint64_t seed) const {
  std::uint64_t mix =
      seed ^ (0x5ce11a5100ULL + static_cast<std::uint64_t>(protocol));
  Rng rng(splitmix64(mix));

  Schedule schedule;
  schedule.protocol = protocol;
  schedule.seed = splitmix64(mix);

  // Feasible (f, n): n - f > f always; Follower Selection and the
  // 3f+1-quorum baselines (PBFT, BChain's n with f spares) need n > 3f.
  const bool fs = protocol == Protocol::kFollowerSelection;
  const bool needs_3f = fs || protocol == Protocol::kPbft ||
                        protocol == Protocol::kBChain;
  int f = static_cast<int>(
      rng.between(static_cast<std::uint64_t>(config_.f_min),
                  static_cast<std::uint64_t>(config_.f_max)));
  const auto n_floor = [&](int ff) {
    return needs_3f ? 3 * ff + 1 : 2 * ff + 1;
  };
  while (f > config_.f_min && n_floor(f) > static_cast<int>(config_.n_max))
    --f;
  QSEL_REQUIRE(n_floor(f) <= static_cast<int>(config_.n_max));
  const ProcessId n_lo = std::max(config_.n_min,
                                  static_cast<ProcessId>(n_floor(f)));
  schedule.f = f;
  schedule.n = static_cast<ProcessId>(rng.between(n_lo, config_.n_max));

  SimTime t = 20 * kMs;
  // Quorum selection alone models crash-recovery (the durable NodeProcess
  // stack), so only its archetype space includes crash-then-restart.
  const std::uint64_t archetype =
      rng.below(protocol_is_smr(protocol)                ? 3
                : protocol == Protocol::kQuorumSelection ? 6
                                                         : 5);
  switch (archetype) {
    case 0: {  // link omission / timing faults
      maybe_gst(rng, schedule);
      const auto culprits =
          pick_subset(rng, schedule.n,
                      static_cast<int>(rng.between(
                          1, static_cast<std::uint64_t>(schedule.f))));
      add_link_faults(rng, schedule, culprits,
                      static_cast<int>(rng.between(1, 6)), t);
      break;
    }
    case 1: {  // crashes, possibly preceded by link faults on the victims
      maybe_gst(rng, schedule);
      const auto victims =
          pick_subset(rng, schedule.n,
                      static_cast<int>(rng.between(
                          1, static_cast<std::uint64_t>(schedule.f))));
      if (rng.chance(0.4))
        add_link_faults(rng, schedule, victims, 1, t);
      for (ProcessId victim : victims) {
        t += rng.between(15, 120) * kMs;
        schedule.actions.push_back(
            {t, FaultKind::kCrash, victim, kNoProcess, 0});
      }
      break;
    }
    case 2: {
      if (protocol_is_smr(protocol)) {  // benign, possibly asynchronous
        maybe_gst(rng, schedule);
        break;
      }
      // Partition(s) + heal; deliberately non-attributable faults.
      maybe_gst(rng, schedule);
      const int splits = rng.chance(0.3) ? 2 : 1;
      for (int i = 0; i < splits; ++i) {
        t += rng.between(20, 120) * kMs;
        const auto side = pick_subset(
            rng, schedule.n,
            static_cast<int>(rng.between(
                1, static_cast<std::uint64_t>(schedule.n) - 1)));
        schedule.actions.push_back(
            {t, FaultKind::kPartition, kNoProcess, kNoProcess, side.mask()});
        t += rng.between(80, 300) * kMs;
        schedule.actions.push_back(
            {t, FaultKind::kHeal, kNoProcess, kNoProcess, 0});
      }
      break;
    }
    case 3:  // Byzantine adversary walk (qs/fs only)
      if (fs) schedule.n = static_cast<ProcessId>(3 * f + 1);
      if (rng.chance(0.4)) schedule.heartbeat_period = 0;
      generate_adversary_walk(rng, schedule);
      break;
    case 5: {  // crash-then-restart (qs only): durable recovery under fire
      maybe_gst(rng, schedule);
      const auto victims =
          pick_subset(rng, schedule.n,
                      static_cast<int>(rng.between(
                          1, static_cast<std::uint64_t>(schedule.f))));
      for (ProcessId victim : victims) {
        t += rng.between(15, 100) * kMs;
        schedule.actions.push_back(
            {t, FaultKind::kCrash, victim, kNoProcess, 0});
        // Outage long enough for the survivors to suspect the victim and
        // advance epochs, so the restart rejoins a moved-on cluster from
        // its recovered (pre-crash) state.
        SimTime back = t + rng.between(120, 500) * kMs;
        schedule.actions.push_back(
            {back, FaultKind::kRestart, victim, kNoProcess, 0});
        // Sometimes kill the same victim again mid-rejoin: double
        // recovery of the same store must be idempotent.
        if (rng.chance(0.3)) {
          const SimTime again = back + rng.between(30, 120) * kMs;
          schedule.actions.push_back(
              {again, FaultKind::kCrash, victim, kNoProcess, 0});
          schedule.actions.push_back({again + rng.between(120, 400) * kMs,
                                      FaultKind::kRestart, victim,
                                      kNoProcess, 0});
        }
      }
      break;
    }
    default: {  // combined archetypes (qs/fs only)
      if (rng.chance(0.5)) {
        // Adversary walk with a partition opening mid-walk: injected
        // UPDATEs race the split, so one side converges on the walk's
        // suspicions while the other is cut off, and the heal must be
        // repaired by anti-entropy. Heartbeats stay ON — resync is
        // heartbeat-driven and is exactly the mechanism under test.
        if (fs) schedule.n = static_cast<ProcessId>(3 * f + 1);
        generate_adversary_walk(rng, schedule);
        const SimTime split = 20 * kMs + rng.between(10, 60) * kMs;
        const auto side = pick_subset(
            rng, schedule.n,
            static_cast<int>(rng.between(
                1, static_cast<std::uint64_t>(schedule.n) - 1)));
        schedule.actions.push_back(
            {split, FaultKind::kPartition, kNoProcess, kNoProcess,
             side.mask()});
        schedule.actions.push_back({split + rng.between(60, 250) * kMs,
                                    FaultKind::kHeal, kNoProcess, kNoProcess,
                                    0});
      } else {
        // Partition with crashes landing around the heal: suspicion state
        // about the victims is split across the cut at the moment they
        // die, so only gossip among the survivors can reunify it.
        maybe_gst(rng, schedule);
        t += rng.between(20, 80) * kMs;
        const auto side = pick_subset(
            rng, schedule.n,
            static_cast<int>(rng.between(
                1, static_cast<std::uint64_t>(schedule.n) - 1)));
        schedule.actions.push_back(
            {t, FaultKind::kPartition, kNoProcess, kNoProcess, side.mask()});
        const SimTime heal = t + rng.between(100, 300) * kMs;
        schedule.actions.push_back(
            {heal, FaultKind::kHeal, kNoProcess, kNoProcess, 0});
        const auto victims =
            pick_subset(rng, schedule.n,
                        static_cast<int>(rng.between(
                            1, static_cast<std::uint64_t>(schedule.f))));
        for (ProcessId victim : victims)
          schedule.actions.push_back({t + rng.between(50, 280) * kMs,
                                      FaultKind::kCrash, victim, kNoProcess,
                                      0});
      }
      break;
    }
  }

  if (protocol_is_smr(protocol)) {
    schedule.requests = rng.between(10, 25);
    schedule.heartbeat_period = 0;
  }

  std::stable_sort(
      schedule.actions.begin(), schedule.actions.end(),
      [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
  SimTime last = 0;
  for (const FaultAction& action : schedule.actions)
    last = std::max(last, action.at);
  // Partitions leave stale cross-side suspicions behind; the adaptive
  // failure detector plus epoch advances need a longer settle period
  // before the eventual properties can be demanded (tests/qs/partition_test
  // calibrates this empirically). Byzantine walks layered over a partition
  // add epoch churn on top of the stale suspicions, so they settle longest.
  const bool byzantine_partition =
      !schedule.byzantine.empty() && schedule.has_partition();
  schedule.quiet_start =
      last + (byzantine_partition ? 5000
              : schedule.has_partition() ? 4500
                                         : 3000) *
                 kMs;
  schedule.quiet_window = 2500 * kMs;

  const auto error = schedule.validate();
  QSEL_ASSERT_MSG(!error.has_value(), "generator emitted invalid schedule");
  return schedule;
}

Schedule ScheduleGenerator::generate_family(Family family,
                                            std::uint64_t seed) const {
  // Distinct stream per family, disjoint from generate()'s protocol mix.
  std::uint64_t mix =
      seed ^ (0xfa111e500ULL + (static_cast<std::uint64_t>(family) << 8));
  Rng rng(splitmix64(mix));

  Schedule schedule;
  schedule.seed = splitmix64(mix);
  SimTime t = 20 * kMs;
  switch (family) {
    case Family::kFollowerStress: {
      schedule.protocol = Protocol::kFollowerSelection;
      int f = static_cast<int>(
          rng.between(static_cast<std::uint64_t>(config_.f_min),
                      static_cast<std::uint64_t>(config_.f_max)));
      // Strictly above the 3f + 1 minimum: at least one spare bystander.
      while (f > config_.f_min &&
             3 * f + 2 > static_cast<int>(config_.n_max))
        --f;
      QSEL_REQUIRE_MSG(3 * f + 2 <= static_cast<int>(config_.n_max),
                       "follower stress needs n_max >= 3*f_min + 2");
      schedule.f = f;
      schedule.n = static_cast<ProcessId>(
          rng.between(static_cast<std::uint64_t>(3 * f + 2), config_.n_max));
      if (rng.chance(0.4)) schedule.heartbeat_period = 0;
      generate_adversary_walk(rng, schedule);
      if (rng.chance(0.5)) {
        // Link noise from the same culprits the walk already attributes
        // suspicions to, so the fault budget stays at f.
        SimTime lt = 30 * kMs;
        add_link_faults(rng, schedule, schedule.byzantine,
                        static_cast<int>(rng.between(1, 3)), lt);
      }
      break;
    }
    case Family::kSynchronous: {
      const bool fs = rng.chance(0.5);
      schedule.protocol =
          fs ? Protocol::kFollowerSelection : Protocol::kQuorumSelection;
      int f = static_cast<int>(
          rng.between(static_cast<std::uint64_t>(config_.f_min),
                      static_cast<std::uint64_t>(config_.f_max)));
      const auto n_floor = [&](int ff) {
        return fs ? 3 * ff + 1 : 2 * ff + 1;
      };
      while (f > config_.f_min &&
             n_floor(f) > static_cast<int>(config_.n_max))
        --f;
      QSEL_REQUIRE(n_floor(f) <= static_cast<int>(config_.n_max));
      schedule.f = f;
      schedule.n = static_cast<ProcessId>(rng.between(
          std::max(config_.n_min, static_cast<ProcessId>(n_floor(f))),
          config_.n_max));
      schedule.synchronous = true;  // zero jitter, no GST window
      const auto culprits =
          pick_subset(rng, schedule.n,
                      static_cast<int>(rng.between(
                          1, static_cast<std::uint64_t>(schedule.f))));
      // Delays straddling the 12 ms initial FD timeout: under jitter these
      // races are noise; with synchronous delivery whether an expectation
      // fires is decided by the delay value alone.
      const int events = static_cast<int>(rng.between(2, 6));
      for (int i = 0; i < events; ++i) {
        t += rng.between(10, 50) * kMs;
        ProcessId culprit = culprits.min();
        for (ProcessId id : culprits)
          if (rng.chance(0.5)) culprit = id;
        const ProcessId victim = pick_not(rng, schedule.n, culprit);
        schedule.actions.push_back({t, FaultKind::kLinkDelay, culprit, victim,
                                    rng.between(9, 15) * kMs});
      }
      if (rng.chance(0.35)) {
        t += rng.between(20, 80) * kMs;
        ProcessId victim = culprits.min();
        for (ProcessId id : culprits)
          if (rng.chance(0.5)) victim = id;
        schedule.actions.push_back(
            {t, FaultKind::kCrash, victim, kNoProcess, 0});
      }
      break;
    }
  }

  std::stable_sort(
      schedule.actions.begin(), schedule.actions.end(),
      [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
  SimTime last = 0;
  for (const FaultAction& action : schedule.actions)
    last = std::max(last, action.at);
  schedule.quiet_start =
      last + (schedule.has_partition() ? 4500 : 3000) * kMs;
  schedule.quiet_window = 2500 * kMs;

  const auto error = schedule.validate();
  QSEL_ASSERT_MSG(!error.has_value(), "family generator emitted invalid schedule");
  return schedule;
}

}  // namespace qsel::scenario
