#include "scenario/shrinker.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "scenario/atoms.hpp"

namespace qsel::scenario {

namespace {

constexpr SimDuration kMs = 1'000'000;

class Shrinker {
 public:
  Shrinker(const Schedule& original, const ShrinkProbe& probe)
      : probe_(probe) {
    const OracleReport baseline = probe_(original);
    ++runs_;
    QSEL_REQUIRE_MSG(!baseline.ok(), "shrink_schedule needs a failing run");
    for (const Violation& violation : baseline.violations)
      target_oracles_.insert(violation.oracle);
    best_ = original;
    best_report_ = baseline;
  }

  /// True iff `candidate` is valid and violates one of the original
  /// run's oracles; remembers it as the new best when it does.
  bool fails(const Schedule& candidate) {
    if (candidate.validate().has_value()) return false;
    const OracleReport report = probe_(candidate);
    ++runs_;
    for (const Violation& violation : report.violations) {
      if (target_oracles_.count(violation.oracle) == 0) continue;
      best_ = candidate;
      best_report_ = report;
      return true;
    }
    return false;
  }

  /// Classic ddmin over atoms: alternate reduce-to-chunk and
  /// reduce-to-complement at increasing granularity.
  std::vector<Atom> ddmin(std::vector<Atom> atoms) {
    std::size_t granularity = 2;
    while (atoms.size() >= 2) {
      const std::vector<std::vector<Atom>> chunks =
          split(atoms, granularity);
      bool reduced = false;
      for (const auto& chunk : chunks) {
        if (chunk.size() < atoms.size() && fails(rebuild(best_, chunk))) {
          atoms = chunk;
          granularity = 2;
          reduced = true;
          break;
        }
      }
      if (reduced) continue;
      for (std::size_t i = 0; i < chunks.size() && granularity > 2; ++i) {
        std::vector<Atom> complement;
        for (std::size_t j = 0; j < chunks.size(); ++j)
          if (j != i)
            complement.insert(complement.end(), chunks[j].begin(),
                              chunks[j].end());
        if (fails(rebuild(best_, complement))) {
          atoms = complement;
          granularity = std::max<std::size_t>(2, granularity - 1);
          reduced = true;
          break;
        }
      }
      if (reduced) continue;
      if (granularity >= atoms.size()) break;
      granularity = std::min(atoms.size(), granularity * 2);
    }
    return atoms;
  }

  ShrinkResult run(const Schedule& original) {
    std::vector<Atom> atoms = ddmin(make_atoms(original));
    // Greedy single-atom sweep: ddmin guarantees 1-minimality only up to
    // its chunking; a final pass is cheap and often removes stragglers.
    for (std::size_t i = 0; i < atoms.size();) {
      std::vector<Atom> without = atoms;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(rebuild(best_, without))) {
        atoms = std::move(without);
        i = 0;
      } else {
        ++i;
      }
    }

    // Simplification passes on the surviving schedule: drop pre-GST
    // asynchrony, then compact the timeline.
    {
      Schedule candidate = best_;
      if (candidate.gst != 0 || candidate.pre_gst_extra != 0) {
        candidate.gst = 0;
        candidate.pre_gst_extra = 0;
        fails(candidate);
      }
    }
    {
      Schedule candidate = best_;
      SimTime t = 20 * kMs;
      for (FaultAction& action : candidate.actions) {
        action.at = t;
        t += 25 * kMs;
      }
      SimTime last = candidate.actions.empty() ? 0 : (t - 25 * kMs);
      candidate.quiet_start =
          last + (candidate.has_partition() ? 4500 : 3000) * kMs;
      fails(candidate);
    }

    return {best_, best_report_, runs_};
  }

 private:
  static std::vector<std::vector<Atom>> split(const std::vector<Atom>& atoms,
                                              std::size_t granularity) {
    std::vector<std::vector<Atom>> chunks;
    const std::size_t size = atoms.size();
    const std::size_t parts = std::min(granularity, size);
    std::size_t start = 0;
    for (std::size_t i = 0; i < parts; ++i) {
      const std::size_t end = start + (size - start) / (parts - i);
      chunks.emplace_back(atoms.begin() + static_cast<std::ptrdiff_t>(start),
                          atoms.begin() + static_cast<std::ptrdiff_t>(end));
      start = end;
    }
    return chunks;
  }

  const ShrinkProbe& probe_;
  std::set<std::string> target_oracles_;
  Schedule best_;
  OracleReport best_report_;
  std::uint64_t runs_ = 0;
};

}  // namespace

ShrinkResult shrink_schedule(const Schedule& schedule,
                             const ShrinkProbe& probe) {
  Shrinker shrinker(schedule, probe);
  return shrinker.run(schedule);
}

}  // namespace qsel::scenario
