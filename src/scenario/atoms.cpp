#include "scenario/atoms.hpp"

#include <algorithm>

namespace qsel::scenario {

namespace {
constexpr SimDuration kMs = 1'000'000;
}

std::vector<Atom> make_atoms(const Schedule& schedule) {
  std::vector<Atom> atoms;
  std::vector<bool> used(schedule.actions.size(), false);
  for (std::size_t i = 0; i < schedule.actions.size(); ++i) {
    if (used[i]) continue;
    const FaultAction& action = schedule.actions[i];
    Atom atom{action};
    used[i] = true;
    if (action.kind == FaultKind::kPartition ||
        action.kind == FaultKind::kLinkDown ||
        action.kind == FaultKind::kCrash) {
      const FaultKind closer = action.kind == FaultKind::kPartition
                                   ? FaultKind::kHeal
                               : action.kind == FaultKind::kLinkDown
                                   ? FaultKind::kLinkUp
                                   : FaultKind::kRestart;
      for (std::size_t j = i + 1; j < schedule.actions.size(); ++j) {
        const FaultAction& later = schedule.actions[j];
        if (used[j] || later.kind != closer) continue;
        if (closer == FaultKind::kLinkUp &&
            (later.a != action.a || later.b != action.b))
          continue;
        if (closer == FaultKind::kRestart && later.a != action.a) continue;
        atom.push_back(later);
        used[j] = true;
        break;
      }
      // A crash with no matching restart is its own (single) atom.
    }
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

Schedule rebuild(const Schedule& base, const std::vector<Atom>& atoms) {
  Schedule schedule = base;
  schedule.actions.clear();
  for (const Atom& atom : atoms)
    schedule.actions.insert(schedule.actions.end(), atom.begin(), atom.end());
  std::stable_sort(
      schedule.actions.begin(), schedule.actions.end(),
      [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
  SimTime last = 0;
  for (const FaultAction& action : schedule.actions)
    last = std::max(last, action.at);
  schedule.quiet_start =
      last + (schedule.has_partition() ? 4500 : 3000) * kMs;
  return schedule;
}

}  // namespace qsel::scenario
