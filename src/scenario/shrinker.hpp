// ScheduleShrinker — delta-debugs a failing schedule to a minimal repro.
//
// Given a schedule whose run violates an oracle, the shrinker searches for
// a smaller schedule that still fails, using ddmin over *atoms* rather
// than raw actions: a kPartition and the kHeal that closes it form one
// atom (Schedule::validate() requires every partition healed), and a
// kLinkDown travels with its matching kLinkUp so removal never changes
// which links stay severed at quiescence. Every candidate must pass
// Schedule::validate() before it is run, so shrinking cannot leave the
// oracle premises (attributability, healed partitions) silently broken.
//
// After the action set is minimal, a coalescing pass pulls the remaining
// actions onto a compact early timeline and retightens quiet_start, which
// makes reproducers both small and fast. The failure being chased is
// pinned by the set of violated oracle names: a candidate "still fails"
// only if it violates at least one oracle the original run violated, so
// shrinking cannot drift onto an unrelated bug.
#pragma once

#include <cstdint>
#include <functional>

#include "scenario/runner.hpp"
#include "scenario/schedule.hpp"

namespace qsel::scenario {

struct ShrinkResult {
  Schedule schedule;        // smallest failing schedule found
  OracleReport report;      // its oracle report
  std::uint64_t runs = 0;   // simulations spent shrinking
};

/// Runs one candidate and reports whether it still exhibits the failure.
using ShrinkProbe = std::function<OracleReport(const Schedule&)>;

/// Shrinks `schedule`, which must fail under `probe` (typically a lambda
/// around run_schedule with fixed RunOptions). Deterministic: the same
/// input schedule and probe always produce the same minimal schedule.
ShrinkResult shrink_schedule(const Schedule& schedule, const ShrinkProbe& probe);

}  // namespace qsel::scenario
