#include "scenario/oracle.hpp"

#include <sstream>

namespace qsel::scenario {

namespace {

void violate(OracleReport& report, std::string oracle, std::string detail) {
  report.violations.push_back({std::move(oracle), std::move(detail)});
}

void check_selection(const Schedule& schedule, const Observations& obs,
                     OracleReport& report) {
  const bool fs = schedule.protocol == Protocol::kFollowerSelection;

  // Termination: the quiet window must be quiet.
  if (obs.issued_at_end != obs.issued_at_quiet) {
    std::ostringstream os;
    os << obs.issued_at_end - obs.issued_at_quiet
       << " quorums issued inside the quiet window";
    violate(report, "termination", os.str());
  }

  // Agreement: every alive process reports a quorum of the specified size
  // q = n - f. For Algorithm 1 agreement is *per-epoch*, like views in a
  // view-change protocol: epoch advancement is path-dependent on the
  // transient matrix states a process happened to evaluate, so two correct
  // processes can terminate at different epochs — each holding the
  // lexicographically-first independent set of its own epoch's graph,
  // where a different slice of stale stamps is still live — and nothing
  // ever forces the laggard forward (an unchanged-row broadcast merges as
  // no-change). Cross-epoch quorum equality is therefore not owed; found
  // by the fuzzer on action-free pre-GST-asynchrony schedules and present
  // in the paper's pseudocode too (EXPERIMENTS.md finding 8). Follower
  // Selection synchronizes through the leader's FOLLOWERS announcement,
  // so there the check is global and includes the leader.
  const ProcessObservation* reference = nullptr;
  for (const ProcessObservation& process : obs.processes) {
    if (!process.alive) continue;
    if (!reference) reference = &process;
    if (process.quorum.size() != static_cast<int>(schedule.n) - schedule.f) {
      std::ostringstream os;
      os << "p" << process.id << " reports quorum "
         << process.quorum.to_string() << " of size "
         << process.quorum.size() << ", want "
         << static_cast<int>(schedule.n) - schedule.f;
      violate(report, "agreement", os.str());
    }
  }
  if (!reference)
    violate(report, "agreement", "no live correct process to observe");
  for (const ProcessObservation& a : obs.processes) {
    if (!a.alive) continue;
    for (const ProcessObservation& b : obs.processes) {
      if (!b.alive || b.id <= a.id) continue;
      if (!fs && a.epoch != b.epoch) continue;
      if (a.quorum != b.quorum || (fs && a.leader != b.leader)) {
        std::ostringstream os;
        os << "p" << a.id << " reports " << a.quorum.to_string() << " but p"
           << b.id << " reports " << b.quorum.to_string();
        if (!fs) os << " (both in epoch " << a.epoch << ")";
        violate(report, "agreement", os.str());
      }
    }
  }
  if (fs && reference && !reference->quorum.contains(reference->leader)) {
    std::ostringstream os;
    os << "leader p" << reference->leader << " outside quorum "
       << reference->quorum.to_string();
    violate(report, "agreement", os.str());
  }

  // No suspicion (Algorithm 1), resp. no leader suspicion (Algorithm 2).
  // Algorithm 1 is judged against each member's *own* quorum (quorums are
  // per-epoch, see above); Follower Selection against the agreed one.
  for (const ProcessObservation& process : obs.processes) {
    if (fs || !process.alive || !process.quorum.contains(process.id)) continue;
    if (process.suspected.intersects(process.quorum)) {
      std::ostringstream os;
      os << "member p" << process.id << " suspects "
         << (process.suspected & process.quorum).to_string()
         << " inside quorum " << process.quorum.to_string();
      violate(report, "no_suspicion", os.str());
    }
  }
  if (fs && reference) {
    const ProcessSet quorum = reference->quorum;
    const ProcessId leader = reference->leader;
    for (const ProcessObservation& process : obs.processes) {
      if (!process.alive || !quorum.contains(process.id)) continue;
      if (process.id != leader && process.suspected.contains(leader)) {
        std::ostringstream os;
        os << "member p" << process.id << " suspects leader p" << leader;
        violate(report, "no_suspicion", os.str());
      }
      if (process.id == leader && process.suspected.intersects(quorum)) {
        std::ostringstream os;
        os << "leader suspects " << (process.suspected & quorum).to_string()
           << " inside quorum " << quorum.to_string();
        violate(report, "no_suspicion", os.str());
      }
    }
  }

  // Per-epoch quorum-change bounds. The Theorem 3 bound holds on every
  // run (see oracle.hpp); the Follower Selection bounds need the faults
  // to be attributable to f processes.
  const std::uint64_t per_epoch_bound =
      fs ? static_cast<std::uint64_t>(3 * schedule.f + 1)
         : static_cast<std::uint64_t>(schedule.f * (schedule.f + 1) + 1);
  const bool epoch_bound_sound = !fs || schedule.attributable();
  for (const ProcessObservation& process : obs.processes) {
    for (const auto& [epoch, count] : process.quorums_per_epoch) {
      if (epoch_bound_sound && count > per_epoch_bound) {
        std::ostringstream os;
        os << "p" << process.id << " issued " << count
           << " quorums in epoch " << epoch << " (bound " << per_epoch_bound
           << ")";
        violate(report, fs ? "theorem9_bound" : "theorem3_bound", os.str());
      }
    }
    if (fs && schedule.attributable() &&
        process.quorums_issued >
            static_cast<std::uint64_t>(6 * schedule.f + 2)) {
      std::ostringstream os;
      os << "p" << process.id << " issued " << process.quorums_issued
         << " quorums in total (Corollary 10 bound " << 6 * schedule.f + 2
         << ")";
      violate(report, "corollary10_bound", os.str());
    }
  }

  // Epoch progress: schedules pinned as epoch-advance reproducers assert
  // that the no-independent-set path actually fired. Judged on the
  // maximum because epoch advancement is path-dependent (see the
  // per-epoch agreement note above): the property being pinned is "some
  // correct process was forced past epoch min_final_epoch - 1", not that
  // every laggard was dragged along.
  if (schedule.min_final_epoch > 0) {
    Epoch top = 0;
    for (const ProcessObservation& process : obs.processes)
      if (process.alive) top = std::max(top, process.epoch);
    if (top < schedule.min_final_epoch) {
      std::ostringstream os;
      os << "no correct process advanced past epoch " << top
         << " (schedule pins min_final_epoch " << schedule.min_final_epoch
         << ")";
      violate(report, "epoch_progress", os.str());
    }
  }

  // Suspicion-matrix CRDT convergence among alive fully-correct
  // processes. Unconditional: full-matrix anti-entropy (SuspicionCore::
  // resync re-offers the latest signed UPDATE of every origin) makes
  // dissemination epidemic, so matrices must reunify even across healed
  // partitions and around crashed or silent origins. Schedules where the
  // repair mechanism cannot run (partition with heartbeats disabled) are
  // rejected by Schedule::validate, not excused here.
  const ProcessObservation* first = nullptr;
  for (const ProcessObservation& process : obs.processes) {
    if (!process.alive || process.culprit || !process.matrix) continue;
    if (!first) {
      first = &process;
      continue;
    }
    if (!(*process.matrix == *first->matrix)) {
      std::ostringstream os;
      os << "p" << first->id << " and p" << process.id
         << " hold different suspicion matrices at quiescence";
      violate(report, "crdt_convergence", os.str());
    }
  }
}

void check_smr(const Schedule& schedule, const Observations& obs,
               OracleReport& report) {
  if (!obs.histories_consistent)
    violate(report, "history_consistency",
            "honest replicas executed diverging histories");
  if (schedule.actions.empty() && schedule.pre_gst_extra == 0 &&
      obs.completed_requests != schedule.requests) {
    std::ostringstream os;
    os << obs.completed_requests << "/" << schedule.requests
       << " requests completed on a fault-free run";
    violate(report, "liveness", os.str());
  }
}

}  // namespace

std::string OracleReport::to_string() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << "; ";
    os << violations[i].to_string();
  }
  return os.str();
}

OracleReport check_oracles(const Schedule& schedule, const Observations& obs) {
  OracleReport report;
  if (protocol_is_smr(schedule.protocol))
    check_smr(schedule, obs, report);
  else
    check_selection(schedule, obs, report);
  return report;
}

}  // namespace qsel::scenario
