// Schedule atoms — the indivisible fault units mutation operates on.
//
// Both the shrinker (removal) and the campaign mutator (splice,
// perturbation, retiming) must respect the schedule invariants enforced
// by Schedule::validate(): a kPartition travels with the kHeal that
// closes it, a kLinkDown with its matching kLinkUp, a kCrash with its
// kRestart. Decomposing a schedule into such atoms and rebuilding from an
// atom list is the shared vocabulary; rebuild() also recomputes the
// settle period before quiet_start the same way the shrinker always has,
// so mutated schedules get a quiet window calibrated to their fault mix.
#pragma once

#include <vector>

#include "scenario/schedule.hpp"

namespace qsel::scenario {

/// Indivisible unit of removal or mutation: one action, or a pair that
/// must live and die together (partition+heal, link_down+link_up,
/// crash+restart).
using Atom = std::vector<FaultAction>;

/// Decomposes the schedule's actions into atoms, pairing each opener with
/// its closer. A crash with no matching restart is its own (single) atom.
std::vector<Atom> make_atoms(const Schedule& schedule);

/// Rebuilds `base` with exactly `atoms` as its action list: flattens,
/// re-sorts by time and retightens quiet_start to the settle period the
/// fault mix needs (longer when a partition is present).
Schedule rebuild(const Schedule& base, const std::vector<Atom>& atoms);

}  // namespace qsel::scenario
