// ScheduleGenerator — seeded randomized fault schedules.
//
// From a single 64-bit seed the generator derives one complete Schedule:
// system size, GST placement and a fault script drawn from one of five
// archetypes —
//
//   link faults:  omission and timing failures on links adjacent to at
//                 most f culprit processes (some healed, some permanent);
//   crashes:      up to f crash failures, possibly mixed with link faults
//                 on the same culprits;
//   partition:    a network split (optionally nested link faults), always
//                 healed before the quiet window so the eventual
//                 properties apply;
//   adversary:    a Byzantine suspicion walk taken from src/adversary —
//                 the Theorem-4 interruption strategy against Algorithm 1
//                 (exact game for small cores) or the constructive 3f-walk
//                 against Follower Selection (Theorem 9) — replayed as
//                 kInjectSuspicion actions from the cover processes;
//   combined:     fault classes layered (qs/fs only): either the adversary
//                 walk with a partition opening mid-walk (heartbeats stay
//                 on — the post-heal repair runs through the anti-entropy
//                 resync), or a partition with up to f crashes landing
//                 around the heal, so suspicion state about the victims
//                 must reunify through survivor gossip alone.
//
// Every generated schedule passes Schedule::validate(): faults stay
// within the f budget (partitions excepted — they are deliberately
// non-attributable), partitions are healed, and the quiet window starts
// after a settle period long enough for the adaptive failure detector to
// re-stabilize. Identical (config, seed) pairs generate identical
// schedules on every platform; the fuzzer's swarm is just a seed range.
#pragma once

#include <cstdint>

#include "scenario/schedule.hpp"

namespace qsel::scenario {

struct GeneratorConfig {
  ProcessId n_min = 4;
  ProcessId n_max = 10;
  int f_min = 1;
  int f_max = 3;
};

/// Targeted scenario families outside the seed-indexed archetype space.
/// Each family draws from its own rng stream, so adding one never shifts
/// the schedules generate() derives (the pinned corpus depends on that).
enum class Family : std::uint8_t {
  /// Follower Selection with strictly more processes than the 3f + 1
  /// minimum: the adversary walk runs while spare bystanders exist, so
  /// maximal-line leader derivation has real choice.
  kFollowerStress = 0,
  /// Synchronous-optimized runs (zero jitter, no GST window) with link
  /// delays straddling the failure detector's initial timeout — timing
  /// behaviour that jitter would otherwise wash out.
  kSynchronous = 1,
};

class ScheduleGenerator {
 public:
  explicit ScheduleGenerator(GeneratorConfig config);

  /// Derives the whole schedule from (protocol, seed), deterministically.
  Schedule generate(Protocol protocol, std::uint64_t seed) const;

  /// Derives a schedule of the given family from `seed`, deterministically.
  Schedule generate_family(Family family, std::uint64_t seed) const;

 private:
  GeneratorConfig config_;
};

}  // namespace qsel::scenario
