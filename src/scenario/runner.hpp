// ScenarioRunner — executes a Schedule against the composed system.
//
// Builds the cluster the schedule names (QuorumCluster, FollowerCluster
// or the XPaxos stack), replays the FaultAction timeline on the simulated
// network at the scheduled virtual times, lets the system settle, reduces
// the final state to oracle::Observations and returns the oracle report
// together with the run's chained trace digest. Running the same schedule
// twice must produce identical digests — the fuzz driver uses that as the
// determinism oracle, and the corpus regression test pins digests of
// known-interesting seeds.
//
// kInjectSuspicion actions realize the adversary strategies of Theorems 4
// and 9 in the live system: the runner accumulates one suspicion row per
// Byzantine author and gossips each increment as a correctly-signed
// UPDATE to every honest process (equivocation-free; the CRDT merge makes
// equivocating variants converge to the same state anyway).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "scenario/oracle.hpp"
#include "scenario/schedule.hpp"
#include "trace/coverage.hpp"
#include "trace/event.hpp"

namespace qsel::scenario {

/// Test-only behaviour corruptions, used to prove the oracle + shrinker
/// pipeline catches real bugs (see tests/scenario/shrinker_test.cpp).
/// kStuckQuorum makes the lowest-id live process report its initial
/// default quorum (and leader) instead of its true final output whenever
/// the run made it change quorum at least once — an agreement bug that
/// only manifests on schedules that actually force a quorum change.
enum class TestBug : std::uint8_t { kNone = 0, kStuckQuorum };

struct RunOptions {
  /// Attach a tracer and compute the chained digest (slightly slower).
  bool trace = true;
  /// When non-empty, the trace is also streamed to this JSONL file.
  std::string trace_jsonl_path;
  /// Tracer ring size; 0 retains every event (needed to diff two traces).
  std::size_t ring_capacity = 65536;
  /// Copy the retained events into RunResult::events after the run.
  bool keep_events = false;
  TestBug test_bug = TestBug::kNone;
};

struct RunResult {
  OracleReport report;
  Observations observations;
  /// Chained trace digest (zero when RunOptions::trace is false).
  crypto::Digest digest{};
  std::uint64_t events_processed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t total_quorums = 0;
  Epoch max_epoch = 1;
  /// View changes (PBFT/XPaxos) or reconfigurations (BChain); 0 for the
  /// selection-only protocols.
  std::uint64_t view_changes = 0;
  /// Suspicion-plane wire bytes: full-row + delta UPDATEs + digest
  /// anti-entropy. The campaign uses this as its amplification signal.
  std::uint64_t gossip_bytes = 0;
  /// Coverage signature of the run's trace (zero when trace is off).
  trace::CoverageSignature coverage{};
  /// Retained trace events, oldest first (only when keep_events).
  std::vector<trace::Event> events;
};

/// Runs `schedule` to quiescence and checks every applicable oracle. The
/// schedule must be valid (Schedule::validate()).
RunResult run_schedule(const Schedule& schedule, const RunOptions& options = {});

}  // namespace qsel::scenario
