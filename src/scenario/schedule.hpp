// Fault schedules — the typed timeline the scenario fuzzer runs.
//
// A Schedule is a complete, self-contained description of one randomized
// execution: the protocol under test, the system size, the seeds, the
// eventual-synchrony parameters (GST placement), the ids reserved for a
// Byzantine adversary, and a time-ordered list of FaultActions applied to
// the simulated network (crashes, link omission/timing faults, partitions
// and heals, adversary-injected suspicion stamps). Because the simulator
// is deterministic, (Schedule, code version) -> trace digest is a pure
// function, which is what lets the shrinker re-run candidate schedules and
// the corpus test pin digests of interesting seeds.
//
// Schedules serialize to a small JSON format (hand-rolled like
// trace/jsonl.*; the repo has no JSON dependency and does not want one) so
// a failing schedule can be checked in next to its trace as a reproducer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace qsel::scenario {

/// Which composed system a schedule drives.
enum class Protocol : std::uint8_t {
  kQuorumSelection = 0,  // runtime::QuorumCluster (Algorithm 1)
  kFollowerSelection,    // runtime::FollowerCluster (Algorithm 2)
  kXPaxos,               // xpaxos::Cluster (Section V integration)
  kBChain,               // bchain::Cluster (reconfiguration baseline)
  kPbft,                 // pbft::Cluster (view-change baseline)
};

std::string_view protocol_name(Protocol p);
std::optional<Protocol> protocol_from_name(std::string_view name);

/// True for the client-driven SMR comparators (XPaxos, BChain, PBFT):
/// they take requests, not Byzantine suspicion injections.
bool protocol_is_smr(Protocol p);

/// One fault-injection step. Field use by kind:
///   kCrash            a = victim
///   kLinkDown/kLinkUp a = from, b = to (directed link)
///   kLinkDelay        a = from, b = to, value = extra one-way delay (ns)
///   kPartition        value = bitmask of side A (side B = the rest)
///   kHeal             heals the current partition
///   kInjectSuspicion  a = Byzantine author, b = suspected victim; the
///                     runner stamps (a suspects b, epoch 1) into a's
///                     accumulated row and gossips it as a signed UPDATE —
///                     the Theorem-4 / Theorem-9 adversary moves.
///   kRestart          a = victim of a prior kCrash; the runner rebuilds
///                     the process from its durable store (crash-recovery)
///                     and un-crashes its network slot.
enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kLinkDown,
  kLinkUp,
  kLinkDelay,
  kPartition,
  kHeal,
  kInjectSuspicion,
  kRestart,
};

std::string_view fault_kind_name(FaultKind kind);
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

struct FaultAction {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCrash;
  ProcessId a = kNoProcess;
  ProcessId b = kNoProcess;
  std::uint64_t value = 0;

  std::string to_string() const;
  bool operator==(const FaultAction&) const = default;
};

struct Schedule {
  Protocol protocol = Protocol::kQuorumSelection;
  ProcessId n = 4;
  int f = 1;
  /// Cluster seed (network latency stream etc.).
  std::uint64_t seed = 1;
  /// Global stabilization time and the extra asynchrony before it.
  SimTime gst = 0;
  SimDuration pre_gst_extra = 0;
  SimDuration heartbeat_period = 5'000'000;
  /// Ids run by the generator's adversary instead of honest processes.
  ProcessSet byzantine;
  /// XPaxos only: requests issued by the single client.
  std::uint64_t requests = 0;
  /// All actions happen before quiet_start; the oracles observe the
  /// system state at quiet_start and again quiet_window later.
  SimTime quiet_start = 3'000'000'000;
  SimDuration quiet_window = 2'500'000'000;
  /// Quorum selection only: when nonzero, the cluster runs behind a
  /// shard::GroupMux with this many extra client slots registered in the
  /// group, so every message crosses the GroupFrame encode/decode path
  /// with client-widened bounds (the PR 7 wedge surface).
  ProcessId mux_clients = 0;
  /// qs/fs only: when nonzero, at least one correct process must reach
  /// this epoch by quiescence (the epoch_progress oracle). Pins schedules
  /// whose point is that the no-independent-set advance path fires.
  Epoch min_final_epoch = 0;
  /// Synchronous-optimized mode: the runner zeroes network jitter, so
  /// delivery takes exactly base latency plus injected link delays — the
  /// synchrony-exploiting schedule family (timing faults ride right at
  /// the failure-detector timeout instead of being smeared by jitter).
  bool synchronous = false;
  std::vector<FaultAction> actions;

  /// Processes the schedule's faults are attributed to: the Byzantine set,
  /// crash victims, and the `a` endpoint of every link fault. Partitions
  /// are not attributable (they fault links between correct processes).
  ProcessSet culprits() const;

  bool has_partition() const;

  /// True when every suspicion the schedule can cause is attributable to
  /// at most f faulty processes: no partitions, no pre-GST asynchrony and
  /// culprits() within the f budget. The per-epoch quorum bounds of
  /// Theorems 3/9 and Corollary 10 are only sound oracles on such runs.
  bool attributable() const;

  /// Checks structural well-formedness: parameter ranges, action ids in
  /// range, actions time-ordered and finished before quiet_start, every
  /// partition healed, culprits within f, adversary authors Byzantine.
  /// Returns an error description, or nullopt when valid. The generator
  /// only emits valid schedules and the shrinker only proposes valid
  /// candidates, so a violation reported on a valid schedule is a real
  /// finding, never a broken premise.
  std::optional<std::string> validate() const;

  /// One-line human summary ("qs n=7 f=2 seed=42 actions=5 ...").
  std::string summary() const;

  std::string to_json() const;
  static std::optional<Schedule> from_json(std::string_view text);

  bool operator==(const Schedule&) const = default;
};

}  // namespace qsel::scenario
