// Deterministic discrete-event simulator.
//
// All experiments run on virtual time: events are (time, sequence) ordered,
// where the sequence number breaks ties in scheduling order, so a run is a
// pure function of its seeds. The simulator is single-threaded by design —
// distributed concurrency is modeled by event interleaving, not OS threads,
// which is what makes the paper's counting results (quorum changes,
// communication rounds) exactly checkable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace qsel::sim {

using EventFn = std::function<void()>;

/// Cancellable handle for a scheduled event. Copies share cancellation
/// state; destroying handles does not cancel (fire-and-forget by default).
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  /// True while the timer is scheduled and has neither fired nor been
  /// cancelled.
  bool active() const { return cancelled_ && !*cancelled_; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

  /// Time of the earliest scheduled event, or nullopt when idle. The real
  /// event loop (net::EventLoop) uses this to bound its poll timeout so
  /// timers fire on time.
  std::optional<SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.top().time;
  }

  void schedule_at(SimTime time, EventFn fn);
  void schedule_after(SimDuration delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Like schedule_after but cancellable.
  TimerHandle schedule_timer(SimDuration delay, EventFn fn);

  /// Executes the next event; false when the queue is empty.
  bool step();

  /// Runs until the queue is empty or `max_events` were processed; returns
  /// the number of events processed. The cap guards against livelock bugs
  /// in protocols under test.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Runs every event scheduled at or before `deadline`, then advances the
  /// clock to `deadline`.
  void run_until(SimTime deadline);

  void run_for(SimDuration duration) { run_until(now_ + duration); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;  // may be null

    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace qsel::sim
