#include "sim/simulator.hpp"

namespace qsel::sim {

void Simulator::schedule_at(SimTime time, EventFn fn) {
  QSEL_REQUIRE_MSG(time >= now_, "cannot schedule into the past");
  queue_.push(Event{time, next_seq_++, std::move(fn), nullptr});
}

TimerHandle Simulator::schedule_timer(SimDuration delay, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), cancelled});
  return TimerHandle(cancelled);
}

void Simulator::pop_and_run() {
  // priority_queue::top() is const; moving the closure out requires the
  // usual const_cast dance. Safe: the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  QSEL_ASSERT(event.time >= now_);
  now_ = event.time;
  if (event.cancelled && *event.cancelled) return;
  // A timer that fires is no longer active; mark before running so the
  // handler can re-arm through the same TimerHandle-holding field.
  if (event.cancelled) *event.cancelled = true;
  ++events_processed_;
  event.fn();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  pop_and_run();
  return true;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t processed = 0;
  while (processed < max_events && !queue_.empty()) {
    pop_and_run();
    ++processed;
  }
  return processed;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) pop_and_run();
  QSEL_ASSERT(now_ <= deadline);
  now_ = deadline;
}

}  // namespace qsel::sim
