// Payload — base class for everything sent through the simulated network.
//
// Messages travel as shared_ptr<const Payload>: a broadcast enqueues one
// immutable object n times, mirroring zero-copy fan-out. Authentication is
// not implicit — protocol messages that the paper signs carry explicit
// crypto::Signature fields over their canonical encoding (see net/codec).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

namespace qsel::sim {

struct Payload {
  virtual ~Payload() = default;

  /// Stable tag used for message accounting (metrics::MessageStats) and
  /// trace output, e.g. "xpaxos.commit".
  virtual std::string_view type_tag() const = 0;

  /// Size in bytes charged to the network; implementations return their
  /// canonical encoded size.
  virtual std::size_t wire_size() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

}  // namespace qsel::sim
