#include "sim/network.hpp"

#include "common/logging.hpp"

namespace qsel::sim {

Network::Network(Simulator& simulator, ProcessId n, NetworkConfig config,
                 std::uint64_t seed)
    : sim_(simulator),
      n_(n),
      config_(config),
      rng_(seed ^ 0x6e6574776f726bULL),
      actors_(n, nullptr),
      link_disabled_(static_cast<std::size_t>(n) * n, false),
      link_duplicate_(static_cast<std::size_t>(n) * n, false),
      link_extra_delay_(static_cast<std::size_t>(n) * n, 0),
      link_last_delivery_(static_cast<std::size_t>(n) * n, 0) {
  QSEL_REQUIRE(n > 0 && n <= kMaxProcesses);
}

void Network::attach(ProcessId id, Actor& actor) {
  QSEL_REQUIRE(id < n_);
  QSEL_REQUIRE_MSG(actors_[id] == nullptr, "process already attached");
  actors_[id] = &actor;
}

SimDuration Network::sample_latency(ProcessId from, ProcessId to) {
  SimDuration latency = config_.base_latency;
  if (config_.jitter > 0) latency += rng_.below(config_.jitter + 1);
  if (sim_.now() < config_.gst && config_.pre_gst_extra > 0)
    latency += rng_.below(config_.pre_gst_extra + 1);
  latency += link_extra_delay_[link_index(from, to)];
  return latency;
}

void Network::send(ProcessId from, ProcessId to, PayloadPtr message) {
  QSEL_REQUIRE(from < n_ && to < n_);
  QSEL_REQUIRE(message != nullptr);
  if (crashed_.contains(from)) return;
  stats_.record_send(from, to, message->type_tag(), message->wire_size());

  if (link_disabled_[link_index(from, to)]) {
    QSEL_LOG(kTrace, "net") << "drop " << from << "->" << to << " "
                            << message->type_tag();
    if (tracer_)
      tracer_->drop(from, to, message->type_tag(),
                    trace::DropReason::kLinkDisabled, message->wire_size());
    return;
  }

  const bool duplicate = link_duplicate_[link_index(from, to)];
  schedule_delivery(from, to, message);
  if (duplicate) schedule_delivery(from, to, std::move(message));
}

void Network::schedule_delivery(ProcessId from, ProcessId to,
                                PayloadPtr message) {
  SimTime deliver_at = sim_.now() + sample_latency(from, to);
  if (config_.fifo_links) {
    SimTime& last = link_last_delivery_[link_index(from, to)];
    if (deliver_at <= last) deliver_at = last + 1;
    last = deliver_at;
  }
  if (send_hook_) send_hook_(from, to, message, deliver_at);
  if (tracer_)
    tracer_->send(from, to, message->type_tag(), deliver_at,
                  message->wire_size());

  sim_.schedule_at(deliver_at, [this, from, to, msg = std::move(message)] {
    if (crashed_.contains(to)) {
      if (tracer_)
        tracer_->drop(from, to, msg->type_tag(),
                      trace::DropReason::kReceiverCrashed, msg->wire_size());
      return;
    }
    // No actor attached models a process that is down from the start
    // (e.g. a slot reserved for a Byzantine actor a test never installs).
    if (Actor* actor = actors_[to]) {
      if (tracer_)
        tracer_->deliver(to, from, msg->type_tag(), msg->wire_size());
      actor->on_message(from, msg);
    } else if (tracer_) {
      tracer_->drop(from, to, msg->type_tag(),
                    trace::DropReason::kReceiverUnattached, msg->wire_size());
    }
  });
}

void Network::broadcast(ProcessId from, ProcessSet targets,
                        const PayloadPtr& message) {
  for (ProcessId to : targets) {
    if (to == from) {
      // Local self-delivery: skip the wire but keep asynchronous semantics
      // (handled as its own event, after the current handler returns).
      if (crashed_.contains(from)) continue;
      sim_.schedule_after(0, [this, from, msg = message] {
        if (crashed_.contains(from)) return;
        if (tracer_)
          tracer_->deliver(from, from, msg->type_tag(), msg->wire_size());
        actors_[from]->on_message(from, msg);
      });
    } else {
      send(from, to, message);
    }
  }
}

void Network::crash(ProcessId id) {
  QSEL_REQUIRE(id < n_);
  crashed_.insert(id);
  if (tracer_) tracer_->crash(id);
}

void Network::restart(ProcessId id) {
  QSEL_REQUIRE(id < n_);
  QSEL_REQUIRE_MSG(crashed_.contains(id), "restart() needs a prior crash()");
  crashed_.erase(id);
  if (tracer_) tracer_->restart(id);
}

void Network::set_link_enabled(ProcessId from, ProcessId to, bool enabled) {
  QSEL_REQUIRE(from < n_ && to < n_);
  link_disabled_[link_index(from, to)] = !enabled;
  if (tracer_)
    tracer_->link_fault(from, to,
                        enabled ? trace::LinkFaultKind::kEnable
                                : trace::LinkFaultKind::kDisable,
                        0);
}

bool Network::link_enabled(ProcessId from, ProcessId to) const {
  QSEL_REQUIRE(from < n_ && to < n_);
  return !link_disabled_[link_index(from, to)];
}

void Network::set_link_extra_delay(ProcessId from, ProcessId to,
                                   SimDuration extra) {
  QSEL_REQUIRE(from < n_ && to < n_);
  link_extra_delay_[link_index(from, to)] = extra;
  if (tracer_)
    tracer_->link_fault(from, to, trace::LinkFaultKind::kExtraDelay, extra);
}

void Network::set_link_duplicate(ProcessId from, ProcessId to,
                                 bool duplicate) {
  QSEL_REQUIRE(from < n_ && to < n_);
  link_duplicate_[link_index(from, to)] = duplicate;
}

void Network::partition(ProcessSet side_a, ProcessSet side_b) {
  QSEL_REQUIRE(!side_a.intersects(side_b));
  for (ProcessId a : side_a)
    for (ProcessId b : side_b) {
      set_link_enabled(a, b, false);
      set_link_enabled(b, a, false);
    }
}

void Network::heal_partition() {
  // Per-link (not a bulk fill) so each healed link lands in the trace.
  for (ProcessId from = 0; from < n_; ++from)
    for (ProcessId to = 0; to < n_; ++to)
      if (link_disabled_[link_index(from, to)])
        set_link_enabled(from, to, true);
}

}  // namespace qsel::sim
