// Simulated network: reliable asynchronous channels with fault injection.
//
// Models the paper's system model (Section IV): reliable asynchronous
// channels between n processes, an eventual-synchrony switch (GST) after
// which every message between correct processes is delivered within
// round_trip_bound(), and per-link fault injection used to *cause* the
// failures of Section II — omission (drop), timing (extra delay) and crash.
// The FIFO option implements the Follower Selection assumption
// (Section VIII) that messages between correct processes arrive in order.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/process_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "metrics/message_stats.hpp"
#include "sim/payload.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace qsel::sim {

class Actor {
 public:
  Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  virtual ~Actor() = default;

  virtual void on_message(ProcessId from, const PayloadPtr& message) = 0;
};

struct NetworkConfig {
  /// Minimum one-way latency after GST.
  SimDuration base_latency = 1'000'000;  // 1 ms
  /// Uniform jitter added on top, in [0, jitter].
  SimDuration jitter = 200'000;  // 0.2 ms
  /// Before GST, an extra uniform delay in [0, pre_gst_extra] models the
  /// asynchronous period of the eventually-synchronous system.
  SimDuration pre_gst_extra = 0;
  SimTime gst = 0;
  /// Enforce per-directed-link FIFO delivery (Section VIII assumption).
  bool fifo_links = false;
};

class Network {
 public:
  Network(Simulator& simulator, ProcessId n, NetworkConfig config,
          std::uint64_t seed);

  ProcessId process_count() const { return n_; }
  Simulator& simulator() { return sim_; }
  const NetworkConfig& config() const { return config_; }

  /// Maximum one-way latency between correct processes after GST.
  SimDuration latency_bound() const {
    return config_.base_latency + config_.jitter;
  }

  /// The paper's "communication round": the time for messages between all
  /// correct processes to be delivered.
  SimDuration round_length() const { return latency_bound(); }

  void attach(ProcessId id, Actor& actor);

  void send(ProcessId from, ProcessId to, PayloadPtr message);

  /// Sends to every member of `targets`; members other than `from` go over
  /// the network, a copy to `from` itself (if included) is delivered
  /// locally after one event-loop hop (the paper's broadcasts include the
  /// sender, Algorithm 1 Line 15).
  void broadcast(ProcessId from, ProcessSet targets, const PayloadPtr& message);

  // --- fault injection ------------------------------------------------

  /// Crashed processes neither send nor receive from now on.
  void crash(ProcessId id);
  bool is_crashed(ProcessId id) const { return crashed_.contains(id); }

  /// Undoes crash(id): the process sends and receives again. Messages
  /// dropped during the outage stay dropped — crash-recovery, not rollback.
  /// The *process state* the revived node resumes with is the caller's
  /// business (see runtime::QuorumCluster::restart, which rebuilds the
  /// NodeProcess from its durable store).
  void restart(ProcessId id);

  /// Disables/enables the directed link from -> to (omission failures).
  void set_link_enabled(ProcessId from, ProcessId to, bool enabled);
  bool link_enabled(ProcessId from, ProcessId to) const;

  /// Adds a fixed extra delay on the directed link (timing failures).
  void set_link_extra_delay(ProcessId from, ProcessId to, SimDuration extra);

  /// Delivers every message on the directed link twice, the copy with an
  /// independently sampled latency (at-least-once channels; retransmission
  /// races). Off by default.
  void set_link_duplicate(ProcessId from, ProcessId to, bool duplicate);

  /// Drops all messages between the two sides, both directions.
  void partition(ProcessSet side_a, ProcessSet side_b);
  void heal_partition();

  // --- instrumentation --------------------------------------------------

  const metrics::MessageStats& stats() const { return stats_; }
  metrics::MessageStats& stats() { return stats_; }

  /// Invoked on every send with (from, to, message, delivery_time).
  using SendHook =
      std::function<void(ProcessId, ProcessId, const PayloadPtr&, SimTime)>;
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  /// Attaches an event tracer (null detaches). The network emits
  /// SEND/DELIVER/DROP, link-fault and crash events; the tracer's clock
  /// should be this network's simulator.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  SimDuration sample_latency(ProcessId from, ProcessId to);
  /// Samples a latency (FIFO-adjusted) and schedules one delivery event.
  void schedule_delivery(ProcessId from, ProcessId to, PayloadPtr message);
  std::size_t link_index(ProcessId from, ProcessId to) const {
    return static_cast<std::size_t>(from) * n_ + to;
  }

  Simulator& sim_;
  ProcessId n_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Actor*> actors_;
  ProcessSet crashed_;
  std::vector<bool> link_disabled_;
  std::vector<bool> link_duplicate_;
  std::vector<SimDuration> link_extra_delay_;
  std::vector<SimTime> link_last_delivery_;  // for FIFO enforcement
  metrics::MessageStats stats_;
  SendHook send_hook_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace qsel::sim
