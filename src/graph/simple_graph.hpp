// SimpleGraph — undirected simple graph over process ids.
//
// Suspect graphs (Section VI-B) connect processes l, k when one suspected
// the other in the current epoch or later. With n <= 64 (common/types.hpp)
// a bitmask adjacency row per node makes subgraph tests, neighborhood
// queries and the NP-hard independent-set step (Section VI-C) exact and
// fast at consortium scale.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace qsel::graph {

class SimpleGraph {
 public:
  /// Empty graph on nodes {0..n-1}.
  explicit SimpleGraph(ProcessId n);

  /// Convenience factory from an edge list.
  static SimpleGraph from_edges(
      ProcessId n, const std::vector<std::pair<ProcessId, ProcessId>>& edges);

  ProcessId node_count() const { return n_; }
  int edge_count() const { return edge_count_; }

  void add_edge(ProcessId u, ProcessId v);
  void remove_edge(ProcessId u, ProcessId v);
  bool has_edge(ProcessId u, ProcessId v) const;

  ProcessSet neighbors(ProcessId u) const;
  int degree(ProcessId u) const { return neighbors(u).size(); }

  /// Nodes with at least one incident edge. Definition 1's "L contains
  /// node i" means i has non-zero degree.
  ProcessSet covered_nodes() const;

  /// Nodes with no incident edge.
  ProcessSet isolated_nodes() const;

  /// True when every edge of *this is an edge of `super` (and the node
  /// counts match). Implements the "L' subset of G_i" test of Definition 3b.
  bool is_subgraph_of(const SimpleGraph& super) const;

  /// All edges as (u, v) with u < v, ordered lexicographically.
  std::vector<std::pair<ProcessId, ProcessId>> edges() const;

  /// Any edge with both endpoints inside `within`, or {kNoProcess,
  /// kNoProcess} if none. Used by the FPT vertex-cover branching.
  std::pair<ProcessId, ProcessId> any_edge_within(ProcessSet within) const;

  bool operator==(const SimpleGraph& other) const;

 private:
  ProcessId n_;
  int edge_count_ = 0;
  std::vector<std::uint64_t> adj_;  // adj_[u] = neighbor mask of u
};

std::ostream& operator<<(std::ostream& os, const SimpleGraph& g);

}  // namespace qsel::graph
