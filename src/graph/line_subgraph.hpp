// Line subgraphs and leader designation (Section VIII, Definitions 1-2).
//
// A line subgraph of G is an acyclic subgraph with maximum degree 2 — a
// disjoint union of paths. It designates a leader: the minimum node of
// degree 0. A *maximal* line subgraph maximizes that leader over all line
// subgraphs of G; Follower Selection (Algorithm 2) uses it so that
// repeated suspicions against successive leaders advance the leader id
// monotonically, yielding the O(f) bound of Theorem 9.
#pragma once

#include <optional>

#include "common/process_set.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::graph {

/// True when l is acyclic with maximum degree 2 (Definition 1).
bool is_line_subgraph(const SimpleGraph& l);

/// The designated leader l_L = min{ i : degree_L(i) = 0 } (Definition 1),
/// or nullopt when every node is covered (no degree-0 node exists).
std::optional<ProcessId> line_leader(const SimpleGraph& l);

/// Can the nodes of `required` be covered (given degree >= 1) by a line
/// subgraph of g that gives `avoid` degree 0? Exposed for tests; this is
/// the feasibility core of maximal_line_subgraph. On success returns one
/// such line subgraph.
std::optional<SimpleGraph> cover_with_paths(const SimpleGraph& g,
                                            ProcessSet required,
                                            ProcessId avoid);

/// A maximal line subgraph of g: a line subgraph whose designated leader is
/// maximum over all line subgraphs of g. Maximal line subgraphs are not
/// unique (Section VIII) but all share the same leader, which is what
/// correctness of Algorithm 2 relies on.
SimpleGraph maximal_line_subgraph(const SimpleGraph& g);

/// Possible followers per Definition 2: every node except those adjacent in
/// l to two nodes of degree 1 (the middles of 3-node paths). Includes the
/// leader and all degree-0 nodes; callers exclude the leader themselves
/// (Definition 3a).
ProcessSet possible_followers(const SimpleGraph& l);

}  // namespace qsel::graph
