#include "graph/simple_graph.hpp"

#include <ostream>

#include "common/assert.hpp"

namespace qsel::graph {

SimpleGraph::SimpleGraph(ProcessId n) : n_(n), adj_(n, 0) {
  QSEL_REQUIRE(n <= kMaxProcesses);
}

SimpleGraph SimpleGraph::from_edges(
    ProcessId n, const std::vector<std::pair<ProcessId, ProcessId>>& edges) {
  SimpleGraph g(n);
  for (auto [u, v] : edges) g.add_edge(u, v);
  return g;
}

void SimpleGraph::add_edge(ProcessId u, ProcessId v) {
  QSEL_REQUIRE(u < n_ && v < n_ && u != v);
  if (has_edge(u, v)) return;
  adj_[u] |= std::uint64_t{1} << v;
  adj_[v] |= std::uint64_t{1} << u;
  ++edge_count_;
}

void SimpleGraph::remove_edge(ProcessId u, ProcessId v) {
  QSEL_REQUIRE(u < n_ && v < n_);
  if (!has_edge(u, v)) return;
  adj_[u] &= ~(std::uint64_t{1} << v);
  adj_[v] &= ~(std::uint64_t{1} << u);
  --edge_count_;
}

bool SimpleGraph::has_edge(ProcessId u, ProcessId v) const {
  QSEL_REQUIRE(u < n_ && v < n_);
  return (adj_[u] >> v) & 1;
}

ProcessSet SimpleGraph::neighbors(ProcessId u) const {
  QSEL_REQUIRE(u < n_);
  return ProcessSet(adj_[u]);
}

ProcessSet SimpleGraph::covered_nodes() const {
  ProcessSet covered;
  for (ProcessId u = 0; u < n_; ++u)
    if (adj_[u] != 0) covered.insert(u);
  return covered;
}

ProcessSet SimpleGraph::isolated_nodes() const {
  return ProcessSet::full(n_) - covered_nodes();
}

bool SimpleGraph::is_subgraph_of(const SimpleGraph& super) const {
  if (n_ != super.n_) return false;
  for (ProcessId u = 0; u < n_; ++u)
    if ((adj_[u] & ~super.adj_[u]) != 0) return false;
  return true;
}

std::vector<std::pair<ProcessId, ProcessId>> SimpleGraph::edges() const {
  std::vector<std::pair<ProcessId, ProcessId>> result;
  result.reserve(static_cast<std::size_t>(edge_count_));
  for (ProcessId u = 0; u < n_; ++u)
    for (ProcessId v : ProcessSet(adj_[u]))
      if (u < v) result.emplace_back(u, v);
  return result;
}

std::pair<ProcessId, ProcessId> SimpleGraph::any_edge_within(
    ProcessSet within) const {
  for (ProcessId u : within) {
    if (u >= n_) break;
    const ProcessSet nbrs = neighbors(u) & within;
    if (!nbrs.empty()) return {u, nbrs.min()};
  }
  return {kNoProcess, kNoProcess};
}

bool SimpleGraph::operator==(const SimpleGraph& other) const {
  return n_ == other.n_ && adj_ == other.adj_;
}

std::ostream& operator<<(std::ostream& os, const SimpleGraph& g) {
  os << "Graph(n=" << g.node_count() << ", edges=[";
  bool first = true;
  for (auto [u, v] : g.edges()) {
    if (!first) os << ", ";
    first = false;
    os << '(' << u << ',' << v << ')';
  }
  return os << "])";
}

}  // namespace qsel::graph
