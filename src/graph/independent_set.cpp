#include "graph/independent_set.hpp"

#include "common/assert.hpp"

namespace qsel::graph {
namespace {

ProcessSet without(ProcessSet s, ProcessId id) {
  s.erase(id);
  return s;
}

/// Does g restricted to `avail` contain an independent set of size
/// `needed`? Equivalent to a vertex cover of G[avail] within budget
/// |avail| - needed; branch on an uncovered edge. `hint` is a known
/// independent set of g (possibly empty): any `needed` of its members
/// inside `avail` witness feasibility immediately, so re-solves after
/// small graph changes usually cost one popcount instead of a branch
/// tree. The shortcut only ever turns an exact "true" into a faster
/// "true" — it cannot change any answer.
bool has_is_within(const SimpleGraph& g, ProcessSet avail, int needed,
                   ProcessSet hint) {
  if (needed <= 0) return true;
  if ((hint & avail).size() >= needed) return true;
  if (avail.size() < needed) return false;
  const auto [u, v] = g.any_edge_within(avail);
  if (u == kNoProcess) return true;  // avail already independent
  if (avail.size() == needed) return false;  // no removal budget left
  return has_is_within(g, without(avail, u), needed, hint) ||
         has_is_within(g, without(avail, v), needed, hint);
}

/// Lexicographic-first DFS: candidates tried in increasing id order; the
/// first completed set is the lexicographic minimum. Each branch is
/// guarded by the exact feasibility test above, so failed subtrees cost
/// one vertex-cover search instead of full expansion.
bool first_is_dfs(const SimpleGraph& g, ProcessSet chosen, ProcessSet avail,
                  int needed, ProcessSet hint, ProcessSet& out) {
  if (needed == 0) {
    out = chosen;
    return true;
  }
  if (!has_is_within(g, avail, needed, hint)) return false;
  for (ProcessId c : avail) {
    ProcessSet next_chosen = chosen;
    next_chosen.insert(c);
    const ProcessSet next_avail =
        (avail & ProcessSet::range(c + 1, g.node_count())) - g.neighbors(c);
    if (first_is_dfs(g, next_chosen, next_avail, needed - 1, hint, out))
      return true;
  }
  return false;
}

void all_is_dfs(const SimpleGraph& g, ProcessSet chosen, ProcessSet avail,
                int needed, std::vector<ProcessSet>& out) {
  if (needed == 0) {
    out.push_back(chosen);
    return;
  }
  if (avail.size() < needed) return;
  for (ProcessId c : avail) {
    ProcessSet next_chosen = chosen;
    next_chosen.insert(c);
    const ProcessSet next_avail =
        (avail & ProcessSet::range(c + 1, g.node_count())) - g.neighbors(c);
    all_is_dfs(g, next_chosen, next_avail, needed - 1, out);
  }
}

std::optional<ProcessSet> cover_dfs(const SimpleGraph& g, ProcessSet active,
                                    ProcessSet cover, int budget) {
  const auto [u, v] = g.any_edge_within(active);
  if (u == kNoProcess) return cover;  // every edge covered
  if (budget == 0) return std::nullopt;
  ProcessSet cover_u = cover;
  cover_u.insert(u);
  if (auto r = cover_dfs(g, without(active, u), cover_u, budget - 1)) return r;
  ProcessSet cover_v = cover;
  cover_v.insert(v);
  return cover_dfs(g, without(active, v), cover_v, budget - 1);
}

/// An untrusted hint is usable only when it actually is an independent
/// set of *this* graph — stale hints (edges appeared since) degrade to
/// no hint, never to a wrong answer.
ProcessSet validated_hint(const SimpleGraph& g, ProcessSet hint) {
  if (hint.empty()) return hint;
  if (!(hint - ProcessSet::full(g.node_count())).empty()) return ProcessSet{};
  return is_independent_set(g, hint) ? hint : ProcessSet{};
}

}  // namespace

bool is_independent_set(const SimpleGraph& g, ProcessSet s) {
  for (ProcessId u : s)
    if (g.neighbors(u).intersects(s)) return false;
  return true;
}

bool is_vertex_cover(const SimpleGraph& g, ProcessSet s) {
  const ProcessSet outside = ProcessSet::full(g.node_count()) - s;
  return is_independent_set(g, outside);
}

std::optional<ProcessSet> vertex_cover_within(const SimpleGraph& g,
                                              int budget) {
  QSEL_REQUIRE(budget >= 0);
  return cover_dfs(g, ProcessSet::full(g.node_count()), ProcessSet{}, budget);
}

bool has_independent_set(const SimpleGraph& g, int q, ProcessSet hint) {
  QSEL_REQUIRE(q >= 0 && q <= static_cast<int>(g.node_count()));
  return has_is_within(g, ProcessSet::full(g.node_count()), q,
                       validated_hint(g, hint));
}

std::optional<ProcessSet> first_independent_set(const SimpleGraph& g, int q,
                                                ProcessSet hint) {
  QSEL_REQUIRE(q >= 0 && q <= static_cast<int>(g.node_count()));
  ProcessSet out;
  if (first_is_dfs(g, ProcessSet{}, ProcessSet::full(g.node_count()), q,
                   validated_hint(g, hint), out))
    return out;
  return std::nullopt;
}

std::vector<ProcessSet> all_independent_sets(const SimpleGraph& g, int q) {
  QSEL_REQUIRE(q >= 0 && q <= static_cast<int>(g.node_count()));
  std::vector<ProcessSet> out;
  all_is_dfs(g, ProcessSet{}, ProcessSet::full(g.node_count()), q, out);
  return out;
}

}  // namespace qsel::graph
