#include "graph/line_subgraph.hpp"

#include <array>

#include "common/assert.hpp"

namespace qsel::graph {
namespace {

/// Union-find without path compression so links can be rolled back during
/// the backtracking path-cover search.
class RollbackDsu {
 public:
  explicit RollbackDsu(ProcessId n) {
    for (ProcessId i = 0; i < n; ++i) parent_[i] = i;
  }

  ProcessId find(ProcessId x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// Links the roots of a and b; returns the root that was re-parented so
  /// the caller can undo.
  ProcessId link(ProcessId a, ProcessId b) {
    const ProcessId ra = find(a);
    const ProcessId rb = find(b);
    QSEL_ASSERT(ra != rb);
    parent_[ra] = rb;
    return ra;
  }

  void unlink(ProcessId re_parented_root) {
    parent_[re_parented_root] = re_parented_root;
  }

 private:
  std::array<ProcessId, kMaxProcesses> parent_{};
};

struct CoverSearch {
  const SimpleGraph& g;
  ProcessId avoid;
  SimpleGraph line;
  RollbackDsu dsu;
  std::array<int, kMaxProcesses> degree{};

  CoverSearch(const SimpleGraph& graph, ProcessId avoid_node)
      : g(graph), avoid(avoid_node), line(graph.node_count()),
        dsu(graph.node_count()) {}

  /// Valid covering partners for an uncovered required node.
  ProcessSet options_for(ProcessId r) const {
    ProcessSet options;
    for (ProcessId u : g.neighbors(r)) {
      if (u == avoid || degree[u] >= 2) continue;
      if (dsu.find(r) == dsu.find(u)) continue;  // edge would close a cycle
      options.insert(u);
    }
    return options;
  }

  /// Covers every node of `required` by adding path edges. Each added edge
  /// is incident to an uncovered required node, which keeps the search
  /// complete (any covering edge for that node is incident to it); the
  /// node with the fewest options is expanded first (fail-first), which
  /// collapses infeasible subtrees quickly on dense suspect graphs.
  bool cover(ProcessSet required) {
    ProcessId pick = kNoProcess;
    ProcessSet pick_options;
    int fewest = static_cast<int>(kMaxProcesses) + 1;
    ProcessSet uncovered;
    for (ProcessId r : required) {
      if (degree[r] != 0) continue;
      uncovered.insert(r);
      const ProcessSet options = options_for(r);
      if (options.size() < fewest) {
        fewest = options.size();
        pick = r;
        pick_options = options;
        if (fewest == 0) return false;  // dead end
      }
    }
    if (uncovered.empty()) return true;
    QSEL_ASSERT(pick != kNoProcess);
    for (ProcessId u : pick_options) {
      QSEL_ASSERT(degree[pick] < 2);
      const ProcessId undo = dsu.link(pick, u);
      line.add_edge(pick, u);
      ++degree[pick];
      ++degree[u];
      if (cover(uncovered)) return true;
      --degree[pick];
      --degree[u];
      line.remove_edge(pick, u);
      dsu.unlink(undo);
    }
    return false;
  }
};

}  // namespace

bool is_line_subgraph(const SimpleGraph& l) {
  const ProcessId n = l.node_count();
  RollbackDsu dsu(n);
  for (ProcessId u = 0; u < n; ++u)
    if (l.degree(u) > 2) return false;
  for (auto [u, v] : l.edges()) {
    if (dsu.find(u) == dsu.find(v)) return false;  // cycle
    dsu.link(u, v);
  }
  return true;
}

std::optional<ProcessId> line_leader(const SimpleGraph& l) {
  const ProcessSet uncovered = l.isolated_nodes();
  if (uncovered.empty()) return std::nullopt;
  return uncovered.min();
}

std::optional<SimpleGraph> cover_with_paths(const SimpleGraph& g,
                                            ProcessSet required,
                                            ProcessId avoid) {
  QSEL_REQUIRE(!required.contains(avoid));
  // A required node whose only potential partner is `avoid` can never be
  // covered; fail fast.
  for (ProcessId r : required) {
    ProcessSet partners = g.neighbors(r);
    partners.erase(avoid);
    if (partners.empty()) return std::nullopt;
  }
  CoverSearch search(g, avoid);
  if (search.cover(required)) return search.line;
  return std::nullopt;
}

SimpleGraph maximal_line_subgraph(const SimpleGraph& g) {
  const ProcessId n = g.node_count();
  QSEL_REQUIRE(n > 0);
  // The leader is the minimum uncovered node, so a node isolated in g (it
  // can never gain degree) caps the achievable leader.
  const ProcessSet isolated = g.isolated_nodes();
  const ProcessId cap = isolated.empty() ? n - 1 : isolated.min();
  for (ProcessId candidate = cap;; --candidate) {
    if (auto line =
            cover_with_paths(g, ProcessSet::range(0, candidate), candidate))
      return *line;
    // candidate = 0 always succeeds (empty requirement), so we never fall
    // through this loop.
    QSEL_ASSERT(candidate > 0);
  }
}

ProcessSet possible_followers(const SimpleGraph& l) {
  ProcessSet followers;
  for (ProcessId v = 0; v < l.node_count(); ++v) {
    int degree_one_neighbors = 0;
    for (ProcessId u : l.neighbors(v))
      if (l.degree(u) == 1) ++degree_one_neighbors;
    if (degree_one_neighbors < 2) followers.insert(v);
  }
  return followers;
}

}  // namespace qsel::graph
