// Independent sets and vertex covers on suspect graphs.
//
// Algorithm 1 (Section VI-B) selects the quorum as the lexicographically
// first independent set of size q = n - f in the suspect graph; an
// independent set of size q exists iff a vertex cover of size n - q = f
// exists (the reduction the paper cites for Theorems 4 and Lemma 8).
// The decision problem is NP-hard in general but fixed-parameter tractable
// in the cover budget f: the classic branch-on-an-edge search runs in
// O(2^f * m), effectively instant at consortium scale (Section VI-C).
#pragma once

#include <optional>

#include "common/process_set.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::graph {

/// True when no edge of g joins two members of s.
bool is_independent_set(const SimpleGraph& g, ProcessSet s);

/// True when every edge of g has at least one endpoint in s.
bool is_vertex_cover(const SimpleGraph& g, ProcessSet s);

/// A vertex cover of size <= budget if one exists (FPT branching on edges),
/// otherwise nullopt. The returned cover is not necessarily minimum, only
/// within budget.
std::optional<ProcessSet> vertex_cover_within(const SimpleGraph& g,
                                              int budget);

/// Decision form of the quorum-existence test on Line 27 of Algorithm 1:
/// does g contain an independent set of size q? `hint` optionally names a
/// set believed independent in g (e.g. the previously selected quorum);
/// it is validated before use and only short-circuits feasibility, so a
/// wrong or stale hint can cost time but never change the answer.
bool has_independent_set(const SimpleGraph& g, int q,
                         ProcessSet hint = ProcessSet{});

/// The lexicographically first independent set of size q (comparing sets as
/// increasing id sequences), or nullopt when none exists. This is the
/// quorum rule of Algorithm 1 Line 31: it makes correct processes converge
/// to the same quorum once their suspect graphs agree. `hint` seeds the
/// branch-guard feasibility tests (see has_independent_set); the returned
/// set is identical with or without a hint.
std::optional<ProcessSet> first_independent_set(const SimpleGraph& g, int q,
                                                ProcessSet hint = ProcessSet{});

/// All independent sets of size exactly q, in lexicographic order. Intended
/// for tests and small n (the count can be combinatorial).
std::vector<ProcessSet> all_independent_sets(const SimpleGraph& g, int q);

}  // namespace qsel::graph
