// NodeStore — durable per-node protocol state (snapshot + WAL).
//
// What a qsel_node must not lose across a crash, per the paper's eventual
// guarantees: its current epoch (Agreement compares quorums per epoch, and
// a node that rejoined at epoch 1 would re-suspect and re-vote its way
// through history, churning every peer), its own signed suspicion row
// (the matrix is a monotone CRDT — Dubois et al.'s eventually-consistent
// abstraction — so re-offering recovered stamps is always safe, while
// losing them silently un-suspects processes the node had evidence
// against), and the failure detector's adapted per-peer timeouts (which
// only ever grow; restarting from the initial timeout would re-suspect
// every slow-but-correct peer and destabilize the cluster exactly when it
// is re-integrating the rejoiner).
//
// All three are monotone, so DurableNodeState::merge_from is a join and
// recovery is order- and duplicate-insensitive: snapshot ⊔ every WAL
// record, in any order, yields the same state — which is what makes the
// torn-write truncation of the WAL safe (losing a suffix loses recency,
// never consistency) and double recovery idempotent.
//
// FileNodeStore keeps `snapshot.bin` + `wal.bin` in one directory and
// compacts (snapshot + WAL reset) every `compact_every` appends.
// MemoryNodeStore is the simulator's stand-in: same interface, state held
// in memory, used by QuorumCluster to model restart-with-recovered-state
// deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "store/wal.hpp"

namespace qsel::store {

struct DurableNodeState {
  Epoch epoch = 1;
  /// Own row of the suspicion matrix: epoch stamps, index = suspected id.
  std::vector<Epoch> own_row;
  /// Adaptive failure-detector timeout per peer (ns), index = peer id.
  std::vector<SimDuration> fd_timeouts;

  bool operator==(const DurableNodeState&) const = default;

  /// Join with `other` (cell-wise max everywhere). Row widths must match
  /// when both are nonempty.
  void merge_from(const DurableNodeState& other);

  std::vector<std::uint8_t> encode() const;
  /// Rejects malformed bytes and rows wider than `n`; never throws.
  static std::optional<DurableNodeState> decode(
      std::span<const std::uint8_t> bytes, ProcessId n);
};

class NodeStore {
 public:
  virtual ~NodeStore() = default;

  /// State recovered from stable storage; nullopt on first boot.
  virtual std::optional<DurableNodeState> recover() = 0;

  /// Logs a state change (call with the full current state; the store
  /// journals it and may compact).
  virtual void persist(const DurableNodeState& state) = 0;
};

/// In-memory store for the simulator: persists by join, recovers the join.
class MemoryNodeStore final : public NodeStore {
 public:
  std::optional<DurableNodeState> recover() override { return state_; }
  void persist(const DurableNodeState& state) override;
  std::uint64_t persist_calls() const { return persist_calls_; }

 private:
  std::optional<DurableNodeState> state_;
  std::uint64_t persist_calls_ = 0;
};

struct FileNodeStoreOptions {
  /// Snapshot + WAL reset after this many appends since the last compact.
  std::uint64_t compact_every = 256;
  WalOptions wal;
};

/// Snapshot + WAL in `dir` (created if missing). Recovery joins the
/// snapshot (if valid) with every valid WAL record; corruption in either
/// degrades to the surviving parts, never to a throw.
class FileNodeStore final : public NodeStore {
 public:
  FileNodeStore(std::string dir, ProcessId n,
                FileNodeStoreOptions options = {});

  std::optional<DurableNodeState> recover() override;
  void persist(const DurableNodeState& state) override;

  const std::string& dir() const { return dir_; }
  std::string wal_path() const { return dir_ + "/wal.bin"; }
  std::string snapshot_path() const { return dir_ + "/snapshot.bin"; }

 private:
  std::string dir_;
  ProcessId n_;
  FileNodeStoreOptions options_;
  std::unique_ptr<Wal> wal_;
  std::uint64_t appends_since_compact_ = 0;
  /// Running join of everything persisted; what a compact snapshots.
  DurableNodeState merged_;
  bool has_state_ = false;
};

}  // namespace qsel::store
