#include "store/node_store.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/assert.hpp"
#include "net/codec.hpp"
#include "store/snapshot.hpp"

namespace qsel::store {

void DurableNodeState::merge_from(const DurableNodeState& other) {
  epoch = std::max(epoch, other.epoch);
  if (own_row.empty()) own_row = other.own_row;
  else if (!other.own_row.empty()) {
    QSEL_REQUIRE(own_row.size() == other.own_row.size());
    for (std::size_t i = 0; i < own_row.size(); ++i)
      own_row[i] = std::max(own_row[i], other.own_row[i]);
  }
  if (fd_timeouts.empty()) fd_timeouts = other.fd_timeouts;
  else if (!other.fd_timeouts.empty()) {
    QSEL_REQUIRE(fd_timeouts.size() == other.fd_timeouts.size());
    for (std::size_t i = 0; i < fd_timeouts.size(); ++i)
      fd_timeouts[i] = std::max(fd_timeouts[i], other.fd_timeouts[i]);
  }
}

std::vector<std::uint8_t> DurableNodeState::encode() const {
  net::Encoder enc;
  enc.u64(epoch);
  enc.u64_vector(own_row);
  enc.u64_vector(fd_timeouts);
  return std::move(enc).take();
}

std::optional<DurableNodeState> DurableNodeState::decode(
    std::span<const std::uint8_t> bytes, ProcessId n) {
  net::Decoder dec(bytes);
  DurableNodeState state;
  state.epoch = dec.u64();
  state.own_row = dec.u64_vector();
  state.fd_timeouts = dec.u64_vector();
  if (!dec.done()) return std::nullopt;
  if (state.epoch == 0) return std::nullopt;
  if (!state.own_row.empty() && state.own_row.size() != n) return std::nullopt;
  if (!state.fd_timeouts.empty() && state.fd_timeouts.size() != n)
    return std::nullopt;
  return state;
}

void MemoryNodeStore::persist(const DurableNodeState& state) {
  ++persist_calls_;
  if (!state_.has_value()) state_ = state;
  else state_->merge_from(state);
}

FileNodeStore::FileNodeStore(std::string dir, ProcessId n,
                             FileNodeStoreOptions options)
    : dir_(std::move(dir)), n_(n), options_(options) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
    throw std::runtime_error("store: mkdir failed (" + dir_ +
                             "): " + std::strerror(errno));
  wal_ = std::make_unique<Wal>(wal_path(), options_.wal);
}

std::optional<DurableNodeState> FileNodeStore::recover() {
  // Same-instance re-recovery (a node restarted without the store object
  // dying, as in the loopback harness): the WAL's boot-time scan is stale
  // by now, but merged_ is exactly boot scan ⊔ every persist since — the
  // same join a rescan of the file would produce.
  if (has_state_) return merged_;
  bool any = false;
  DurableNodeState joined;
  if (const auto snap = read_snapshot(snapshot_path())) {
    if (auto state = DurableNodeState::decode(*snap, n_)) {
      joined = std::move(*state);
      any = true;
    }
  }
  for (const auto& record : wal_->recovered().records) {
    const auto state = DurableNodeState::decode(record, n_);
    if (!state.has_value()) continue;  // isolated bad record: skip, keep rest
    if (any) joined.merge_from(*state);
    else joined = *state;
    any = true;
  }
  if (!any) return std::nullopt;
  merged_ = joined;
  has_state_ = true;
  return joined;
}

void FileNodeStore::persist(const DurableNodeState& state) {
  if (has_state_) merged_.merge_from(state);
  else merged_ = state;
  has_state_ = true;
  wal_->append(state.encode());
  if (++appends_since_compact_ < options_.compact_every) return;
  // Compact: seal the join into the snapshot, then reset the log. Crash
  // between the two steps is safe — the WAL still holds every record the
  // snapshot covers, and recovery joins both.
  write_snapshot(snapshot_path(), merged_.encode());
  wal_->reset();
  appends_since_compact_ = 0;
}

}  // namespace qsel::store
