#include "store/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace qsel::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'Q', 'S', 'N', 'P'};

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("snapshot: " + what + " (" + path +
                           "): " + std::strerror(errno));
}

// Durability of rename() itself requires fsyncing the containing
// directory: without it a power loss can revert the directory entry to
// the old snapshot (or none) even though the caller went on to truncate
// the WAL records the snapshot was supposed to replace.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) io_error("open dir failed", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("fsync dir failed", dir);
  }
  ::close(fd);
}

}  // namespace

void write_snapshot(const std::string& path,
                    std::span<const std::uint8_t> payload) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_error("open failed", tmp);

  const crypto::Digest digest = crypto::sha256(payload);
  std::vector<std::uint8_t> file;
  file.reserve(4 + 4 + 32 + payload.size());
  file.insert(file.end(), kMagic, kMagic + 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  file.push_back(static_cast<std::uint8_t>(len & 0xff));
  file.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  file.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  file.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  file.insert(file.end(), digest.bytes.begin(), digest.bytes.end());
  file.insert(file.end(), payload.begin(), payload.end());

  std::size_t done = 0;
  while (done < file.size()) {
    const ssize_t wrote = ::write(fd, file.data() + done, file.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("write failed", tmp);
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("fsync failed", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    io_error("rename failed", path);
  sync_parent_dir(path);
}

std::optional<std::vector<std::uint8_t>> read_snapshot(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (data.size() < 4 + 4 + 32) return std::nullopt;
  if (std::memcmp(data.data(), kMagic, 4) != 0) return std::nullopt;
  const std::uint8_t* p = data.data() + 4;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (data.size() - 4 - 4 - 32 != len) return std::nullopt;
  crypto::Digest stored;
  std::memcpy(stored.bytes.data(), data.data() + 8, 32);
  std::vector<std::uint8_t> payload(data.begin() + 8 + 32, data.end());
  if (crypto::sha256(payload) != stored) return std::nullopt;
  return payload;
}

}  // namespace qsel::store
