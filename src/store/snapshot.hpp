// Atomic snapshot file — write-temp / fsync / rename with a digest seal.
//
// The durable twin of the WAL: where the log records every state change,
// the snapshot captures one whole state so the log can be reset (bounded
// recovery time). Atomicity comes from POSIX rename: the snapshot is
// written to `<path>.tmp`, fsynced, renamed over `path`, and the parent
// directory is fsynced so the rename itself survives power loss — readers
// only ever observe the old complete snapshot or the new complete one,
// and a caller may destroy the WAL records the snapshot covers the
// moment write_snapshot returns.
// Integrity comes from a SHA-256 seal over the payload stored in the
// header; a snapshot that fails its seal (torn write before the rename
// semantics existed, storage corruption) reads as "no snapshot" and
// recovery falls back to the WAL alone.
//
//   file := magic "QSNP" || u32-LE payload length || SHA-256(payload)
//           || payload
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace qsel::store {

/// Writes `payload` atomically to `path`. Throws std::runtime_error on I/O
/// failure (the previous snapshot, if any, is untouched).
void write_snapshot(const std::string& path,
                    std::span<const std::uint8_t> payload);

/// Reads and verifies the snapshot at `path`. Returns nullopt when the
/// file is missing, malformed or fails its digest — never throws on bad
/// contents (corruption is an expected recovery input, not a bug).
std::optional<std::vector<std::uint8_t>> read_snapshot(
    const std::string& path);

}  // namespace qsel::store
