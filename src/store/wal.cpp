#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::store {

namespace {

crypto::Digest chain_digest(const crypto::Digest& prev,
                            std::span<const std::uint8_t> payload) {
  crypto::Sha256 hasher;
  hasher.update(prev.bytes);
  hasher.update(payload);
  return hasher.finish();
}

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw std::runtime_error("wal: " + what + " (" + path +
                           "): " + std::strerror(errno));
}

}  // namespace

WalScan Wal::scan_file(const std::string& path, const WalOptions& options) {
  WalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;  // missing file = empty log
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  crypto::Digest chain;  // zero bytes: the chain seed
  std::size_t pos = 0;
  while (data.size() - pos >= 4 + 32) {
    const std::uint8_t* p = data.data() + pos;
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > options.max_record_bytes) break;        // corrupt length
    if (data.size() - pos - 4 - 32 < len) break;      // torn tail
    crypto::Digest stored;
    std::memcpy(stored.bytes.data(), p + 4, 32);
    const std::span<const std::uint8_t> payload(p + 4 + 32, len);
    const crypto::Digest expected = chain_digest(chain, payload);
    if (stored != expected) break;  // flipped byte in digest or payload
    scan.records.emplace_back(payload.begin(), payload.end());
    chain = expected;
    pos += 4 + 32 + len;
  }
  scan.valid_bytes = pos;
  scan.tail_digest = chain;
  scan.truncated_tail = pos != data.size();
  return scan;
}

Wal::Wal(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {
  scan_ = scan_file(path_, options_);
  chain_ = scan_.tail_digest;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) io_error("open failed", path_);
  if (scan_.truncated_tail) {
    QSEL_LOG(kWarn, "store")
        << "wal " << path_ << ": truncating invalid suffix at byte "
        << scan_.valid_bytes;
    if (::ftruncate(fd_, static_cast<off_t>(scan_.valid_bytes)) != 0)
      io_error("ftruncate failed", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(scan_.valid_bytes), SEEK_SET) < 0)
    io_error("lseek failed", path_);
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::append(std::span<const std::uint8_t> payload) {
  QSEL_REQUIRE(payload.size() <= options_.max_record_bytes);
  const crypto::Digest digest = chain_digest(chain_, payload);
  std::vector<std::uint8_t> record;
  record.reserve(4 + 32 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  record.push_back(static_cast<std::uint8_t>(len & 0xff));
  record.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  record.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  record.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  record.insert(record.end(), digest.bytes.begin(), digest.bytes.end());
  record.insert(record.end(), payload.begin(), payload.end());

  // One write call: the kernel appends the record atomically with respect
  // to this process dying (a torn write can only come from the storage
  // layer, which the chain digest catches on recovery).
  std::size_t done = 0;
  while (done < record.size()) {
    const ssize_t wrote =
        ::write(fd_, record.data() + done, record.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      io_error("write failed", path_);
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (options_.sync_each_append && ::fdatasync(fd_) != 0)
    io_error("fdatasync failed", path_);
  chain_ = digest;
  ++records_appended_;
}

void Wal::reset() {
  if (::ftruncate(fd_, 0) != 0) io_error("ftruncate failed", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) io_error("lseek failed", path_);
  if (options_.sync_each_append && ::fdatasync(fd_) != 0)
    io_error("fdatasync failed", path_);
  chain_ = crypto::Digest{};  // fresh chain seed
}

}  // namespace qsel::store
