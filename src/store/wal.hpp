// Write-ahead log — append-only record file with a SHA-256 hash chain.
//
// Durability substrate for the live node (tools/qsel_node): every record
// appended survives a process kill, and recovery tolerates the two
// corruptions a real crash can leave behind — a torn tail (the process
// died mid-append) and flipped bytes (storage corruption). The format is
//
//   file   := record*
//   record := u32-LE payload length || chain digest (32 bytes) || payload
//
// where chain digest = SHA-256(previous record's chain digest || payload);
// the first record chains from 32 zero bytes. The chain makes every
// record's digest depend on the full prefix, so recovery cannot accept a
// record whose predecessor was damaged: read_all() scans forward,
// recomputes the chain, and stops at the first record that is truncated,
// oversized or fails its digest — everything before it is intact by
// construction, everything after is untrusted and discarded. recover()
// additionally truncates the file back to the valid prefix so the next
// append re-extends a consistent chain.
//
// Appends write the whole record with one write(2) call and (by default)
// fdatasync before returning, so a record either made it to the log
// completely or the recovery truncation removes it — never half.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace qsel::store {

struct WalOptions {
  /// fdatasync() after every append. Disable only in tests/simulation where
  /// the process outlives every "crash" being modelled.
  bool sync_each_append = true;
  /// Records larger than this are treated as corruption during recovery
  /// (a flipped byte in a length prefix must not allocate gigabytes).
  std::size_t max_record_bytes = 1 << 20;
};

/// Result of scanning a log file: the records of the longest valid prefix
/// plus where that prefix ends (the truncation point for repair).
struct WalScan {
  std::vector<std::vector<std::uint8_t>> records;
  /// Byte offset of the end of the last valid record.
  std::uint64_t valid_bytes = 0;
  /// Chain digest after the last valid record (seed for further appends).
  crypto::Digest tail_digest;
  /// True when bytes past valid_bytes existed (torn tail or corruption).
  bool truncated_tail = false;
};

class Wal {
 public:
  /// Opens (creating if absent) the log at `path`, scanning the existing
  /// contents and truncating any invalid suffix. Throws std::runtime_error
  /// when the file cannot be opened or repaired.
  Wal(std::string path, WalOptions options = {});
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Records of the valid prefix found at open time, in append order.
  const WalScan& recovered() const { return scan_; }

  /// Appends one record (single write syscall, then fdatasync unless
  /// disabled). Throws std::runtime_error on I/O failure.
  void append(std::span<const std::uint8_t> payload);

  /// Atomically replaces the log contents with zero records (after a
  /// snapshot has captured the state the log described).
  void reset();

  std::uint64_t records_appended() const { return records_appended_; }
  const std::string& path() const { return path_; }

  /// Pure scan of a log file; shared by the constructor and tests. Missing
  /// file = empty valid log.
  static WalScan scan_file(const std::string& path, const WalOptions& options);

 private:
  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  WalScan scan_;
  crypto::Digest chain_;  // digest of the last durable record
  std::uint64_t records_appended_ = 0;
};

}  // namespace qsel::store
