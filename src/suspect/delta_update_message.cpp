#include "suspect/delta_update_message.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace qsel::suspect {

std::vector<std::uint8_t> DeltaUpdateMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("suspect.delta");  // domain separation
  enc.process_id(origin);
  enc.u64(version);
  enc.u32(static_cast<std::uint32_t>(cells.size()));
  for (const DeltaCell& c : cells) {
    enc.u32(c.col);
    enc.u64(c.stamp);
  }
  return std::move(enc).take();
}

std::shared_ptr<const DeltaUpdateMessage> DeltaUpdateMessage::make(
    const crypto::Signer& signer, std::uint64_t version,
    std::vector<DeltaCell> cells) {
  auto msg = std::make_shared<DeltaUpdateMessage>();
  msg->origin = signer.self();
  msg->version = version;
  msg->cells = std::move(cells);
  msg->sig = signer.sign(msg->signed_bytes());
  return msg;
}

bool DeltaUpdateMessage::verify(const crypto::Signer& verifier,
                                ProcessId n) const {
  if (origin >= n) return false;
  if (cells.empty()) return false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].col >= n || cells[i].stamp == 0) return false;
    if (i > 0 && cells[i].col <= cells[i - 1].col) return false;
  }
  if (sig.signer != origin) return false;
  return verifier.verify(signed_bytes(), sig);
}

RowDigest row_digest(std::span<const Epoch> row) {
  net::Encoder enc;
  enc.str("suspect.rowdigest");  // domain separation
  enc.u64_vector(row);
  const crypto::Digest full = crypto::sha256(enc.view());
  RowDigest out{};
  std::memcpy(out.data(), full.bytes.data(), out.size());
  return out;
}

bool RowDigestMessage::well_formed(ProcessId n) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].row >= n) return false;
    if (i > 0 && entries[i].row <= entries[i - 1].row) return false;
  }
  return true;
}

}  // namespace qsel::suspect
