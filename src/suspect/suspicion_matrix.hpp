// SuspicionMatrix — the eventually-consistent suspicion record
// (Section VI-A).
//
// suspected[l][k] stores the last epoch in which process l suspected
// process k (0 = never). Rows are only ever merged upward (entry-wise
// max), so the matrix is a join-semilattice CRDT: correct processes
// converge to the same state regardless of delivery order, even when
// faulty processes equivocate by sending different rows to different
// peers (the join of the equivocated rows is what everyone ends up with).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::suspect {

class SuspicionMatrix {
 public:
  explicit SuspicionMatrix(ProcessId n);

  ProcessId process_count() const { return n_; }

  /// Last epoch in which `suspecter` suspected `suspected`; 0 = never.
  Epoch get(ProcessId suspecter, ProcessId suspected) const;

  /// Stamps "suspecter suspects suspected in `epoch`" (monotone: lower
  /// stamps are ignored).
  void stamp(ProcessId suspecter, ProcessId suspected, Epoch epoch);

  /// Entry-wise max-merge of a full row; true when anything increased.
  bool merge_row(ProcessId suspecter, std::span<const Epoch> row);

  std::span<const Epoch> row(ProcessId suspecter) const;

  /// Builds the suspect graph of Section VI-B: nodes Pi, edge (l, k) iff
  /// suspected[l][k] >= epoch or suspected[k][l] >= epoch.
  graph::SimpleGraph build_suspect_graph(Epoch epoch) const;

  /// The smallest epoch stamp among edges present at `epoch`, or 0 when the
  /// graph at `epoch` is empty. Bumping the epoch past this value removes
  /// at least one edge; used to advance epochs without scanning every
  /// intermediate (identical-graph) value.
  Epoch min_live_stamp(Epoch epoch) const;

  bool operator==(const SuspicionMatrix&) const = default;

 private:
  ProcessId n_;
  std::vector<Epoch> cells_;  // row-major n x n
};

}  // namespace qsel::suspect
