// SuspicionMatrix — the eventually-consistent suspicion record
// (Section VI-A).
//
// suspected[l][k] stores the last epoch in which process l suspected
// process k (0 = never). Rows are only ever merged upward (entry-wise
// max), so the matrix is a join-semilattice CRDT: correct processes
// converge to the same state regardless of delivery order, even when
// faulty processes equivocate by sending different rows to different
// peers (the join of the equivocated rows is what everyone ends up with).
//
// Version counters: every cell increase bumps a per-row version and
// records it against the cell. Versions are *local bookkeeping*, not
// CRDT state — two processes holding identical cells may hold different
// versions (they merged along different paths), which is why equality
// compares cells only. The counters exist so hot paths can ask "what
// changed since version v?" instead of rescanning n cells (delta gossip,
// dirty-gated persistence) and so row digests can be cached until the
// row actually moves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "graph/simple_graph.hpp"

namespace qsel::suspect {

/// Monotone per-row change counter (0 = row never written).
using RowVersion = std::uint64_t;

class SuspicionMatrix {
 public:
  explicit SuspicionMatrix(ProcessId n);

  ProcessId process_count() const { return n_; }

  /// Last epoch in which `suspecter` suspected `suspected`; 0 = never.
  Epoch get(ProcessId suspecter, ProcessId suspected) const;

  /// Stamps "suspecter suspects suspected in `epoch`" (monotone: lower
  /// stamps are ignored).
  void stamp(ProcessId suspecter, ProcessId suspected, Epoch epoch);

  /// Entry-wise max-merge of a full row; true when anything increased.
  bool merge_row(ProcessId suspecter, std::span<const Epoch> row);

  /// Max-merges one cell; true when it increased.
  bool merge_cell(ProcessId suspecter, ProcessId suspected, Epoch epoch);

  std::span<const Epoch> row(ProcessId suspecter) const;

  /// Version of `suspecter`'s row: bumped by every cell increase, 0 while
  /// the row is all-zero. Monotone, local-only (see header comment).
  RowVersion row_version(ProcessId suspecter) const;

  /// Columns of `suspecter`'s row whose last increase happened strictly
  /// after `since` (i.e. at version > since). Ascending column order.
  /// `changed(l, 0)` lists every nonzero cell of row l.
  std::vector<ProcessId> changed(ProcessId suspecter, RowVersion since) const;

  /// Builds the suspect graph of Section VI-B: nodes Pi, edge (l, k) iff
  /// suspected[l][k] >= epoch or suspected[k][l] >= epoch.
  graph::SimpleGraph build_suspect_graph(Epoch epoch) const;

  /// The smallest epoch stamp among edges present at `epoch`, or 0 when the
  /// graph at `epoch` is empty. Bumping the epoch past this value removes
  /// at least one edge; used to advance epochs without scanning every
  /// intermediate (identical-graph) value.
  Epoch min_live_stamp(Epoch epoch) const;

  /// Cells-only: versions are merge-path-dependent bookkeeping and two
  /// converged replicas must still compare equal (CRDT oracle).
  bool operator==(const SuspicionMatrix& other) const {
    return n_ == other.n_ && cells_ == other.cells_;
  }

 private:
  ProcessId n_;
  std::vector<Epoch> cells_;        // row-major n x n
  std::vector<RowVersion> cell_versions_;  // row version at last increase
  std::vector<RowVersion> row_versions_;   // per-row change counter
};

}  // namespace qsel::suspect
