#include "suspect/update_message.hpp"

namespace qsel::suspect {

std::vector<std::uint8_t> UpdateMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("suspect.update");  // domain separation
  enc.process_id(origin);
  enc.u64_vector(row);
  return std::move(enc).take();
}

std::shared_ptr<const UpdateMessage> UpdateMessage::make(
    const crypto::Signer& signer, std::vector<Epoch> row) {
  auto msg = std::make_shared<UpdateMessage>();
  msg->origin = signer.self();
  msg->row = std::move(row);
  msg->sig = signer.sign(msg->signed_bytes());
  return msg;
}

bool UpdateMessage::verify(const crypto::Signer& verifier, ProcessId n) const {
  if (origin >= n) return false;
  if (row.size() != n) return false;
  if (sig.signer != origin) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::suspect
