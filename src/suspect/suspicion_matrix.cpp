#include "suspect/suspicion_matrix.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace qsel::suspect {

SuspicionMatrix::SuspicionMatrix(ProcessId n)
    : n_(n),
      cells_(static_cast<std::size_t>(n) * n, 0),
      cell_versions_(static_cast<std::size_t>(n) * n, 0),
      row_versions_(n, 0) {
  QSEL_REQUIRE(n > 0 && n <= kMaxProcesses);
}

Epoch SuspicionMatrix::get(ProcessId suspecter, ProcessId suspected) const {
  QSEL_REQUIRE(suspecter < n_ && suspected < n_);
  return cells_[static_cast<std::size_t>(suspecter) * n_ + suspected];
}

void SuspicionMatrix::stamp(ProcessId suspecter, ProcessId suspected,
                            Epoch epoch) {
  merge_cell(suspecter, suspected, epoch);
}

bool SuspicionMatrix::merge_cell(ProcessId suspecter, ProcessId suspected,
                                 Epoch epoch) {
  QSEL_REQUIRE(suspecter < n_ && suspected < n_);
  const std::size_t idx = static_cast<std::size_t>(suspecter) * n_ + suspected;
  if (epoch <= cells_[idx]) return false;
  cells_[idx] = epoch;
  cell_versions_[idx] = ++row_versions_[suspecter];
  return true;
}

bool SuspicionMatrix::merge_row(ProcessId suspecter,
                                std::span<const Epoch> row) {
  QSEL_REQUIRE(suspecter < n_);
  QSEL_REQUIRE(row.size() == n_);
  bool changed = false;
  for (ProcessId k = 0; k < n_; ++k)
    changed |= merge_cell(suspecter, k, row[k]);
  return changed;
}

std::span<const Epoch> SuspicionMatrix::row(ProcessId suspecter) const {
  QSEL_REQUIRE(suspecter < n_);
  return std::span(&cells_[static_cast<std::size_t>(suspecter) * n_], n_);
}

RowVersion SuspicionMatrix::row_version(ProcessId suspecter) const {
  QSEL_REQUIRE(suspecter < n_);
  return row_versions_[suspecter];
}

std::vector<ProcessId> SuspicionMatrix::changed(ProcessId suspecter,
                                                RowVersion since) const {
  QSEL_REQUIRE(suspecter < n_);
  std::vector<ProcessId> cols;
  const RowVersion* versions =
      &cell_versions_[static_cast<std::size_t>(suspecter) * n_];
  for (ProcessId k = 0; k < n_; ++k)
    if (versions[k] > since) cols.push_back(k);
  return cols;
}

graph::SimpleGraph SuspicionMatrix::build_suspect_graph(Epoch epoch) const {
  graph::SimpleGraph g(n_);
  for (ProcessId l = 0; l < n_; ++l)
    for (ProcessId k = 0; k < n_; ++k)
      if (l != k && get(l, k) >= epoch && epoch > 0) g.add_edge(l, k);
  return g;
}

Epoch SuspicionMatrix::min_live_stamp(Epoch epoch) const {
  Epoch min_stamp = 0;
  for (ProcessId l = 0; l < n_; ++l)
    for (ProcessId k = 0; k < n_; ++k) {
      const Epoch stamp = get(l, k);
      if (l != k && stamp >= epoch && (min_stamp == 0 || stamp < min_stamp))
        min_stamp = stamp;
    }
  return min_stamp;
}

}  // namespace qsel::suspect
