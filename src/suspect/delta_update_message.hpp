// Delta gossip messages (the bandwidth side of the hot-path work).
//
// DELTA-UPDATE carries only the suspicion cells the origin stamped since
// its last broadcast, instead of the full n-entry row. It is signed by the
// origin over its canonical encoding — forwarders relay it intact, exactly
// like full-row UPDATEs — and receivers max-merge the carried cells
// unconditionally: cell-wise join is order- and duplicate-insensitive, so
// a delta arriving late, twice, or ahead of an earlier one can only move
// the matrix toward the same CRDT fixpoint, never away from it. The
// `version` field is the origin's own-row change counter after these
// stamps; it is advisory (receivers use it to notice gaps worth repairing,
// never to gate a merge).
//
// ROW-DIGEST is the anti-entropy companion: instead of re-broadcasting the
// full known matrix every resync, a process broadcasts 16-byte truncated
// SHA-256 digests of its nonzero rows. A receiver compares against its own
// rows and answers — point to point, only to the asker — with the signed
// messages backing exactly the divergent rows. ROW-DIGEST itself is
// unsigned: digests are hints that trigger repair traffic, and every
// repair message is origin-signed, so a lying digest can waste bounded
// bandwidth on one link but can never corrupt state.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "net/codec.hpp"
#include "sim/payload.hpp"

namespace qsel::suspect {

/// One sparse entry of a delta: "origin suspects `col` since `stamp`".
struct DeltaCell {
  ProcessId col = kNoProcess;
  Epoch stamp = 0;

  bool operator==(const DeltaCell&) const = default;
};

struct DeltaUpdateMessage final : sim::Payload {
  ProcessId origin = kNoProcess;
  /// Origin's own-row version after these stamps (advisory; see header).
  std::uint64_t version = 0;
  /// Strictly increasing columns, stamps > 0.
  std::vector<DeltaCell> cells;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "suspect.delta"; }
  std::size_t wire_size() const override {
    return 4 + 8 + 4 + 12 * cells.size() + 36;
  }

  /// Canonical bytes covered by the signature.
  std::vector<std::uint8_t> signed_bytes() const;

  static std::shared_ptr<const DeltaUpdateMessage> make(
      const crypto::Signer& signer, std::uint64_t version,
      std::vector<DeltaCell> cells);

  /// Signature valid, origin < n, cells nonempty with strictly increasing
  /// in-range columns and nonzero stamps.
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

/// 16-byte truncated SHA-256 of one matrix row (birthday bound 2^64 —
/// a Byzantine origin must not be able to craft two own-rows that collide,
/// or digest repair would silently stall on that row forever).
using RowDigest = std::array<std::uint8_t, 16>;

RowDigest row_digest(std::span<const Epoch> row);

struct RowDigestEntry {
  ProcessId row = kNoProcess;
  RowDigest digest{};

  bool operator==(const RowDigestEntry&) const = default;
};

struct RowDigestMessage final : sim::Payload {
  /// Strictly increasing row ids; only nonzero rows are listed (an absent
  /// row claims "all zero", which the receiver treats as divergent when it
  /// holds data for it).
  std::vector<RowDigestEntry> entries;

  std::string_view type_tag() const override { return "suspect.digest"; }
  std::size_t wire_size() const override { return 4 + 20 * entries.size(); }

  /// Structural validity: strictly increasing in-range rows.
  bool well_formed(ProcessId n) const;
};

}  // namespace qsel::suspect
