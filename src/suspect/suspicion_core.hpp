// SuspicionCore — the suspicion-handling engine shared by Quorum Selection
// (Algorithm 1) and Follower Selection (Algorithm 2).
//
// Implements Lines 9-24 of Algorithm 1: reacting to SUSPECTED events from
// the failure detector by stamping the own matrix row with the current
// epoch and broadcasting it as a signed UPDATE; merging and forwarding
// received UPDATEs (forward-on-change gives reliable dissemination among
// correct processes — Lemma 1); and re-stamping current suspicions after
// an epoch advance (Line 29).
//
// Divergence from the paper's pseudocode, documented here once: the paper
// models "broadcast to all including self" and relies on the self-delivery
// to re-enter updateQuorum. We instead invoke the owner's update_quorum
// hook directly after the local state change (same order of effects:
// UPDATE is broadcast *before* update_quorum runs, which Lemma 7's FIFO
// argument needs), avoiding the self-hop and the pseudocode's stall when a
// re-stamp does not change the own row (e.g. an epoch bump with an empty
// suspicion set would otherwise never re-run updateQuorum).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "graph/simple_graph.hpp"
#include "suspect/suspicion_matrix.hpp"
#include "suspect/update_message.hpp"

namespace qsel::trace {
class Tracer;
}

namespace qsel::suspect {

class SuspicionCore {
 public:
  struct Hooks {
    /// Broadcasts a message to every other process (self excluded — local
    /// effects are applied synchronously).
    std::function<void(sim::PayloadPtr)> broadcast;
    /// Re-evaluates the quorum after the matrix or epoch changed
    /// (Algorithm 1 Line 24).
    std::function<void()> update_quorum;
    /// Optional write-ahead hook: invoked after the own row or epoch
    /// changed but *before* the change is broadcast, so a crash can never
    /// have told peers something the local store forgot. Durable nodes
    /// point this at their NodeStore; the simulator leaves it empty.
    std::function<void()> persist;
  };

  SuspicionCore(const crypto::Signer& signer, ProcessId n, Hooks hooks);

  ProcessId self() const { return signer_.self(); }
  ProcessId process_count() const { return n_; }
  Epoch epoch() const { return epoch_; }
  ProcessSet suspecting() const { return suspecting_; }
  const SuspicionMatrix& matrix() const { return matrix_; }

  /// Suspect graph at the current epoch (Section VI-B).
  graph::SimpleGraph current_graph() const {
    return matrix_.build_suspect_graph(epoch_);
  }

  /// Handles <SUSPECTED, S> from the failure detector: updateSuspicions(S)
  /// followed by quorum re-evaluation.
  void on_suspected(ProcessSet s);

  /// Handles a received UPDATE (from the network; `msg` keeps its origin
  /// signature). Invalid signatures are dropped. Returns true when the
  /// matrix changed.
  bool on_update(const std::shared_ptr<const UpdateMessage>& msg);

  /// Advances the epoch (must increase) and re-issues the current
  /// suspicions in the new epoch (Lines 28-29). Called by the owner's
  /// update_quorum implementation; does NOT recurse into update_quorum.
  void advance_epoch(Epoch new_epoch);

  /// Reinstalls state recovered from stable storage: joins the epoch
  /// (max) and the own row (cell-wise max — the matrix is a CRDT, so
  /// re-offering recovered stamps is always safe). Call before any
  /// protocol activity; does not broadcast or re-evaluate — the owner
  /// decides when (QuorumSelector::restore re-runs update_quorum).
  void restore(Epoch epoch, std::span<const Epoch> own_row);

  /// Anti-entropy retransmission: re-broadcasts the own signed row plus
  /// the latest signed UPDATE merged from every other origin.
  /// Forward-on-change (Lemma 1) disseminates reliably only over reliable
  /// links; when links drop messages (e.g. during a partition) a lost
  /// UPDATE is never re-sent and matrices can stay split after the network
  /// heals. Re-offering the whole known matrix — not just the own row —
  /// makes dissemination epidemic: any row held by at least one correct
  /// connected process eventually reaches all of them, even when its
  /// origin has crashed or is Byzantine and silent. (Forwarders relay the
  /// origin-signed message, so re-offered rows stay authenticated.)
  /// Receivers treat an already-merged row as no-change: no forward, no
  /// quorum re-evaluation — duplicates are absorbed, not amplified.
  void resync();

  /// Smallest epoch that removes at least one *other* process's live edge,
  /// i.e. (min live stamp outside the own row) + 1. The own row does not
  /// count because advance_epoch re-stamps it. Equivalent outcome to the
  /// paper's epoch+1 recursion (intermediate epochs yield identical
  /// graphs) but immune to faulty processes stamping far-future epochs.
  Epoch next_epoch_candidate() const;

  /// Attaches an event tracer (null detaches): SUSPECTED/RESTORED, UPDATE
  /// receive/merge/forward/reject and epoch advances are journaled.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // --- statistics (experiment E8) --------------------------------------
  std::uint64_t updates_broadcast() const { return updates_broadcast_; }
  std::uint64_t updates_forwarded() const { return updates_forwarded_; }
  std::uint64_t updates_rejected() const { return updates_rejected_; }
  std::uint64_t epoch_advances() const { return epoch_advances_; }

 private:
  void stamp_and_broadcast();

  const crypto::Signer& signer_;
  ProcessId n_;
  Hooks hooks_;
  Epoch epoch_ = 1;
  ProcessSet suspecting_;
  SuspicionMatrix matrix_;
  /// latest_[origin]: the most recent UPDATE from `origin` whose merge
  /// changed the matrix; re-offered by resync(). Correct origins send
  /// cell-wise monotone rows, so the latest changing message dominates all
  /// earlier ones and re-offering it alone reconstructs the full row.
  std::vector<std::shared_ptr<const UpdateMessage>> latest_;
  trace::Tracer* tracer_ = nullptr;
  std::uint64_t updates_broadcast_ = 0;
  std::uint64_t updates_forwarded_ = 0;
  std::uint64_t updates_rejected_ = 0;
  std::uint64_t epoch_advances_ = 0;
};

}  // namespace qsel::suspect
