// SuspicionCore — the suspicion-handling engine shared by Quorum Selection
// (Algorithm 1) and Follower Selection (Algorithm 2).
//
// Implements Lines 9-24 of Algorithm 1: reacting to SUSPECTED events from
// the failure detector by stamping the own matrix row with the current
// epoch and broadcasting it as a signed UPDATE; merging and forwarding
// received UPDATEs (forward-on-change gives reliable dissemination among
// correct processes — Lemma 1); and re-stamping current suspicions after
// an epoch advance (Line 29).
//
// Divergence from the paper's pseudocode, documented here once: the paper
// models "broadcast to all including self" and relies on the self-delivery
// to re-enter updateQuorum. We instead invoke the owner's update_quorum
// hook directly after the local state change (same order of effects:
// UPDATE is broadcast *before* update_quorum runs, which Lemma 7's FIFO
// argument needs), avoiding the self-hop and the pseudocode's stall when a
// re-stamp does not change the own row (e.g. an epoch bump with an empty
// suspicion set would otherwise never re-run updateQuorum).
//
// Performance posture (DESIGN.md §11): the suspect graph is maintained
// incrementally as stamps merge — update_quorum fires only when the graph
// at the current epoch actually gained an edge, because the quorum is a
// deterministic function of (graph, epoch) and re-running the solver on an
// unchanged graph is a guaranteed no-op. In kDelta gossip mode the core
// broadcasts sparse DELTA-UPDATEs (only cells stamped since the last
// broadcast) and replaces the full-matrix anti-entropy re-offer with a
// digest-first exchange: resync broadcasts per-row hashes, and receivers
// push the origin-signed messages backing exactly the divergent rows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "graph/simple_graph.hpp"
#include "suspect/delta_update_message.hpp"
#include "suspect/suspicion_matrix.hpp"
#include "suspect/update_message.hpp"

namespace qsel::trace {
class Tracer;
}

namespace qsel::suspect {

/// How the core disseminates suspicion state. kFullRow is the paper's
/// wire format (every UPDATE carries the full row; resync re-offers the
/// known matrix) and the default, so pre-existing embedders and the
/// protocol unit tests are unaffected. Composed runtimes opt into kDelta.
enum class GossipMode { kFullRow, kDelta };

class SuspicionCore {
 public:
  struct Hooks {
    /// Broadcasts a message to every other process (self excluded — local
    /// effects are applied synchronously).
    std::function<void(sim::PayloadPtr)> broadcast;
    /// Re-evaluates the quorum after the suspect graph or epoch changed
    /// (Algorithm 1 Line 24).
    std::function<void()> update_quorum;
    /// Optional write-ahead hook: invoked after the own row or epoch
    /// changed but *before* the change is broadcast, so a crash can never
    /// have told peers something the local store forgot. Durable nodes
    /// point this at their NodeStore; the simulator leaves it empty.
    std::function<void()> persist;
    /// Optional point-to-point send, used by digest anti-entropy to
    /// answer exactly the peer whose rows diverged. When unset, repairs
    /// fall back to broadcast (correct, just not frugal).
    std::function<void(ProcessId, sim::PayloadPtr)> send = {};
  };

  SuspicionCore(const crypto::Signer& signer, ProcessId n, Hooks hooks,
                GossipMode mode = GossipMode::kFullRow);

  ProcessId self() const { return signer_.self(); }
  ProcessId process_count() const { return n_; }
  Epoch epoch() const { return epoch_; }
  GossipMode gossip_mode() const { return mode_; }
  ProcessSet suspecting() const { return suspecting_; }
  const SuspicionMatrix& matrix() const { return matrix_; }

  /// Suspect graph at the current epoch (Section VI-B), maintained
  /// incrementally: O(1) per merged stamp, full rebuild only on epoch
  /// advance or restore.
  const graph::SimpleGraph& current_graph() const { return graph_; }

  /// Handles <SUSPECTED, S> from the failure detector: updateSuspicions(S)
  /// followed by quorum re-evaluation.
  void on_suspected(ProcessSet s);

  /// Handles a received UPDATE (from the network; `msg` keeps its origin
  /// signature). Invalid signatures are dropped. Returns true when the
  /// matrix changed.
  bool on_update(const std::shared_ptr<const UpdateMessage>& msg);

  /// Handles a received DELTA-UPDATE: verifies the origin signature and
  /// max-merges the carried cells (unconditional join — order, duplicate
  /// and gap insensitive; see delta_update_message.hpp). Forwards on
  /// change, exactly like full-row UPDATEs. Returns true when the matrix
  /// changed.
  bool on_delta(const std::shared_ptr<const DeltaUpdateMessage>& msg);

  /// Handles a received ROW-DIGEST from `from`: compares against the local
  /// rows and pushes the signed messages backing every row where the
  /// sender is behind or divergent (point to point via Hooks::send).
  /// Digests are unauthenticated hints — a lying sender costs bounded
  /// repair traffic on its own link, never state.
  void on_row_digests(ProcessId from, const RowDigestMessage& msg);

  /// Advances the epoch (must increase) and re-issues the current
  /// suspicions in the new epoch (Lines 28-29). Called by the owner's
  /// update_quorum implementation; does NOT recurse into update_quorum.
  void advance_epoch(Epoch new_epoch);

  /// Reinstalls state recovered from stable storage: joins the epoch
  /// (max) and the own row (cell-wise max — the matrix is a CRDT, so
  /// re-offering recovered stamps is always safe). Call before any
  /// protocol activity; does not broadcast or re-evaluate — the owner
  /// decides when (QuorumSelector::restore re-runs update_quorum).
  void restore(Epoch epoch, std::span<const Epoch> own_row);

  /// Anti-entropy retransmission. Forward-on-change (Lemma 1) disseminates
  /// reliably only over reliable links; when links drop messages a lost
  /// UPDATE is never re-sent and matrices can stay split after the network
  /// heals, so every 16th heartbeat the runtimes call resync(). In
  /// kFullRow mode this re-broadcasts the own signed row plus the latest
  /// signed UPDATE merged from every other origin — O(n) full rows, O(n²)
  /// bytes. In kDelta mode it broadcasts one ROW-DIGEST message instead
  /// (O(n) digest bytes); receivers answer with repairs only for rows that
  /// actually diverge, so the steady-state resync cost collapses to the
  /// digest traffic. Either way duplicates are absorbed as no-change: no
  /// forward, no quorum re-evaluation, no amplification.
  void resync();

  /// Digest summary of the local rows (kDelta resync payload; exposed for
  /// tests and benches). Cached per row until the row version moves.
  std::shared_ptr<const RowDigestMessage> make_digest_message();

  /// Smallest epoch that removes at least one *other* process's live edge,
  /// i.e. (min live stamp outside the own row) + 1. The own row does not
  /// count because advance_epoch re-stamps it. Equivalent outcome to the
  /// paper's epoch+1 recursion (intermediate epochs yield identical
  /// graphs) but immune to faulty processes stamping far-future epochs.
  Epoch next_epoch_candidate() const;

  /// Attaches an event tracer (null detaches): SUSPECTED/RESTORED, UPDATE
  /// receive/merge/forward/reject and epoch advances are journaled.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // --- statistics (experiment E8 + BENCH_5) ----------------------------
  std::uint64_t updates_broadcast() const { return updates_broadcast_; }
  std::uint64_t updates_forwarded() const { return updates_forwarded_; }
  std::uint64_t updates_rejected() const { return updates_rejected_; }
  std::uint64_t epoch_advances() const { return epoch_advances_; }
  std::uint64_t deltas_broadcast() const { return deltas_broadcast_; }
  std::uint64_t digests_broadcast() const { return digests_broadcast_; }
  std::uint64_t repairs_sent() const { return repairs_sent_; }
  /// update_quorum invocations skipped because a merge changed the matrix
  /// but not the suspect graph at the current epoch.
  std::uint64_t solver_calls_skipped() const { return solver_calls_skipped_; }

 private:
  void stamp_and_broadcast();
  /// Max-merges one cell, keeping graph_ in sync and (for non-self rows)
  /// recording `basis` as the signed message backing the cell. Returns
  /// true when the cell increased; sets `graph_changed` when the merge
  /// added an edge at the current epoch.
  bool merge_cell_tracked(ProcessId l, ProcessId k, Epoch stamp,
                          const sim::PayloadPtr& basis, bool& graph_changed);
  void rebuild_graph();
  /// Sends (or broadcasts, without Hooks::send) the signed messages
  /// backing row `r` to `to`.
  void send_row_repair(ProcessId to, ProcessId r);
  /// Shared merge epilogue: trace, forward-on-change, and the gated
  /// update_quorum call. Only invoked when the matrix changed.
  void after_merge(bool graph_changed, const sim::PayloadPtr& forward,
                   ProcessId origin, std::uint64_t content_tag);
  const RowDigest& cached_digest(ProcessId r);

  const crypto::Signer& signer_;
  ProcessId n_;
  Hooks hooks_;
  GossipMode mode_;
  Epoch epoch_ = 1;
  ProcessSet suspecting_;
  SuspicionMatrix matrix_;
  /// Suspect graph at epoch_, updated per merged stamp (see rebuild_graph
  /// for the only O(n²) paths: epoch advance and restore).
  graph::SimpleGraph graph_;
  /// latest_[origin]: the most recent UPDATE from `origin` whose merge
  /// changed the matrix; re-offered by kFullRow resync. Correct origins
  /// send cell-wise monotone rows, so the latest changing message
  /// dominates all earlier ones and re-offering it alone reconstructs the
  /// full row.
  std::vector<std::shared_ptr<const UpdateMessage>> latest_;
  /// basis_[origin * n + col]: the origin-signed message (full row or
  /// delta) that established the current value of cell (origin, col).
  /// Digest repair re-offers the deduplicated basis set of a row — every
  /// repair stays origin-authenticated even though the repairer cannot
  /// sign for the origin, and the set is bounded by n messages per row.
  std::vector<sim::PayloadPtr> basis_;
  /// Own-row version as of the last broadcast (kDelta: the next delta
  /// carries exactly the cells stamped after this).
  RowVersion last_broadcast_version_ = 0;
  /// Per-row digest cache, valid while the row version matches.
  std::vector<RowDigest> digest_cache_;
  std::vector<RowVersion> digest_cache_version_;
  trace::Tracer* tracer_ = nullptr;
  std::uint64_t updates_broadcast_ = 0;
  std::uint64_t updates_forwarded_ = 0;
  std::uint64_t updates_rejected_ = 0;
  std::uint64_t epoch_advances_ = 0;
  std::uint64_t deltas_broadcast_ = 0;
  std::uint64_t digests_broadcast_ = 0;
  std::uint64_t repairs_sent_ = 0;
  std::uint64_t solver_calls_skipped_ = 0;
};

}  // namespace qsel::suspect
