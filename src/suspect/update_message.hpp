// UPDATE message (Algorithm 1, Lines 15-16).
//
// Carries one signed row of the suspicion matrix: "origin's suspicions,
// stamped with the epochs they were last issued in". Receivers verify the
// origin signature (forwarders relay the original signed message, so the
// network sender and the signer generally differ) and max-merge the row.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "net/codec.hpp"
#include "sim/payload.hpp"

namespace qsel::suspect {

struct UpdateMessage final : sim::Payload {
  ProcessId origin = kNoProcess;
  std::vector<Epoch> row;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "suspect.update"; }
  std::size_t wire_size() const override {
    return 4 + 8 * row.size() + 36;  // origin + row + signature
  }

  /// Canonical bytes covered by the signature.
  std::vector<std::uint8_t> signed_bytes() const;

  /// Builds and signs an update for `signer.self()`.
  static std::shared_ptr<const UpdateMessage> make(
      const crypto::Signer& signer, std::vector<Epoch> row);

  /// True when `sig` is a valid signature by `origin` over the contents and
  /// the row width matches the system size n.
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::suspect
