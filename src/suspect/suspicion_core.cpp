#include "suspect/suspicion_core.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/tracer.hpp"

namespace qsel::suspect {

namespace {
const sim::PayloadPtr kNoBasis{};
}  // namespace

SuspicionCore::SuspicionCore(const crypto::Signer& signer, ProcessId n,
                             Hooks hooks, GossipMode mode)
    : signer_(signer),
      n_(n),
      hooks_(std::move(hooks)),
      mode_(mode),
      matrix_(n),
      graph_(n),
      latest_(n),
      basis_(static_cast<std::size_t>(n) * n),
      digest_cache_(n),
      digest_cache_version_(n, 0) {
  QSEL_REQUIRE(signer.self() < n);
  QSEL_REQUIRE(hooks_.broadcast != nullptr);
  QSEL_REQUIRE(hooks_.update_quorum != nullptr);
}

bool SuspicionCore::merge_cell_tracked(ProcessId l, ProcessId k, Epoch stamp,
                                       const sim::PayloadPtr& basis,
                                       bool& graph_changed) {
  if (!matrix_.merge_cell(l, k, stamp)) return false;
  if (basis && l != self())
    basis_[static_cast<std::size_t>(l) * n_ + k] = basis;
  if (l != k && stamp >= epoch_ && !graph_.has_edge(l, k)) {
    graph_.add_edge(l, k);
    graph_changed = true;
  }
  return true;
}

void SuspicionCore::rebuild_graph() {
  graph_ = matrix_.build_suspect_graph(epoch_);
}

void SuspicionCore::stamp_and_broadcast() {
  bool graph_changed = false;
  for (ProcessId j : suspecting_)
    merge_cell_tracked(self(), j, epoch_, kNoBasis, graph_changed);
  // Log-before-send: once a peer has seen this row/epoch, the local store
  // must never forget it (the restart oracle checks epoch monotonicity).
  if (hooks_.persist) hooks_.persist();
  const RowVersion version = matrix_.row_version(self());
  if (mode_ == GossipMode::kDelta) {
    const std::vector<ProcessId> cols =
        matrix_.changed(self(), last_broadcast_version_);
    // Nothing stamped since the last broadcast: peers already hold this
    // row (or the digest resync will tell them), so stay silent instead
    // of re-shipping n unchanged cells.
    if (cols.empty()) return;
    last_broadcast_version_ = version;
    std::vector<DeltaCell> cells;
    cells.reserve(cols.size());
    for (ProcessId col : cols)
      cells.push_back({col, matrix_.get(self(), col)});
    auto delta = DeltaUpdateMessage::make(signer_, version, std::move(cells));
    const std::size_t full_size = 4 + 8 * static_cast<std::size_t>(n_) + 36;
    if (delta->wire_size() < full_size) {
      ++deltas_broadcast_;
      hooks_.broadcast(std::move(delta));
      return;
    }
    // A delta touching most of the row is larger than the row itself —
    // fall through to the full-row encoding.
  }
  last_broadcast_version_ = version;
  std::vector<Epoch> row(matrix_.row(self()).begin(),
                         matrix_.row(self()).end());
  ++updates_broadcast_;
  hooks_.broadcast(UpdateMessage::make(signer_, std::move(row)));
}

void SuspicionCore::on_suspected(ProcessSet s) {
  QSEL_REQUIRE(!s.contains(self()));
  if (tracer_) {
    tracer_->suspected(self(), s.mask(), epoch_);
    const ProcessSet restored = suspecting_ - s;
    if (!restored.empty())
      tracer_->restored(self(), restored.mask(), epoch_);
  }
  suspecting_ = s;
  QSEL_LOG(kDebug, "suspect") << "p" << self() << " suspecting "
                              << s.to_string() << " in epoch " << epoch_;
  stamp_and_broadcast();
  hooks_.update_quorum();
}

void SuspicionCore::after_merge(bool graph_changed,
                                const sim::PayloadPtr& forward,
                                ProcessId origin, std::uint64_t content_tag) {
  if (tracer_) tracer_->update_merge(self(), origin, content_tag);
  // Forward-on-change (Line 23), then re-evaluate (Line 24) — this order
  // matters: FIFO receivers must see the UPDATE before any FOLLOWERS
  // message that update_quorum may trigger (Lemma 7).
  ++updates_forwarded_;
  if (tracer_) tracer_->update_forward(self(), origin, content_tag);
  hooks_.broadcast(forward);
  // The quorum is a deterministic function of (suspect graph, epoch): a
  // merge that moved stamps without adding an edge at the current epoch
  // cannot change the solver's answer, so don't ask it.
  if (graph_changed) {
    hooks_.update_quorum();
  } else {
    ++solver_calls_skipped_;
  }
}

bool SuspicionCore::on_update(const std::shared_ptr<const UpdateMessage>& msg) {
  QSEL_REQUIRE(msg != nullptr);
  if (!msg->verify(signer_, n_)) {
    ++updates_rejected_;
    if (tracer_) tracer_->update_reject(self(), msg->origin);
    QSEL_LOG(kWarn, "suspect")
        << "p" << self() << " rejected UPDATE claiming origin p"
        << msg->origin;
    return false;
  }
  // The signature tag digests the row contents, so its prefix is a free
  // per-content discriminator for the trace.
  const std::uint64_t content_tag = msg->sig.tag.prefix64();
  if (tracer_) tracer_->update_receive(self(), msg->origin, content_tag);
  bool changed = false;
  bool graph_changed = false;
  for (ProcessId k = 0; k < n_; ++k)
    changed |= merge_cell_tracked(msg->origin, k, msg->row[k], msg,
                                  graph_changed);
  if (!changed) return false;
  latest_[msg->origin] = msg;  // newest changing row; kFullRow resync
  after_merge(graph_changed, msg, msg->origin, content_tag);
  return true;
}

bool SuspicionCore::on_delta(
    const std::shared_ptr<const DeltaUpdateMessage>& msg) {
  QSEL_REQUIRE(msg != nullptr);
  if (!msg->verify(signer_, n_)) {
    ++updates_rejected_;
    if (tracer_) tracer_->update_reject(self(), msg->origin);
    QSEL_LOG(kWarn, "suspect")
        << "p" << self() << " rejected DELTA-UPDATE claiming origin p"
        << msg->origin;
    return false;
  }
  const std::uint64_t content_tag = msg->sig.tag.prefix64();
  if (tracer_) tracer_->update_receive(self(), msg->origin, content_tag);
  bool changed = false;
  bool graph_changed = false;
  for (const DeltaCell& c : msg->cells)
    changed |= merge_cell_tracked(msg->origin, c.col, c.stamp, msg,
                                  graph_changed);
  if (!changed) return false;
  after_merge(graph_changed, msg, msg->origin, content_tag);
  return true;
}

const RowDigest& SuspicionCore::cached_digest(ProcessId r) {
  const RowVersion v = matrix_.row_version(r);
  if (digest_cache_version_[r] != v) {
    digest_cache_[r] = row_digest(matrix_.row(r));
    digest_cache_version_[r] = v;
  }
  return digest_cache_[r];
}

std::shared_ptr<const RowDigestMessage> SuspicionCore::make_digest_message() {
  auto msg = std::make_shared<RowDigestMessage>();
  for (ProcessId r = 0; r < n_; ++r)
    if (matrix_.row_version(r) > 0)
      msg->entries.push_back({r, cached_digest(r)});
  return msg;
}

void SuspicionCore::send_row_repair(ProcessId to, ProcessId r) {
  const auto push = [&](sim::PayloadPtr m) {
    ++repairs_sent_;
    if (hooks_.send)
      hooks_.send(to, std::move(m));
    else
      hooks_.broadcast(std::move(m));
  };
  if (r == self()) {
    // The own row can always be re-signed fresh — one message, exact.
    std::vector<Epoch> row(matrix_.row(r).begin(), matrix_.row(r).end());
    push(UpdateMessage::make(signer_, std::move(row)));
    return;
  }
  // Another origin's row cannot be re-signed here; offer the deduplicated
  // set of origin-signed messages that established its current cells. By
  // construction the set covers the row exactly and stays authenticated.
  std::vector<const sim::Payload*> seen;
  for (ProcessId k = 0; k < n_; ++k) {
    const sim::PayloadPtr& b = basis_[static_cast<std::size_t>(r) * n_ + k];
    if (!b) continue;
    if (std::find(seen.begin(), seen.end(), b.get()) != seen.end()) continue;
    seen.push_back(b.get());
    push(b);
  }
}

void SuspicionCore::on_row_digests(ProcessId from, const RowDigestMessage& msg) {
  if (from >= n_ || from == self()) return;
  if (!msg.well_formed(n_)) return;
  std::size_t i = 0;  // entries are sorted by row; walk them in lockstep
  for (ProcessId r = 0; r < n_; ++r) {
    while (i < msg.entries.size() && msg.entries[i].row < r) ++i;
    const bool listed = i < msg.entries.size() && msg.entries[i].row == r;
    if (matrix_.row_version(r) == 0) continue;  // nothing to offer for r
    if (listed && msg.entries[i].digest == cached_digest(r)) continue;
    // The sender lacks row r entirely or holds a different image of it.
    // Push our backing messages; the join absorbs anything it already has.
    send_row_repair(from, r);
  }
}

void SuspicionCore::advance_epoch(Epoch new_epoch) {
  QSEL_REQUIRE(new_epoch > epoch_);
  epoch_ = new_epoch;
  ++epoch_advances_;
  if (tracer_) tracer_->epoch_advance(self(), new_epoch);
  QSEL_LOG(kDebug, "suspect") << "p" << self() << " advanced to epoch "
                              << new_epoch;
  // Raising the epoch drops every edge stamped below it — the one merge
  // direction incremental maintenance cannot express, so rebuild.
  rebuild_graph();
  stamp_and_broadcast();
}

void SuspicionCore::restore(Epoch epoch, std::span<const Epoch> own_row) {
  QSEL_REQUIRE(epoch >= 1);
  QSEL_REQUIRE(own_row.empty() || own_row.size() == n_);
  if (epoch > epoch_) epoch_ = epoch;
  if (!own_row.empty()) matrix_.merge_row(self(), own_row);
  rebuild_graph();
  QSEL_LOG(kInfo, "suspect") << "p" << self() << " restored to epoch "
                             << epoch_;
}

void SuspicionCore::resync() {
  // Stamping is idempotent here (the current suspicions already carry the
  // current epoch), so this is purely a re-broadcast of anything peers
  // might not have heard yet.
  stamp_and_broadcast();
  if (mode_ == GossipMode::kDelta) {
    // Digest-first anti-entropy: one O(n)-byte summary instead of O(n)
    // full rows. Peers push origin-signed repairs only for rows that
    // actually diverge (on_row_digests).
    ++digests_broadcast_;
    hooks_.broadcast(make_digest_message());
    return;
  }
  // kFullRow: re-offer every other origin's latest signed row, making the
  // gossip epidemic (see the header comment). Receivers absorb
  // already-known rows as no-change without re-forwarding, so steady-state
  // cost is O(n) messages per resync and no amplification.
  for (ProcessId origin = 0; origin < n_; ++origin) {
    if (origin == self() || latest_[origin] == nullptr) continue;
    hooks_.broadcast(latest_[origin]);
  }
}

Epoch SuspicionCore::next_epoch_candidate() const {
  Epoch min_other = 0;
  for (ProcessId l = 0; l < n_; ++l) {
    if (l == self()) continue;
    for (ProcessId k = 0; k < n_; ++k) {
      const Epoch stamp = matrix_.get(l, k);
      if (l != k && stamp >= epoch_ && (min_other == 0 || stamp < min_other))
        min_other = stamp;
    }
  }
  // When no other row has live entries the current graph is the own star,
  // which always admits an independent set, so the caller should not be
  // asking; fall back to +1 to stay safe.
  return min_other == 0 ? epoch_ + 1 : min_other + 1;
}

}  // namespace qsel::suspect
