#include "suspect/suspicion_core.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/tracer.hpp"

namespace qsel::suspect {

SuspicionCore::SuspicionCore(const crypto::Signer& signer, ProcessId n,
                             Hooks hooks)
    : signer_(signer),
      n_(n),
      hooks_(std::move(hooks)),
      matrix_(n),
      latest_(n) {
  QSEL_REQUIRE(signer.self() < n);
  QSEL_REQUIRE(hooks_.broadcast != nullptr);
  QSEL_REQUIRE(hooks_.update_quorum != nullptr);
}

void SuspicionCore::stamp_and_broadcast() {
  for (ProcessId j : suspecting_) matrix_.stamp(self(), j, epoch_);
  std::vector<Epoch> row(matrix_.row(self()).begin(),
                         matrix_.row(self()).end());
  // Log-before-send: once a peer has seen this row/epoch, the local store
  // must never forget it (the restart oracle checks epoch monotonicity).
  if (hooks_.persist) hooks_.persist();
  ++updates_broadcast_;
  hooks_.broadcast(UpdateMessage::make(signer_, std::move(row)));
}

void SuspicionCore::on_suspected(ProcessSet s) {
  QSEL_REQUIRE(!s.contains(self()));
  if (tracer_) {
    tracer_->suspected(self(), s.mask(), epoch_);
    const ProcessSet restored = suspecting_ - s;
    if (!restored.empty())
      tracer_->restored(self(), restored.mask(), epoch_);
  }
  suspecting_ = s;
  QSEL_LOG(kDebug, "suspect") << "p" << self() << " suspecting "
                              << s.to_string() << " in epoch " << epoch_;
  stamp_and_broadcast();
  hooks_.update_quorum();
}

bool SuspicionCore::on_update(const std::shared_ptr<const UpdateMessage>& msg) {
  QSEL_REQUIRE(msg != nullptr);
  if (!msg->verify(signer_, n_)) {
    ++updates_rejected_;
    if (tracer_) tracer_->update_reject(self(), msg->origin);
    QSEL_LOG(kWarn, "suspect")
        << "p" << self() << " rejected UPDATE claiming origin p"
        << msg->origin;
    return false;
  }
  // The signature tag digests the row contents, so its prefix is a free
  // per-content discriminator for the trace.
  const std::uint64_t content_tag = msg->sig.tag.prefix64();
  if (tracer_) tracer_->update_receive(self(), msg->origin, content_tag);
  if (!matrix_.merge_row(msg->origin, msg->row)) return false;
  latest_[msg->origin] = msg;  // newest changing row; re-offered by resync()
  if (tracer_) tracer_->update_merge(self(), msg->origin, content_tag);
  // Forward-on-change (Line 23), then re-evaluate (Line 24) — this order
  // matters: FIFO receivers must see the UPDATE before any FOLLOWERS
  // message that update_quorum may trigger (Lemma 7).
  ++updates_forwarded_;
  if (tracer_) tracer_->update_forward(self(), msg->origin, content_tag);
  hooks_.broadcast(msg);
  hooks_.update_quorum();
  return true;
}

void SuspicionCore::advance_epoch(Epoch new_epoch) {
  QSEL_REQUIRE(new_epoch > epoch_);
  epoch_ = new_epoch;
  ++epoch_advances_;
  if (tracer_) tracer_->epoch_advance(self(), new_epoch);
  QSEL_LOG(kDebug, "suspect") << "p" << self() << " advanced to epoch "
                              << new_epoch;
  stamp_and_broadcast();
}

void SuspicionCore::restore(Epoch epoch, std::span<const Epoch> own_row) {
  QSEL_REQUIRE(epoch >= 1);
  QSEL_REQUIRE(own_row.empty() || own_row.size() == n_);
  if (epoch > epoch_) epoch_ = epoch;
  if (!own_row.empty()) matrix_.merge_row(self(), own_row);
  QSEL_LOG(kInfo, "suspect") << "p" << self() << " restored to epoch "
                             << epoch_;
}

void SuspicionCore::resync() {
  // Stamping is idempotent here (the current suspicions already carry the
  // current epoch), so this is purely a re-broadcast of the own row...
  stamp_and_broadcast();
  // ...followed by a re-offer of every other origin's latest signed row,
  // making the gossip epidemic (see the header comment). Receivers absorb
  // already-known rows as no-change without re-forwarding, so steady-state
  // cost is O(n) messages per resync and no amplification.
  for (ProcessId origin = 0; origin < n_; ++origin) {
    if (origin == self() || latest_[origin] == nullptr) continue;
    hooks_.broadcast(latest_[origin]);
  }
}

Epoch SuspicionCore::next_epoch_candidate() const {
  Epoch min_other = 0;
  for (ProcessId l = 0; l < n_; ++l) {
    if (l == self()) continue;
    for (ProcessId k = 0; k < n_; ++k) {
      const Epoch stamp = matrix_.get(l, k);
      if (l != k && stamp >= epoch_ && (min_other == 0 || stamp < min_other))
        min_other = stamp;
    }
  }
  // When no other row has live entries the current graph is the own star,
  // which always admits an independent set, so the caller should not be
  // asking; fall back to +1 to stay safe.
  return min_other == 0 ? epoch_ + 1 : min_other + 1;
}

}  // namespace qsel::suspect
