// Schedule mutation — the campaign's search moves.
//
// The coverage-guided engine (campaign/engine.hpp) explores schedule space
// by mutating corpus members instead of only drawing fresh seeds. Mutation
// works on the atom vocabulary shared with the shrinker
// (scenario/atoms.hpp): an opener travels with its closer, so most
// operators preserve Schedule::validate() by construction. The ones that
// may not (perturbed victims can push culprits() past f, a spliced pair of
// partitions can overlap) rely on the engine's validate-retry loop —
// mutate() returns a candidate, the caller discards invalid ones.
//
// Operators, chosen uniformly by the engine's rng:
//   retime     shift one atom in time (keeps pair spacing);
//   perturb    re-aim one atom at different processes / a different
//              partition side / a different delay;
//   del        drop one atom;
//   dup        replay one atom later in the run;
//   splice     atom-prefix of the parent + atom-suffix of another corpus
//              member, under the parent's header;
//   extend     append adversary-walk moves (kInjectSuspicion) by existing
//              Byzantine authors;
//   mux        toggle the GroupMux wrap (qs only): add client slots or
//              drop them (restart atoms are removed — the mux cluster has
//              no durable recovery path);
//   sync       toggle synchronous-optimized mode (forces gst = 0);
//   reseed     new cluster seed, same fault script.
//
// Every operator draws all randomness from the passed Rng, so a campaign
// trajectory is a pure function of its seed.
#pragma once

#include "common/rng.hpp"
#include "scenario/schedule.hpp"

namespace qsel::campaign {

/// One mutation of `parent`; `other` is a second corpus member used by the
/// splice operator (pass `parent` again when the corpus has one entry).
/// The result may fail Schedule::validate() — callers retry.
scenario::Schedule mutate(const scenario::Schedule& parent,
                          const scenario::Schedule& other, Rng& rng);

}  // namespace qsel::campaign
