#include "campaign/mutator.hpp"

#include <algorithm>
#include <vector>

#include "scenario/atoms.hpp"

namespace qsel::campaign {

namespace {

using scenario::Atom;
using scenario::FaultAction;
using scenario::FaultKind;
using scenario::Protocol;
using scenario::Schedule;

constexpr SimDuration kMs = 1'000'000;

ProcessId pick_not(Rng& rng, ProcessId n, ProcessId avoid) {
  ProcessId id;
  do {
    id = static_cast<ProcessId>(rng.below(n));
  } while (id == avoid);
  return id;
}

void retime(Rng& rng, std::vector<Atom>& atoms) {
  if (atoms.empty()) return;
  Atom& atom = atoms[rng.below(atoms.size())];
  // Shift the whole atom; the opener stays >= 1ms so rebuild() keeps the
  // timeline positive.
  const std::int64_t delta_ms =
      static_cast<std::int64_t>(rng.between(0, 150)) - 50;
  const std::int64_t floor_ns = static_cast<std::int64_t>(kMs);
  for (FaultAction& action : atom) {
    const std::int64_t at =
        static_cast<std::int64_t>(action.at) + delta_ms * floor_ns;
    action.at = static_cast<SimTime>(at < floor_ns ? floor_ns : at);
  }
}

void perturb(Rng& rng, std::vector<Atom>& atoms, const Schedule& base) {
  if (atoms.empty()) return;
  Atom& atom = atoms[rng.below(atoms.size())];
  switch (atom.front().kind) {
    case FaultKind::kCrash: {
      const ProcessId victim =
          static_cast<ProcessId>(rng.below(base.n));
      for (FaultAction& action : atom) action.a = victim;
      break;
    }
    case FaultKind::kLinkDown:
    case FaultKind::kLinkDelay: {
      const ProcessId a = static_cast<ProcessId>(rng.below(base.n));
      const ProcessId b = pick_not(rng, base.n, a);
      for (FaultAction& action : atom) {
        action.a = a;
        action.b = b;
        if (action.kind == FaultKind::kLinkDelay)
          action.value = rng.between(9, 90) * kMs;
      }
      break;
    }
    case FaultKind::kPartition: {
      // New side A: any proper nonempty subset.
      ProcessSet side;
      while (side.empty() || side.size() >= static_cast<int>(base.n))
        side = ProcessSet(rng.below(1ULL << base.n));
      atom.front().value = side.mask();
      break;
    }
    case FaultKind::kInjectSuspicion: {
      FaultAction& action = atom.front();
      action.b = pick_not(rng, base.n, action.a);
      break;
    }
    default:
      break;  // closers never lead an atom; kHeal/kLinkUp/kRestart skipped
  }
}

void splice(Rng& rng, std::vector<Atom>& atoms,
            const std::vector<Atom>& other) {
  if (other.empty()) return;
  const std::size_t keep = rng.below(atoms.size() + 1);
  const std::size_t take = rng.below(other.size() + 1);
  atoms.resize(keep);
  atoms.insert(atoms.end(), other.end() - static_cast<std::ptrdiff_t>(take),
               other.end());
}

void extend_walk(Rng& rng, Schedule& schedule) {
  if (schedule.byzantine.empty()) return;
  std::vector<ProcessId> authors;
  for (ProcessId id : schedule.byzantine) authors.push_back(id);
  SimTime t = 20 * kMs;
  for (const FaultAction& action : schedule.actions)
    t = std::max(t, action.at);
  const int moves = static_cast<int>(rng.between(1, 3));
  for (int i = 0; i < moves; ++i) {
    t += rng.between(12, 30) * kMs;
    const ProcessId author = authors[rng.below(authors.size())];
    schedule.actions.push_back({t, FaultKind::kInjectSuspicion, author,
                                pick_not(rng, schedule.n, author), 0});
  }
}

void toggle_mux(Rng& rng, Schedule& schedule) {
  if (schedule.protocol != Protocol::kQuorumSelection) return;
  if (schedule.mux_clients != 0) {
    schedule.mux_clients = 0;
    return;
  }
  schedule.mux_clients = static_cast<ProcessId>(rng.between(1, 3));
  // The mux cluster has no restart path (Schedule::validate rejects the
  // combination); surviving crashes become crash-only faults.
  std::erase_if(schedule.actions, [](const FaultAction& action) {
    return action.kind == FaultKind::kRestart;
  });
}

void add_atom(Rng& rng, Schedule& schedule, std::vector<Atom>& atoms) {
  const SimTime at = (20 + rng.between(0, 400)) * kMs;
  const SimTime close = at + (30 + rng.between(0, 150)) * kMs;
  std::uint64_t pick = rng.below(5);
  // An injection needs a Byzantine author to sign it.
  if (pick == 4 && schedule.byzantine.empty()) pick = 0;
  switch (pick) {
    case 0: {  // crash, sometimes with recovery (qs-only model)
      const auto victim = static_cast<ProcessId>(rng.below(schedule.n));
      Atom atom{{at, FaultKind::kCrash, victim, kNoProcess, 0}};
      if (schedule.protocol == Protocol::kQuorumSelection &&
          schedule.mux_clients == 0 && rng.chance(0.5))
        atom.push_back({close, FaultKind::kRestart, victim, kNoProcess, 0});
      atoms.push_back(std::move(atom));
      break;
    }
    case 1: {  // partition + heal
      ProcessSet side;
      while (side.empty() || side.size() >= static_cast<int>(schedule.n))
        side = ProcessSet(rng.below(1ULL << schedule.n));
      atoms.push_back({{at, FaultKind::kPartition, kNoProcess, kNoProcess,
                        side.mask()},
                       {close, FaultKind::kHeal, kNoProcess, kNoProcess, 0}});
      if (schedule.heartbeat_period == 0)  // partition resync needs ticks
        schedule.heartbeat_period = 5 * kMs;
      break;
    }
    case 2:
    case 3: {  // transient one-way link fault: delay or outage
      const auto a = static_cast<ProcessId>(rng.below(schedule.n));
      const ProcessId b = pick_not(rng, schedule.n, a);
      const FaultKind open =
          pick == 2 ? FaultKind::kLinkDelay : FaultKind::kLinkDown;
      const std::uint64_t value =
          open == FaultKind::kLinkDelay ? rng.between(9, 90) * kMs : 0;
      atoms.push_back({{at, open, a, b, value},
                       {close, FaultKind::kLinkUp, a, b, 0}});
      break;
    }
    default: {  // one adversary injection
      std::vector<ProcessId> authors;
      for (ProcessId id : schedule.byzantine) authors.push_back(id);
      const ProcessId author = authors[rng.below(authors.size())];
      atoms.push_back({{at, FaultKind::kInjectSuspicion, author,
                        pick_not(rng, schedule.n, author), 0}});
      break;
    }
  }
}

/// One operator application; keeps `result` and `atoms` consistent.
void apply_operator(Rng& rng, Schedule& result, std::vector<Atom>& atoms,
                    const Schedule& other) {
  // add_atom carries triple weight (draws 9-11): it is the only operator
  // that introduces a fault kind the parent never had, which is the axis
  // the coverage signature (event-type bitmap) actually measures.
  switch (rng.below(12)) {
    case 0:
      retime(rng, atoms);
      break;
    case 1:
      perturb(rng, atoms, result);
      break;
    case 2:  // delete one atom
      if (!atoms.empty())
        atoms.erase(atoms.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(atoms.size())));
      break;
    case 3: {  // duplicate one atom later in the run
      if (atoms.empty()) break;
      Atom copy = atoms[rng.below(atoms.size())];
      const SimDuration offset = rng.between(30, 200) * kMs;
      for (FaultAction& action : copy) action.at += offset;
      atoms.push_back(std::move(copy));
      break;
    }
    case 4:
      splice(rng, atoms, scenario::make_atoms(other));
      break;
    case 5:
      result = scenario::rebuild(result, atoms);
      extend_walk(rng, result);
      atoms = scenario::make_atoms(result);
      break;
    case 6:
      toggle_mux(rng, result);
      atoms = scenario::make_atoms(result);
      break;
    case 7:  // toggle synchronous-optimized mode
      result.synchronous = !result.synchronous;
      result.gst = 0;
      result.pre_gst_extra = 0;
      break;
    case 8:  // reseed: same script, different latency/workload stream
      result.seed = rng() | 1;
      break;
    default:
      add_atom(rng, result, atoms);
      break;
  }
}

}  // namespace

scenario::Schedule mutate(const scenario::Schedule& parent,
                          const scenario::Schedule& other, Rng& rng) {
  Schedule result = parent;
  std::vector<Atom> atoms = scenario::make_atoms(result);
  // Stacked mutation (AFL-style havoc): a single operator usually leaves
  // the candidate in the parent's behavioural class; stacking a few gives
  // the displacement the search needs.
  const int operators = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < operators; ++i)
    apply_operator(rng, result, atoms, other);
  return scenario::rebuild(result, atoms);
}

}  // namespace qsel::campaign
