#include "campaign/engine.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "campaign/mutator.hpp"
#include "common/assert.hpp"

namespace qsel::campaign {

namespace {

using scenario::Protocol;
using scenario::Schedule;

Schedule fresh_candidate(const scenario::ScheduleGenerator& gen, Rng& rng) {
  // Base candidates are qs-flavored (the richest fault vocabulary — every
  // other protocol is a projection) plus the two targeted families.
  const std::uint64_t pick = rng.below(8);
  if (pick < 6) return gen.generate(Protocol::kQuorumSelection, rng());
  if (pick == 6)
    return gen.generate_family(scenario::Family::kFollowerStress, rng());
  return gen.generate_family(scenario::Family::kSynchronous, rng());
}

ProtocolOutcome evaluate(const Schedule& base, Protocol protocol) {
  ProtocolOutcome out;
  out.protocol = protocol;
  const auto variant = materialize(base, protocol);
  if (!variant.has_value()) return out;
  const scenario::RunResult result = scenario::run_schedule(*variant);
  out.ran = true;
  out.ok = result.report.ok();
  for (const scenario::Violation& violation : result.report.violations)
    out.violated.push_back(violation.oracle);
  out.total_quorums = result.total_quorums;
  out.max_epoch = result.max_epoch;
  out.gossip_bytes = result.gossip_bytes;
  out.view_changes = result.view_changes;
  out.completed_requests = result.observations.completed_requests;
  for (const scenario::ProcessObservation& po :
       result.observations.processes)
    for (const auto& [epoch, count] : po.quorums_per_epoch)
      out.worst_epoch_quorums = std::max(out.worst_epoch_quorums, count);
  out.coverage = result.coverage;
  return out;
}

std::uint64_t signature_of(const Candidate& candidate) {
  // The signature is the trace-event-type bitmap, folded per protocol:
  // which behaviours the bake-off exercised (crashes, partitions, epoch
  // advances, FOLLOWERS rounds, view changes, mux traffic, ...), not how
  // much of each. Scalar signals (quorums forced, epochs burned, gossip
  // bytes, view changes) are rewarded through the frontier instead —
  // folding them (or exact event counts, coverage.key) into the signature
  // makes nearly every run "novel", random search saturates the signature
  // set, and guidance has nothing to steer by. Event-type composition is
  // exactly what the structural mutators (splice / dup / extend / mux /
  // sync) vary, so this is the axis where guidance can out-search fresh
  // generator draws.
  trace::CoverageSignature sig;
  for (const ProtocolOutcome& out : candidate.outcomes) {
    sig.type_bits |= out.coverage.type_bits;
    sig.mix(out.ran ? 1 : 0);
    sig.mix(out.coverage.type_bits);
  }
  sig.mix(sig.type_bits);
  return sig.key;
}

/// Static novelty key — the schedule-level features that determine most
/// of the coverage signature, computable WITHOUT running the candidate:
/// which fault kinds the script plays plus the structural toggles. Guided
/// mode uses it to spend budget on candidates that at least look novel;
/// executing a candidate whose key was already run almost always re-lights
/// an already-seen signature.
std::uint64_t static_key(const Schedule& schedule) {
  std::uint64_t key = 0;
  for (const scenario::FaultAction& action : schedule.actions)
    key |= 1ULL << static_cast<int>(action.kind);
  if (schedule.mux_clients != 0) key |= 1ULL << 8;
  if (schedule.synchronous) key |= 1ULL << 9;
  if (!schedule.byzantine.empty()) key |= 1ULL << 10;
  if (schedule.pre_gst_extra != 0) key |= 1ULL << 11;
  // f and the n-vs-3f relation pick the materialization floors (which
  // protocols run at all, and at what size), so they shape the signature
  // as much as the fault mix does.
  if (static_cast<int>(schedule.n) > 3 * schedule.f) key |= 1ULL << 12;
  key |= static_cast<std::uint64_t>(schedule.f) << 16;
  return key;
}

/// Updates the per-(protocol, signal) maxima; returns true when this
/// candidate pushed at least one, naming the first in config order.
bool frontier_push(std::map<std::string, std::uint64_t>& frontier,
                   const Candidate& candidate, std::string* which) {
  bool pushed = false;
  for (const ProtocolOutcome& out : candidate.outcomes) {
    if (!out.ran) continue;
    const std::string prefix(scenario::protocol_name(out.protocol));
    const std::pair<const char*, std::uint64_t> signals[] = {
        {"quorums", out.total_quorums},
        {"epochs", out.max_epoch},
        {"gossip_bytes", out.gossip_bytes},
        {"view_changes", out.view_changes},
        {"epoch_quorums", out.worst_epoch_quorums},
    };
    for (const auto& [name, value] : signals) {
      std::uint64_t& best = frontier[prefix + "." + name];
      if (value > best) {
        best = value;
        if (!pushed && which != nullptr) *which = prefix + "." + name;
        pushed = true;
      }
    }
  }
  return pushed;
}

void append_u64(std::string& json, std::string_view key, std::uint64_t value,
                bool trailing_comma = true) {
  json += "\"";
  json += key;
  json += "\": ";
  json += std::to_string(value);
  if (trailing_comma) json += ", ";
}

}  // namespace

std::optional<Schedule> materialize(const Schedule& base, Protocol protocol) {
  Schedule variant = base;
  variant.protocol = protocol;
  if (protocol != Protocol::kQuorumSelection) {
    variant.mux_clients = 0;
    variant.min_final_epoch = 0;  // the epoch oracle is tuned on qs runs
    std::erase_if(variant.actions, [](const scenario::FaultAction& action) {
      return action.kind == scenario::FaultKind::kRestart;
    });
  }
  const bool smr = scenario::protocol_is_smr(protocol);
  if (smr) {
    variant.byzantine = {};
    std::erase_if(variant.actions, [](const scenario::FaultAction& action) {
      return action.kind == scenario::FaultKind::kInjectSuspicion;
    });
    // Deterministic workload: same base => same request count everywhere.
    variant.requests = 10 + base.seed % 16;
    // Heartbeats are a selection-stack knob; keep one only where validate
    // demands it (partition resync is heartbeat-driven).
    variant.heartbeat_period = variant.has_partition() ? 5'000'000 : 0;
  } else {
    variant.requests = 0;
  }
  if (protocol != Protocol::kQuorumSelection) {
    // fs and the 3f+1 baselines need n > 3f.
    const int floor = 3 * variant.f + 1;
    if (static_cast<int>(variant.n) < floor) {
      if (floor > static_cast<int>(kMaxProcesses)) return std::nullopt;
      variant.n = static_cast<ProcessId>(floor);
    }
  }
  if (variant.validate().has_value()) return std::nullopt;
  return variant;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  std::uint64_t mix = config.seed ^ 0xca3a16517ULL;
  Rng rng(splitmix64(mix));
  const scenario::ScheduleGenerator gen(config.generator);

  CampaignResult result;
  std::set<std::uint64_t> signatures;
  std::set<std::uint64_t> executed_keys;  // static keys of run candidates
  std::map<std::string, std::uint64_t> frontier;
  // Corpus grouped by signature class: frontier keeps pile many members
  // into the same class, and uniform member selection would then mutate
  // the common class almost exclusively. Sampling a class first keeps
  // parent (and splice-partner) selection diverse.
  std::map<std::uint64_t, std::vector<Schedule>> corpus;
  std::uint64_t corpus_size = 0;
  const auto corpus_pick = [&corpus](Rng& r) -> const Schedule& {
    auto it = corpus.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(r.below(corpus.size())));
    return it->second[r.below(it->second.size())];
  };

  const auto track_qs = [&result](const Candidate& candidate) {
    for (const ProtocolOutcome& out : candidate.outcomes) {
      if (out.protocol != Protocol::kQuorumSelection || !out.ran) continue;
      if (out.worst_epoch_quorums > result.qs_worst_epoch_quorums) {
        result.qs_worst_epoch_quorums = out.worst_epoch_quorums;
        const auto f = static_cast<std::uint64_t>(candidate.base.f);
        result.qs_theorem4_target = (f + 2) * (f + 1) / 2;  // C(f+2, 2)
      }
    }
  };

  const auto run_candidate = [&](const Schedule& base) {
    Candidate candidate;
    candidate.base = base;
    for (Protocol protocol : config.protocols)
      candidate.outcomes.push_back(evaluate(base, protocol));
    candidate.signature = signature_of(candidate);
    for (const ProtocolOutcome& out : candidate.outcomes)
      if (out.ran && !out.ok) ++result.violations;
    track_qs(candidate);
    return candidate;
  };

  for (const Schedule& seed_schedule : config.corpus_seeds) {
    Candidate candidate = run_candidate(seed_schedule);
    candidate.kept = true;
    candidate.reason = "seed";
    signatures.insert(candidate.signature);
    executed_keys.insert(static_key(seed_schedule));
    frontier_push(frontier, candidate, nullptr);
    corpus[candidate.signature].push_back(seed_schedule);
    ++corpus_size;
    result.candidates.push_back(std::move(candidate));
  }
  result.seed_signatures = signatures.size();

  for (std::uint64_t i = 0; i < config.budget; ++i) {
    Schedule base;
    bool have = false;
    if (config.guided && corpus_size != 0 && rng.chance(0.7)) {
      // Mutants are free; only running one spends budget. Prefer the
      // first valid mutant whose static key has not been executed yet,
      // falling back to the first valid one.
      bool novel_key = false;
      for (int attempt = 0; attempt < 16 && !novel_key; ++attempt) {
        Schedule mutant = mutate(corpus_pick(rng), corpus_pick(rng), rng);
        if (mutant.validate().has_value()) continue;
        novel_key = !executed_keys.contains(static_key(mutant));
        if (novel_key || !have) base = std::move(mutant);
        have = true;
      }
    }
    if (!have) base = fresh_candidate(gen, rng);
    if (config.guided) {
      // Same pre-filter on fresh draws: redrawing a schedule that plays
      // an already-executed fault mix is the budget waste random mode
      // cannot avoid.
      for (int attempt = 0;
           attempt < 8 && executed_keys.contains(static_key(base));
           ++attempt)
        base = fresh_candidate(gen, rng);
    }
    executed_keys.insert(static_key(base));

    Candidate candidate = run_candidate(base);
    std::string which;
    const bool novel = signatures.insert(candidate.signature).second;
    const bool pushed = frontier_push(frontier, candidate, &which);
    if (novel) {
      candidate.kept = true;
      candidate.reason = "new-signature";
    } else if (pushed) {
      candidate.kept = true;
      candidate.reason = "frontier:" + which;
    }
    if (candidate.kept) {
      ++result.kept;
      corpus[candidate.signature].push_back(base);
      ++corpus_size;
    }
    result.candidates.push_back(std::move(candidate));
  }
  result.distinct_signatures = signatures.size();
  return result;
}

std::string CampaignResult::to_json(const CampaignConfig& config) const {
  std::string json = "{";
  append_u64(json, "budget", config.budget);
  append_u64(json, "seed", config.seed);
  json += "\"guided\": ";
  json += config.guided ? "true" : "false";
  json += ", \"protocols\": [";
  for (std::size_t i = 0; i < config.protocols.size(); ++i) {
    if (i != 0) json += ", ";
    json += "\"";
    json += scenario::protocol_name(config.protocols[i]);
    json += "\"";
  }
  json += "], ";
  append_u64(json, "executed", candidates.size());
  append_u64(json, "seed_candidates", config.corpus_seeds.size());
  append_u64(json, "distinct_signatures", distinct_signatures);
  append_u64(json, "seed_signatures", seed_signatures);
  append_u64(json, "kept", kept);
  append_u64(json, "violations", violations);
  append_u64(json, "qs_worst_epoch_quorums", qs_worst_epoch_quorums);
  append_u64(json, "qs_theorem4_target", qs_theorem4_target);

  json += "\"per_protocol\": [";
  for (std::size_t p = 0; p < config.protocols.size(); ++p) {
    const Protocol protocol = config.protocols[p];
    std::uint64_t runs = 0, bad = 0, quorums = 0, epochs = 1, gossip = 0,
                  views = 0, completed = 0;
    for (const Candidate& candidate : candidates)
      for (const ProtocolOutcome& out : candidate.outcomes) {
        if (out.protocol != protocol || !out.ran) continue;
        ++runs;
        if (!out.ok) ++bad;
        quorums = std::max(quorums, out.total_quorums);
        epochs = std::max(epochs, static_cast<std::uint64_t>(out.max_epoch));
        gossip = std::max(gossip, out.gossip_bytes);
        views = std::max(views, out.view_changes);
        completed = std::max(completed, out.completed_requests);
      }
    if (p != 0) json += ", ";
    json += "{";
    json += "\"protocol\": \"";
    json += scenario::protocol_name(protocol);
    json += "\", ";
    append_u64(json, "runs", runs);
    append_u64(json, "violations", bad);
    append_u64(json, "max_quorums", quorums);
    append_u64(json, "max_epoch", epochs);
    append_u64(json, "max_gossip_bytes", gossip);
    append_u64(json, "max_view_changes", views);
    append_u64(json, "max_completed_requests", completed, false);
    json += "}";
  }
  json += "], ";

  json += "\"kept_schedules\": [";
  bool first = true;
  for (const Candidate& candidate : candidates) {
    if (!candidate.kept) continue;
    if (!first) json += ", ";
    first = false;
    json += "{\"reason\": \"" + candidate.reason + "\", \"summary\": \"" +
            candidate.base.summary() + "\"}";
  }
  json += "], ";

  json += "\"violation_details\": [";
  first = true;
  for (const Candidate& candidate : candidates)
    for (const ProtocolOutcome& out : candidate.outcomes) {
      if (!out.ran || out.ok) continue;
      if (!first) json += ", ";
      first = false;
      json += "{\"protocol\": \"";
      json += scenario::protocol_name(out.protocol);
      json += "\", \"oracles\": [";
      for (std::size_t v = 0; v < out.violated.size(); ++v) {
        if (v != 0) json += ", ";
        json += "\"" + out.violated[v] + "\"";
      }
      json += "], \"schedule\": \"" + candidate.base.summary() + "\"}";
    }
  json += "]}";
  return json;
}

std::string CampaignResult::bakeoff_table(const CampaignConfig& config) const {
  std::string table =
      "| protocol | runs | violations | max quorums | max epoch | "
      "max gossip bytes | max view changes | max requests done |\n"
      "|---|---|---|---|---|---|---|---|\n";
  for (const Protocol protocol : config.protocols) {
    std::uint64_t runs = 0, bad = 0, quorums = 0, epochs = 1, gossip = 0,
                  views = 0, completed = 0;
    for (const Candidate& candidate : candidates)
      for (const ProtocolOutcome& out : candidate.outcomes) {
        if (out.protocol != protocol || !out.ran) continue;
        ++runs;
        if (!out.ok) ++bad;
        quorums = std::max(quorums, out.total_quorums);
        epochs = std::max(epochs, static_cast<std::uint64_t>(out.max_epoch));
        gossip = std::max(gossip, out.gossip_bytes);
        views = std::max(views, out.view_changes);
        completed = std::max(completed, out.completed_requests);
      }
    table += "| ";
    table += scenario::protocol_name(protocol);
    table += " | " + std::to_string(runs) + " | " + std::to_string(bad) +
             " | " + std::to_string(quorums) + " | " +
             std::to_string(epochs) + " | " + std::to_string(gossip) +
             " | " + std::to_string(views) + " | " +
             std::to_string(completed) + " |\n";
  }
  return table;
}

}  // namespace qsel::campaign
