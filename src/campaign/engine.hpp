// Coverage-guided campaign engine — adversary search as a bake-off.
//
// A campaign is a budgeted stream of candidate base schedules, each run
// against every configured protocol (qs / fs / bchain / pbft by default)
// with that protocol's own oracles. Feedback comes from cheap observables
// the runner already computes:
//
//   * the trace coverage signature (event-type bitmap + log2-bucketed
//     per-type counts, trace/coverage.hpp),
//   * quorum changes forced, epochs burned, suspicion-gossip bytes,
//   * view changes / reconfigurations on the SMR baselines.
//
// The per-protocol signatures and bucketed signals fold into one campaign
// signature per candidate. A candidate is KEPT — added to the in-memory
// corpus and offered to the mutator — when it lights a signature no corpus
// member has, or pushes some (protocol, signal) past the corpus frontier.
// In guided mode new candidates are mostly mutations of kept ones
// (campaign/mutator.hpp); in random mode every candidate is a fresh
// generator draw — the A/B baseline that shows guidance earns its keep.
//
// Everything is deterministic in (config, seed): same corpus seeds + same
// budget => bit-identical trajectory and JSON summary. The engine never
// reads the clock or the filesystem; the CLI (tools/qsel_campaign.cpp)
// owns corpus I/O.
//
// Theorem 4 is NOT a hard oracle (the sound per-epoch bound is
// Theorem 3's f(f+1)+1, which exceeds C(f+2,2) for f >= 2); the engine
// instead tracks the worst per-epoch quorum count it forced against the
// C(f+2,2) adversary target as a frontier metric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/schedule.hpp"

namespace qsel::campaign {

struct CampaignConfig {
  /// Candidate base schedules to execute (corpus seeds are re-evaluated
  /// first to establish the baseline and do not count against this).
  std::uint64_t budget = 50;
  std::uint64_t seed = 1;
  /// false = pure-random baseline: every candidate is a fresh generator
  /// draw, keep/frontier bookkeeping identical.
  bool guided = true;
  /// Protocols each candidate is materialized for, in bake-off order.
  std::vector<scenario::Protocol> protocols = {
      scenario::Protocol::kQuorumSelection,
      scenario::Protocol::kFollowerSelection,
      scenario::Protocol::kBChain,
      scenario::Protocol::kPbft,
  };
  /// Initial corpus (schedule JSON files loaded by the CLI).
  std::vector<scenario::Schedule> corpus_seeds;
  scenario::GeneratorConfig generator;
};

/// One protocol's view of one candidate.
struct ProtocolOutcome {
  scenario::Protocol protocol = scenario::Protocol::kQuorumSelection;
  /// False when the candidate could not be materialized for this protocol
  /// (e.g. a schedule shape the protocol's validate() rejects).
  bool ran = false;
  bool ok = true;
  std::vector<std::string> violated;  // oracle names, schedule order
  std::uint64_t total_quorums = 0;
  Epoch max_epoch = 1;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t completed_requests = 0;
  /// Max quorums any process issued inside a single epoch (selection
  /// protocols) — the Theorem 3 / Theorem 4 axis.
  std::uint64_t worst_epoch_quorums = 0;
  trace::CoverageSignature coverage{};
};

struct Candidate {
  scenario::Schedule base;
  std::vector<ProtocolOutcome> outcomes;
  /// Campaign signature: per-protocol coverage + bucketed signals folded
  /// in config order.
  std::uint64_t signature = 0;
  bool kept = false;
  /// "seed", "new-signature", "frontier:<protocol>.<signal>" or "".
  std::string reason;
};

struct CampaignResult {
  /// Every executed candidate, in execution order (corpus seeds first).
  std::vector<Candidate> candidates;
  std::uint64_t distinct_signatures = 0;
  std::uint64_t kept = 0;
  std::uint64_t violations = 0;
  /// Signatures contributed by the corpus seeds alone (the "new coverage
  /// vs. seed corpus" check in CI diffs distinct_signatures against it).
  std::uint64_t seed_signatures = 0;
  /// Worst per-epoch quorums forced on the qs protocol across the whole
  /// campaign, and the Theorem-4 adversary target C(f+2,2) for the f it
  /// was forced at.
  std::uint64_t qs_worst_epoch_quorums = 0;
  std::uint64_t qs_theorem4_target = 0;

  /// Deterministic JSON summary (stable key order, no timestamps).
  std::string to_json(const CampaignConfig& config) const;
  /// Per-protocol bake-off table (markdown) for EXPERIMENTS.md.
  std::string bakeoff_table(const CampaignConfig& config) const;
};

/// Materializes a base schedule for one protocol: strips the fields the
/// protocol's validate() rejects, bumps n to the protocol floor, derives a
/// deterministic request count for the SMR baselines. Returns nullopt when
/// no valid variant exists.
std::optional<scenario::Schedule> materialize(const scenario::Schedule& base,
                                              scenario::Protocol protocol);

CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace qsel::campaign
