// GroupTransport — one shard group's slice of a shared transport.
//
// A node process hosts replicas of several groups over a single
// EventLoop/TcpTransport (or one sim::Network slot under test). Each group
// runs the unmodified XPaxos/SMR stack in its OWN id space: members are
// ranks 0..k-1 in spec order, client slots follow. GroupTransport
// implements net::Transport over that local space by wrapping every
// outgoing message in a net::GroupFrame — the inner frame body is encoded
// here, with the group-local codec bounds — and the GroupMux on the
// receiving node demultiplexes frames back to the right group and decodes
// with that group's local process count.
//
// Isolation properties this buys:
//   * a replica cannot address a process outside its group (the id space
//     simply doesn't contain it);
//   * frames from senders that are not group members are dropped before
//     decoding (counted in dropped_foreign);
//   * each group signs with its own crypto::KeyRegistry (seed mixed with
//     the group id — see GroupSpec::key_seed), so a signature from group A
//     never verifies in group B even for the same rank.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "net/cluster_config.hpp"
#include "net/transport.hpp"
#include "shard/shard_map.hpp"

namespace qsel::shard {

/// Membership of one group: which global transport ids play which
/// group-local rank. Identical at every node by construction (derived from
/// the shared cluster config).
struct GroupSpec {
  GroupId id = 0;
  /// Replica members, rank order: members[i] has group-local id i.
  std::vector<ProcessId> members;
  /// Client slots: clients[j] has group-local id members.size() + j.
  std::vector<ProcessId> clients;

  ProcessId local_count() const {
    return static_cast<ProcessId>(members.size() + clients.size());
  }
  /// Group-local id of a global transport id; nullopt when not in the
  /// group.
  std::optional<ProcessId> local_of(ProcessId global) const;
  /// Global transport id of a group-local id (must be < local_count()).
  ProcessId global_of(ProcessId local) const;

  /// Per-group signing seed: the base seed mixed with the group id, so
  /// replicas at the same rank in different groups hold unrelated keys.
  std::uint64_t key_seed(std::uint64_t base_seed) const {
    return base_seed ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{id} + 1));
  }
};

/// Builds a GroupSpec from a parsed `[group <id>]` config section.
GroupSpec spec_from(const net::GroupConfig& group);

class GroupTransport final : public net::Transport {
 public:
  /// Does NOT install itself on `base` — the GroupMux owns the base
  /// handler and routes frames here via deliver().
  GroupTransport(net::Transport& base, GroupSpec spec);

  ProcessId self() const override { return self_local_; }
  ProcessId process_count() const override { return spec_.local_count(); }
  sim::Simulator& timers() override { return base_.timers(); }
  SimDuration round_length() const override { return base_.round_length(); }
  void set_handler(Handler handler) override { handler_ = std::move(handler); }

  void send(ProcessId to, sim::PayloadPtr message) override;
  void broadcast(ProcessSet targets, const sim::PayloadPtr& message) override;

  /// Upcall from the GroupMux: an inner frame body from global id `from`.
  void deliver(ProcessId global_from, std::span<const std::uint8_t> inner);

  const GroupSpec& spec() const { return spec_; }
  /// Sends dropped because the payload has no wire encoding. Anything
  /// nonzero is a bug in the caller — only codec-backed payloads may cross
  /// a group boundary.
  std::uint64_t dropped_unencodable() const { return dropped_unencodable_; }
  /// Inbound frames dropped: sender not a group member, or inner bytes
  /// that do not decode under the group-local bounds.
  std::uint64_t dropped_foreign() const { return dropped_foreign_; }

 private:
  /// Encodes `message` and wraps it in a GroupFrame; nullptr when the
  /// payload has no wire encoding.
  sim::PayloadPtr wrap(const sim::Payload& message);

  net::Transport& base_;
  GroupSpec spec_;
  ProcessId self_local_;
  Handler handler_;
  std::uint64_t dropped_unencodable_ = 0;
  std::uint64_t dropped_foreign_ = 0;
};

/// Demultiplexer owning the base transport's handler: routes GroupFrames
/// to the GroupTransport registered for their group id and drops
/// everything else. One per node process.
class GroupMux final {
 public:
  /// Installs itself as `base`'s handler.
  explicit GroupMux(net::Transport& base);

  /// Registers a group this node participates in (base.self() must be in
  /// the spec). Returns the group's transport, owned by the mux.
  GroupTransport& add_group(GroupSpec spec);

  GroupTransport* group(GroupId id);
  /// Frames dropped at the mux: not a GroupFrame, or no group registered
  /// under the frame's id.
  std::uint64_t dropped_unroutable() const { return dropped_unroutable_; }

 private:
  void on_message(ProcessId from, const sim::PayloadPtr& message);

  net::Transport& base_;
  std::map<GroupId, std::unique_ptr<GroupTransport>> groups_;
  std::uint64_t dropped_unroutable_ = 0;
};

}  // namespace qsel::shard
