#include "shard/shard_kv.hpp"

#include <algorithm>

#include "net/codec.hpp"
#include "smr/typed_result.hpp"

namespace qsel::shard {

namespace {

bool in_range(const std::string& key, const std::string& lo,
              const std::string& hi) {
  return key >= lo && (hi.empty() || key < hi);
}

}  // namespace

std::vector<std::uint8_t> ShardKvOp::encode() const {
  net::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(type));
  enc.u64(epoch);
  enc.u64(migration_id);
  enc.str(lo);
  enc.str(hi);
  enc.u64(offset);
  enc.u32(limit);
  enc.u32(chunk_seq);
  enc.u32(total_chunks);
  enc.bytes(payload);
  enc.digest(digest);
  return std::move(enc).take();
}

std::optional<ShardKvOp> ShardKvOp::decode(
    std::span<const std::uint8_t> bytes) {
  net::Decoder dec(bytes);
  ShardKvOp op;
  const std::uint8_t type = dec.u8();
  op.epoch = dec.u64();
  op.migration_id = dec.u64();
  op.lo = dec.str();
  op.hi = dec.str();
  op.offset = dec.u64();
  op.limit = dec.u32();
  op.chunk_seq = dec.u32();
  op.total_chunks = dec.u32();
  op.payload = dec.bytes();
  op.digest = dec.digest();
  if (!dec.done()) return std::nullopt;
  if (type < static_cast<std::uint8_t>(KvOpType::kClientOp) ||
      type > static_cast<std::uint8_t>(KvOpType::kDrop))
    return std::nullopt;
  op.type = static_cast<KvOpType>(type);
  return op;
}

std::vector<std::uint8_t> ShardKvOp::client_op(
    std::uint64_t epoch, std::vector<std::uint8_t> inner) {
  ShardKvOp op;
  op.type = KvOpType::kClientOp;
  op.epoch = epoch;
  op.payload = std::move(inner);
  return op.encode();
}

std::vector<std::uint8_t> ShardKvOp::freeze(std::uint64_t migration_id,
                                            std::string lo, std::string hi) {
  ShardKvOp op;
  op.type = KvOpType::kFreeze;
  op.migration_id = migration_id;
  op.lo = std::move(lo);
  op.hi = std::move(hi);
  return op.encode();
}

std::vector<std::uint8_t> ShardKvOp::range_info(std::string lo,
                                                std::string hi) {
  ShardKvOp op;
  op.type = KvOpType::kRangeInfo;
  op.lo = std::move(lo);
  op.hi = std::move(hi);
  return op.encode();
}

std::vector<std::uint8_t> ShardKvOp::snapshot_chunk(std::string lo,
                                                    std::string hi,
                                                    std::uint64_t offset,
                                                    std::uint32_t limit) {
  ShardKvOp op;
  op.type = KvOpType::kSnapshotChunk;
  op.lo = std::move(lo);
  op.hi = std::move(hi);
  op.offset = offset;
  op.limit = limit;
  return op.encode();
}

std::vector<std::uint8_t> ShardKvOp::install_chunk(
    std::uint64_t migration_id, std::uint32_t chunk_seq,
    std::vector<std::uint8_t> pairs) {
  ShardKvOp op;
  op.type = KvOpType::kInstallChunk;
  op.migration_id = migration_id;
  op.chunk_seq = chunk_seq;
  op.payload = std::move(pairs);
  return op.encode();
}

std::vector<std::uint8_t> ShardKvOp::adopt(std::uint64_t migration_id,
                                           std::uint64_t epoch_new,
                                           std::string lo, std::string hi,
                                           const crypto::Digest& digest,
                                           std::uint32_t total_chunks) {
  ShardKvOp op;
  op.type = KvOpType::kAdopt;
  op.migration_id = migration_id;
  op.epoch = epoch_new;
  op.lo = std::move(lo);
  op.hi = std::move(hi);
  op.digest = digest;
  op.total_chunks = total_chunks;
  return op.encode();
}

std::vector<std::uint8_t> ShardKvOp::drop(std::uint64_t migration_id,
                                          std::uint64_t epoch_new,
                                          std::string lo, std::string hi) {
  ShardKvOp op;
  op.type = KvOpType::kDrop;
  op.migration_id = migration_id;
  op.epoch = epoch_new;
  op.lo = std::move(lo);
  op.hi = std::move(hi);
  return op.encode();
}

std::vector<std::uint8_t> encode_pairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  net::Encoder enc;
  enc.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [key, value] : pairs) {
    enc.str(key);
    enc.str(value);
  }
  return std::move(enc).take();
}

std::optional<std::vector<std::pair<std::string, std::string>>> decode_pairs(
    std::span<const std::uint8_t> bytes) {
  net::Decoder dec(bytes);
  const std::uint32_t count = dec.u32();
  if (!dec.ok()) return std::nullopt;
  std::vector<std::pair<std::string, std::string>> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key = dec.str();
    std::string value = dec.str();
    if (!dec.ok()) return std::nullopt;
    out.emplace_back(std::move(key), std::move(value));
  }
  if (!dec.done()) return std::nullopt;
  return out;
}

// --------------------------------------------------------------------------

ShardKv::ShardKv(Config config, trace::Tracer* tracer, ProcessId self)
    : config_epoch_(config.initial_epoch),
      owned_(std::move(config.owned)),
      tracer_(tracer),
      self_(self) {
  std::sort(owned_.begin(), owned_.end());
}

bool ShardKv::owns(const std::string& key) const {
  for (const auto& [lo, hi] : owned_)
    if (in_range(key, lo, hi)) return true;
  return false;
}

bool ShardKv::is_frozen(const std::string& key) const {
  for (const auto& [id, m] : freezes_)
    if (in_range(key, m.lo, m.hi)) return true;
  return false;
}

void ShardKv::bump_epoch(std::uint64_t to) {
  if (to <= config_epoch_) return;  // F4: forward only
  if (tracer_ != nullptr) tracer_->config_epoch_bump(self_, to, config_epoch_);
  config_epoch_ = to;
}

std::string ShardKv::apply_encoded(std::span<const std::uint8_t> bytes) {
  const auto op = ShardKvOp::decode(bytes);
  if (!op) return smr::TypedResult::ok(config_epoch_, "<malformed>");
  return apply(*op);
}

std::string ShardKv::apply(const ShardKvOp& op) {
  switch (op.type) {
    case KvOpType::kClientOp: {
      // F1: epoch fencing before anything else. A *newer* epoch than ours
      // is accepted — the client refetched the map before we heard of the
      // bump; ownership below still gates it.
      if (op.epoch < config_epoch_)
        return smr::TypedResult::stale_epoch(config_epoch_);
      const auto inner = app::Operation::decode(op.payload);
      if (!inner) return smr::TypedResult::ok(config_epoch_, "<malformed>");
      if (!owns(inner->key))  // F2
        return smr::TypedResult::wrong_group(config_epoch_);
      if (is_frozen(inner->key))  // F3
        return smr::TypedResult::frozen(config_epoch_);
      return smr::TypedResult::ok(config_epoch_, kv_.apply(*inner));
    }
    case KvOpType::kFreeze: {
      const auto it = freezes_.find(op.migration_id);
      if (it == freezes_.end()) {
        freezes_[op.migration_id] = Migration{op.lo, op.hi, {}};
        if (tracer_ != nullptr)
          tracer_->shard_freeze(self_, op.migration_id, config_epoch_, op.lo);
      }
      return smr::TypedResult::ok(config_epoch_, "frozen");
    }
    case KvOpType::kRangeInfo: {
      net::Encoder enc;
      enc.u64(kv_.range_size(op.lo, op.hi));
      enc.digest(kv_.range_digest(op.lo, op.hi));
      const auto bytes = std::move(enc).take();
      return smr::TypedResult::ok(config_epoch_,
                                  std::string(bytes.begin(), bytes.end()));
    }
    case KvOpType::kSnapshotChunk: {
      // Stable only because the range is frozen; the coordinator always
      // freezes before reading.
      const auto pairs = kv_.range_entries(op.lo, op.hi, op.offset, op.limit);
      const auto bytes = encode_pairs(pairs);
      return smr::TypedResult::ok(config_epoch_,
                                  std::string(bytes.begin(), bytes.end()));
    }
    case KvOpType::kInstallChunk: {
      Migration& m = installs_[op.migration_id];
      if (m.chunks.contains(op.chunk_seq))  // duplicate: absorbed
        return smr::TypedResult::ok(config_epoch_, "dup");
      const auto pairs = decode_pairs(op.payload);
      if (!pairs) return smr::TypedResult::ok(config_epoch_, "<malformed>");
      kv_.install(*pairs);
      m.chunks.insert(op.chunk_seq);
      if (tracer_ != nullptr)
        tracer_->shard_install(self_, op.migration_id, op.chunk_seq, op.lo);
      return smr::TypedResult::ok(config_epoch_, "installed");
    }
    case KvOpType::kAdopt: {
      const auto it = installs_.find(op.migration_id);
      const std::size_t have = it == installs_.end() ? 0 : it->second.chunks.size();
      if (have != op.total_chunks)
        return smr::TypedResult::ok(config_epoch_, "adopt-missing-chunks");
      if (kv_.range_digest(op.lo, op.hi) != op.digest)
        return smr::TypedResult::ok(config_epoch_, "adopt-digest-mismatch");
      owned_.emplace_back(op.lo, op.hi);
      std::sort(owned_.begin(), owned_.end());
      installs_.erase(op.migration_id);
      bump_epoch(op.epoch);
      if (tracer_ != nullptr)
        tracer_->shard_install(self_, op.migration_id,
                               ~std::uint64_t{0}, op.lo);
      return smr::TypedResult::ok(config_epoch_, "adopted");
    }
    case KvOpType::kDrop: {
      // Subtract [lo, hi) from the owned set: an exact-match range
      // disappears, a subrange drop leaves the remainders so the group
      // keeps serving the keys it still holds.
      std::vector<std::pair<std::string, std::string>> kept;
      for (const auto& [l, h] : owned_) {
        const bool overlap = (op.hi.empty() || l < op.hi) &&
                             (h.empty() || op.lo < h);
        if (!overlap) {
          kept.emplace_back(l, h);
          continue;
        }
        if (l < op.lo) kept.emplace_back(l, op.lo);
        if (!op.hi.empty() && (h.empty() || op.hi < h))
          kept.emplace_back(op.hi, h);
      }
      std::sort(kept.begin(), kept.end());
      owned_ = std::move(kept);
      freezes_.erase(op.migration_id);
      kv_.erase_range(op.lo, op.hi);
      bump_epoch(op.epoch);
      return smr::TypedResult::ok(config_epoch_, "dropped");
    }
  }
  return smr::TypedResult::ok(config_epoch_, "<malformed>");
}

crypto::Digest ShardKv::state_digest() const {
  net::Encoder enc;
  enc.u64(config_epoch_);
  enc.u32(static_cast<std::uint32_t>(owned_.size()));
  for (const auto& [lo, hi] : owned_) {
    enc.str(lo);
    enc.str(hi);
  }
  enc.u32(static_cast<std::uint32_t>(freezes_.size()));
  for (const auto& [id, m] : freezes_) {
    enc.u64(id);
    enc.str(m.lo);
    enc.str(m.hi);
  }
  enc.u32(static_cast<std::uint32_t>(installs_.size()));
  for (const auto& [id, m] : installs_) {
    enc.u64(id);
    enc.u64(m.chunks.size());
  }
  enc.digest(kv_.state_digest());
  return crypto::sha256(enc.view());
}

}  // namespace qsel::shard
