// ShardMap — the replicated configuration of a sharded key-value service.
//
// One XPaxos group (the shard-config group) replicates this machine; every
// other replica group serves the key ranges the map assigns to it. The map
// carries a monotonically increasing *config epoch*: every ownership
// change (assign at bootstrap, commit of a live migration) bumps it by
// one, and the epoch is the fencing token the data groups use to reject
// stale clients deterministically (shard_kv.hpp).
//
// Ranges are [lo, hi) with hi = "" meaning unbounded above, sorted by lo
// and non-overlapping; lookup is a binary search. The whole map is small
// (shards, not keys), so GET returns the full encoded map and clients
// cache it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "app/state_machine.hpp"
#include "net/codec.hpp"

namespace qsel::shard {

using GroupId = std::uint32_t;

struct ShardRange {
  std::string lo;
  std::string hi;  // exclusive; "" = unbounded above
  GroupId group = 0;
  /// A migration away from `group` is prepared but not yet committed.
  bool migrating = false;

  bool operator==(const ShardRange&) const = default;
  bool contains(const std::string& key) const {
    return key >= lo && (hi.empty() || key < hi);
  }
};

struct ShardMap {
  std::uint64_t epoch = 0;
  std::vector<ShardRange> ranges;  // sorted by lo, non-overlapping

  bool operator==(const ShardMap&) const = default;

  /// The range owning `key`, or nullptr when no range covers it.
  const ShardRange* lookup(const std::string& key) const;

  void encode(net::Encoder& enc) const;
  static std::optional<ShardMap> decode(net::Decoder& dec);
  std::string encode_to_string() const;
  static std::optional<ShardMap> decode_from_string(const std::string& bytes);
};

/// Operations on the ShardMapMachine, encoded as net::Encoder bytes.
enum class MapOpType : std::uint8_t {
  kGet = 1,          // -> value = encoded ShardMap
  kAssign = 2,       // lo, hi, group: set/replace the range; epoch += 1
  kPrepareMove = 3,  // lo, group_to: mark migrating (no epoch bump)
  kCommitMove = 4,   // lo, group_to: ownership moves; epoch += 1
};

struct MapOp {
  MapOpType type = MapOpType::kGet;
  std::string lo;
  std::string hi;       // kAssign only
  GroupId group = 0;    // kAssign / kPrepareMove / kCommitMove

  std::vector<std::uint8_t> encode() const;
  static std::optional<MapOp> decode(std::span<const std::uint8_t> bytes);
};

/// The shard-config group's state machine. Every result — including the
/// malformed-op result — is a smr::TypedResult envelope carrying the
/// current config epoch, so clients always learn how stale they are.
class ShardMapMachine final : public app::StateMachine {
 public:
  /// Starts empty at epoch 1; ranges are assigned through consensus
  /// (kAssign ops), so every replica derives the same map.
  ShardMapMachine() { map_.epoch = 1; }

  std::string apply_encoded(std::span<const std::uint8_t> bytes) override;
  crypto::Digest state_digest() const override;

  const ShardMap& map() const { return map_; }

 private:
  std::string apply(const MapOp& op);

  ShardMap map_;
};

}  // namespace qsel::shard
