#include "shard/shard_cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace qsel::shard {

ShardCluster::ShardCluster(ShardClusterConfig config)
    : config_(std::move(config)),
      transports_(kTotal),
      ports_(kTotal, 0),
      hosts_(kNodes) {
  // Transports first: every listen port is known before any wiring.
  for (ProcessId id = 0; id < kTotal; ++id) {
    net::TcpTransport::Config tcp;
    tcp.self = id;
    tcp.n = kTotal;
    tcp.auth_key = config_.auth_key;
    tcp.auth_seed = config_.seed;
    tcp.reconnect = config_.reconnect;
    transports_[id] = std::make_unique<net::TcpTransport>(loop_, tcp);
    ports_[id] = transports_[id]->listen_port();
  }
  for (ProcessId from = 0; from < kTotal; ++from)
    for (ProcessId to = 0; to < kTotal; ++to)
      if (from != to) transports_[from]->set_peer(to, ports_[to]);

  for (ProcessId node = 0; node < kNodes; ++node)
    build_node(node, ports_[node]);

  for (ProcessId i = 0; i < kRoutingClients; ++i) {
    RoutingClient::Config client;
    client.config_group = kConfigGroup;
    client.endpoints = client_endpoints();
    client.key_seed = config_.seed;
    client.retry_timeout = config_.retry_timeout;
    client.backoff_base = config_.backoff_base;
    client.backoff_cap = config_.backoff_cap;
    client.jitter_seed = config_.seed * 1000 + i;
    clients_.push_back(std::make_unique<RoutingClient>(
        *transports_[kNodes + i], std::move(client)));
  }

  MigrationCoordinator::Config coordinator;
  coordinator.config_group = kConfigGroup;
  coordinator.endpoints = client_endpoints();
  coordinator.key_seed = config_.seed;
  coordinator.retry_timeout = config_.retry_timeout;
  coordinator.chunk_limit = config_.chunk_limit;
  coordinator_ = std::make_unique<MigrationCoordinator>(
      *transports_[kCoordinatorId], std::move(coordinator));

  admin_ = std::make_unique<GroupEngines>(
      *transports_[kAdminId],
      std::vector<GroupEndpoint>{{group_spec(kConfigGroup), config_.f}},
      config_.seed, config_.retry_timeout);
}

ShardCluster::~ShardCluster() {
  for (auto& transport : transports_)
    if (transport) transport->shutdown();
}

GroupSpec ShardCluster::group_spec(GroupId group) const {
  GroupSpec spec;
  spec.id = group;
  for (ProcessId node = 0; node < kNodes; ++node)
    spec.members.push_back(node);
  // Every client-side process gets a slot in every group; distinct global
  // ids map to distinct local ids, so request (client, seq) spaces never
  // collide.
  spec.clients = {kNodes, kNodes + 1, kCoordinatorId};
  if (group == kConfigGroup) spec.clients.push_back(kAdminId);
  return spec;
}

std::vector<GroupEndpoint> ShardCluster::client_endpoints() const {
  return {{group_spec(kConfigGroup), config_.f},
          {group_spec(kLowGroup), config_.f},
          {group_spec(kHighGroup), config_.f}};
}

void ShardCluster::build_node(ProcessId node, std::uint16_t port) {
  (void)port;  // the transport is already bound by the caller
  hosts_[node] = std::make_unique<GroupHost>(*transports_[node]);
  for (const GroupId group : {kConfigGroup, kLowGroup, kHighGroup}) {
    HostedGroupConfig hosted;
    hosted.spec = group_spec(group);
    hosted.replica.f = config_.f;
    hosted.replica.policy = xpaxos::QuorumPolicy::kQuorumSelection;
    hosted.replica.fd = config_.fd;
    hosted.replica.view_change_retry = config_.view_change_retry;
    hosted.key_seed = config_.seed;
    hosted.store_dir = config_.store_root.empty()
                           ? std::string{}
                           : config_.store_root + "/node" +
                                 std::to_string(node);
    if (group == kConfigGroup) {
      hosted.app_factory = [] {
        return std::make_unique<ShardMapMachine>();
      };
    } else {
      const std::string split = config_.split;
      const bool low = group == kLowGroup;
      hosted.app_factory = [split, low]() -> std::unique_ptr<app::StateMachine> {
        ShardKv::Config kv;
        kv.owned = low ? std::vector<std::pair<std::string, std::string>>{
                             {"", split}}
                       : std::vector<std::pair<std::string, std::string>>{
                             {split, ""}};
        return std::make_unique<ShardKv>(std::move(kv));
      };
    }
    hosts_[node]->add_replica(std::move(hosted));
  }
}

bool ShardCluster::start(std::uint64_t timeout_ns) {
  for (auto& transport : transports_) transport->start();
  if (!run_until([this] { return fully_connected(); }, timeout_ns))
    return false;
  // Bootstrap the map: the data groups already own their ranges (ShardKv
  // construction), the map must say so too.
  if (!assign("", config_.split, kLowGroup, timeout_ns)) return false;
  if (!assign(config_.split, "", kHighGroup, timeout_ns)) return false;
  return true;
}

bool ShardCluster::fully_connected() const {
  for (ProcessId from = 0; from < kTotal; ++from) {
    if (crashed_.contains(from)) continue;
    for (ProcessId to = 0; to < kTotal; ++to) {
      if (to == from || crashed_.contains(to)) continue;
      if (!transports_[from]->connected_to(to)) return false;
    }
  }
  return true;
}

bool ShardCluster::run_until(const std::function<bool()>& pred,
                             std::uint64_t timeout_ns) {
  const std::uint64_t deadline = loop_.now_ns() + timeout_ns;
  while (!pred()) {
    const std::uint64_t now = loop_.now_ns();
    if (now >= deadline) return false;
    loop_.poll_once(std::min<std::uint64_t>(deadline - now, 5'000'000));
  }
  return true;
}

RoutingClient& ShardCluster::client(ProcessId i) {
  QSEL_REQUIRE(i < kRoutingClients);
  return *clients_[i];
}

GroupHost& ShardCluster::host(ProcessId node) {
  QSEL_REQUIRE(node < kNodes && hosts_[node] != nullptr);
  return *hosts_[node];
}

xpaxos::Replica* ShardCluster::replica(ProcessId node, GroupId group) {
  if (node >= kNodes || hosts_[node] == nullptr) return nullptr;
  return hosts_[node]->replica(group);
}

const ShardKv* ShardCluster::shard_kv(ProcessId node, GroupId group) const {
  if (node >= kNodes || hosts_[node] == nullptr) return nullptr;
  const xpaxos::Replica* replica = hosts_[node]->replica(group);
  if (replica == nullptr) return nullptr;
  return dynamic_cast<const ShardKv*>(&replica->store());
}

bool ShardCluster::kill_group_replica(ProcessId node, GroupId group) {
  if (node >= kNodes || hosts_[node] == nullptr) return false;
  return hosts_[node]->remove_replica(group);
}

void ShardCluster::crash_node(ProcessId node) {
  QSEL_REQUIRE(node < kNodes);
  hosts_[node].reset();  // replicas die first (timers cancelled) ...
  transports_[node]->shutdown();  // ... then the sockets close
  crashed_.insert(node);
}

void ShardCluster::restart_node(ProcessId node) {
  QSEL_REQUIRE(node < kNodes);
  QSEL_REQUIRE_MSG(crashed_.contains(node),
                   "restart_node() needs a prior crash_node()");
  transports_[node].reset();
  net::TcpTransport::Config tcp;
  tcp.self = node;
  tcp.n = kTotal;
  tcp.listen_port = ports_[node];
  tcp.auth_key = config_.auth_key;
  tcp.auth_seed = config_.seed;
  tcp.reconnect = config_.reconnect;
  transports_[node] = std::make_unique<net::TcpTransport>(loop_, tcp);
  QSEL_REQUIRE(transports_[node]->listen_port() == ports_[node]);
  for (ProcessId to = 0; to < kTotal; ++to)
    if (to != node) transports_[node]->set_peer(to, ports_[to]);
  build_node(node, ports_[node]);
  crashed_.erase(node);
  transports_[node]->start();
}

bool ShardCluster::assign(const std::string& lo, const std::string& hi,
                          GroupId group, std::uint64_t timeout_ns) {
  bool done = false;
  bool ok = false;
  admin_->engine(kConfigGroup)
      ->submit(MapOp{MapOpType::kAssign, lo, hi, group}.encode(),
               [&](const smr::Outcome& outcome) {
                 done = true;
                 ok = outcome.status == smr::ResultStatus::kOk &&
                      outcome.value == "assigned";
               });
  return run_until([&] { return done; }, timeout_ns) && ok;
}

}  // namespace qsel::shard
