// ShardKv — a KvStore wrapped with shard ownership and epoch fencing.
//
// Each data group replicates one ShardKv. Every decision — is this key
// ours, is the range frozen, is the client's epoch stale — is made inside
// apply(), i.e. AFTER consensus ordered the op, never as a preflight
// check. That makes the decisions deterministic across the group: all
// correct replicas order the same ops against the same ownership state,
// so f+1 of them produce byte-identical TypedResult rejects and the
// client can trust a reject exactly like a value.
//
// Fencing invariants (DESIGN.md §12):
//   F1  op.epoch < config_epoch       -> STALE_EPOCH (never applied)
//   F2  key outside the owned ranges  -> WRONG_GROUP (never applied)
//   F3  key inside a frozen range     -> FROZEN (never applied)
//   F4  config_epoch only moves forward (max-merge on adopt/drop)
//
// Migration hand-off, source side: FREEZE (an SMR op — every client op is
// strictly before or after it in the log), then chunked SNAPSHOT reads
// (the range is immutable while frozen, so consensus reads are stable),
// then DROP at the new epoch erases the range's keys and subtracts it
// from the owned set (a subrange drop keeps the remainders). Destination side: INSTALL
// chunks (idempotent by (migration id, chunk seq), so duplicates and
// reorders are absorbed), then ADOPT verifies all chunks arrived and the
// range digest matches the source's before taking ownership at the new
// epoch. An adopt with missing chunks or a digest mismatch fails
// deterministically and leaves ownership unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "app/kv_store.hpp"
#include "app/state_machine.hpp"
#include "common/types.hpp"
#include "trace/tracer.hpp"

namespace qsel::shard {

/// Operations on a ShardKv, encoded as net::Encoder bytes. Client ops wrap
/// a plain app::Operation with the client's config epoch; the rest are the
/// migration-coordinator verbs.
enum class KvOpType : std::uint8_t {
  kClientOp = 1,      // epoch, app::Operation bytes
  kFreeze = 2,        // migration_id, lo, hi (source; idempotent)
  kRangeInfo = 3,     // lo, hi -> value = (count u64, range digest)
  kSnapshotChunk = 4, // lo, hi, offset, limit -> value = encoded pairs
  kInstallChunk = 5,  // migration_id, chunk_seq, pairs (dest; idempotent)
  kAdopt = 6,         // migration_id, epoch_new, lo, hi, digest, total_chunks
  kDrop = 7,          // migration_id, epoch_new, lo, hi (source)
};

struct ShardKvOp {
  KvOpType type = KvOpType::kClientOp;
  std::uint64_t epoch = 0;         // kClientOp / kAdopt / kDrop (epoch_new)
  std::uint64_t migration_id = 0;  // migration verbs
  std::string lo;
  std::string hi;
  std::uint64_t offset = 0;        // kSnapshotChunk
  std::uint32_t limit = 0;         // kSnapshotChunk
  std::uint32_t chunk_seq = 0;     // kInstallChunk
  std::uint32_t total_chunks = 0;  // kAdopt
  std::vector<std::uint8_t> payload;  // inner app op / encoded pairs
  crypto::Digest digest{};         // kAdopt: expected range digest

  std::vector<std::uint8_t> encode() const;
  static std::optional<ShardKvOp> decode(std::span<const std::uint8_t> bytes);

  // Builders returning encoded ops (what clients/coordinators submit).
  static std::vector<std::uint8_t> client_op(std::uint64_t epoch,
                                             std::vector<std::uint8_t> inner);
  static std::vector<std::uint8_t> freeze(std::uint64_t migration_id,
                                          std::string lo, std::string hi);
  static std::vector<std::uint8_t> range_info(std::string lo, std::string hi);
  static std::vector<std::uint8_t> snapshot_chunk(std::string lo,
                                                  std::string hi,
                                                  std::uint64_t offset,
                                                  std::uint32_t limit);
  static std::vector<std::uint8_t> install_chunk(
      std::uint64_t migration_id, std::uint32_t chunk_seq,
      std::vector<std::uint8_t> pairs);
  static std::vector<std::uint8_t> adopt(std::uint64_t migration_id,
                                         std::uint64_t epoch_new,
                                         std::string lo, std::string hi,
                                         const crypto::Digest& digest,
                                         std::uint32_t total_chunks);
  static std::vector<std::uint8_t> drop(std::uint64_t migration_id,
                                        std::uint64_t epoch_new,
                                        std::string lo, std::string hi);
};

/// Encodes (key, value) pairs for snapshot chunks.
std::vector<std::uint8_t> encode_pairs(
    const std::vector<std::pair<std::string, std::string>>& pairs);
std::optional<std::vector<std::pair<std::string, std::string>>> decode_pairs(
    std::span<const std::uint8_t> bytes);

class ShardKv final : public app::StateMachine {
 public:
  struct Config {
    std::uint64_t initial_epoch = 1;
    /// Ranges this group owns at the initial epoch ([lo, hi), hi "" =
    /// unbounded). Identical across the group's replicas by construction.
    std::vector<std::pair<std::string, std::string>> owned;
  };

  /// `tracer`/`self` wire the shard trace events (kShardFreeze,
  /// kShardInstall, kConfigEpochBump); nullptr disables them.
  explicit ShardKv(Config config, trace::Tracer* tracer = nullptr,
                   ProcessId self = kNoProcess);

  std::string apply_encoded(std::span<const std::uint8_t> bytes) override;
  crypto::Digest state_digest() const override;

  const app::KvStore& kv() const { return kv_; }
  std::uint64_t config_epoch() const { return config_epoch_; }
  bool owns(const std::string& key) const;
  bool is_frozen(const std::string& key) const;
  const std::vector<std::pair<std::string, std::string>>& owned() const {
    return owned_;
  }

 private:
  struct Migration {
    std::string lo;
    std::string hi;
    std::set<std::uint32_t> chunks;  // installed chunk seqs (dest side)
  };

  std::string apply(const ShardKvOp& op);
  void bump_epoch(std::uint64_t to);

  app::KvStore kv_;
  std::uint64_t config_epoch_;
  std::vector<std::pair<std::string, std::string>> owned_;  // sorted by lo
  /// Source-side freezes, by migration id.
  std::map<std::uint64_t, Migration> freezes_;
  /// Destination-side chunk tracking, by migration id.
  std::map<std::uint64_t, Migration> installs_;
  trace::Tracer* tracer_;
  ProcessId self_;
};

}  // namespace qsel::shard
