#include "shard/group_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "net/group_frame.hpp"
#include "net/wire.hpp"

namespace qsel::shard {

std::optional<ProcessId> GroupSpec::local_of(ProcessId global) const {
  for (std::size_t i = 0; i < members.size(); ++i)
    if (members[i] == global) return static_cast<ProcessId>(i);
  for (std::size_t j = 0; j < clients.size(); ++j)
    if (clients[j] == global)
      return static_cast<ProcessId>(members.size() + j);
  return std::nullopt;
}

ProcessId GroupSpec::global_of(ProcessId local) const {
  QSEL_ASSERT_MSG(local < local_count(), "group-local id out of range");
  if (local < members.size()) return members[local];
  return clients[local - members.size()];
}

GroupSpec spec_from(const net::GroupConfig& group) {
  GroupSpec spec;
  spec.id = group.id;
  spec.members = group.members;
  spec.clients = group.clients;
  return spec;
}

GroupTransport::GroupTransport(net::Transport& base, GroupSpec spec)
    : base_(base), spec_(std::move(spec)) {
  const auto self_local = spec_.local_of(base_.self());
  QSEL_ASSERT_MSG(self_local.has_value(),
              "GroupTransport host is not a member of the group");
  self_local_ = *self_local;
}

sim::PayloadPtr GroupTransport::wrap(const sim::Payload& message) {
  auto inner = net::encode_message(message);
  if (!inner) {
    ++dropped_unencodable_;
    return nullptr;
  }
  auto frame = std::make_shared<net::GroupFrame>();
  frame->group = spec_.id;
  frame->inner = std::move(*inner);
  return frame;
}

void GroupTransport::send(ProcessId to, sim::PayloadPtr message) {
  if (to >= spec_.local_count() || message == nullptr) return;
  auto frame = wrap(*message);
  if (frame == nullptr) return;
  base_.send(spec_.global_of(to), std::move(frame));
}

void GroupTransport::broadcast(ProcessSet targets,
                               const sim::PayloadPtr& message) {
  if (message == nullptr) return;
  auto frame = wrap(*message);
  if (frame == nullptr) return;
  ProcessSet global;
  for (ProcessId local = 0; local < spec_.local_count(); ++local)
    if (targets.contains(local)) global.insert(spec_.global_of(local));
  base_.broadcast(global, frame);
}

void GroupTransport::deliver(ProcessId global_from,
                             std::span<const std::uint8_t> inner) {
  const auto local_from = spec_.local_of(global_from);
  if (!local_from) {
    ++dropped_foreign_;
    return;
  }
  auto payload = net::decode_message(inner, spec_.local_count());
  if (payload == nullptr) {
    ++dropped_foreign_;
    return;
  }
  if (handler_) handler_(*local_from, payload);
}

GroupMux::GroupMux(net::Transport& base) : base_(base) {
  base_.set_handler([this](ProcessId from, const sim::PayloadPtr& message) {
    on_message(from, message);
  });
}

GroupTransport& GroupMux::add_group(GroupSpec spec) {
  const GroupId id = spec.id;
  QSEL_ASSERT_MSG(!groups_.contains(id), "group registered twice");
  auto transport = std::make_unique<GroupTransport>(base_, std::move(spec));
  GroupTransport& ref = *transport;
  groups_.emplace(id, std::move(transport));
  return ref;
}

GroupTransport* GroupMux::group(GroupId id) {
  const auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : it->second.get();
}

void GroupMux::on_message(ProcessId from, const sim::PayloadPtr& message) {
  const auto* frame = dynamic_cast<const net::GroupFrame*>(message.get());
  if (frame == nullptr) {
    ++dropped_unroutable_;
    return;
  }
  const auto it = groups_.find(frame->group);
  if (it == groups_.end()) {
    ++dropped_unroutable_;
    return;
  }
  it->second->deliver(from, frame->inner);
}

}  // namespace qsel::shard
