// MigrationCoordinator — drives one live range hand-off to completion.
//
// The protocol (DESIGN.md §12), each step an SMR op committed by the
// group named on the left:
//
//   config  PREPARE_MOVE  mark the range migrating (no epoch bump yet)
//   config  GET           read the current epoch E; the commit will be E+1
//   source  FREEZE        writes to the range now reject FROZEN
//   source  RANGE_INFO    key count + range digest (stable: range frozen)
//   source  SNAPSHOT      chunked reads of the frozen range …
//   dest    INSTALL       … installed idempotently by (migration, chunk)
//   dest    ADOPT         verify chunk count + digest, own range at E+1
//   config  COMMIT_MOVE   the map now routes the range to dest; epoch E+1
//   source  DROP          erase the range, unfreeze, fence at E+1
//
// Ordering is what makes the window safe: dest ADOPTs before the config
// commit, so the instant a client learns epoch E+1 the destination
// already owns the data; the source DROPs last, so until then stale
// clients get FROZEN/STALE_EPOCH (never a silent miss) and retry into
// the new epoch. Every verb is idempotent on the replica side, so the
// coordinator can crash and be re-run with the same migration id.
//
// The coordinator assumes it is the only config-group writer while a
// migration is in flight (the epoch prediction E+1 depends on it); the
// COMMIT_MOVE outcome is checked against the prediction and the
// migration fails loudly on a mismatch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "shard/routing_client.hpp"

namespace qsel::shard {

class MigrationCoordinator {
 public:
  struct Config {
    GroupId config_group = 0;
    /// Endpoints for the config group, the source group and the
    /// destination group (at least).
    std::vector<GroupEndpoint> endpoints;
    std::uint64_t key_seed = 0;
    SimDuration retry_timeout = 50'000'000;
    /// Keys per snapshot chunk.
    std::uint32_t chunk_limit = 64;
  };

  struct Result {
    bool ok = false;
    std::string error;              // empty on success
    std::uint64_t keys_moved = 0;
    std::uint32_t chunks = 0;
    std::uint64_t new_epoch = 0;    // the post-commit config epoch
  };

  using Done = std::function<void(const Result&)>;

  MigrationCoordinator(net::Transport& base, Config config);

  /// Moves [lo, hi) from `from` to `to` under `migration_id`; `done`
  /// fires exactly once. One migration in flight at a time.
  void move_range(std::uint64_t migration_id, GroupId from, GroupId to,
                  std::string lo, std::string hi, Done done);

  bool idle() const { return !busy_; }

 private:
  struct Plan {
    std::uint64_t migration_id = 0;
    GroupId from = 0;
    GroupId to = 0;
    std::string lo;
    std::string hi;
    std::uint64_t epoch_new = 0;
    std::uint64_t key_count = 0;
    crypto::Digest digest{};
    std::uint32_t total_chunks = 0;
    std::uint32_t next_chunk = 0;
  };

  void step_prepare();
  void step_read_epoch();
  void step_freeze();
  void step_range_info();
  void step_copy_chunk();
  void step_adopt();
  void step_commit();
  void step_drop();
  void finish_ok();
  void fail(std::string error);
  /// Clears busy state and fires the callback (moved out first — the
  /// callback may start the next migration reentrantly).
  void finish(const Result& result);

  /// Submits on the group's engine and fails the migration on a typed
  /// reject (migration verbs are never fenced, so a reject is a bug).
  void submit(GroupId group, std::vector<std::uint8_t> op,
              std::function<void(const smr::Outcome&)> next);

  GroupEngines engines_;
  Config config_;
  bool busy_ = false;
  Plan plan_;
  Done done_;
};

}  // namespace qsel::shard
