// RoutingClient — a shard-aware key-value client.
//
// Caches the ShardMap fetched from the shard-config group, routes each
// operation to the data group owning the key, and stamps it with the
// cached config epoch. Typed rejects drive the cache: WRONG_GROUP,
// STALE_EPOCH and FROZEN all mean "my view of the world is (or is about
// to be) outdated", so the client refetches the map and RESUBMITS the
// operation as a fresh request — a fresh client_seq, because replicas
// de-duplicate by (client, seq) and would forever replay the cached
// reject for a retried one — after a jittered exponential backoff so a
// fleet of clients bounced by the same migration doesn't retry in
// lockstep. An operation is never abandoned: a freeze window lasts until
// the migration commits, at which point the refreshed map points at the
// destination group and the retry lands.
//
// GroupEngines is the shared substrate (also used by the migration
// coordinator): one GroupMux over the client's own transport, and per
// group a GroupTransport slice, the group's KeyRegistry, and an
// smr::RequestEngine wired to it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "crypto/signer.hpp"
#include "shard/group_transport.hpp"
#include "smr/client.hpp"

namespace qsel::shard {

/// One group a client can talk to: the spec plus the group's fault bound.
struct GroupEndpoint {
  GroupSpec spec;
  int f = 1;
};

/// Per-group request machinery over one client process's transport.
class GroupEngines {
 public:
  /// base.self() must appear as a CLIENT slot in every endpoint's spec.
  GroupEngines(net::Transport& base, std::vector<GroupEndpoint> endpoints,
               std::uint64_t key_seed, SimDuration retry_timeout);

  smr::RequestEngine* engine(GroupId id);
  sim::Simulator& timers() { return base_.timers(); }

 private:
  struct Entry {
    std::unique_ptr<crypto::KeyRegistry> keys;
    GroupTransport* transport = nullptr;  // owned by mux_
    std::unique_ptr<smr::RequestEngine> engine;
  };

  net::Transport& base_;
  GroupMux mux_;
  std::map<GroupId, Entry> entries_;
};

class RoutingClient {
 public:
  struct Config {
    GroupId config_group = 0;
    /// Every group this client addresses, the config group included.
    std::vector<GroupEndpoint> endpoints;
    std::uint64_t key_seed = 0;
    SimDuration retry_timeout = 50'000'000;  // per-request retransmit
    SimDuration backoff_base = 5'000'000;    // reject backoff: 5 ms ...
    SimDuration backoff_cap = 200'000'000;   // ... doubling up to 200 ms
    std::uint64_t jitter_seed = 1;
  };

  using Done = std::function<void(const smr::Outcome&)>;

  RoutingClient(net::Transport& base, Config config);

  /// One operation in flight at a time; `done` fires exactly once, when
  /// the op committed on the owning group (rejects are retried inside).
  void put(std::string key, std::string value, Done done);
  void get(std::string key, Done done);
  void del(std::string key, Done done);

  /// Forces a map refetch (normally triggered by rejects).
  void refresh_map(std::function<void()> done = nullptr);

  bool has_map() const { return has_map_; }
  const ShardMap& map() const { return map_; }
  bool idle() const { return !busy_; }

  std::uint64_t completed() const { return completed_; }
  std::uint64_t rejects(smr::ResultStatus status) const;
  std::uint64_t map_refreshes() const { return map_refreshes_; }
  std::uint64_t retries() const { return retries_; }

 private:
  void start(app::Operation op, Done done);
  void attempt();
  void on_outcome(const smr::Outcome& outcome);
  /// Clears busy state and fires the callback (moved out first — the
  /// callback may submit the next operation reentrantly).
  void finish(const smr::Outcome& outcome);
  void backoff_then_retry();
  std::uint64_t next_jitter();

  GroupEngines engines_;
  GroupId config_group_;
  SimDuration backoff_base_;
  SimDuration backoff_cap_;
  std::uint64_t jitter_state_;

  ShardMap map_;
  bool has_map_ = false;
  bool refresh_in_flight_ = false;
  std::vector<std::function<void()>> refresh_waiters_;

  bool busy_ = false;
  app::Operation current_op_;
  Done done_;
  std::uint32_t attempt_ = 0;

  std::uint64_t completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t map_refreshes_ = 0;
  std::map<smr::ResultStatus, std::uint64_t> rejects_;
};

}  // namespace qsel::shard
