// GroupHost — one OS process hosting replicas of several shard groups.
//
// Owns the node's GroupMux and, per hosted group: the group's
// crypto::KeyRegistry (derived from the shared base seed and the group id,
// identical at every node), the GroupTransport slice, an optional
// store::FileNodeStore rooted at `<store_dir>/group_<id>` so groups never
// share durability files, and the xpaxos::Replica itself. All replicas
// share the base transport's event loop and timer queue — hosting three
// groups costs three state machines, not three sockets-and-threads stacks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "app/state_machine.hpp"
#include "crypto/signer.hpp"
#include "shard/group_transport.hpp"
#include "store/node_store.hpp"
#include "xpaxos/replica.hpp"

namespace qsel::shard {

struct HostedGroupConfig {
  GroupSpec spec;
  /// Per-replica protocol settings. n is overwritten with the spec's
  /// member count; app_factory and node_store are overwritten from the
  /// fields below.
  xpaxos::ReplicaConfig replica;
  /// Builds this group's state machine (ShardMapMachine for the config
  /// group, ShardKv for a data group). Unset = app::KvStore.
  std::function<std::unique_ptr<app::StateMachine>()> app_factory;
  /// Base signing seed shared by the whole cluster; the group key seed is
  /// derived from it (GroupSpec::key_seed).
  std::uint64_t key_seed = 0;
  /// When nonempty, quorum-selection state persists under
  /// `<store_dir>/group_<id>`; empty = memory-only.
  std::string store_dir;
};

class GroupHost {
 public:
  /// Takes over `base`'s handler (via the mux); create at most one per
  /// transport.
  explicit GroupHost(net::Transport& base) : base_(base), mux_(base) {}

  /// Builds the group's registry, transport slice, store, and replica.
  /// base.self() must be a member (not just a client) of the spec.
  xpaxos::Replica& add_replica(HostedGroupConfig config);

  xpaxos::Replica* replica(GroupId id);
  const xpaxos::Replica* replica(GroupId id) const;

  /// Retires this node's replica of one group: the replica is destroyed
  /// (its timers cancelled, its handler detached) while every co-hosted
  /// group keeps running. To the group's other members the node simply
  /// goes silent — the failure-detector path, not a clean leave. Returns
  /// false when the group is not hosted here.
  bool remove_replica(GroupId id);
  GroupMux& mux() { return mux_; }
  std::size_t group_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::unique_ptr<crypto::KeyRegistry> keys;
    std::unique_ptr<store::FileNodeStore> store;  // null when memory-only
    GroupTransport* transport = nullptr;          // owned by mux_
    std::unique_ptr<xpaxos::Replica> replica;
  };

  net::Transport& base_;
  GroupMux mux_;
  std::map<GroupId, Entry> entries_;
};

}  // namespace qsel::shard
