// ShardCluster — the sharded service over real loopback TCP.
//
// The e2e harness for DESIGN.md §12 and the TCP twin of a deployed
// sharded cluster: four node processes (transport ids 0..3) each host a
// GroupHost with replicas of all three groups — the shard-config group
// replicating the ShardMap, and two data groups replicating fenced
// ShardKv machines (group 1 serves [.., split), group 2 [split, ..)).
// Ids 4..5 are routing clients, 6 the migration coordinator, 7 an admin
// slot the harness bootstraps the map through (two ASSIGN ops). All 8
// transports share one EventLoop, so an entire multi-process scenario is
// a single sequential program — which is what lets the soak test run
// under the sanitizers without any thread-interleaving noise.
//
// Per-group crypto is real: each group's KeyRegistry derives from the
// shared seed and the group id, so the harness exercises exactly the key
// isolation a production cluster would have.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "shard/group_host.hpp"
#include "shard/migration.hpp"
#include "shard/routing_client.hpp"
#include "shard/shard_kv.hpp"

namespace qsel::shard {

struct ShardClusterConfig {
  int f = 1;
  std::uint64_t seed = 1;
  /// Group 1 serves keys below the split, group 2 the rest.
  std::string split = "m";
  fd::FailureDetectorConfig fd{/*initial_timeout=*/40'000'000,
                               /*max_timeout=*/1'000'000'000,
                               /*adaptive=*/true};
  SimDuration view_change_retry = 30'000'000;
  SimDuration retry_timeout = 50'000'000;
  SimDuration backoff_base = 5'000'000;
  SimDuration backoff_cap = 200'000'000;
  std::uint32_t chunk_limit = 8;
  /// Root for per-node durable quorum-selection state; "" = memory-only.
  std::string store_root;
  std::vector<std::uint8_t> auth_key;
  net::BackoffConfig reconnect{};
};

class ShardCluster {
 public:
  static constexpr ProcessId kNodes = 4;           // transport ids 0..3
  static constexpr ProcessId kRoutingClients = 2;  // ids 4..5
  static constexpr ProcessId kCoordinatorId = 6;
  static constexpr ProcessId kAdminId = 7;
  static constexpr ProcessId kTotal = 8;
  static constexpr GroupId kConfigGroup = 0;
  static constexpr GroupId kLowGroup = 1;   // [.., split)
  static constexpr GroupId kHighGroup = 2;  // [split, ..)

  explicit ShardCluster(ShardClusterConfig config);
  ~ShardCluster();

  /// Starts dialing, waits for the full mesh, then commits the two
  /// bootstrap ASSIGN ops through the config group. False on timeout.
  bool start(std::uint64_t timeout_ns = 20'000'000'000);

  net::EventLoop& loop() { return loop_; }
  bool run_until(const std::function<bool()>& pred, std::uint64_t timeout_ns);
  void run_for(std::uint64_t duration_ns) { loop_.run_for(duration_ns); }

  RoutingClient& client(ProcessId i);  // i < kRoutingClients
  MigrationCoordinator& coordinator() { return *coordinator_; }
  GroupHost& host(ProcessId node);
  xpaxos::Replica* replica(ProcessId node, GroupId group);
  /// The node's ShardKv for a data group (nullptr for the config group or
  /// a crashed/retired replica).
  const ShardKv* shard_kv(ProcessId node, GroupId group) const;

  /// Kills ONE group's replica at `node`; co-hosted groups keep running.
  /// The group's survivors must view-change past the silent member.
  bool kill_group_replica(ProcessId node, GroupId group);

  /// Crashes a whole node process (all its hosted replicas + sockets).
  void crash_node(ProcessId node);
  /// Rebuilds the node on its original port. Quorum-selection state comes
  /// back from the node's store (when store_root is set); the SMR log and
  /// application state restart empty and the replica re-joins as a
  /// laggard — acknowledged operations live on the f+1 survivors.
  void restart_node(ProcessId node);

  /// Submits an ASSIGN through the admin slot and pumps until it commits.
  bool assign(const std::string& lo, const std::string& hi, GroupId group,
              std::uint64_t timeout_ns = 10'000'000'000);

  /// True when every non-crashed transport is connected to every other.
  bool fully_connected() const;

 private:
  void build_node(ProcessId node, std::uint16_t port);
  GroupSpec group_spec(GroupId group) const;
  std::vector<GroupEndpoint> client_endpoints() const;

  ShardClusterConfig config_;
  net::EventLoop loop_;  // declared first: destroyed last
  std::vector<std::unique_ptr<net::TcpTransport>> transports_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::unique_ptr<GroupHost>> hosts_;  // one per node
  std::vector<std::unique_ptr<RoutingClient>> clients_;
  std::unique_ptr<MigrationCoordinator> coordinator_;
  std::unique_ptr<GroupEngines> admin_;
  ProcessSet crashed_;
};

}  // namespace qsel::shard
