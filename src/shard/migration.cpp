#include "shard/migration.hpp"

#include <utility>

#include "common/assert.hpp"
#include "net/codec.hpp"
#include "shard/shard_kv.hpp"

namespace qsel::shard {

MigrationCoordinator::MigrationCoordinator(net::Transport& base,
                                           Config config)
    : engines_(base, config.endpoints, config.key_seed,
               config.retry_timeout),
      config_(std::move(config)) {
  QSEL_ASSERT_MSG(config_.chunk_limit > 0, "chunk_limit must be positive");
}

void MigrationCoordinator::move_range(std::uint64_t migration_id,
                                      GroupId from, GroupId to,
                                      std::string lo, std::string hi,
                                      Done done) {
  QSEL_ASSERT_MSG(!busy_, "MigrationCoordinator: one migration at a time");
  QSEL_ASSERT_MSG(engines_.engine(config_.config_group) != nullptr &&
                      engines_.engine(from) != nullptr &&
                      engines_.engine(to) != nullptr,
                  "move_range: missing endpoint for a participating group");
  busy_ = true;
  plan_ = Plan{};
  plan_.migration_id = migration_id;
  plan_.from = from;
  plan_.to = to;
  plan_.lo = std::move(lo);
  plan_.hi = std::move(hi);
  done_ = std::move(done);
  step_prepare();
}

void MigrationCoordinator::submit(
    GroupId group, std::vector<std::uint8_t> op,
    std::function<void(const smr::Outcome&)> next) {
  engines_.engine(group)->submit(
      std::move(op),
      [this, next = std::move(next)](const smr::Outcome& outcome) {
        if (outcome.status != smr::ResultStatus::kOk) {
          fail("unexpected typed reject from a migration verb");
          return;
        }
        next(outcome);
      });
}

void MigrationCoordinator::step_prepare() {
  submit(config_.config_group,
         MapOp{MapOpType::kPrepareMove, plan_.lo, {}, plan_.to}.encode(),
         [this](const smr::Outcome& outcome) {
           if (outcome.value != "prepared" && outcome.value != "noop") {
             fail("prepare-move: " + outcome.value);
             return;
           }
           step_read_epoch();
         });
}

void MigrationCoordinator::step_read_epoch() {
  submit(config_.config_group, MapOp{MapOpType::kGet, {}, {}, 0}.encode(),
         [this](const smr::Outcome& outcome) {
           const auto map = ShardMap::decode_from_string(outcome.value);
           if (!map) {
             fail("config group returned an undecodable map");
             return;
           }
           // Sole-writer assumption: the commit below will be the next
           // epoch. COMMIT_MOVE's outcome re-checks this.
           plan_.epoch_new = map->epoch + 1;
           step_freeze();
         });
}

void MigrationCoordinator::step_freeze() {
  submit(plan_.from,
         ShardKvOp::freeze(plan_.migration_id, plan_.lo, plan_.hi),
         [this](const smr::Outcome&) { step_range_info(); });
}

void MigrationCoordinator::step_range_info() {
  submit(plan_.from, ShardKvOp::range_info(plan_.lo, plan_.hi),
         [this](const smr::Outcome& outcome) {
           const auto* data =
               reinterpret_cast<const std::uint8_t*>(outcome.value.data());
           net::Decoder dec(
               std::span<const std::uint8_t>(data, outcome.value.size()));
           plan_.key_count = dec.u64();
           plan_.digest = dec.digest();
           if (!dec.done()) {
             fail("range-info: undecodable reply");
             return;
           }
           plan_.total_chunks = static_cast<std::uint32_t>(
               (plan_.key_count + config_.chunk_limit - 1) /
               config_.chunk_limit);
           plan_.next_chunk = 0;
           step_copy_chunk();
         });
}

void MigrationCoordinator::step_copy_chunk() {
  if (plan_.next_chunk >= plan_.total_chunks) {
    step_adopt();
    return;
  }
  const std::uint32_t chunk = plan_.next_chunk;
  const std::uint64_t offset =
      std::uint64_t{chunk} * config_.chunk_limit;
  submit(plan_.from,
         ShardKvOp::snapshot_chunk(plan_.lo, plan_.hi, offset,
                                   config_.chunk_limit),
         [this, chunk](const smr::Outcome& outcome) {
           std::vector<std::uint8_t> pairs(outcome.value.begin(),
                                           outcome.value.end());
           submit(plan_.to,
                  ShardKvOp::install_chunk(plan_.migration_id, chunk,
                                           std::move(pairs)),
                  [this](const smr::Outcome& install) {
                    if (install.value != "installed" &&
                        install.value != "dup") {
                      fail("install-chunk: " + install.value);
                      return;
                    }
                    ++plan_.next_chunk;
                    step_copy_chunk();
                  });
         });
}

void MigrationCoordinator::step_adopt() {
  submit(plan_.to,
         ShardKvOp::adopt(plan_.migration_id, plan_.epoch_new, plan_.lo,
                          plan_.hi, plan_.digest, plan_.total_chunks),
         [this](const smr::Outcome& outcome) {
           if (outcome.value != "adopted") {
             fail("adopt: " + outcome.value);
             return;
           }
           step_commit();
         });
}

void MigrationCoordinator::step_commit() {
  submit(config_.config_group,
         MapOp{MapOpType::kCommitMove, plan_.lo, {}, plan_.to}.encode(),
         [this](const smr::Outcome& outcome) {
           if (outcome.value != "committed") {
             fail("commit-move: " + outcome.value);
             return;
           }
           if (outcome.config_epoch != plan_.epoch_new) {
             fail("config epoch moved under the migration (expected " +
                  std::to_string(plan_.epoch_new) + ", got " +
                  std::to_string(outcome.config_epoch) + ")");
             return;
           }
           step_drop();
         });
}

void MigrationCoordinator::step_drop() {
  submit(plan_.from,
         ShardKvOp::drop(plan_.migration_id, plan_.epoch_new, plan_.lo,
                         plan_.hi),
         [this](const smr::Outcome& outcome) {
           if (outcome.value != "dropped") {
             fail("drop: " + outcome.value);
             return;
           }
           finish_ok();
         });
}

void MigrationCoordinator::finish_ok() {
  Result result;
  result.ok = true;
  result.keys_moved = plan_.key_count;
  result.chunks = plan_.total_chunks;
  result.new_epoch = plan_.epoch_new;
  finish(result);
}

void MigrationCoordinator::fail(std::string error) {
  Result result;
  result.ok = false;
  result.error = std::move(error);
  finish(result);
}

void MigrationCoordinator::finish(const Result& result) {
  // Move the callback out before invoking it: `done` may start the next
  // migration reentrantly, which reassigns done_.
  Done done = std::move(done_);
  done_ = nullptr;
  busy_ = false;
  if (done) done(result);
}

}  // namespace qsel::shard
