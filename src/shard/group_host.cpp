#include "shard/group_host.hpp"

#include <filesystem>
#include <utility>

#include "common/assert.hpp"

namespace qsel::shard {

xpaxos::Replica& GroupHost::add_replica(HostedGroupConfig config) {
  const GroupId id = config.spec.id;
  QSEL_ASSERT_MSG(!entries_.contains(id), "group hosted twice");
  const auto self_local = config.spec.local_of(base_.self());
  QSEL_ASSERT_MSG(
      self_local.has_value() && *self_local < config.spec.members.size(),
      "GroupHost::add_replica: base.self() is not a member of the group");

  Entry entry;
  entry.keys = std::make_unique<crypto::KeyRegistry>(
      config.spec.local_count(), config.spec.key_seed(config.key_seed));
  if (!config.store_dir.empty()) {
    // FileNodeStore makes its own leaf directory but not the parents.
    std::filesystem::create_directories(config.store_dir);
    entry.store = std::make_unique<store::FileNodeStore>(
        config.store_dir + "/group_" + std::to_string(id),
        static_cast<ProcessId>(config.spec.members.size()));
  }
  entry.transport = &mux_.add_group(config.spec);

  xpaxos::ReplicaConfig replica_config = config.replica;
  replica_config.n = static_cast<ProcessId>(config.spec.members.size());
  replica_config.app_factory = std::move(config.app_factory);
  replica_config.node_store = entry.store.get();
  entry.replica = std::make_unique<xpaxos::Replica>(
      *entry.transport, *entry.keys, std::move(replica_config));

  auto [it, inserted] = entries_.emplace(id, std::move(entry));
  QSEL_ASSERT(inserted);
  return *it->second.replica;
}

bool GroupHost::remove_replica(GroupId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  // The transport slice stays registered with the mux; with no handler it
  // drops the group's frames, which is exactly "this node went dark".
  entries_.erase(it);
  return true;
}

xpaxos::Replica* GroupHost::replica(GroupId id) {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.replica.get();
}

const xpaxos::Replica* GroupHost::replica(GroupId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.replica.get();
}

}  // namespace qsel::shard
