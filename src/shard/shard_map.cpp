#include "shard/shard_map.hpp"

#include <algorithm>

#include "smr/typed_result.hpp"

namespace qsel::shard {

const ShardRange* ShardMap::lookup(const std::string& key) const {
  // Last range with lo <= key; ranges are sorted and non-overlapping.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), key,
      [](const std::string& k, const ShardRange& r) { return k < r.lo; });
  if (it == ranges.begin()) return nullptr;
  --it;
  return it->contains(key) ? &*it : nullptr;
}

void ShardMap::encode(net::Encoder& enc) const {
  enc.u64(epoch);
  enc.u32(static_cast<std::uint32_t>(ranges.size()));
  for (const ShardRange& r : ranges) {
    enc.str(r.lo);
    enc.str(r.hi);
    enc.u32(r.group);
    enc.u8(r.migrating ? 1 : 0);
  }
}

std::optional<ShardMap> ShardMap::decode(net::Decoder& dec) {
  ShardMap map;
  map.epoch = dec.u64();
  const std::uint32_t count = dec.u32();
  if (!dec.ok()) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    ShardRange r;
    r.lo = dec.str();
    r.hi = dec.str();
    r.group = dec.u32();
    r.migrating = dec.u8() != 0;
    if (!dec.ok()) return std::nullopt;
    if (!r.hi.empty() && r.hi <= r.lo) return std::nullopt;  // empty range
    if (i > 0) {
      // Sorted and non-overlapping: the previous range must be bounded
      // above and end at or before this one starts. Adjacent ranges
      // (prev.hi == r.lo) are fine; [a,c) followed by [b,...) is not.
      const ShardRange& prev = map.ranges.back();
      if (prev.hi.empty() || r.lo < prev.hi) return std::nullopt;
    }
    map.ranges.push_back(std::move(r));
  }
  return map;
}

std::string ShardMap::encode_to_string() const {
  net::Encoder enc;
  encode(enc);
  const auto bytes = std::move(enc).take();
  return std::string(bytes.begin(), bytes.end());
}

std::optional<ShardMap> ShardMap::decode_from_string(
    const std::string& bytes) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  net::Decoder dec(std::span<const std::uint8_t>(data, bytes.size()));
  auto map = decode(dec);
  if (!map || !dec.done()) return std::nullopt;
  return map;
}

std::vector<std::uint8_t> MapOp::encode() const {
  net::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(type));
  enc.str(lo);
  enc.str(hi);
  enc.u32(group);
  return std::move(enc).take();
}

std::optional<MapOp> MapOp::decode(std::span<const std::uint8_t> bytes) {
  net::Decoder dec(bytes);
  MapOp op;
  const std::uint8_t type = dec.u8();
  op.lo = dec.str();
  op.hi = dec.str();
  op.group = dec.u32();
  if (!dec.done()) return std::nullopt;
  if (type < static_cast<std::uint8_t>(MapOpType::kGet) ||
      type > static_cast<std::uint8_t>(MapOpType::kCommitMove))
    return std::nullopt;
  op.type = static_cast<MapOpType>(type);
  return op;
}

std::string ShardMapMachine::apply_encoded(
    std::span<const std::uint8_t> bytes) {
  const auto op = MapOp::decode(bytes);
  if (!op) return smr::TypedResult::ok(map_.epoch, "<malformed>");
  return apply(*op);
}

std::string ShardMapMachine::apply(const MapOp& op) {
  switch (op.type) {
    case MapOpType::kGet:
      return smr::TypedResult::ok(map_.epoch, map_.encode_to_string());
    case MapOpType::kAssign: {
      // Replace any range starting at exactly op.lo, else insert sorted.
      // Overlap with neighbours is the operator's responsibility (the
      // harness assigns disjoint ranges); the machine stays deterministic
      // either way.
      ShardRange r{op.lo, op.hi, op.group, /*migrating=*/false};
      auto it = std::lower_bound(
          map_.ranges.begin(), map_.ranges.end(), op.lo,
          [](const ShardRange& a, const std::string& lo) { return a.lo < lo; });
      if (it != map_.ranges.end() && it->lo == op.lo)
        *it = std::move(r);
      else
        map_.ranges.insert(it, std::move(r));
      ++map_.epoch;
      return smr::TypedResult::ok(map_.epoch, "assigned");
    }
    case MapOpType::kPrepareMove: {
      for (ShardRange& r : map_.ranges) {
        if (r.lo != op.lo) continue;
        if (r.group == op.group)
          return smr::TypedResult::ok(map_.epoch, "noop");
        r.migrating = true;
        return smr::TypedResult::ok(map_.epoch, "prepared");
      }
      return smr::TypedResult::ok(map_.epoch, "no-such-range");
    }
    case MapOpType::kCommitMove: {
      for (ShardRange& r : map_.ranges) {
        if (r.lo != op.lo) continue;
        // A replayed duplicate COMMIT_MOVE must not advance the fencing
        // epoch: the epoch is forward-only and data groups compare it
        // exactly, so a spurious bump would fence out live routers.
        if (r.group == op.group && !r.migrating)
          return smr::TypedResult::ok(map_.epoch, "noop");
        r.group = op.group;
        r.migrating = false;
        ++map_.epoch;
        return smr::TypedResult::ok(map_.epoch, "committed");
      }
      return smr::TypedResult::ok(map_.epoch, "no-such-range");
    }
  }
  return smr::TypedResult::ok(map_.epoch, "<malformed>");
}

crypto::Digest ShardMapMachine::state_digest() const {
  net::Encoder enc;
  map_.encode(enc);
  return crypto::sha256(enc.view());
}

}  // namespace qsel::shard
