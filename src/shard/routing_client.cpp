#include "shard/routing_client.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "shard/shard_kv.hpp"

namespace qsel::shard {

GroupEngines::GroupEngines(net::Transport& base,
                           std::vector<GroupEndpoint> endpoints,
                           std::uint64_t key_seed, SimDuration retry_timeout)
    : base_(base), mux_(base) {
  for (GroupEndpoint& endpoint : endpoints) {
    const GroupId id = endpoint.spec.id;
    const auto self_local = endpoint.spec.local_of(base_.self());
    QSEL_ASSERT_MSG(
        self_local.has_value() &&
            *self_local >= endpoint.spec.members.size(),
        "GroupEngines: base.self() must be a client slot of every group");

    Entry entry;
    entry.keys = std::make_unique<crypto::KeyRegistry>(
        endpoint.spec.local_count(), endpoint.spec.key_seed(key_seed));
    entry.transport = &mux_.add_group(endpoint.spec);

    smr::RequestEngineConfig engine_config;
    engine_config.replicas =
        static_cast<ProcessId>(endpoint.spec.members.size());
    engine_config.f = endpoint.f;
    engine_config.retry_timeout = retry_timeout;
    entry.engine = std::make_unique<smr::RequestEngine>(
        *entry.transport, *entry.keys, *self_local, engine_config);

    smr::RequestEngine* engine = entry.engine.get();
    entry.transport->set_handler(
        [engine](ProcessId from, const sim::PayloadPtr& message) {
          engine->on_message(from, message);
        });
    entries_.emplace(id, std::move(entry));
  }
}

smr::RequestEngine* GroupEngines::engine(GroupId id) {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.engine.get();
}

RoutingClient::RoutingClient(net::Transport& base, Config config)
    : engines_(base, std::move(config.endpoints), config.key_seed,
               config.retry_timeout),
      config_group_(config.config_group),
      backoff_base_(config.backoff_base),
      backoff_cap_(config.backoff_cap),
      jitter_state_(config.jitter_seed | 1) {
  QSEL_ASSERT_MSG(engines_.engine(config_group_) != nullptr,
                  "RoutingClient: endpoints must include the config group");
}

void RoutingClient::put(std::string key, std::string value, Done done) {
  start(app::Operation{app::OpType::kPut, std::move(key), std::move(value)},
        std::move(done));
}

void RoutingClient::get(std::string key, Done done) {
  start(app::Operation{app::OpType::kGet, std::move(key), {}},
        std::move(done));
}

void RoutingClient::del(std::string key, Done done) {
  start(app::Operation{app::OpType::kDel, std::move(key), {}},
        std::move(done));
}

std::uint64_t RoutingClient::rejects(smr::ResultStatus status) const {
  const auto it = rejects_.find(status);
  return it == rejects_.end() ? 0 : it->second;
}

void RoutingClient::refresh_map(std::function<void()> done) {
  if (done) refresh_waiters_.push_back(std::move(done));
  if (refresh_in_flight_) return;
  refresh_in_flight_ = true;
  ++map_refreshes_;
  engines_.engine(config_group_)
      ->submit(MapOp{MapOpType::kGet, {}, {}, 0}.encode(),
               [this](const smr::Outcome& outcome) {
                 refresh_in_flight_ = false;
                 if (outcome.status == smr::ResultStatus::kOk) {
                   if (auto map = ShardMap::decode_from_string(outcome.value);
                       map && map->epoch >= map_.epoch) {
                     map_ = std::move(*map);
                     has_map_ = true;
                   }
                 }
                 std::vector<std::function<void()>> waiters;
                 waiters.swap(refresh_waiters_);
                 for (auto& waiter : waiters) waiter();
               });
}

void RoutingClient::start(app::Operation op, Done done) {
  QSEL_ASSERT_MSG(!busy_, "RoutingClient: one operation at a time");
  busy_ = true;
  current_op_ = std::move(op);
  done_ = std::move(done);
  attempt_ = 0;
  if (!has_map_) {
    refresh_map([this] { attempt(); });
    return;
  }
  attempt();
}

void RoutingClient::attempt() {
  if (!has_map_) {  // refresh failed to produce a map; try again
    backoff_then_retry();
    return;
  }
  const ShardRange* range = map_.lookup(current_op_.key);
  if (range == nullptr) {
    // No group serves the key yet (bootstrap race): treat like a stale
    // map and retry.
    backoff_then_retry();
    return;
  }
  smr::RequestEngine* engine = engines_.engine(range->group);
  if (engine == nullptr) {
    // The map moved the key to a group this client has no endpoint for;
    // surface that as a terminal outcome rather than spinning.
    smr::Outcome outcome;
    outcome.status = smr::ResultStatus::kWrongGroup;
    outcome.config_epoch = map_.epoch;
    outcome.value = "no endpoint for group";
    finish(outcome);
    return;
  }
  engine->submit(
      ShardKvOp::client_op(map_.epoch, current_op_.encode()),
      [this](const smr::Outcome& outcome) { on_outcome(outcome); });
}

void RoutingClient::on_outcome(const smr::Outcome& outcome) {
  if (outcome.status == smr::ResultStatus::kOk) {
    ++completed_;
    finish(outcome);
    return;
  }
  ++rejects_[outcome.status];
  backoff_then_retry();
}

void RoutingClient::finish(const smr::Outcome& outcome) {
  // Move the callback out before invoking it: `done` may start the next
  // operation reentrantly, which reassigns done_.
  Done done = std::move(done_);
  done_ = nullptr;
  busy_ = false;
  if (done) done(outcome);
}

void RoutingClient::backoff_then_retry() {
  ++retries_;
  const std::uint32_t shift = std::min<std::uint32_t>(attempt_, 10);
  ++attempt_;
  const SimDuration exp =
      std::min(backoff_cap_, backoff_base_ << shift);
  const SimDuration delay =
      exp + next_jitter() % (backoff_base_ == 0 ? 1 : backoff_base_);
  engines_.timers().schedule_after(delay, [this] {
    // Rejects mean the cached map is stale (or about to be): refetch
    // before retrying, then resubmit as a FRESH request.
    refresh_map([this] { attempt(); });
  });
}

std::uint64_t RoutingClient::next_jitter() {
  // xorshift64: deterministic per-client jitter, no global state.
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  return jitter_state_;
}

}  // namespace qsel::shard
