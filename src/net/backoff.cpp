#include "net/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace qsel::net {

SimDuration backoff_delay(const BackoffConfig& config, std::uint32_t attempt,
                          Rng& rng) {
  QSEL_REQUIRE(config.base > 0 && config.cap >= config.base);
  QSEL_REQUIRE(config.jitter >= 0.0 && config.jitter < 1.0);
  const std::uint32_t exponent = std::min(attempt, config.max_exponent);
  const SimDuration raw = std::min<SimDuration>(
      config.cap, config.base << exponent);
  const double factor =
      1.0 + config.jitter * (2.0 * rng.uniform01() - 1.0);
  const auto jittered = static_cast<SimDuration>(
      std::llround(static_cast<double>(raw) * factor));
  return std::clamp<SimDuration>(jittered, config.base / 2, config.cap);
}

}  // namespace qsel::net
