// Transport — the substrate interface a protocol node runs on.
//
// The composed stack of Figure 1 (heartbeat application, failure detector,
// suspicion CRDT, quorum selection — runtime::NodeProcess) is written
// against this per-node interface instead of the global sim::Network, so
// the SAME protocol code runs on two substrates:
//
//   runtime::SimTransport  — adapts one process's slot of the in-process
//                            discrete-event Network (virtual time,
//                            deterministic, what every counting experiment
//                            and the fuzzer use);
//   net::TcpTransport      — real non-blocking TCP sockets on a poll-based
//                            EventLoop (wall-clock time, partial writes,
//                            reordering across connections, reconnects).
//
// Parity contract (DESIGN.md §"Transport"): both substrates deliver whole
// messages, may drop or reorder them, never corrupt them undetectably
// (TCP framing errors close the connection; authentication stays in the
// message layer), and expose a timer queue sharing the sim::Simulator API
// so the failure detector's adaptive timeouts work unchanged — virtual
// nanoseconds under simulation, real nanoseconds under TCP. Anything a
// protocol needs beyond this interface is a parity bug.
#pragma once

#include <functional>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "sim/payload.hpp"
#include "sim/simulator.hpp"

namespace qsel::net {

class Transport {
 public:
  /// Delivery upcall: a whole, decoded message from `from`. The transport
  /// authenticates nothing — signature checks stay in the message layer,
  /// exactly as with the simulated network.
  using Handler =
      std::function<void(ProcessId from, const sim::PayloadPtr& message)>;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  virtual ProcessId self() const = 0;
  virtual ProcessId process_count() const = 0;

  /// Timer queue driving this node: the shared Simulator event queue under
  /// simulation, the EventLoop's real-time-advanced queue under TCP.
  virtual sim::Simulator& timers() = 0;

  /// The "communication round" used to size failure-detector timeouts
  /// (paper Section IV-B: expected messages within two rounds).
  virtual SimDuration round_length() const = 0;

  virtual void set_handler(Handler handler) = 0;

  /// Best-effort message send; silently dropped when the peer is
  /// unreachable (the failure detector is what notices).
  virtual void send(ProcessId to, sim::PayloadPtr message) = 0;

  /// Sends to every member of `targets`; a copy to self() (if included) is
  /// delivered locally after one event-loop hop, mirroring
  /// sim::Network::broadcast.
  virtual void broadcast(ProcessSet targets, const sim::PayloadPtr& message) = 0;
};

}  // namespace qsel::net
