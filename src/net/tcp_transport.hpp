// TcpTransport — net::Transport over real non-blocking TCP sockets.
//
// One instance hosts one process: it listens on 127.0.0.1 (ephemeral port
// by default) and dials a persistent outgoing connection to every peer.
// Sends travel only on the own outgoing connection; accepted connections
// are receive-only. This gives each ordered pair (i -> j) exactly one
// byte stream, so TCP's in-order guarantee applies per direction while
// messages may still reorder across senders — the same delivery model the
// simulated network exposes.
//
// Wire protocol, in connection order:
//
//   frame     := u32-LE body length || body          (length <= max_frame)
//   1st frame := HELLO: u8 0 || u32-LE sender id     (transport-level)
//   others    := wire.hpp message bodies (u8 type tag || codec fields)
//
// A frame that fails to parse — oversized length, unknown tag, truncated
// or trailing bytes — closes the connection: a TCP stream that lost sync
// cannot be resynchronized, and the parity contract (transport.hpp) wants
// corruption surfaced as loss, never as a wrong message. Authentication
// stays above: HELLO is unauthenticated and only *routes* delivery
// upcalls; every protocol message carries its own origin signature, so a
// lying HELLO gains nothing an attacker-controlled `from` would not.
//
// Outgoing connections reconnect forever with exponential backoff
// (base * 2^attempt, capped), resetting after a successful connect.
// Messages sent while a peer is unreachable are dropped, not queued — the
// failure detector is the component that must notice silence, and the
// suspicion layer's anti-entropy resync repairs any gossip lost in the
// gap.
//
// Fault injection for tests: set_write_tamper installs a hook consulted
// once per outgoing frame (HELLO exempt) that may drop it, delay it
// (re-enqueued whole after the delay — reorders messages without
// corrupting the stream), duplicate it, or force the first write syscall
// to stop after `split_at` bytes so receivers exercise partial-frame
// reads. See net/tamper.hpp for the schedule-driven wrapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/event_loop.hpp"
#include "net/transport.hpp"

namespace qsel::trace {
class Tracer;
}

namespace qsel::net {

/// What to do with one outgoing frame (see set_write_tamper).
struct TamperPlan {
  bool drop = false;
  std::uint64_t delay_ns = 0;  // 0 = send now
  bool duplicate = false;
  std::size_t split_at = 0;  // 0 = none; else cap the first write syscall
};

class TcpTransport final : public Transport {
 public:
  struct Config {
    ProcessId self = 0;
    ProcessId n = 1;
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (tests), a
    /// fixed value lets qsel_node instances find each other.
    std::uint16_t listen_port = 0;
    /// Failure-detector round length (transport.hpp). 20ms is a generous
    /// loopback bound: it absorbs poll quantization and scheduler jitter
    /// without making suspicion latency tests crawl.
    SimDuration round_length = 20'000'000;
    std::size_t max_frame_bytes = 1 << 20;
    SimDuration reconnect_base = 10'000'000;  // 10ms
    SimDuration reconnect_cap = 1'000'000'000;  // 1s
  };

  using WriteTamper =
      std::function<TamperPlan(ProcessId to, std::size_t frame_bytes)>;

  /// Binds and listens immediately (so peers can learn listen_port()
  /// before any transport starts dialing); throws std::runtime_error when
  /// the socket setup fails. `loop` must outlive the transport.
  TcpTransport(EventLoop& loop, Config config);
  ~TcpTransport() override;

  /// Boot sequence: construct all transports, exchange listen_port() via
  /// set_peer(), then start() each — which begins dialing.
  std::uint16_t listen_port() const { return listen_port_; }
  void set_peer(ProcessId id, std::uint16_t port);
  void start();

  /// Closes every socket and cancels reconnects. Idempotent; also run by
  /// the destructor. After shutdown the transport stays silent forever —
  /// this is how LoopbackCluster crashes a node.
  void shutdown();

  /// True when the outgoing connection to `to` is established (HELLO
  /// handed to the kernel). Tests use this to await cluster wiring.
  bool connected_to(ProcessId to) const;

  /// Trace sink for kSend/kDeliver/kDrop transport events (null detaches).
  /// The caller owns the tracer and its clock.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Fault-injection hook, consulted once per outgoing message frame.
  void set_write_tamper(WriteTamper tamper) { tamper_ = std::move(tamper); }

  // --- Transport --------------------------------------------------------
  ProcessId self() const override { return config_.self; }
  ProcessId process_count() const override { return config_.n; }
  sim::Simulator& timers() override { return loop_.timers(); }
  SimDuration round_length() const override { return config_.round_length; }
  void set_handler(Handler handler) override { handler_ = std::move(handler); }
  void send(ProcessId to, sim::PayloadPtr message) override;
  void broadcast(ProcessSet targets, const sim::PayloadPtr& message) override;

 private:
  struct Connection {
    int fd = -1;
    ProcessId peer = kNoProcess;  // incoming: learned from HELLO
    bool outgoing = false;
    bool connecting = false;  // connect() still in flight
    std::vector<std::uint8_t> inbuf;
    std::vector<std::uint8_t> outbuf;
    std::size_t out_offset = 0;   // consumed prefix of outbuf
    std::size_t write_cap = 0;    // pending split tamper, 0 = none
  };

  void accept_ready();
  void connection_ready(Connection* conn, EventLoop::Ready ready);
  void dial(ProcessId to);
  void schedule_reconnect(ProcessId to);
  void close_connection(Connection* conn, bool reconnect);
  void read_from(Connection* conn);
  bool parse_frames(Connection* conn);  // false => connection was closed
  bool handle_frame(Connection* conn, std::span<const std::uint8_t> body);
  void enqueue_frame(ProcessId to, const std::vector<std::uint8_t>& frame,
                     std::size_t split_at);
  void flush(Connection* conn);
  void update_interest(Connection* conn);
  void deliver_local(const sim::PayloadPtr& message);
  void send_frame(ProcessId to, const sim::Payload& message);

  EventLoop& loop_;
  Config config_;
  Handler handler_;
  trace::Tracer* tracer_ = nullptr;
  WriteTamper tamper_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::vector<std::uint16_t> peer_ports_;  // 0 = unknown
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<Connection*> out_;  // per-peer outgoing connection or null
  std::vector<std::uint32_t> reconnect_attempts_;
  std::vector<sim::TimerHandle> reconnect_timers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace qsel::net
