// TcpTransport — net::Transport over real non-blocking TCP sockets.
//
// One instance hosts one process: it listens on 127.0.0.1 (ephemeral port
// by default) and dials a persistent outgoing connection to every peer.
// Sends travel only on the own outgoing connection; accepted connections
// are receive-only. This gives each ordered pair (i -> j) exactly one
// byte stream, so TCP's in-order guarantee applies per direction while
// messages may still reorder across senders — the same delivery model the
// simulated network exposes.
//
// Wire protocol, in connection order (unauthenticated / legacy mode):
//
//   frame     := u32-LE body length || body          (length <= max_frame)
//   1st frame := HELLO: u8 0 || u32-LE sender id     (transport-level)
//   others    := wire.hpp message bodies (u8 type tag || codec fields)
//
// With Config::auth_key set, the channel authenticates itself first. The
// handshake is a keyed challenge/response under the shared cluster key —
// the only place the otherwise unidirectional streams speak both ways:
//
//   dialer  -> HELLO:     u8 0    || u32-LE sender id || u64-LE client nonce
//   accept  -> CHALLENGE: u8 0xF0 || u64-LE server nonce ||
//                         HMAC(session key, 0x04)              (32 bytes)
//   dialer  -> AUTH:      u8 0xF1 || HMAC(session key, 0x02)   (32 bytes)
//   then       message frames: wire body || first 16 bytes of
//              HMAC(frame key, body)
//
// where session key = HMAC(auth_key, 0x01 || dialer || acceptor ||
// client nonce || server nonce) and frame key = HMAC(session key, 0x03).
// Authentication is mutual: the CHALLENGE proof (domain 0x04) shows the
// acceptor holds the cluster key, verified by the dialer before it marks
// the channel usable — an impostor listener cannot keep connected_to()
// true while black-holing traffic; the AUTH proof (domain 0x02, a
// different domain so a reflected CHALLENGE proof never passes as AUTH)
// shows the same for the dialer. Nonces are drawn from the OS entropy
// pool (getrandom), never the deterministic seed, so session keys cannot
// repeat across process restarts and recorded handshakes are worthless.
// Binding both fresh nonces and both identities into the session key
// makes the proofs unreplayable across connections and directions; a peer
// without the cluster key cannot produce either, so a lying HELLO now
// buys nothing at all — not even a routed upcall. In-session replay and
// reordering remain *accepted* by design: the tamper hook's delay fault
// legitimately reorders frames on one stream, and the protocol layer is
// replay-idempotent (the suspicion matrix is a monotone CRDT and every
// UPDATE carries its own origin signature), so the MAC deliberately
// covers bytes, not sequence position.
//
// A frame that fails to parse — oversized length, unknown tag, truncated
// or trailing bytes, bad MAC — closes the connection: a TCP stream that
// lost sync cannot be resynchronized, and the parity contract
// (transport.hpp) wants corruption surfaced as loss, never as a wrong
// message. In auth mode a close on an *authenticated* connection also
// files an offense with the QuarantinePolicy: the sender is barred
// (jittered exponential bar, bounded strike budget) and its HELLOs are
// refused until release; sustained clean frames later forgive the
// strikes (net/quarantine.hpp). Offenses attach only to identities
// proven by a completed AUTH — a failed handshake closes anonymously,
// with no strike against the merely *claimed* id, so a keyless attacker
// dialing under a victim's name can never quarantine the victim. The
// residual cost of such spam is one accept plus one HMAC per connection,
// bounded by the kernel's accept rate, not by quarantine.
//
// Outgoing connections reconnect forever with jittered exponential
// backoff (net/backoff.hpp), resetting after a successful connect.
// Messages sent while a peer is unreachable — or before its handshake
// completes — are dropped, not queued: the failure detector is the
// component that must notice silence, and the suspicion layer's
// anti-entropy resync repairs any gossip lost in the gap.
//
// Fault injection for tests: set_write_tamper installs a hook consulted
// once per outgoing frame (HELLO exempt) that may drop it, delay it
// (re-enqueued whole after the delay — reorders messages without
// corrupting the stream), duplicate it, or force the first write syscall
// to stop after `split_at` bytes so receivers exercise partial-frame
// reads. See net/tamper.hpp for the schedule-driven wrapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "net/backoff.hpp"
#include "net/event_loop.hpp"
#include "net/quarantine.hpp"
#include "net/transport.hpp"

namespace qsel::trace {
class Tracer;
}

namespace qsel::net {

/// Outbound/inbound I/O counters (BENCH_5 + batching tests). Frames are
/// protocol frames (handshake included); writev_calls counts flush
/// syscalls, so frames_sent / writev_calls is the realized batching
/// factor.
struct IoStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t writev_calls = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  /// Frames that rode the zero-copy broadcast path: the length-prefixed
  /// body was encoded once and shared across every peer's outbound queue
  /// rather than copied per connection.
  std::uint64_t frames_shared = 0;
};

/// What to do with one outgoing frame (see set_write_tamper).
struct TamperPlan {
  bool drop = false;
  std::uint64_t delay_ns = 0;  // 0 = send now
  bool duplicate = false;
  std::size_t split_at = 0;  // 0 = none; else cap the first write syscall
  /// Nonzero: XOR the mask into on-wire byte flip_at (mod frame size),
  /// *after* the MAC is attached — a corrupting link, not a corrupting
  /// sender. With auth the receiver's MAC check must reject the frame;
  /// without it the flip can silently become a different valid message,
  /// which is exactly the failure mode channel auth exists to close.
  std::uint8_t flip_mask = 0;
  std::size_t flip_at = 0;
};

class TcpTransport final : public Transport {
 public:
  struct Config {
    ProcessId self = 0;
    ProcessId n = 1;
    /// Port to bind; 0 picks an ephemeral port (tests), a fixed value
    /// lets qsel_node instances find each other.
    std::uint16_t listen_port = 0;
    /// Numeric IPv4 address to bind; 0.0.0.0 for multi-machine clusters.
    std::string bind_host = "127.0.0.1";
    /// Failure-detector round length (transport.hpp). 20ms is a generous
    /// loopback bound: it absorbs poll quantization and scheduler jitter
    /// without making suspicion latency tests crawl.
    SimDuration round_length = 20'000'000;
    std::size_t max_frame_bytes = 1 << 20;
    /// Reconnect schedule: jittered exponential backoff.
    BackoffConfig reconnect{};
    /// Shared cluster key. Empty = legacy unauthenticated mode; nonempty
    /// enables the HELLO/CHALLENGE/AUTH handshake, per-frame MACs, and
    /// the offense quarantine (header comment).
    std::vector<std::uint8_t> auth_key;
    /// Seeds backoff and quarantine jitter (deterministic tests).
    /// Handshake nonces do NOT come from this seed — they are drawn from
    /// the OS entropy pool so session keys never repeat across restarts.
    std::uint64_t auth_seed = 1;
    QuarantineConfig quarantine{};
  };

  using WriteTamper =
      std::function<TamperPlan(ProcessId to, std::size_t frame_bytes)>;

  /// Binds and listens immediately (so peers can learn listen_port()
  /// before any transport starts dialing); throws std::runtime_error when
  /// the socket setup fails. `loop` must outlive the transport.
  TcpTransport(EventLoop& loop, Config config);
  ~TcpTransport() override;

  /// Boot sequence: construct all transports, exchange listen_port() via
  /// set_peer(), then start() each — which begins dialing.
  std::uint16_t listen_port() const { return listen_port_; }
  void set_peer(ProcessId id, std::uint16_t port);  // host = 127.0.0.1
  /// Multi-machine form: `host` is a numeric IPv4 address (no DNS — a
  /// cluster config that needs names resolved them before writing ips).
  void set_peer(ProcessId id, const std::string& host, std::uint16_t port);
  void start();

  /// Closes every socket and cancels reconnects. Idempotent; also run by
  /// the destructor. After shutdown the transport stays silent forever —
  /// this is how LoopbackCluster crashes a node.
  void shutdown();

  /// True when the outgoing connection to `to` is established — HELLO
  /// handed to the kernel and, in auth mode, the acceptor's CHALLENGE
  /// proof verified and our AUTH sent. Tests use this to await wiring.
  bool connected_to(ProcessId to) const;

  bool auth_enabled() const { return !config_.auth_key.empty(); }

  /// Offense/quarantine state; null in legacy (unauthenticated) mode.
  const QuarantinePolicy* quarantine() const { return quarantine_.get(); }

  /// Cumulative I/O counters since construction.
  const IoStats& io_stats() const { return io_stats_; }

  /// Trace sink for kSend/kDeliver/kDrop transport events (null detaches).
  /// The caller owns the tracer and its clock.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Fault-injection hook, consulted once per outgoing message frame.
  void set_write_tamper(WriteTamper tamper) { tamper_ = std::move(tamper); }

  // --- Transport --------------------------------------------------------
  ProcessId self() const override { return config_.self; }
  ProcessId process_count() const override { return config_.n; }
  sim::Simulator& timers() override { return loop_.timers(); }
  SimDuration round_length() const override { return config_.round_length; }
  void set_handler(Handler handler) override { handler_ = std::move(handler); }
  void send(ProcessId to, sim::PayloadPtr message) override;
  void broadcast(ProcessSet targets, const sim::PayloadPtr& message) override;

 private:
  /// An immutable length-prefixed frame (u32-LE length || wire body)
  /// shared across a broadcast fan-out. In auth mode the prefix already
  /// counts the MAC, but the MAC itself is per-connection and travels as
  /// a separate owned tail chunk.
  using SharedFrame = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// One queued piece of an outbound stream: pool-owned bytes, or a
  /// reference into a frame shared across a broadcast (zero-copy). Owned
  /// chunks carry MAC tails, handshake frames, unicast sends, and
  /// tampered (byte-flipped) frames, which must not corrupt siblings.
  struct OutChunk {
    std::vector<std::uint8_t> owned;
    SharedFrame shared;

    const std::uint8_t* data() const {
      return shared ? shared->data() : owned.data();
    }
    std::size_t size() const { return shared ? shared->size() : owned.size(); }
  };

  struct Connection {
    int fd = -1;
    ProcessId peer = kNoProcess;  // incoming: learned from HELLO
    bool outgoing = false;
    bool connecting = false;  // connect() still in flight
    // Auth-mode handshake state (see header comment for the protocol).
    bool authenticated = false;
    bool awaiting_auth = false;  // acceptor: CHALLENGE out, AUTH not in yet
    std::uint64_t client_nonce = 0;
    std::uint64_t server_nonce = 0;
    crypto::Digest session_key{};  // proves the handshake
    crypto::Digest frame_key{};    // MACs message bodies
    std::vector<std::uint8_t> inbuf;
    /// Outbound chunks awaiting the deferred flush, FIFO. Owned buffers
    /// come from (and return to) the transport's frame pool, so
    /// steady-state unicast sends allocate nothing; shared chunks are
    /// reference-counted broadcast frames.
    std::deque<OutChunk> outq;
    std::size_t out_total = 0;    // bytes across outq, consumed included
    std::size_t out_offset = 0;   // consumed prefix of outq.front()
    std::size_t write_cap = 0;    // pending split tamper, 0 = none
    bool flush_pending = false;   // queued in pending_flush_
  };

  void accept_ready();
  void connection_ready(Connection* conn, EventLoop::Ready ready);
  void dial(ProcessId to);
  void schedule_reconnect(ProcessId to);
  void close_connection(Connection* conn, bool reconnect);
  void read_from(Connection* conn);
  bool parse_frames(Connection* conn);  // false => connection was closed
  bool handle_frame(Connection* conn, std::span<const std::uint8_t> body);
  bool handle_hello(Connection* conn, std::span<const std::uint8_t> body);
  bool handle_challenge(Connection* conn, std::span<const std::uint8_t> body);
  bool handle_auth(Connection* conn, std::span<const std::uint8_t> body);
  crypto::Digest derive_session_key(ProcessId dialer, ProcessId acceptor,
                                    std::uint64_t client_nonce,
                                    std::uint64_t server_nonce) const;
  void note_offense(ProcessId peer);
  /// Wraps `body` in a length prefix (counting the MAC in auth mode) for
  /// sharing across a fan-out.
  SharedFrame make_framed(std::span<const std::uint8_t> body) const;
  /// Routes to the zero-copy shared path or the owned copy path (unicast,
  /// or a byte-flip tamper that must not corrupt the shared buffer).
  void enqueue_dispatch(ProcessId to, std::span<const std::uint8_t> body,
                        const SharedFrame& framed, TamperPlan plan);
  void enqueue_frame(ProcessId to, std::span<const std::uint8_t> body,
                     TamperPlan plan);
  void enqueue_shared(ProcessId to, const SharedFrame& framed,
                      TamperPlan plan);
  /// Queues raw pre-framed bytes (handshake frames: no tamper, no MAC).
  void enqueue_raw(Connection* conn, std::span<const std::uint8_t> body);
  /// Marks `conn` for the end-of-round batched flush (EventLoop::defer).
  void schedule_flush(Connection* conn);
  void flush_pending_conns();
  void flush(Connection* conn);
  std::vector<std::uint8_t> acquire_buffer();
  void release_buffer(std::vector<std::uint8_t> buffer);
  void update_interest(Connection* conn);
  void deliver_local(const sim::PayloadPtr& message);
  /// One message to one peer. Unicast passes the wire encoding in `body`
  /// (framed = null); broadcast passes the shared pre-framed bytes in
  /// `framed` (body empty) so the encode + prefix happen once per fan-out
  /// (the per-peer MAC is applied at enqueue time either way).
  void send_encoded(ProcessId to, const sim::Payload& message,
                    std::span<const std::uint8_t> body,
                    const SharedFrame& framed);

  EventLoop& loop_;
  Config config_;
  Handler handler_;
  trace::Tracer* tracer_ = nullptr;
  WriteTamper tamper_;
  Rng rng_;  // reconnect + quarantine jitter (nonces use OS entropy)
  std::unique_ptr<QuarantinePolicy> quarantine_;  // auth mode only

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::vector<std::uint16_t> peer_ports_;  // 0 = unknown
  std::vector<std::string> peer_hosts_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<Connection*> out_;  // per-peer outgoing connection or null
  std::vector<std::uint32_t> reconnect_attempts_;
  std::vector<sim::TimerHandle> reconnect_timers_;
  /// Connections with queued bytes awaiting the deferred batched flush.
  std::vector<Connection*> pending_flush_;
  bool flush_scheduled_ = false;
  /// Recycled frame buffers (see Connection::outq).
  std::vector<std::vector<std::uint8_t>> frame_pool_;
  /// Liveness token for callbacks deferred into the loop: the loop
  /// outlives the transport, so a deferred flush must be able to notice
  /// the transport died before it ran.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  IoStats io_stats_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace qsel::net
