// GroupFrame — wire-level envelope scoping a message to one shard group.
//
// A GroupHost multiplexes several replica groups over a single transport,
// and each group runs in its own id space (members are ranks 0..k-1,
// clients follow) with its own key registry. The outer frame therefore
// tags the bytes with the group id and keeps the inner frame body OPAQUE:
// only the shard mux, which knows the group's local process count, can
// decode it (decode_message needs the group-local n for its bounds
// checks). The inner bytes are a complete frame body — tag byte included
// — so nesting composes with every existing codec unchanged.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/payload.hpp"

namespace qsel::net {

struct GroupFrame final : sim::Payload {
  std::uint32_t group = 0;
  /// A complete inner frame body (u8 wire tag || fields), not yet decoded.
  std::vector<std::uint8_t> inner;

  std::string_view type_tag() const override { return "net.group_frame"; }
  std::size_t wire_size() const override { return 8 + inner.size(); }
};

}  // namespace qsel::net
