#include "net/tamper.hpp"

#include "common/assert.hpp"

namespace qsel::net {

TamperedTransport::TamperedTransport(TcpTransport& inner, TamperConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {
  QSEL_REQUIRE(config_.delay_min <= config_.delay_max);
  inner_.set_write_tamper([this](ProcessId to, std::size_t frame_bytes) {
    return plan(to, frame_bytes);
  });
}

void TamperedTransport::partition(ProcessSet side_a) {
  partitioned_ = true;
  side_a_ = side_a;
}

void TamperedTransport::heal() {
  partitioned_ = false;
  side_a_.clear();
}

TamperPlan TamperedTransport::plan(ProcessId to, std::size_t frame_bytes) {
  TamperPlan result;
  if (partitioned_ && side_a_.contains(self()) != side_a_.contains(to)) {
    ++frames_dropped_;
    result.drop = true;
    return result;
  }
  if (!tamper_enabled_) return result;
  if (rng_.chance(config_.drop_rate)) {
    ++frames_dropped_;
    result.drop = true;
    return result;
  }
  if (rng_.chance(config_.delay_rate)) {
    ++frames_delayed_;
    result.delay_ns = rng_.between(config_.delay_min, config_.delay_max);
  }
  if (rng_.chance(config_.duplicate_rate)) {
    ++frames_duplicated_;
    result.duplicate = true;
  }
  // Splitting needs at least two bytes so head and tail are both nonempty.
  if (frame_bytes >= 2 && rng_.chance(config_.split_rate)) {
    ++frames_split_;
    result.split_at = rng_.between(1, frame_bytes - 1);
  }
  // Corruption spares the 4-byte length prefix: a flipped length desyncs
  // the stream instead of exercising the MAC check on one frame.
  if (frame_bytes >= 5 && rng_.chance(config_.corrupt_rate)) {
    ++frames_corrupted_;
    result.flip_at = rng_.between(4, frame_bytes - 1);
    result.flip_mask =
        static_cast<std::uint8_t>(1u << rng_.below(8));
  }
  return result;
}

}  // namespace qsel::net
