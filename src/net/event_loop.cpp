#include "net/event_loop.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/assert.hpp"

namespace qsel::net {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventLoop::EventLoop() : start_ns_(monotonic_ns()) {}

EventLoop::~EventLoop() = default;

std::uint64_t EventLoop::now_ns() const { return monotonic_ns() - start_ns_; }

EventLoop::Watch* EventLoop::find(int fd) {
  for (auto& watch : watches_)
    if (watch->fd == fd && !watch->dead) return watch.get();
  return nullptr;
}

void EventLoop::watch(int fd, IoCallback callback) {
  QSEL_REQUIRE(fd >= 0);
  QSEL_REQUIRE(callback != nullptr);
  QSEL_REQUIRE(find(fd) == nullptr);
  auto entry = std::make_unique<Watch>();
  entry->fd = fd;
  entry->events = POLLIN;
  entry->callback = std::move(callback);
  watches_.push_back(std::move(entry));
}

void EventLoop::set_interest(int fd, bool read, bool write) {
  Watch* entry = find(fd);
  QSEL_REQUIRE(entry != nullptr);
  entry->events = static_cast<short>((read ? POLLIN : 0) |  //
                                     (write ? POLLOUT : 0));
}

void EventLoop::unwatch(int fd) {
  // Only flag here; the entry is reaped after the dispatch pass so a
  // callback may unwatch any fd (its own included) without invalidating
  // the iteration in poll_once.
  if (Watch* entry = find(fd)) entry->dead = true;
}

void EventLoop::poll_once(std::uint64_t max_wait_ns) {
  std::uint64_t wait_ns = max_wait_ns;
  if (const auto next = timers_.next_event_time()) {
    const std::uint64_t now = now_ns();
    wait_ns = *next <= now ? 0 : std::min<std::uint64_t>(wait_ns, *next - now);
  }
  // poll has millisecond resolution; round up so we never spin hot while a
  // sub-millisecond deadline approaches, and cap to keep the loop
  // responsive to stop() even when no timer is pending.
  const std::uint64_t wait_ms =
      std::min<std::uint64_t>((wait_ns + 999'999) / 1'000'000, 1000);

  std::vector<pollfd> fds;
  fds.reserve(watches_.size());
  std::vector<Watch*> polled;
  polled.reserve(watches_.size());
  for (auto& entry : watches_) {
    if (entry->dead) continue;
    fds.push_back(pollfd{entry->fd, entry->events, 0});
    polled.push_back(entry.get());
  }

  const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                           static_cast<int>(wait_ms));
  if (ready > 0) {
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (polled[i]->dead || fds[i].revents == 0) continue;
      Ready r;
      r.readable = (fds[i].revents & POLLIN) != 0;
      r.writable = (fds[i].revents & POLLOUT) != 0;
      r.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      polled[i]->callback(r);
    }
  }

  std::erase_if(watches_, [](const auto& entry) { return entry->dead; });

  // Advance virtual time to real elapsed time: every timer whose deadline
  // has passed fires now, in deadline order, exactly as under simulation.
  timers_.run_until(now_ns());

  // End-of-round phase: one drain pass, so a callback that defers again
  // lands in the next round instead of spinning this one.
  if (!deferred_.empty()) {
    std::vector<std::function<void()>> run;
    run.swap(deferred_);
    for (auto& fn : run) fn();
  }
}

void EventLoop::defer(std::function<void()> fn) {
  QSEL_REQUIRE(fn != nullptr);
  deferred_.push_back(std::move(fn));
}

void EventLoop::run_for(std::uint64_t duration_ns) {
  const std::uint64_t deadline = now_ns() + duration_ns;
  stopped_ = false;
  while (!stopped_) {
    const std::uint64_t now = now_ns();
    if (now >= deadline) break;
    poll_once(deadline - now);
  }
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) poll_once(1'000'000'000);
}

}  // namespace qsel::net
