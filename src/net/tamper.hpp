// TamperedTransport — byte-level fault injection over a TcpTransport.
//
// Wraps a TcpTransport and installs its write-tamper hook (see
// tcp_transport.hpp): every outgoing message frame is independently
// dropped, delayed (whole-frame re-enqueue — reorders messages, never
// corrupts the stream), duplicated, or split so the first write syscall
// stops mid-frame and the receiver exercises partial-frame reassembly.
// All randomness comes from one seeded Rng, so a loopback test's fault
// pattern is reproducible modulo socket timing.
//
// It also models partitions the way sim::Network does: partition(side_a)
// drops every frame crossing between side_a and its complement; heal()
// lifts it. LoopbackCluster applies the same partition to every node's
// wrapper, so sender-side dropping is equivalent to cutting the links.
//
// The wrapper IS the node's Transport (NodeProcess binds to it), so its
// handler, timers and identity all pass straight through to the inner
// transport — faults live exclusively on the outgoing byte path, exactly
// where the omission/timing faults of the paper's model live.
#pragma once

#include "common/rng.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"

namespace qsel::net {

struct TamperConfig {
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  SimDuration delay_min = 1'000'000;   // 1ms
  SimDuration delay_max = 20'000'000;  // 20ms
  double duplicate_rate = 0.0;
  double split_rate = 0.0;
  /// Bit-flip a random on-wire byte past the length prefix (a corrupting
  /// link). Only meaningful when the inner transport authenticates
  /// frames: the MAC check turns the flip into a detected drop. Without
  /// auth a flipped byte can silently decode as a different message —
  /// never enable this on an unauthenticated cluster whose oracles
  /// assume delivered == sent.
  double corrupt_rate = 0.0;
  std::uint64_t seed = 1;
};

class TamperedTransport final : public Transport {
 public:
  /// `inner` must outlive the wrapper; the wrapper owns its tamper hook.
  TamperedTransport(TcpTransport& inner, TamperConfig config);

  /// Drops frames crossing between `side_a` and its complement until
  /// heal(). Applies on top of the random faults.
  void partition(ProcessSet side_a);
  void heal();

  /// Random faults on/off (partitions keep working while disabled).
  void set_tamper_enabled(bool enabled) { tamper_enabled_ = enabled; }

  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }
  std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  std::uint64_t frames_split() const { return frames_split_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }

  // --- Transport: pass-through to the inner TcpTransport ---------------
  ProcessId self() const override { return inner_.self(); }
  ProcessId process_count() const override { return inner_.process_count(); }
  sim::Simulator& timers() override { return inner_.timers(); }
  SimDuration round_length() const override { return inner_.round_length(); }
  void set_handler(Handler handler) override {
    inner_.set_handler(std::move(handler));
  }
  void send(ProcessId to, sim::PayloadPtr message) override {
    inner_.send(to, std::move(message));
  }
  void broadcast(ProcessSet targets, const sim::PayloadPtr& message) override {
    inner_.broadcast(targets, message);
  }

 private:
  TamperPlan plan(ProcessId to, std::size_t frame_bytes);

  TcpTransport& inner_;
  TamperConfig config_;
  Rng rng_;
  bool tamper_enabled_ = true;
  bool partitioned_ = false;
  ProcessSet side_a_;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_delayed_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_split_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

}  // namespace qsel::net
