#include "net/cluster_config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace qsel::net {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("cluster config line " + std::to_string(line) +
                           ": " + what);
}

std::uint64_t parse_u64(std::string_view value, int line,
                        const std::string& key) {
  if (value.empty()) fail(line, key + ": empty value");
  std::uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') fail(line, key + ": not a number: '" +
                                           std::string(value) + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (~std::uint64_t{0} - digit) / 10)
      fail(line, key + ": number overflows");
    out = out * 10 + digit;
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::vector<std::uint8_t> parse_hex(std::string_view value, int line) {
  if (value.size() % 2 != 0) fail(line, "auth_key: odd-length hex");
  std::vector<std::uint8_t> out;
  out.reserve(value.size() / 2);
  for (std::size_t i = 0; i < value.size(); i += 2) {
    const int hi = hex_nibble(value[i]);
    const int lo = hex_nibble(value[i + 1]);
    if (hi < 0 || lo < 0) fail(line, "auth_key: invalid hex");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::vector<ProcessId> parse_id_list(std::string_view value, int line,
                                     const std::string& key) {
  std::vector<ProcessId> out;
  while (!value.empty()) {
    const std::size_t comma = value.find(',');
    const std::string_view item = trim(value.substr(0, comma));
    if (item.empty()) fail(line, key + ": empty id in list");
    const std::uint64_t id = parse_u64(item, line, key);
    if (id >= kMaxProcesses) fail(line, key + ": id out of range");
    out.push_back(static_cast<ProcessId>(id));
    if (comma == std::string_view::npos) break;
    value = value.substr(comma + 1);
  }
  if (out.empty()) fail(line, key + ": empty list");
  return out;
}

GroupRange parse_range(std::string_view value, int line) {
  const std::size_t sep = value.find("..");
  if (sep == std::string_view::npos)
    fail(line, "range must be lo..hi (either side may be empty)");
  GroupRange range;
  range.lo = std::string(trim(value.substr(0, sep)));
  range.hi = std::string(trim(value.substr(sep + 2)));
  if (!range.hi.empty() && range.hi <= range.lo)
    fail(line, "range: hi must be empty or greater than lo");
  return range;
}

NodeAddress parse_address(std::string_view value, int line) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string_view::npos || colon == 0)
    fail(line, "node address must be host:port");
  NodeAddress addr;
  addr.host = std::string(trim(value.substr(0, colon)));
  const std::uint64_t port =
      parse_u64(trim(value.substr(colon + 1)), line, "port");
  if (port == 0 || port > 65535) fail(line, "port out of range");
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

}  // namespace

ClusterConfig ClusterConfig::parse(std::string_view text) {
  ClusterConfig config;
  bool saw_n = false;
  bool saw_f = false;
  bool in_group = false;
  std::vector<bool> node_seen;

  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line(raw);
    // Strip trailing comments, then whitespace.
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      const std::string_view header = trim(line.substr(1, line.size() - 2));
      if (!header.starts_with("group"))
        fail(line_no, "unknown section '" + std::string(header) + "'");
      const std::uint64_t id =
          parse_u64(trim(header.substr(5)), line_no, "group id");
      for (const GroupConfig& g : config.groups)
        if (g.id == id) fail(line_no, "duplicate group id");
      GroupConfig group;
      group.id = static_cast<std::uint32_t>(id);
      config.groups.push_back(std::move(group));
      in_group = true;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected key = value");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    if (in_group) {
      GroupConfig& group = config.groups.back();
      if (key == "kind") {
        if (value == "config")
          group.is_config = true;
        else if (value != "data")
          fail(line_no, "kind must be 'config' or 'data'");
      } else if (key == "f") {
        group.f = static_cast<int>(parse_u64(value, line_no, "group f"));
        if (group.f < 1) fail(line_no, "group f must be >= 1");
      } else if (key == "members") {
        group.members = parse_id_list(value, line_no, "members");
      } else if (key == "clients") {
        group.clients = parse_id_list(value, line_no, "clients");
      } else if (key == "range") {
        group.ranges.push_back(parse_range(value, line_no));
      } else if (key == "store_subdir") {
        group.store_subdir = std::string(value);
      } else {
        fail(line_no, "unknown group key '" + std::string(key) + "'");
      }
      continue;
    }

    if (key.starts_with("node")) {
      const std::uint64_t id =
          parse_u64(trim(key.substr(4)), line_no, "node id");
      if (!saw_n) fail(line_no, "node lines must come after n");
      if (id >= config.n) fail(line_no, "node id out of range");
      if (node_seen[id]) fail(line_no, "duplicate node id");
      node_seen[id] = true;
      config.nodes[id] = parse_address(value, line_no);
      continue;
    }

    if (key == "n") {
      const std::uint64_t n = parse_u64(value, line_no, "n");
      if (n < 1 || n > kMaxProcesses) fail(line_no, "n out of range");
      config.n = static_cast<ProcessId>(n);
      config.nodes.assign(config.n, {});
      node_seen.assign(config.n, false);
      saw_n = true;
    } else if (key == "f") {
      config.f = static_cast<int>(parse_u64(value, line_no, "f"));
      saw_f = true;
    } else if (key == "auth_key") {
      config.auth_key = parse_hex(value, line_no);
    } else if (key == "seed") {
      config.seed = parse_u64(value, line_no, "seed");
    } else if (key == "store_dir") {
      config.store_dir = std::string(value);
    } else if (key == "heartbeat_ms") {
      config.heartbeat_period =
          parse_u64(value, line_no, "heartbeat_ms") * 1'000'000;
    } else if (key == "round_ms") {
      config.round_length = parse_u64(value, line_no, "round_ms") * 1'000'000;
    } else if (key == "fd_initial_ms") {
      config.fd_initial_timeout =
          parse_u64(value, line_no, "fd_initial_ms") * 1'000'000;
    } else if (key == "fd_max_ms") {
      config.fd_max_timeout =
          parse_u64(value, line_no, "fd_max_ms") * 1'000'000;
    } else if (key == "reconnect_base_ms") {
      config.reconnect_base =
          parse_u64(value, line_no, "reconnect_base_ms") * 1'000'000;
    } else if (key == "reconnect_cap_ms") {
      config.reconnect_cap =
          parse_u64(value, line_no, "reconnect_cap_ms") * 1'000'000;
    } else {
      fail(line_no, "unknown key '" + std::string(key) + "'");
    }
  }

  if (!saw_n) fail(line_no, "missing n");
  if (!saw_f) fail(line_no, "missing f");
  if (config.f < 1) fail(line_no, "f must be >= 1");
  if (config.n < static_cast<ProcessId>(3 * config.f + 1))
    fail(line_no, "n must be >= 3f + 1");
  for (ProcessId id = 0; id < config.n; ++id)
    if (!node_seen[id])
      fail(line_no, "missing node " + std::to_string(id));
  if (config.heartbeat_period == 0) fail(line_no, "heartbeat_ms must be > 0");
  if (config.fd_initial_timeout == 0 ||
      config.fd_max_timeout < config.fd_initial_timeout)
    fail(line_no, "fd timeouts must satisfy 0 < initial <= max");
  if (config.reconnect_base == 0 ||
      config.reconnect_cap < config.reconnect_base)
    fail(line_no, "reconnect backoff must satisfy 0 < base <= cap");

  if (!config.groups.empty()) {
    std::sort(config.groups.begin(), config.groups.end(),
              [](const GroupConfig& a, const GroupConfig& b) {
                return a.id < b.id;
              });
    int config_groups = 0;
    std::vector<std::pair<GroupRange, std::uint32_t>> all_ranges;
    for (const GroupConfig& group : config.groups) {
      const std::string where = "group " + std::to_string(group.id);
      if (group.members.empty()) fail(line_no, where + ": missing members");
      std::vector<ProcessId> ids = group.members;
      ids.insert(ids.end(), group.clients.begin(), group.clients.end());
      std::sort(ids.begin(), ids.end());
      if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
        fail(line_no, where + ": members/clients must be distinct");
      for (ProcessId id : ids)
        if (id >= config.n) fail(line_no, where + ": id out of range");
      const int eff_f = group.f > 0 ? group.f : config.f;
      if (group.members.size() < static_cast<std::size_t>(3 * eff_f + 1))
        fail(line_no, where + ": members must be >= 3f + 1");
      if (group.is_config) {
        ++config_groups;
        if (!group.ranges.empty())
          fail(line_no, where + ": config group cannot serve ranges");
      }
      for (const GroupRange& range : group.ranges)
        all_ranges.emplace_back(range, group.id);
    }
    if (config_groups != 1)
      fail(line_no, "sharded config needs exactly one kind = config group");
    std::sort(all_ranges.begin(), all_ranges.end(),
              [](const auto& a, const auto& b) {
                return a.first.lo < b.first.lo;
              });
    for (std::size_t i = 1; i < all_ranges.size(); ++i) {
      const GroupRange& prev = all_ranges[i - 1].first;
      const GroupRange& next = all_ranges[i].first;
      if (prev.hi.empty() || next.lo < prev.hi)
        fail(line_no, "group ranges overlap at '" + next.lo + "'");
    }
  }
  return config;
}

const GroupConfig* ClusterConfig::group(std::uint32_t id) const {
  for (const GroupConfig& g : groups)
    if (g.id == id) return &g;
  return nullptr;
}

const GroupConfig* ClusterConfig::config_group() const {
  for (const GroupConfig& g : groups)
    if (g.is_config) return &g;
  return nullptr;
}

ClusterConfig ClusterConfig::load(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::runtime_error("cluster config: cannot open " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

std::string ClusterConfig::to_text() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::ostringstream out;
  out << "n = " << static_cast<unsigned>(n) << "\n";
  out << "f = " << f << "\n";
  if (!auth_key.empty()) {
    out << "auth_key = ";
    for (std::uint8_t byte : auth_key)
      out << kHex[byte >> 4] << kHex[byte & 0xf];
    out << "\n";
  }
  out << "seed = " << seed << "\n";
  out << "heartbeat_ms = " << heartbeat_period / 1'000'000 << "\n";
  out << "round_ms = " << round_length / 1'000'000 << "\n";
  out << "fd_initial_ms = " << fd_initial_timeout / 1'000'000 << "\n";
  out << "fd_max_ms = " << fd_max_timeout / 1'000'000 << "\n";
  out << "reconnect_base_ms = " << reconnect_base / 1'000'000 << "\n";
  out << "reconnect_cap_ms = " << reconnect_cap / 1'000'000 << "\n";
  if (!store_dir.empty()) out << "store_dir = " << store_dir << "\n";
  for (ProcessId id = 0; id < n; ++id)
    out << "node " << static_cast<unsigned>(id) << " = " << nodes[id].host
        << ":" << nodes[id].port << "\n";
  for (const GroupConfig& group : groups) {
    out << "[group " << group.id << "]\n";
    if (group.is_config) out << "kind = config\n";
    if (group.f > 0) out << "f = " << group.f << "\n";
    out << "members = ";
    for (std::size_t i = 0; i < group.members.size(); ++i)
      out << (i > 0 ? "," : "") << static_cast<unsigned>(group.members[i]);
    out << "\n";
    if (!group.clients.empty()) {
      out << "clients = ";
      for (std::size_t i = 0; i < group.clients.size(); ++i)
        out << (i > 0 ? "," : "") << static_cast<unsigned>(group.clients[i]);
      out << "\n";
    }
    for (const GroupRange& range : group.ranges)
      out << "range = " << range.lo << ".." << range.hi << "\n";
    if (!group.store_subdir.empty())
      out << "store_subdir = " << group.store_subdir << "\n";
  }
  return out.str();
}

}  // namespace qsel::net
