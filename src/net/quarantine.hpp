// QuarantinePolicy — per-peer misbehaviour containment for the live node.
//
// The simulator's model gives Byzantine senders exactly one power over the
// transport: bytes that fail authentication or parsing. The paper's
// UPDATE-signature assumption makes such bytes worthless at the protocol
// layer, but a deployed node must also bound the *cost* of receiving them:
// a peer that streams garbage forces a close-reconnect-close cycle whose
// accept/handshake work is paid by the victim. Quarantine turns that cycle
// into a controlled state machine, mirroring the failure detector's
// suspect/CANCEL discipline one layer down:
//
//   offense (bad MAC, malformed or oversized frame — only on connections
//   whose sender identity a completed AUTH has proven; failed handshakes
//   close anonymously so impostors cannot strike the id they claimed)
//     -> strike count up, peer barred for a jittered exponential backoff
//        (base << strikes, capped); the strike budget bounds the exponent,
//        so a persistent offender costs one accept per cap interval, and
//        the jitter keeps offended peers from re-admitting in lockstep;
//   sustained good behaviour (redeem_after authenticated frames in a row)
//     -> strikes reset to zero, CANCEL-style: a peer that recovered (e.g.
//        a flaky NIC replaced, a restarted-from-WAL node back on a sane
//        config) regains full standing instead of paying old strikes on
//        its next hiccup.
//
// Pure logic, no sockets or timers: the transport asks admitted() before
// accepting or dialing and reports offenses/good frames as they happen.
// Time is the caller's clock (EventLoop::now_ns or simulator time).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/backoff.hpp"

namespace qsel::net {

struct QuarantineConfig {
  /// First offense bars the peer for ~base; each further strike doubles.
  BackoffConfig backoff{/*base=*/50'000'000,  // 50ms
                        /*cap=*/5'000'000'000,  // 5s
                        /*jitter=*/0.3,
                        /*max_exponent=*/8};
  /// Strikes beyond this stop growing the bar (bounded retry budget: a
  /// permanent offender is re-admitted at most once per ~cap).
  std::uint32_t strike_budget = 8;
  /// Consecutive authenticated frames that clear all strikes.
  std::uint64_t redeem_after = 32;
};

class QuarantinePolicy {
 public:
  QuarantinePolicy(ProcessId n, QuarantineConfig config, std::uint64_t seed);

  /// Records an offense by `peer` observed at `now_ns`; the peer is barred
  /// until release_at(peer).
  void offense(ProcessId peer, std::uint64_t now_ns);

  /// Records one authenticated, well-formed frame from `peer`; after
  /// redeem_after in a row the peer's strikes are forgiven.
  void good_frame(ProcessId peer);

  /// True when connections from/to `peer` may proceed at `now_ns`.
  bool admitted(ProcessId peer, std::uint64_t now_ns) const {
    return now_ns >= release_at_[peer];
  }

  /// Earliest time the peer leaves quarantine (0 = not quarantined).
  std::uint64_t release_at(ProcessId peer) const { return release_at_[peer]; }
  std::uint32_t strikes(ProcessId peer) const { return strikes_[peer]; }
  std::uint64_t offenses_total() const { return offenses_total_; }

 private:
  QuarantineConfig config_;
  Rng rng_;
  std::vector<std::uint32_t> strikes_;
  std::vector<std::uint64_t> good_streak_;
  std::vector<std::uint64_t> release_at_;
  std::uint64_t offenses_total_ = 0;
};

}  // namespace qsel::net
