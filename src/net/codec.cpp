#include "net/codec.hpp"

#include <cstring>

namespace qsel::net {

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::digest(const crypto::Digest& d) {
  bytes_.insert(bytes_.end(), d.bytes.begin(), d.bytes.end());
}

void Encoder::signature(const crypto::Signature& s) {
  digest(s.tag);
  process_id(s.signer);
}

void Encoder::bytes(std::span<const std::uint8_t> data) {
  u64(data.size());
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Encoder::str(const std::string& s) {
  bytes(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Encoder::u64_vector(std::span<const std::uint64_t> values) {
  u64(values.size());
  for (std::uint64_t v : values) u64(v);
}

bool Decoder::take(std::size_t count, const std::uint8_t** out) {
  if (!ok_ || data_.size() - offset_ < count) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + offset_;
  offset_ += count;
  return true;
}

std::uint8_t Decoder::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return *p;
}

std::uint32_t Decoder::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t Decoder::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

crypto::Digest Decoder::digest() {
  crypto::Digest d;
  const std::uint8_t* p = nullptr;
  if (!take(d.bytes.size(), &p)) return d;
  std::memcpy(d.bytes.data(), p, d.bytes.size());
  return d;
}

crypto::Signature Decoder::signature() {
  crypto::Signature s;
  s.tag = digest();
  s.signer = process_id();
  return s;
}

std::vector<std::uint8_t> Decoder::bytes() {
  const std::uint64_t len = u64();
  if (!ok_ || data_.size() - offset_ < len) {
    ok_ = false;
    return {};
  }
  const std::uint8_t* p = nullptr;
  take(static_cast<std::size_t>(len), &p);
  return std::vector<std::uint8_t>(p, p + len);
}

std::string Decoder::str() {
  const std::vector<std::uint8_t> raw = bytes();
  return std::string(raw.begin(), raw.end());
}

std::vector<std::uint64_t> Decoder::u64_vector() {
  const std::uint64_t count = u64();
  // Guard: each element needs 8 bytes; reject absurd counts before
  // allocating (malformed Byzantine input).
  if (!ok_ || (data_.size() - offset_) / 8 < count) {
    ok_ = false;
    return {};
  }
  std::vector<std::uint64_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) v = u64();
  return values;
}

}  // namespace qsel::net
