// Jittered exponential backoff — shared by reconnect and quarantine.
//
// Plain exponential backoff synchronizes: when a node dies, every peer's
// reconnect timer fires on the same schedule (base << attempt), so the
// revived listener absorbs n-1 simultaneous SYNs on every rung — a
// reconnect storm that repeats exactly when the cluster is weakest. The
// fix is standard (decorrelated jitter): scale each delay by a uniform
// factor in [1 - jitter, 1 + jitter] drawn from the caller's Rng, then
// clamp to the cap. Deterministic per seed, so tests can pin schedules.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qsel::net {

struct BackoffConfig {
  SimDuration base = 10'000'000;  // 10ms
  SimDuration cap = 1'000'000'000;  // 1s
  /// Jitter fraction: each delay is scaled by [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  /// Attempts beyond this stop growing (the shift would overflow anyway).
  std::uint32_t max_exponent = 16;
};

/// Delay before retry number `attempt` (0-based): jittered
/// min(cap, base * 2^attempt), never less than base / 2 so a zero-jitter
/// draw cannot produce a busy-loop.
SimDuration backoff_delay(const BackoffConfig& config, std::uint32_t attempt,
                          Rng& rng);

}  // namespace qsel::net
