// EventLoop — single-threaded, poll(2)-based reactor with timers.
//
// The real-network twin of sim::Simulator's event queue. File descriptors
// register interest callbacks; timers reuse sim::Simulator itself as a
// priority queue whose clock is *advanced to real elapsed time* after
// every poll round:
//
//     poll(fds, min(next timer deadline, cap));
//     dispatch ready fds;
//     timers().run_until(monotonic nanoseconds since loop start);
//
// so the whole protocol stack (failure-detector timeouts, heartbeat ticks,
// reconnect backoff) runs unchanged on either substrate — virtual time in
// simulation, wall-clock time here. This is the keystone of the
// simulator-vs-TCP parity contract (net/transport.hpp).
//
// Single-threaded by design: every TcpTransport of a LoopbackCluster and
// every callback runs on the thread that calls run()/run_for(), so no
// protocol state needs locks and sanitizer runs stay race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace qsel::net {

class EventLoop {
 public:
  /// Readiness upcall. `error` covers POLLERR/POLLHUP/POLLNVAL; the owner
  /// decides whether that means close-and-reconnect.
  struct Ready {
    bool readable = false;
    bool writable = false;
    bool error = false;
  };
  using IoCallback = std::function<void(Ready ready)>;

  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  /// Registers `fd` with its callback; interest starts as read-only.
  /// The loop never closes fds — ownership stays with the caller.
  void watch(int fd, IoCallback callback);

  /// Updates poll interest for a watched fd.
  void set_interest(int fd, bool read, bool write);

  /// Deregisters `fd`. Safe to call from inside a callback (including the
  /// fd's own): the watch is only reaped after the dispatch pass.
  void unwatch(int fd);

  /// Timer queue; schedule with timers().schedule_after(ns, fn) exactly as
  /// under simulation. Fires on the loop thread during run()/run_for().
  sim::Simulator& timers() { return timers_; }

  /// Runs `fn` once at the END of the current poll round, after fd
  /// dispatch and timers — or at the end of the next round when no round
  /// is in flight. This is the batching point: producers enqueue bytes
  /// from fd and timer callbacks all through one iteration, and a single
  /// deferred flush coalesces them into one writev per connection.
  /// Callbacks deferred from within a deferred callback run next round.
  void defer(std::function<void()> fn);

  /// Monotonic nanoseconds since the loop was constructed — the value the
  /// timer clock is advanced to. Also serves as the trace clock.
  std::uint64_t now_ns() const;

  /// One poll round: waits at most `max_wait_ns` (bounded further by the
  /// next timer deadline), dispatches ready fds, then fires due timers.
  void poll_once(std::uint64_t max_wait_ns);

  /// Pumps poll rounds until `duration_ns` of real time has elapsed.
  void run_for(std::uint64_t duration_ns);

  /// Pumps until stop() is called (from a callback or timer).
  void run();
  void stop() { stopped_ = true; }

 private:
  struct Watch {
    int fd;
    short events;  // POLLIN/POLLOUT interest
    IoCallback callback;
    bool dead = false;
  };

  Watch* find(int fd);

  sim::Simulator timers_;
  std::vector<std::unique_ptr<Watch>> watches_;
  std::vector<std::function<void()>> deferred_;
  std::uint64_t start_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace qsel::net
