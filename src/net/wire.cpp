#include "net/wire.hpp"

#include <memory>
#include <utility>

#include "fs/followers_message.hpp"
#include "net/codec.hpp"
#include "runtime/heartbeat.hpp"
#include "suspect/delta_update_message.hpp"
#include "suspect/update_message.hpp"

namespace qsel::net {

namespace {

void encode_heartbeat(const runtime::HeartbeatMessage& msg, Encoder& enc) {
  enc.process_id(msg.origin);
  enc.u64(msg.seq);
  enc.signature(msg.sig);
}

void encode_update(const suspect::UpdateMessage& msg, Encoder& enc) {
  enc.process_id(msg.origin);
  enc.u64_vector(msg.row);
  enc.signature(msg.sig);
}

void encode_followers(const fs::FollowersMessage& msg, Encoder& enc) {
  enc.process_id(msg.leader);
  enc.process_set(msg.followers);
  enc.u64(msg.epoch);
  std::vector<std::uint64_t> edges;
  edges.reserve(msg.line_edges.size());
  for (const auto& [u, v] : msg.line_edges)
    edges.push_back((static_cast<std::uint64_t>(u) << 32) | v);
  enc.u64_vector(edges);
  enc.signature(msg.sig);
}

void encode_delta(const suspect::DeltaUpdateMessage& msg, Encoder& enc) {
  enc.process_id(msg.origin);
  enc.u64(msg.version);
  enc.u32(static_cast<std::uint32_t>(msg.cells.size()));
  for (const suspect::DeltaCell& c : msg.cells) {
    enc.u32(c.col);
    enc.u64(c.stamp);
  }
  enc.signature(msg.sig);
}

void encode_row_digest(const suspect::RowDigestMessage& msg, Encoder& enc) {
  enc.u32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const suspect::RowDigestEntry& e : msg.entries) {
    enc.u32(e.row);
    for (const std::uint8_t b : e.digest) enc.u8(b);
  }
}

sim::PayloadPtr decode_heartbeat(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<runtime::HeartbeatMessage>();
  msg->origin = dec.process_id();
  msg->seq = dec.u64();
  msg->sig = dec.signature();
  if (!dec.done() || msg->origin >= n) return nullptr;
  return msg;
}

sim::PayloadPtr decode_update(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<suspect::UpdateMessage>();
  msg->origin = dec.process_id();
  msg->row = dec.u64_vector();
  msg->sig = dec.signature();
  // Row width must be exactly n (UpdateMessage::verify re-checks, but a
  // wrong width is already a framing error, not a signature question).
  if (!dec.done() || msg->origin >= n || msg->row.size() != n) return nullptr;
  return msg;
}

sim::PayloadPtr decode_followers(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<fs::FollowersMessage>();
  msg->leader = dec.process_id();
  msg->followers = dec.process_set();
  msg->epoch = dec.u64();
  const std::vector<std::uint64_t> edges = dec.u64_vector();
  msg->sig = dec.signature();
  if (!dec.done() || msg->leader >= n) return nullptr;
  // A line subgraph on n nodes has at most n-1 edges; anything bigger is
  // garbage regardless of signature.
  if (edges.size() >= n) return nullptr;
  for (const std::uint64_t packed : edges) {
    const auto u = static_cast<ProcessId>(packed >> 32);
    const auto v = static_cast<ProcessId>(packed & 0xffffffffULL);
    if (u >= n || v >= n) return nullptr;
    msg->line_edges.emplace_back(u, v);
  }
  return msg;
}

sim::PayloadPtr decode_delta(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<suspect::DeltaUpdateMessage>();
  msg->origin = dec.process_id();
  msg->version = dec.u64();
  const std::uint32_t count = dec.u32();
  // A delta carries at most one cell per column; nonempty by contract
  // (an empty delta is never sent, so on the wire it is garbage).
  if (!dec.ok() || count == 0 || count > n) return nullptr;
  msg->cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    suspect::DeltaCell c;
    c.col = dec.process_id();
    c.stamp = dec.u64();
    if (!dec.ok() || c.col >= n || c.stamp == 0) return nullptr;
    if (i > 0 && c.col <= msg->cells.back().col) return nullptr;
    msg->cells.push_back(c);
  }
  msg->sig = dec.signature();
  if (!dec.done() || msg->origin >= n) return nullptr;
  return msg;
}

sim::PayloadPtr decode_row_digest(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<suspect::RowDigestMessage>();
  const std::uint32_t count = dec.u32();
  if (!dec.ok() || count > n) return nullptr;  // one digest per row max
  msg->entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    suspect::RowDigestEntry e;
    e.row = dec.process_id();
    for (std::uint8_t& b : e.digest) b = dec.u8();
    if (!dec.ok() || e.row >= n) return nullptr;
    if (i > 0 && e.row <= msg->entries.back().row) return nullptr;
    msg->entries.push_back(e);
  }
  if (!dec.done()) return nullptr;
  return msg;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> encode_message(
    const sim::Payload& message) {
  Encoder enc;
  if (const auto* hb =
          dynamic_cast<const runtime::HeartbeatMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kHeartbeat));
    encode_heartbeat(*hb, enc);
  } else if (const auto* update =
                 dynamic_cast<const suspect::UpdateMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kUpdate));
    encode_update(*update, enc);
  } else if (const auto* followers =
                 dynamic_cast<const fs::FollowersMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kFollowers));
    encode_followers(*followers, enc);
  } else if (const auto* delta =
                 dynamic_cast<const suspect::DeltaUpdateMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kDeltaUpdate));
    encode_delta(*delta, enc);
  } else if (const auto* digests =
                 dynamic_cast<const suspect::RowDigestMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kRowDigest));
    encode_row_digest(*digests, enc);
  } else {
    return std::nullopt;
  }
  return std::move(enc).take();
}

sim::PayloadPtr decode_message(std::span<const std::uint8_t> body,
                               ProcessId n) {
  Decoder dec(body);
  const std::uint8_t tag = dec.u8();
  if (!dec.ok()) return nullptr;
  switch (static_cast<WireType>(tag)) {
    case WireType::kHeartbeat:
      return decode_heartbeat(dec, n);
    case WireType::kUpdate:
      return decode_update(dec, n);
    case WireType::kFollowers:
      return decode_followers(dec, n);
    case WireType::kDeltaUpdate:
      return decode_delta(dec, n);
    case WireType::kRowDigest:
      return decode_row_digest(dec, n);
  }
  return nullptr;
}

}  // namespace qsel::net
