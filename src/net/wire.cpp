#include "net/wire.hpp"

#include <memory>
#include <utility>

#include "fs/followers_message.hpp"
#include "net/codec.hpp"
#include "net/group_frame.hpp"
#include "runtime/heartbeat.hpp"
#include "smr/client_messages.hpp"
#include "suspect/delta_update_message.hpp"
#include "suspect/update_message.hpp"
#include "xpaxos/messages.hpp"

namespace qsel::net {

namespace {

void encode_heartbeat(const runtime::HeartbeatMessage& msg, Encoder& enc) {
  enc.process_id(msg.origin);
  enc.u64(msg.seq);
  enc.signature(msg.sig);
}

void encode_update(const suspect::UpdateMessage& msg, Encoder& enc) {
  enc.process_id(msg.origin);
  enc.u64_vector(msg.row);
  enc.signature(msg.sig);
}

void encode_followers(const fs::FollowersMessage& msg, Encoder& enc) {
  enc.process_id(msg.leader);
  enc.process_set(msg.followers);
  enc.u64(msg.epoch);
  std::vector<std::uint64_t> edges;
  edges.reserve(msg.line_edges.size());
  for (const auto& [u, v] : msg.line_edges)
    edges.push_back((static_cast<std::uint64_t>(u) << 32) | v);
  enc.u64_vector(edges);
  enc.signature(msg.sig);
}

void encode_delta(const suspect::DeltaUpdateMessage& msg, Encoder& enc) {
  enc.process_id(msg.origin);
  enc.u64(msg.version);
  enc.u32(static_cast<std::uint32_t>(msg.cells.size()));
  for (const suspect::DeltaCell& c : msg.cells) {
    enc.u32(c.col);
    enc.u64(c.stamp);
  }
  enc.signature(msg.sig);
}

void encode_row_digest(const suspect::RowDigestMessage& msg, Encoder& enc) {
  enc.u32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const suspect::RowDigestEntry& e : msg.entries) {
    enc.u32(e.row);
    for (const std::uint8_t b : e.digest) enc.u8(b);
  }
}

void encode_client_request(const smr::ClientRequest& msg, Encoder& enc) {
  enc.u32(msg.client);
  enc.u64(msg.client_seq);
  enc.bytes(msg.op);
  enc.signature(msg.sig);
}

void encode_reply(const smr::ReplyMessage& msg, Encoder& enc) {
  enc.u64(msg.view);
  enc.u32(msg.client);
  enc.u64(msg.client_seq);
  enc.str(msg.result);
  enc.process_id(msg.replica);
  enc.signature(msg.sig);
}

void encode_prepare_fields(const xpaxos::PrepareMessage& msg, Encoder& enc) {
  enc.u64(msg.view);
  enc.u64(msg.slot);
  enc.u32(static_cast<std::uint32_t>(msg.requests.size()));
  for (const xpaxos::BatchEntry& e : msg.requests) {
    enc.u32(e.client);
    enc.u64(e.client_seq);
    enc.bytes(e.op);
  }
  enc.signature(msg.sig);
}

void encode_commit(const xpaxos::CommitMessage& msg, Encoder& enc) {
  encode_prepare_fields(msg.prepare, enc);
  enc.process_id(msg.sender);
  enc.signature(msg.sig);
}

void encode_viewchange(const xpaxos::ViewChangeMessage& msg, Encoder& enc) {
  enc.u64(msg.new_view);
  enc.process_id(msg.sender);
  enc.u32(static_cast<std::uint32_t>(msg.prepared.size()));
  for (const xpaxos::PrepareMessage& p : msg.prepared)
    encode_prepare_fields(p, enc);
  enc.signature(msg.sig);
}

void encode_newview(const xpaxos::NewViewMessage& msg, Encoder& enc) {
  enc.u64(msg.view);
  enc.process_id(msg.leader);
  enc.u32(static_cast<std::uint32_t>(msg.reproposals.size()));
  for (const xpaxos::PrepareMessage& p : msg.reproposals)
    encode_prepare_fields(p, enc);
  enc.signature(msg.sig);
}

void encode_group_frame(const GroupFrame& msg, Encoder& enc) {
  enc.u32(msg.group);
  enc.bytes(msg.inner);
}

sim::PayloadPtr decode_heartbeat(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<runtime::HeartbeatMessage>();
  msg->origin = dec.process_id();
  msg->seq = dec.u64();
  msg->sig = dec.signature();
  if (!dec.done() || msg->origin >= n) return nullptr;
  return msg;
}

sim::PayloadPtr decode_update(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<suspect::UpdateMessage>();
  msg->origin = dec.process_id();
  msg->row = dec.u64_vector();
  msg->sig = dec.signature();
  // The decode-time n is an address-space bound, not the replica count:
  // the shard mux decodes with members+clients so client-originated
  // messages pass the origin check, which makes it an over-estimate of
  // the suspicion-matrix width. Bound the row here; the consumer's
  // UpdateMessage::verify enforces the exact width against its group n.
  if (!dec.done() || msg->origin >= n || msg->row.empty() ||
      msg->row.size() > n)
    return nullptr;
  return msg;
}

sim::PayloadPtr decode_followers(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<fs::FollowersMessage>();
  msg->leader = dec.process_id();
  msg->followers = dec.process_set();
  msg->epoch = dec.u64();
  const std::vector<std::uint64_t> edges = dec.u64_vector();
  msg->sig = dec.signature();
  if (!dec.done() || msg->leader >= n) return nullptr;
  // A line subgraph on n nodes has at most n-1 edges; anything bigger is
  // garbage regardless of signature.
  if (edges.size() >= n) return nullptr;
  for (const std::uint64_t packed : edges) {
    const auto u = static_cast<ProcessId>(packed >> 32);
    const auto v = static_cast<ProcessId>(packed & 0xffffffffULL);
    if (u >= n || v >= n) return nullptr;
    msg->line_edges.emplace_back(u, v);
  }
  return msg;
}

sim::PayloadPtr decode_delta(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<suspect::DeltaUpdateMessage>();
  msg->origin = dec.process_id();
  msg->version = dec.u64();
  const std::uint32_t count = dec.u32();
  // A delta carries at most one cell per column; nonempty by contract
  // (an empty delta is never sent, so on the wire it is garbage).
  if (!dec.ok() || count == 0 || count > n) return nullptr;
  msg->cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    suspect::DeltaCell c;
    c.col = dec.process_id();
    c.stamp = dec.u64();
    if (!dec.ok() || c.col >= n || c.stamp == 0) return nullptr;
    if (i > 0 && c.col <= msg->cells.back().col) return nullptr;
    msg->cells.push_back(c);
  }
  msg->sig = dec.signature();
  if (!dec.done() || msg->origin >= n) return nullptr;
  return msg;
}

sim::PayloadPtr decode_row_digest(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<suspect::RowDigestMessage>();
  const std::uint32_t count = dec.u32();
  if (!dec.ok() || count > n) return nullptr;  // one digest per row max
  msg->entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    suspect::RowDigestEntry e;
    e.row = dec.process_id();
    for (std::uint8_t& b : e.digest) b = dec.u8();
    if (!dec.ok() || e.row >= n) return nullptr;
    if (i > 0 && e.row <= msg->entries.back().row) return nullptr;
    msg->entries.push_back(e);
  }
  if (!dec.done()) return nullptr;
  return msg;
}

sim::PayloadPtr decode_client_request(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<smr::ClientRequest>();
  msg->client = dec.u32();
  msg->client_seq = dec.u64();
  msg->op = dec.bytes();
  msg->sig = dec.signature();
  if (!dec.done() || msg->client >= n) return nullptr;
  return msg;
}

sim::PayloadPtr decode_reply(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<smr::ReplyMessage>();
  msg->view = dec.u64();
  msg->client = dec.u32();
  msg->client_seq = dec.u64();
  msg->result = dec.str();
  msg->replica = dec.process_id();
  msg->sig = dec.signature();
  if (!dec.done() || msg->client >= n || msg->replica >= n) return nullptr;
  return msg;
}

bool decode_prepare_fields(Decoder& dec, ProcessId n,
                           xpaxos::PrepareMessage& out) {
  out.view = dec.u64();
  out.slot = dec.u64();
  const std::uint32_t count = dec.u32();
  // A PREPARE carries 1..kMaxBatch requests; an empty batch or an absurd
  // count is garbage regardless of signature, rejected before any
  // allocation is amplified.
  if (!dec.ok() || count == 0 || count > xpaxos::PrepareMessage::kMaxBatch)
    return false;
  out.requests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    xpaxos::BatchEntry e;
    e.client = dec.u32();
    e.client_seq = dec.u64();
    e.op = dec.bytes();
    // client == 0 doubles as the no-op marker, so only the upper bound is
    // checked.
    if (!dec.ok() || e.client >= n) return false;
    out.requests.push_back(std::move(e));
  }
  out.sig = dec.signature();
  // Slot 0 is never proposed.
  return dec.ok() && out.slot != 0;
}

sim::PayloadPtr decode_prepare(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<xpaxos::PrepareMessage>();
  if (!decode_prepare_fields(dec, n, *msg) || !dec.done()) return nullptr;
  return msg;
}

sim::PayloadPtr decode_commit(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<xpaxos::CommitMessage>();
  if (!decode_prepare_fields(dec, n, msg->prepare)) return nullptr;
  msg->sender = dec.process_id();
  msg->sig = dec.signature();
  if (!dec.done() || msg->sender >= n) return nullptr;
  return msg;
}

/// Shared shape of VIEWCHANGE and NEWVIEW: header ids, a prepare list, a
/// signature. No up-front length cap: each entry consumes at least 60
/// bytes, so a lying count just runs the decoder off the buffer (and the
/// list is built without reserve, so no allocation is amplified either).
bool decode_prepare_list(Decoder& dec, ProcessId n,
                         std::vector<xpaxos::PrepareMessage>& out) {
  const std::uint32_t count = dec.u32();
  if (!dec.ok()) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    xpaxos::PrepareMessage p;
    if (!decode_prepare_fields(dec, n, p)) return false;
    out.push_back(std::move(p));
  }
  return true;
}

sim::PayloadPtr decode_viewchange(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<xpaxos::ViewChangeMessage>();
  msg->new_view = dec.u64();
  msg->sender = dec.process_id();
  if (!dec.ok() || msg->sender >= n) return nullptr;
  if (!decode_prepare_list(dec, n, msg->prepared)) return nullptr;
  msg->sig = dec.signature();
  if (!dec.done()) return nullptr;
  return msg;
}

sim::PayloadPtr decode_newview(Decoder& dec, ProcessId n) {
  auto msg = std::make_shared<xpaxos::NewViewMessage>();
  msg->view = dec.u64();
  msg->leader = dec.process_id();
  if (!dec.ok() || msg->leader >= n) return nullptr;
  if (!decode_prepare_list(dec, n, msg->reproposals)) return nullptr;
  msg->sig = dec.signature();
  if (!dec.done()) return nullptr;
  return msg;
}

sim::PayloadPtr decode_group_frame(Decoder& dec) {
  auto msg = std::make_shared<GroupFrame>();
  msg->group = dec.u32();
  msg->inner = dec.bytes();
  // The inner body must at least carry a wire tag; its real validation
  // happens when the shard mux decodes it with the group-local n.
  if (!dec.done() || msg->inner.empty()) return nullptr;
  return msg;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> encode_message(
    const sim::Payload& message) {
  Encoder enc;
  if (const auto* hb =
          dynamic_cast<const runtime::HeartbeatMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kHeartbeat));
    encode_heartbeat(*hb, enc);
  } else if (const auto* update =
                 dynamic_cast<const suspect::UpdateMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kUpdate));
    encode_update(*update, enc);
  } else if (const auto* followers =
                 dynamic_cast<const fs::FollowersMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kFollowers));
    encode_followers(*followers, enc);
  } else if (const auto* delta =
                 dynamic_cast<const suspect::DeltaUpdateMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kDeltaUpdate));
    encode_delta(*delta, enc);
  } else if (const auto* digests =
                 dynamic_cast<const suspect::RowDigestMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kRowDigest));
    encode_row_digest(*digests, enc);
  } else if (const auto* request =
                 dynamic_cast<const smr::ClientRequest*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kClientRequest));
    encode_client_request(*request, enc);
  } else if (const auto* reply =
                 dynamic_cast<const smr::ReplyMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kReply));
    encode_reply(*reply, enc);
  } else if (const auto* prepare =
                 dynamic_cast<const xpaxos::PrepareMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kPrepare));
    encode_prepare_fields(*prepare, enc);
  } else if (const auto* commit =
                 dynamic_cast<const xpaxos::CommitMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kCommit));
    encode_commit(*commit, enc);
  } else if (const auto* viewchange =
                 dynamic_cast<const xpaxos::ViewChangeMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kViewChange));
    encode_viewchange(*viewchange, enc);
  } else if (const auto* newview =
                 dynamic_cast<const xpaxos::NewViewMessage*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kNewView));
    encode_newview(*newview, enc);
  } else if (const auto* frame = dynamic_cast<const GroupFrame*>(&message)) {
    enc.u8(static_cast<std::uint8_t>(WireType::kGroupFrame));
    encode_group_frame(*frame, enc);
  } else {
    return std::nullopt;
  }
  return std::move(enc).take();
}

sim::PayloadPtr decode_message(std::span<const std::uint8_t> body,
                               ProcessId n) {
  Decoder dec(body);
  const std::uint8_t tag = dec.u8();
  if (!dec.ok()) return nullptr;
  switch (static_cast<WireType>(tag)) {
    case WireType::kHeartbeat:
      return decode_heartbeat(dec, n);
    case WireType::kUpdate:
      return decode_update(dec, n);
    case WireType::kFollowers:
      return decode_followers(dec, n);
    case WireType::kDeltaUpdate:
      return decode_delta(dec, n);
    case WireType::kRowDigest:
      return decode_row_digest(dec, n);
    case WireType::kClientRequest:
      return decode_client_request(dec, n);
    case WireType::kReply:
      return decode_reply(dec, n);
    case WireType::kPrepare:
      return decode_prepare(dec, n);
    case WireType::kCommit:
      return decode_commit(dec, n);
    case WireType::kViewChange:
      return decode_viewchange(dec, n);
    case WireType::kNewView:
      return decode_newview(dec, n);
    case WireType::kGroupFrame:
      return decode_group_frame(dec);
  }
  return nullptr;
}

}  // namespace qsel::net
