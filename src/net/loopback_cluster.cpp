#include "net/loopback_cluster.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "trace/event.hpp"
#include "trace/tracer.hpp"

namespace qsel::net {

LoopbackClusterConfig loopback_config_from(const ClusterConfig& cluster) {
  LoopbackClusterConfig config;
  config.n = cluster.n;
  config.f = cluster.f;
  config.seed = cluster.seed;
  config.heartbeat_period = cluster.heartbeat_period;
  config.fd.initial_timeout = cluster.fd_initial_timeout;
  config.fd.max_timeout = cluster.fd_max_timeout;
  config.fd.adaptive = true;
  config.auth_key = cluster.auth_key;
  config.store_root = cluster.store_dir;
  config.reconnect.base = cluster.reconnect_base;
  config.reconnect.cap = cluster.reconnect_cap;
  return config;
}

LoopbackCluster::LoopbackCluster(LoopbackClusterConfig config)
    : config_(config),
      keys_(config.n, config.seed),
      stores_(config.n),
      transports_(config.n),
      tampers_(config.n),
      processes_(config.n),
      ports_(config.n, 0),
      tamper_seed_state_(config.tamper.seed) {
  QSEL_REQUIRE(config_.n >= 1 && config_.n <= kMaxProcesses);

  // Every node gets a store so restart() can recover it: files when the
  // config names a root (survives the cluster object — the soak harness
  // reuses them), memory otherwise.
  for (ProcessId id = 0; id < config_.n; ++id) {
    if (config_.store_root.empty()) {
      stores_[id] = std::make_unique<store::MemoryNodeStore>();
    } else {
      stores_[id] = std::make_unique<store::FileNodeStore>(
          config_.store_root + "/node" + std::to_string(id), config_.n);
    }
  }

  // Every transport binds its listen socket in its constructor, so by the
  // time the wiring pass below runs, every port is known — no races, no
  // fixed port numbers to collide on.
  for (ProcessId id = 0; id < config_.n; ++id)
    build_node(id, /*port=*/0, splitmix64(tamper_seed_state_));
  for (ProcessId id = 0; id < config_.n; ++id)
    ports_[id] = transports_[id]->listen_port();
  for (ProcessId from = 0; from < config_.n; ++from)
    for (ProcessId to = 0; to < config_.n; ++to)
      if (from != to) transports_[from]->set_peer(to, ports_[to]);
}

void LoopbackCluster::build_node(ProcessId id, std::uint16_t port,
                                 std::uint64_t tamper_seed) {
  runtime::NodeProcessConfig node_config;
  node_config.n = config_.n;
  node_config.f = config_.f;
  node_config.fd = config_.fd;
  node_config.heartbeat_period = config_.heartbeat_period;
  node_config.gossip = config_.gossip;

  TcpTransport::Config tcp;
  tcp.self = id;
  tcp.n = config_.n;
  tcp.listen_port = port;
  tcp.auth_key = config_.auth_key;
  tcp.auth_seed = config_.seed;
  tcp.reconnect = config_.reconnect;
  transports_[id] = std::make_unique<TcpTransport>(loop_, tcp);
  TamperConfig tamper = config_.tamper;
  tamper.seed = tamper_seed;
  tampers_[id] =
      std::make_unique<TamperedTransport>(*transports_[id], tamper);
  if (partition_) tampers_[id]->partition(*partition_);
  processes_[id] = std::make_unique<runtime::NodeProcess>(
      *tampers_[id], keys_, node_config, stores_[id].get());
  if (tracer_ != nullptr) {
    transports_[id]->set_tracer(tracer_);
    processes_[id]->selector().set_tracer(tracer_);
  }
}

LoopbackCluster::~LoopbackCluster() {
  for (auto& transport : transports_)
    if (transport) transport->shutdown();
}

runtime::NodeProcess& LoopbackCluster::process(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *processes_[id];
}

TamperedTransport& LoopbackCluster::tamper(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *tampers_[id];
}

TcpTransport& LoopbackCluster::transport(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *transports_[id];
}

void LoopbackCluster::attach_tracer(trace::Tracer& tracer) {
  tracer_ = &tracer;
  tracer.set_clock([this] { return loop_.now_ns(); });
  for (ProcessId id = 0; id < config_.n; ++id) {
    transports_[id]->set_tracer(&tracer);
    processes_[id]->selector().set_tracer(&tracer);
  }
}

bool LoopbackCluster::start(std::uint64_t connect_timeout_ns) {
  for (auto& transport : transports_) transport->start();
  if (!run_until([this] { return fully_connected(); }, connect_timeout_ns))
    return false;
  for (auto& process : processes_) process->start();
  return true;
}

bool LoopbackCluster::fully_connected() const {
  for (ProcessId from = 0; from < config_.n; ++from) {
    if (crashed_.contains(from)) continue;
    for (ProcessId to = 0; to < config_.n; ++to) {
      if (to == from || crashed_.contains(to)) continue;
      if (!transports_[from]->connected_to(to)) return false;
    }
  }
  return true;
}

bool LoopbackCluster::run_until(const std::function<bool()>& pred,
                                std::uint64_t timeout_ns) {
  const std::uint64_t deadline = loop_.now_ns() + timeout_ns;
  while (!pred()) {
    const std::uint64_t now = loop_.now_ns();
    if (now >= deadline) return false;
    loop_.poll_once(std::min<std::uint64_t>(deadline - now, 5'000'000));
  }
  return true;
}

void LoopbackCluster::crash(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  processes_[id]->stop();
  transports_[id]->shutdown();
  crashed_.insert(id);
}

void LoopbackCluster::restart(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  QSEL_REQUIRE_MSG(crashed_.contains(id), "restart() needs a prior crash()");
  // Tear down in dependency order (node holds the tamper wrapper holds
  // the transport), then rebuild on the original port so peers' reconnect
  // loops — which kept dialing it throughout the outage — find the
  // revived listener without any rewiring.
  processes_[id].reset();
  tampers_[id].reset();
  transports_[id].reset();
  build_node(id, ports_[id], splitmix64(tamper_seed_state_));
  QSEL_REQUIRE(transports_[id]->listen_port() == ports_[id]);
  for (ProcessId to = 0; to < config_.n; ++to)
    if (to != id) transports_[id]->set_peer(to, ports_[to]);
  crashed_.erase(id);
  transports_[id]->start();
  processes_[id]->start();
}

store::NodeStore& LoopbackCluster::store(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *stores_[id];
}

void LoopbackCluster::partition(ProcessSet side_a) {
  partition_ = side_a;
  for (auto& tamper : tampers_) tamper->partition(side_a);
}

void LoopbackCluster::heal() {
  partition_.reset();
  for (auto& tamper : tampers_) tamper->heal();
}

ProcessSet LoopbackCluster::alive() const {
  return ProcessSet::full(config_.n) - crashed_;
}

bool LoopbackCluster::converged() const {
  const suspect::SuspicionMatrix* reference = nullptr;
  for (ProcessId id : alive()) {
    const auto& matrix = processes_[id]->selector().matrix();
    if (reference == nullptr)
      reference = &matrix;
    else if (!(matrix == *reference))
      return false;
  }
  return reference != nullptr;
}

std::optional<std::string> LoopbackCluster::agreement_error() const {
  const int want = static_cast<int>(config_.n) - config_.f;
  for (ProcessId id : alive()) {
    const ProcessSet quorum = processes_[id]->quorum();
    if (quorum.size() != want) {
      std::ostringstream os;
      os << "p" << id << " reports quorum " << quorum.to_string()
         << " of size " << quorum.size() << ", want " << want;
      return os.str();
    }
  }
  for (ProcessId a : alive()) {
    for (ProcessId b : alive()) {
      if (b <= a) continue;
      const auto& sa = processes_[a]->selector();
      const auto& sb = processes_[b]->selector();
      if (sa.epoch() != sb.epoch()) continue;
      if (sa.quorum() != sb.quorum()) {
        std::ostringstream os;
        os << "p" << a << " reports " << sa.quorum().to_string() << " but p"
           << b << " reports " << sb.quorum().to_string() << " (both in epoch "
           << sa.epoch() << ")";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

crypto::Digest LoopbackCluster::outcome_digest() const {
  std::vector<std::pair<ProcessId, ProcessSet>> quorums;
  for (ProcessId id : alive())
    quorums.emplace_back(id, processes_[id]->quorum());
  return final_quorum_digest(quorums);
}

crypto::Digest final_quorum_digest(
    std::span<const std::pair<ProcessId, ProcessSet>> quorums) {
  std::vector<trace::Event> events;
  events.reserve(quorums.size());
  for (const auto& [id, quorum] : quorums) {
    trace::Event event;
    event.type = trace::EventType::kQuorum;
    event.actor = id;
    event.arg0 = quorum.mask();
    events.push_back(std::move(event));
  }
  return trace::digest_of(events);
}

}  // namespace qsel::net
