#include "net/loopback_cluster.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "trace/event.hpp"
#include "trace/tracer.hpp"

namespace qsel::net {

LoopbackCluster::LoopbackCluster(LoopbackClusterConfig config)
    : config_(config),
      keys_(config.n, config.seed),
      transports_(config.n),
      tampers_(config.n),
      processes_(config.n) {
  QSEL_REQUIRE(config_.n >= 1 && config_.n <= kMaxProcesses);

  runtime::NodeProcessConfig node_config;
  node_config.n = config_.n;
  node_config.f = config_.f;
  node_config.fd = config_.fd;
  node_config.heartbeat_period = config_.heartbeat_period;

  // Every transport binds its listen socket in its constructor, so by the
  // time the wiring pass below runs, every port is known — no races, no
  // fixed port numbers to collide on.
  std::uint64_t tamper_seed_state = config_.tamper.seed;
  for (ProcessId id = 0; id < config_.n; ++id) {
    TcpTransport::Config tcp;
    tcp.self = id;
    tcp.n = config_.n;
    transports_[id] = std::make_unique<TcpTransport>(loop_, tcp);
    TamperConfig tamper = config_.tamper;
    tamper.seed = splitmix64(tamper_seed_state);
    tampers_[id] = std::make_unique<TamperedTransport>(*transports_[id], tamper);
    processes_[id] = std::make_unique<runtime::NodeProcess>(
        *tampers_[id], keys_, node_config);
  }
  for (ProcessId from = 0; from < config_.n; ++from)
    for (ProcessId to = 0; to < config_.n; ++to)
      if (from != to)
        transports_[from]->set_peer(to, transports_[to]->listen_port());
}

LoopbackCluster::~LoopbackCluster() {
  for (auto& transport : transports_)
    if (transport) transport->shutdown();
}

runtime::NodeProcess& LoopbackCluster::process(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *processes_[id];
}

TamperedTransport& LoopbackCluster::tamper(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *tampers_[id];
}

TcpTransport& LoopbackCluster::transport(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  return *transports_[id];
}

void LoopbackCluster::attach_tracer(trace::Tracer& tracer) {
  tracer.set_clock([this] { return loop_.now_ns(); });
  for (ProcessId id = 0; id < config_.n; ++id) {
    transports_[id]->set_tracer(&tracer);
    processes_[id]->selector().set_tracer(&tracer);
  }
}

bool LoopbackCluster::start(std::uint64_t connect_timeout_ns) {
  for (auto& transport : transports_) transport->start();
  if (!run_until([this] { return fully_connected(); }, connect_timeout_ns))
    return false;
  for (auto& process : processes_) process->start();
  return true;
}

bool LoopbackCluster::fully_connected() const {
  for (ProcessId from = 0; from < config_.n; ++from) {
    if (crashed_.contains(from)) continue;
    for (ProcessId to = 0; to < config_.n; ++to) {
      if (to == from || crashed_.contains(to)) continue;
      if (!transports_[from]->connected_to(to)) return false;
    }
  }
  return true;
}

bool LoopbackCluster::run_until(const std::function<bool()>& pred,
                                std::uint64_t timeout_ns) {
  const std::uint64_t deadline = loop_.now_ns() + timeout_ns;
  while (!pred()) {
    const std::uint64_t now = loop_.now_ns();
    if (now >= deadline) return false;
    loop_.poll_once(std::min<std::uint64_t>(deadline - now, 5'000'000));
  }
  return true;
}

void LoopbackCluster::crash(ProcessId id) {
  QSEL_REQUIRE(id < config_.n);
  processes_[id]->stop();
  transports_[id]->shutdown();
  crashed_.insert(id);
}

void LoopbackCluster::partition(ProcessSet side_a) {
  for (auto& tamper : tampers_) tamper->partition(side_a);
}

void LoopbackCluster::heal() {
  for (auto& tamper : tampers_) tamper->heal();
}

ProcessSet LoopbackCluster::alive() const {
  return ProcessSet::full(config_.n) - crashed_;
}

bool LoopbackCluster::converged() const {
  const suspect::SuspicionMatrix* reference = nullptr;
  for (ProcessId id : alive()) {
    const auto& matrix = processes_[id]->selector().matrix();
    if (reference == nullptr)
      reference = &matrix;
    else if (!(matrix == *reference))
      return false;
  }
  return reference != nullptr;
}

std::optional<std::string> LoopbackCluster::agreement_error() const {
  const int want = static_cast<int>(config_.n) - config_.f;
  for (ProcessId id : alive()) {
    const ProcessSet quorum = processes_[id]->quorum();
    if (quorum.size() != want) {
      std::ostringstream os;
      os << "p" << id << " reports quorum " << quorum.to_string()
         << " of size " << quorum.size() << ", want " << want;
      return os.str();
    }
  }
  for (ProcessId a : alive()) {
    for (ProcessId b : alive()) {
      if (b <= a) continue;
      const auto& sa = processes_[a]->selector();
      const auto& sb = processes_[b]->selector();
      if (sa.epoch() != sb.epoch()) continue;
      if (sa.quorum() != sb.quorum()) {
        std::ostringstream os;
        os << "p" << a << " reports " << sa.quorum().to_string() << " but p"
           << b << " reports " << sb.quorum().to_string() << " (both in epoch "
           << sa.epoch() << ")";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

crypto::Digest LoopbackCluster::outcome_digest() const {
  std::vector<std::pair<ProcessId, ProcessSet>> quorums;
  for (ProcessId id : alive())
    quorums.emplace_back(id, processes_[id]->quorum());
  return final_quorum_digest(quorums);
}

crypto::Digest final_quorum_digest(
    std::span<const std::pair<ProcessId, ProcessSet>> quorums) {
  std::vector<trace::Event> events;
  events.reserve(quorums.size());
  for (const auto& [id, quorum] : quorums) {
    trace::Event event;
    event.type = trace::EventType::kQuorum;
    event.actor = id;
    event.arg0 = quorum.mask();
    events.push_back(std::move(event));
  }
  return trace::digest_of(events);
}

}  // namespace qsel::net
