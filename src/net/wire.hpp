// Wire format — canonical byte encoding of whole protocol messages.
//
// The simulator passes payloads as shared immutable objects; TCP passes
// bytes. This module is the bridge: every payload type that the composed
// Quorum/Follower Selection stack sends gets one wire encoding,
//
//     frame body := u8 wire-type tag || canonical field encoding,
//
// built on the same net::Encoder/Decoder the signatures already bind, so
// a message's signed bytes are recomputable from its decoded form and
// authentication survives the trip. decode_message() never throws on
// malformed input — a Byzantine or corrupted stream must surface as a
// nullptr (the transport drops the frame and closes the connection), not
// a crash. The frame itself (length prefix, HELLO handshake) is the
// transport's concern: see tcp_transport.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/payload.hpp"

namespace qsel::net {

/// Frame body tags. Values are part of the wire protocol; append only.
enum class WireType : std::uint8_t {
  kHeartbeat = 1,      // runtime::HeartbeatMessage
  kUpdate = 2,         // suspect::UpdateMessage
  kFollowers = 3,      // fs::FollowersMessage
  kDeltaUpdate = 4,    // suspect::DeltaUpdateMessage
  kRowDigest = 5,      // suspect::RowDigestMessage
  kClientRequest = 6,  // smr::ClientRequest
  kReply = 7,          // smr::ReplyMessage
  kPrepare = 8,        // xpaxos::PrepareMessage
  kCommit = 9,         // xpaxos::CommitMessage
  kViewChange = 10,    // xpaxos::ViewChangeMessage
  kNewView = 11,       // xpaxos::NewViewMessage
  kGroupFrame = 12,    // net::GroupFrame (opaque inner frame body)
};

/// Encodes `message` as a frame body. Returns nullopt for payload types
/// that have no wire representation (simulator-only test payloads).
std::optional<std::vector<std::uint8_t>> encode_message(
    const sim::Payload& message);

/// Decodes a frame body; `n` bounds process ids (row widths etc. are
/// checked against it). Returns nullptr on any malformed input: unknown
/// tag, truncated fields, trailing garbage, out-of-range ids or absurd
/// vector lengths. Signature VALIDITY is not checked here — that stays
/// with the receiving process, which knows the key registry.
sim::PayloadPtr decode_message(std::span<const std::uint8_t> body,
                               ProcessId n);

}  // namespace qsel::net
