#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/random.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "crypto/hmac.hpp"
#include "net/codec.hpp"
#include "net/wire.hpp"
#include "trace/tracer.hpp"

namespace qsel::net {

namespace {

constexpr std::uint8_t kHelloTag = 0;
// Handshake control tags live above 0xEF; wire.hpp message tags stay
// small, so the ranges can never collide.
constexpr std::uint8_t kChallengeTag = 0xF0;
constexpr std::uint8_t kAuthTag = 0xF1;

// Domain-separation prefixes for the shared cluster key (header comment).
constexpr std::uint8_t kSessionKeyDomain = 0x01;
constexpr std::uint8_t kAuthProofDomain = 0x02;
constexpr std::uint8_t kFrameKeyDomain = 0x03;
// Acceptor's proof inside CHALLENGE; distinct from kAuthProofDomain so a
// reflected CHALLENGE proof can never pass as an AUTH proof.
constexpr std::uint8_t kChallengeProofDomain = 0x04;

constexpr std::size_t kChallengeFrameBytes = 1 + 8 + 32;  // tag|nonce|proof

// Truncated per-frame MAC length. 128 bits: forging still needs 2^64 HMAC
// evaluations online, while halving the per-heartbeat overhead.
constexpr std::size_t kMacBytes = 16;

// Per-process jitter stream: same auth_seed, distinct processes.
std::uint64_t splitmix_mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

std::uint64_t load_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// Handshake nonces come from the OS entropy pool, never the deterministic
// seed: a restarted process reusing a seeded PRNG would replay its nonce
// sequence, repeating session keys across boots and letting a recorded
// handshake impersonate a peer. Jitter stays seeded (it only shapes
// timing); nonces must be unrepeatable.
std::uint64_t os_nonce64() {
  std::uint8_t buf[8];
  std::size_t got = 0;
  while (got < sizeof(buf)) {
    const ssize_t n = ::getrandom(buf + got, sizeof(buf) - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("TcpTransport: getrandom failed: " +
                               std::string(std::strerror(errno)));
    }
    got += static_cast<std::size_t>(n);
  }
  return load_u64_le(buf);
}

crypto::Digest keyed_tag(const crypto::Digest& key, std::uint8_t domain) {
  return crypto::hmac_sha256(key.bytes, std::span(&domain, 1));
}

// Constant-time comparison: a timing oracle on MAC bytes would let an
// attacker forge one byte at a time.
bool mac_equal(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

// Frames gathered into one writev. 64 covers a full heartbeat+gossip
// round for every supported n; beyond it the flush loop simply issues
// another writev.
constexpr std::size_t kMaxIov = 64;

// Recycled frame buffers kept per transport; enough for a burst flush
// without ever holding more than ~a round's worth of idle memory.
constexpr std::size_t kFramePoolMax = 128;

// recv() granularity when draining a readable socket into inbuf.
constexpr std::size_t kReadChunk = 64 * 1024;

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> body) {
  const auto len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.insert(out.end(), body.begin(), body.end());
}

int make_nonblocking_socket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

// Builds a socket address from a numeric IPv4 string; false on a host
// that inet_pton rejects (the transport never resolves names).
bool make_address(const std::string& host, std::uint16_t port,
                  sockaddr_in* addr) {
  *addr = sockaddr_in{};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(EventLoop& loop, Config config)
    : loop_(loop),
      config_(config),
      rng_(splitmix_mix(config.auth_seed, config.self)),
      peer_ports_(config.n, 0),
      peer_hosts_(config.n, "127.0.0.1"),
      out_(config.n, nullptr),
      reconnect_attempts_(config.n, 0),
      reconnect_timers_(config.n) {
  QSEL_REQUIRE(config_.n >= 1 && config_.self < config_.n);
  QSEL_REQUIRE(config_.max_frame_bytes >= 4 + kMacBytes);
  if (auth_enabled())
    quarantine_ = std::make_unique<QuarantinePolicy>(
        config_.n, config_.quarantine, rng_());

  listen_fd_ = make_nonblocking_socket();
  if (listen_fd_ < 0)
    throw std::runtime_error("TcpTransport: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!make_address(config_.bind_host, config_.listen_port, &addr)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: bad bind_host: " +
                             config_.bind_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: bind/listen failed: " + what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: getsockname failed: " + what);
  }
  listen_port_ = ntohs(bound.sin_port);

  loop_.watch(listen_fd_, [this](EventLoop::Ready ready) {
    if (ready.readable || ready.error) accept_ready();
  });
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::set_peer(ProcessId id, std::uint16_t port) {
  set_peer(id, "127.0.0.1", port);
}

void TcpTransport::set_peer(ProcessId id, const std::string& host,
                            std::uint16_t port) {
  QSEL_REQUIRE(id < config_.n && id != config_.self);
  QSEL_REQUIRE(port != 0 && !host.empty());
  peer_ports_[id] = port;
  peer_hosts_[id] = host;
}

void TcpTransport::start() {
  QSEL_REQUIRE(!started_ && !stopped_);
  started_ = true;
  for (ProcessId id = 0; id < config_.n; ++id)
    if (id != config_.self && peer_ports_[id] != 0) dial(id);
}

void TcpTransport::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& timer : reconnect_timers_) timer.cancel();
  while (!connections_.empty())
    close_connection(connections_.back().get(), /*reconnect=*/false);
  if (listen_fd_ >= 0) {
    loop_.unwatch(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool TcpTransport::connected_to(ProcessId to) const {
  QSEL_REQUIRE(to < config_.n);
  if (out_[to] == nullptr || out_[to]->connecting) return false;
  return !auth_enabled() || out_[to]->authenticated;
}

// --- outbound -------------------------------------------------------------

void TcpTransport::send(ProcessId to, sim::PayloadPtr message) {
  QSEL_REQUIRE(message != nullptr);
  QSEL_REQUIRE(to < config_.n);
  if (stopped_) return;
  if (to == config_.self) {
    deliver_local(message);
    return;
  }
  const auto body = encode_message(*message);
  // Only simulator-only test payloads lack a wire form; sending one over
  // TCP is a programming error, not a runtime condition.
  QSEL_ASSERT(body.has_value());
  send_encoded(to, *message, *body, nullptr);
}

void TcpTransport::broadcast(ProcessSet targets,
                             const sim::PayloadPtr& message) {
  QSEL_REQUIRE(message != nullptr);
  if (stopped_) return;
  // Zero-copy fan-out: encode AND frame once; every peer's outq holds the
  // same immutable length-prefixed buffer. Only the per-peer MAC tail
  // (auth mode) and tampered frames are materialized per connection.
  SharedFrame framed;
  for (ProcessId id : targets) {
    QSEL_REQUIRE(id < config_.n);
    if (id == config_.self) {
      deliver_local(message);
      continue;
    }
    if (framed == nullptr) {
      const auto body = encode_message(*message);
      QSEL_ASSERT(body.has_value());
      framed = make_framed(*body);
    }
    send_encoded(id, *message, {}, framed);
  }
}

void TcpTransport::deliver_local(const sim::PayloadPtr& message) {
  // One event-loop hop, mirroring sim::Network's self-delivery.
  loop_.timers().schedule_after(0, [this, msg = message] {
    if (stopped_ || !handler_) return;
    if (tracer_)
      tracer_->deliver(config_.self, config_.self, msg->type_tag(),
                       msg->wire_size());
    handler_(config_.self, msg);
  });
}

TcpTransport::SharedFrame TcpTransport::make_framed(
    std::span<const std::uint8_t> body) const {
  auto framed = std::make_shared<std::vector<std::uint8_t>>();
  framed->reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(
      body.size() + (auth_enabled() ? kMacBytes : 0));
  framed->push_back(static_cast<std::uint8_t>(len & 0xff));
  framed->push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  framed->push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  framed->push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  framed->insert(framed->end(), body.begin(), body.end());
  return framed;
}

void TcpTransport::send_encoded(ProcessId to, const sim::Payload& message,
                                std::span<const std::uint8_t> body,
                                const SharedFrame& framed) {
  const std::size_t body_bytes =
      framed != nullptr ? framed->size() - 4 : body.size();
  const std::size_t frame_bytes =
      4 + body_bytes + (auth_enabled() ? kMacBytes : 0);
  TamperPlan plan;
  if (tamper_) plan = tamper_(to, frame_bytes);
  const std::string tag(message.type_tag());
  const std::uint64_t wire_size = message.wire_size();
  if (plan.drop) {
    if (tracer_)
      tracer_->drop(config_.self, to, tag, trace::DropReason::kLinkDisabled,
                    wire_size);
    return;
  }
  if (plan.delay_ns > 0) {
    // Re-enqueued whole after the delay: later frames may overtake it on
    // the stream — message reordering, never stream corruption. The MAC
    // is computed at enqueue time against the connection alive *then*;
    // a reconnect in the gap means fresh nonces and a fresh frame key.
    // A shared frame stays shared across the delay (the lambda captures
    // the refcount, not a copy).
    loop_.timers().schedule_after(
        plan.delay_ns,
        [this, to,
         body = framed != nullptr
                    ? std::vector<std::uint8_t>{}
                    : std::vector<std::uint8_t>(body.begin(), body.end()),
         framed, plan, tag, wire_size] {
          if (stopped_) return;
          if (tracer_) tracer_->send(config_.self, to, tag, 0, wire_size);
          TamperPlan now = plan;
          now.delay_ns = 0;
          enqueue_dispatch(to, body, framed, now);
          if (plan.duplicate) {
            now.duplicate = false;
            now.split_at = 0;
            enqueue_dispatch(to, body, framed, now);
          }
        });
    return;
  }
  if (tracer_) tracer_->send(config_.self, to, tag, 0, wire_size);
  enqueue_dispatch(to, body, framed, plan);
  if (plan.duplicate) {
    TamperPlan dup = plan;
    dup.duplicate = false;
    dup.split_at = 0;
    enqueue_dispatch(to, body, framed, dup);
  }
}

void TcpTransport::enqueue_dispatch(ProcessId to,
                                    std::span<const std::uint8_t> body,
                                    const SharedFrame& framed,
                                    TamperPlan plan) {
  if (framed != nullptr && plan.flip_mask == 0) {
    enqueue_shared(to, framed, plan);
    return;
  }
  // Copy-on-tamper: a byte flip must corrupt this peer's stream only,
  // never the buffer its siblings share.
  if (framed != nullptr)
    body = std::span<const std::uint8_t>(framed->data() + 4,
                                         framed->size() - 4);
  enqueue_frame(to, body, plan);
}

void TcpTransport::enqueue_shared(ProcessId to, const SharedFrame& framed,
                                  TamperPlan plan) {
  Connection* conn = out_[to];
  if (conn == nullptr || (auth_enabled() && !conn->authenticated)) {
    if (tracer_)
      tracer_->drop(config_.self, to, {}, trace::DropReason::kDisconnected,
                    framed->size() - 4);
    return;
  }
  if (plan.split_at > 0)
    conn->write_cap = conn->out_total - conn->out_offset + plan.split_at;
  conn->out_total += framed->size();
  conn->outq.push_back(OutChunk{{}, framed});
  if (auth_enabled()) {
    // The shared prefix already counts the MAC; the MAC itself depends on
    // this connection's frame key, so it rides as a small owned tail.
    const std::span<const std::uint8_t> body(framed->data() + 4,
                                             framed->size() - 4);
    const crypto::Digest mac =
        crypto::hmac_sha256(conn->frame_key.bytes, body);
    std::vector<std::uint8_t> tail = acquire_buffer();
    tail.insert(tail.end(), mac.bytes.begin(), mac.bytes.begin() + kMacBytes);
    conn->out_total += tail.size();
    conn->outq.push_back(OutChunk{std::move(tail), nullptr});
  }
  ++io_stats_.frames_sent;
  ++io_stats_.frames_shared;
  schedule_flush(conn);
}

void TcpTransport::enqueue_frame(ProcessId to,
                                 std::span<const std::uint8_t> body,
                                 TamperPlan plan) {
  Connection* conn = out_[to];
  if (conn == nullptr || (auth_enabled() && !conn->authenticated)) {
    // Unreachable, or the handshake has not finished: dropped, never
    // queued (the suspicion layer's resync repairs the gap).
    if (tracer_)
      tracer_->drop(config_.self, to, {}, trace::DropReason::kDisconnected,
                    body.size());
    return;
  }
  std::vector<std::uint8_t> frame = acquire_buffer();
  frame.reserve(4 + body.size() + kMacBytes);
  const std::size_t payload_len =
      body.size() + (auth_enabled() ? kMacBytes : 0);
  const auto len = static_cast<std::uint32_t>(payload_len);
  frame.push_back(static_cast<std::uint8_t>(len & 0xff));
  frame.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  frame.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  frame.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  frame.insert(frame.end(), body.begin(), body.end());
  if (auth_enabled()) {
    const crypto::Digest mac =
        crypto::hmac_sha256(conn->frame_key.bytes, body);
    frame.insert(frame.end(), mac.bytes.begin(),
                 mac.bytes.begin() + kMacBytes);
  }
  if (plan.flip_mask != 0 && !frame.empty()) {
    // Corrupting-link fault: flips bytes already sealed under the MAC.
    frame[plan.flip_at % frame.size()] ^= plan.flip_mask;
  }
  if (plan.split_at > 0) {
    // Cap the next write syscall at split_at bytes past what is already
    // queued, so this frame's head and tail leave in separate writes.
    conn->write_cap = conn->out_total - conn->out_offset + plan.split_at;
  }
  conn->out_total += frame.size();
  conn->outq.push_back(OutChunk{std::move(frame), nullptr});
  ++io_stats_.frames_sent;
  schedule_flush(conn);
}

void TcpTransport::enqueue_raw(Connection* conn,
                               std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> frame = acquire_buffer();
  append_frame(frame, body);
  conn->out_total += frame.size();
  conn->outq.push_back(OutChunk{std::move(frame), nullptr});
  ++io_stats_.frames_sent;
  schedule_flush(conn);
}

void TcpTransport::schedule_flush(Connection* conn) {
  if (!conn->flush_pending) {
    conn->flush_pending = true;
    pending_flush_.push_back(conn);
  }
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // One deferred callback per loop round covers every connection that
  // queued bytes during it. The weak token guards against the transport
  // being destroyed before the round ends (the loop outlives us).
  loop_.defer([this, token = std::weak_ptr<char>(alive_)] {
    if (token.expired()) return;
    flush_pending_conns();
  });
}

void TcpTransport::flush_pending_conns() {
  flush_scheduled_ = false;
  // Pop before flushing: flush may close the connection, and
  // close_connection erases it from pending_flush_ only while the flag
  // is still set.
  while (!pending_flush_.empty()) {
    Connection* conn = pending_flush_.back();
    pending_flush_.pop_back();
    conn->flush_pending = false;
    flush(conn);
  }
}

void TcpTransport::flush(Connection* conn) {
  if (conn->connecting) return;
  while (conn->out_total > conn->out_offset) {
    // Gather queued frames into one vectored write, honoring a pending
    // split tamper by truncating the batch at the cap.
    iovec iov[kMaxIov];
    std::size_t iov_count = 0;
    std::size_t batched = 0;
    std::size_t budget = conn->out_total - conn->out_offset;
    bool capped = false;
    if (conn->write_cap > 0 && conn->write_cap < budget) {
      budget = conn->write_cap;
      capped = true;
    }
    std::size_t skip = conn->out_offset;
    for (auto& chunk : conn->outq) {
      if (iov_count == kMaxIov || batched == budget) break;
      if (skip >= chunk.size()) {
        skip -= chunk.size();
        continue;
      }
      const std::size_t take =
          std::min(chunk.size() - skip, budget - batched);
      // The iovec is read-only (sendmsg); casting away const from a
      // shared chunk never writes through it.
      iov[iov_count].iov_base = const_cast<std::uint8_t*>(chunk.data()) + skip;
      iov[iov_count].iov_len = take;
      ++iov_count;
      batched += take;
      skip = 0;
    }
    // sendmsg rather than writev purely for MSG_NOSIGNAL: a peer that
    // closed mid-flush must surface as EPIPE, not kill the process.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t sent = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    ++io_stats_.writev_calls;
    if (sent > 0) {
      io_stats_.bytes_sent += static_cast<std::uint64_t>(sent);
      conn->out_offset += static_cast<std::size_t>(sent);
      while (!conn->outq.empty() &&
             conn->out_offset >= conn->outq.front().size()) {
        OutChunk& front = conn->outq.front();
        conn->out_offset -= front.size();
        conn->out_total -= front.size();
        if (front.shared == nullptr) release_buffer(std::move(front.owned));
        conn->outq.pop_front();
      }
      if (conn->write_cap > 0) {
        conn->write_cap -= std::min(conn->write_cap,
                                    static_cast<std::size_t>(sent));
        if (capped && conn->write_cap == 0) break;  // forced split point
      }
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(conn, conn->outgoing);
    return;
  }
  update_interest(conn);
}

std::vector<std::uint8_t> TcpTransport::acquire_buffer() {
  if (frame_pool_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  buf.clear();
  return buf;
}

void TcpTransport::release_buffer(std::vector<std::uint8_t> buffer) {
  if (frame_pool_.size() < kFramePoolMax)
    frame_pool_.push_back(std::move(buffer));
}

void TcpTransport::update_interest(Connection* conn) {
  const bool want_write =
      conn->connecting || conn->out_total > conn->out_offset;
  loop_.set_interest(conn->fd, /*read=*/true, want_write);
}

// --- connection lifecycle -------------------------------------------------

void TcpTransport::dial(ProcessId to) {
  QSEL_REQUIRE(peer_ports_[to] != 0);
  if (stopped_ || out_[to] != nullptr) return;
  const int fd = make_nonblocking_socket();
  if (fd < 0) {
    schedule_reconnect(to);
    return;
  }
  sockaddr_in addr{};
  if (!make_address(peer_hosts_[to], peer_ports_[to], &addr)) {
    ::close(fd);
    schedule_reconnect(to);
    return;
  }
  bool connecting = false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno == EINPROGRESS) {
      connecting = true;
    } else {
      ::close(fd);
      schedule_reconnect(to);
      return;
    }
  }

  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->peer = to;
  conn->outgoing = true;
  conn->connecting = connecting;
  Connection* raw = conn.get();
  connections_.push_back(std::move(conn));
  out_[to] = raw;
  // HELLO goes first on the stream, queued before connect even completes
  // (flush waits for writability). It bypasses the tamper hook: a dropped
  // HELLO would poison the whole connection, which models a fault the
  // schedule never asked for. In auth mode it opens the handshake with a
  // fresh client nonce; the connection only carries messages once the
  // CHALLENGE comes back and AUTH goes out.
  Encoder hello;
  hello.u8(kHelloTag);
  hello.u32(config_.self);
  if (auth_enabled()) {
    raw->client_nonce = os_nonce64();
    hello.u64(raw->client_nonce);
  }
  enqueue_raw(raw, hello.view());
  loop_.watch(fd, [this, raw](EventLoop::Ready ready) {
    connection_ready(raw, ready);
  });
  update_interest(raw);
  if (!connecting) {
    reconnect_attempts_[to] = 0;
    flush(raw);
  }
}

void TcpTransport::schedule_reconnect(ProcessId to) {
  if (stopped_) return;
  const std::uint32_t attempt = reconnect_attempts_[to];
  if (reconnect_attempts_[to] < config_.reconnect.max_exponent)
    ++reconnect_attempts_[to];
  const SimDuration delay = backoff_delay(config_.reconnect, attempt, rng_);
  reconnect_timers_[to] = loop_.timers().schedule_timer(delay, [this, to] {
    if (!stopped_ && out_[to] == nullptr) dial(to);
  });
}

void TcpTransport::accept_ready() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error; poll will re-arm
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    loop_.watch(fd, [this, raw](EventLoop::Ready ready) {
      connection_ready(raw, ready);
    });
  }
}

void TcpTransport::connection_ready(Connection* conn,
                                    EventLoop::Ready ready) {
  if (ready.error) {
    close_connection(conn, conn->outgoing);
    return;
  }
  if (ready.writable) {
    if (conn->connecting) {
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        close_connection(conn, conn->outgoing);
        return;
      }
      conn->connecting = false;
      reconnect_attempts_[conn->peer] = 0;
    }
    const std::size_t before = connections_.size();
    flush(conn);
    if (connections_.size() != before) return;  // flush closed it
  }
  if (ready.readable) read_from(conn);
}

void TcpTransport::close_connection(Connection* conn, bool reconnect) {
  const ProcessId peer = conn->peer;
  const bool outgoing = conn->outgoing;
  loop_.unwatch(conn->fd);
  ::close(conn->fd);
  if (conn->flush_pending) std::erase(pending_flush_, conn);
  while (!conn->outq.empty()) {
    if (conn->outq.front().shared == nullptr)
      release_buffer(std::move(conn->outq.front().owned));
    conn->outq.pop_front();
  }
  if (outgoing && peer != kNoProcess && out_[peer] == conn)
    out_[peer] = nullptr;
  std::erase_if(connections_,
                [conn](const auto& owned) { return owned.get() == conn; });
  if (reconnect && outgoing && peer != kNoProcess) schedule_reconnect(peer);
}

// --- inbound --------------------------------------------------------------

void TcpTransport::read_from(Connection* conn) {
  bool eof = false;
  while (true) {
    // recv straight into inbuf's tail: one resize instead of a stack
    // bounce-buffer copy per chunk; capacity stays warm across wakeups.
    const std::size_t used = conn->inbuf.size();
    conn->inbuf.resize(used + kReadChunk);
    const ssize_t got =
        ::recv(conn->fd, conn->inbuf.data() + used, kReadChunk, 0);
    if (got > 0) {
      conn->inbuf.resize(used + static_cast<std::size_t>(got));
      io_stats_.bytes_received += static_cast<std::uint64_t>(got);
      continue;
    }
    conn->inbuf.resize(used);
    if (got == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(conn, conn->outgoing);
    return;
  }
  if (!parse_frames(conn)) return;  // closed on a framing error
  if (eof) close_connection(conn, conn->outgoing);
}

bool TcpTransport::parse_frames(Connection* conn) {
  std::size_t pos = 0;
  while (conn->inbuf.size() - pos >= 4) {
    const std::uint8_t* p = conn->inbuf.data() + pos;
    const std::uint32_t len =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > config_.max_frame_bytes) {
      QSEL_LOG(kWarn, "net") << "p" << config_.self
                             << " closing connection: oversized frame ("
                             << len << " bytes)";
      if (tracer_)
        tracer_->drop(conn->peer, config_.self, {},
                      trace::DropReason::kMalformed, len);
      // Strikes only attach to identities proven by a completed AUTH;
      // before that, conn->peer is merely claimed.
      if (!conn->outgoing && conn->authenticated) note_offense(conn->peer);
      close_connection(conn, conn->outgoing);
      return false;
    }
    if (conn->inbuf.size() - pos - 4 < len) break;  // incomplete frame
    const std::span<const std::uint8_t> body(conn->inbuf.data() + pos + 4,
                                             len);
    if (!handle_frame(conn, body)) {
      close_connection(conn, conn->outgoing);
      return false;
    }
    pos += 4 + len;
  }
  if (pos > 0)
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + static_cast<std::ptrdiff_t>(pos));
  if (conn->inbuf.size() > config_.max_frame_bytes + 4) {
    // A frame header promised more than the cap admits in one piece; the
    // oversize check above already caught that, so this is unreachable
    // unless inbuf grows without a parsable header — treat as garbage.
    close_connection(conn, conn->outgoing);
    return false;
  }
  return true;
}

bool TcpTransport::handle_frame(Connection* conn,
                                std::span<const std::uint8_t> body) {
  ++io_stats_.frames_received;
  if (conn->peer == kNoProcess) return handle_hello(conn, body);
  if (conn->outgoing) {
    // The dial side reads exactly one frame ever: the auth CHALLENGE.
    if (!auth_enabled() || conn->authenticated) return false;
    return handle_challenge(conn, body);
  }
  if (auth_enabled() && conn->awaiting_auth) return handle_auth(conn, body);

  std::span<const std::uint8_t> payload = body;
  if (auth_enabled()) {
    const bool long_enough = body.size() >= kMacBytes + 1;
    const crypto::Digest expect = crypto::hmac_sha256(
        conn->frame_key.bytes,
        long_enough ? body.first(body.size() - kMacBytes) : body);
    if (!long_enough ||
        !mac_equal(body.last(kMacBytes),
                   std::span(expect.bytes.data(), kMacBytes))) {
      QSEL_LOG(kWarn, "net") << "p" << config_.self
                             << " rejecting frame from p" << conn->peer
                             << ": bad MAC (" << body.size() << " bytes)";
      if (tracer_)
        tracer_->drop(conn->peer, config_.self, {},
                      trace::DropReason::kMalformed, body.size());
      note_offense(conn->peer);
      return false;
    }
    payload = body.first(body.size() - kMacBytes);
  }
  const sim::PayloadPtr message = decode_message(payload, config_.n);
  if (message == nullptr) {
    QSEL_LOG(kWarn, "net") << "p" << config_.self
                           << " closing connection from p" << conn->peer
                           << ": malformed frame (" << body.size()
                           << " bytes)";
    if (tracer_)
      tracer_->drop(conn->peer, config_.self, {},
                    trace::DropReason::kMalformed, body.size());
    note_offense(conn->peer);
    return false;
  }
  if (quarantine_) quarantine_->good_frame(conn->peer);
  if (tracer_)
    tracer_->deliver(config_.self, conn->peer, message->type_tag(),
                     message->wire_size());
  if (handler_) handler_(conn->peer, message);
  return true;
}

bool TcpTransport::handle_hello(Connection* conn,
                                std::span<const std::uint8_t> body) {
  // First frame of an accepted connection must be HELLO.
  Decoder dec(body);
  if (dec.u8() != kHelloTag) return false;
  const ProcessId claimed = dec.process_id();
  if (claimed >= config_.n || claimed == config_.self) return false;
  if (!auth_enabled()) {
    if (!dec.done()) return false;
    conn->peer = claimed;
    return true;
  }
  const std::uint64_t client_nonce = dec.u64();
  if (!dec.done()) return false;  // pre-id: anonymous garbage, no strike
  if (quarantine_ && !quarantine_->admitted(claimed, loop_.timers().now())) {
    // Barred peers get closed, not re-struck: the strike already priced
    // the offense, and re-striking every retry would never release them.
    QSEL_LOG(kInfo, "net") << "p" << config_.self << " refusing p" << claimed
                           << ": quarantined";
    return false;
  }
  conn->peer = claimed;
  conn->client_nonce = client_nonce;
  conn->server_nonce = os_nonce64();
  conn->session_key = derive_session_key(claimed, config_.self, client_nonce,
                                         conn->server_nonce);
  conn->frame_key = keyed_tag(conn->session_key, kFrameKeyDomain);
  conn->awaiting_auth = true;
  // CHALLENGE carries the acceptor's own proof of key possession over the
  // freshly derived session key (both nonces, both identities), so the
  // dialer authenticates us before it trusts the channel — without it an
  // impostor listener could hold connected_to() true while black-holing
  // every frame.
  const crypto::Digest server_proof =
      keyed_tag(conn->session_key, kChallengeProofDomain);
  Encoder challenge;
  challenge.u8(kChallengeTag);
  challenge.u64(conn->server_nonce);
  challenge.digest(server_proof);
  QSEL_ASSERT(challenge.size() == kChallengeFrameBytes);
  // No direct flush from inside the parse loop (flush may close the
  // connection out from under parse_frames); the deferred end-of-round
  // flush runs after parsing finishes, which is exactly the safe point.
  enqueue_raw(conn, challenge.view());
  return true;
}

bool TcpTransport::handle_challenge(Connection* conn,
                                    std::span<const std::uint8_t> body) {
  // A malformed or unproven CHALLENGE is not attributed to the peer: the
  // listener at the peer's address has not proven it holds the cluster
  // key, and striking the configured identity would let an impostor
  // listener quarantine the honest peer. Close and let backoff retry.
  if (body.size() != kChallengeFrameBytes || body[0] != kChallengeTag)
    return false;
  conn->server_nonce = load_u64_le(body.data() + 1);
  conn->session_key = derive_session_key(config_.self, conn->peer,
                                         conn->client_nonce,
                                         conn->server_nonce);
  conn->frame_key = keyed_tag(conn->session_key, kFrameKeyDomain);
  const crypto::Digest server_proof =
      keyed_tag(conn->session_key, kChallengeProofDomain);
  if (!mac_equal(body.subspan(1 + 8), server_proof.bytes)) {
    QSEL_LOG(kWarn, "net") << "p" << config_.self
                           << " rejecting CHALLENGE from p" << conn->peer
                           << ": bad acceptor proof";
    return false;
  }
  const crypto::Digest proof = keyed_tag(conn->session_key, kAuthProofDomain);
  std::vector<std::uint8_t> auth;
  auth.reserve(33);
  auth.push_back(kAuthTag);
  auth.insert(auth.end(), proof.bytes.begin(), proof.bytes.end());
  enqueue_raw(conn, auth);
  conn->authenticated = true;
  reconnect_attempts_[conn->peer] = 0;
  return true;
}

bool TcpTransport::handle_auth(Connection* conn,
                               std::span<const std::uint8_t> body) {
  const crypto::Digest proof = keyed_tag(conn->session_key, kAuthProofDomain);
  if (body.size() != 33 || body[0] != kAuthTag ||
      !mac_equal(body.subspan(1), proof.bytes)) {
    QSEL_LOG(kWarn, "net") << "p" << config_.self
                           << " rejecting handshake claiming p" << conn->peer
                           << ": bad AUTH proof";
    // No strike: the claimed identity was never proven, so filing an
    // offense here would let a keyless dialer quarantine any honest peer
    // just by claiming its id. Treated like pre-id garbage — closed only.
    return false;
  }
  conn->awaiting_auth = false;
  conn->authenticated = true;
  return true;
}

crypto::Digest TcpTransport::derive_session_key(
    ProcessId dialer, ProcessId acceptor, std::uint64_t client_nonce,
    std::uint64_t server_nonce) const {
  Encoder enc;
  enc.u8(kSessionKeyDomain);
  enc.u32(dialer);
  enc.u32(acceptor);
  enc.u64(client_nonce);
  enc.u64(server_nonce);
  return crypto::hmac_sha256(config_.auth_key, enc.view());
}

void TcpTransport::note_offense(ProcessId peer) {
  if (quarantine_ && peer != kNoProcess)
    quarantine_->offense(peer, loop_.timers().now());
}

}  // namespace qsel::net
