// LoopbackCluster — n NodeProcesses over real TCP on 127.0.0.1.
//
// The TCP twin of runtime::QuorumCluster: one EventLoop hosts n
// TcpTransports (ephemeral ports, wired pairwise before any node starts),
// each wrapped in a TamperedTransport for byte-level fault injection, each
// driving a full runtime::NodeProcess stack. Everything runs on the one
// thread that pumps the loop, so a whole multi-node integration test is a
// single sequential program — no races to sanitize away, and cluster
// state can be inspected between poll rounds.
//
// Faults available to tests: crash(id) (stops the node and closes its
// sockets — peers see resets and reconnect-with-backoff against a dead
// port), partition(side)/heal() (frame drops crossing the cut, applied to
// every node's tamper wrapper), and the TamperConfig rates (random drop /
// delay / duplicate / split on every frame).
//
// Convergence on real time is awaited, not asserted at a fixed instant:
// run_until(pred, timeout) pumps the loop until the predicate holds.
// converged() — all alive matrices equal — is the natural predicate, since
// identical matrices force same-epoch processes to identical quorums.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "fd/failure_detector.hpp"
#include "net/cluster_config.hpp"
#include "net/event_loop.hpp"
#include "net/tamper.hpp"
#include "net/tcp_transport.hpp"
#include "runtime/node_process.hpp"
#include "store/node_store.hpp"

namespace qsel::net {

struct LoopbackClusterConfig {
  ProcessId n = 4;
  int f = 1;
  std::uint64_t seed = 1;
  /// Real-time pacing: heartbeats every 10ms with a 40ms initial timeout
  /// ride out scheduler jitter that virtual time never sees.
  SimDuration heartbeat_period = 10'000'000;
  fd::FailureDetectorConfig fd{/*initial_timeout=*/40'000'000,
                               /*max_timeout=*/1'000'000'000,
                               /*adaptive=*/true};
  TamperConfig tamper;  // rates default to 0 = clean network
  /// Shared channel-auth key for every transport (tcp_transport.hpp);
  /// empty = legacy unauthenticated channels.
  std::vector<std::uint8_t> auth_key;
  /// Root for per-node FileNodeStores (<root>/node<i>). Empty = in-memory
  /// stores: restart() still recovers, but state dies with the cluster.
  std::string store_root;
  BackoffConfig reconnect{};
  /// Suspicion dissemination wire format (runtime/node_process.hpp).
  suspect::GossipMode gossip = suspect::GossipMode::kDelta;
};

/// Maps a deployable ClusterConfig onto the loopback harness. Host:port
/// assignments are ignored — the harness always binds ephemeral loopback
/// ports — but n, f, seed, the auth key, the store root, and every timing
/// constant carry over, so a config file exercised here behaves
/// identically (modulo addresses) when handed to real qsel_node processes.
LoopbackClusterConfig loopback_config_from(const ClusterConfig& cluster);

class LoopbackCluster {
 public:
  explicit LoopbackCluster(LoopbackClusterConfig config);
  ~LoopbackCluster();

  EventLoop& loop() { return loop_; }
  const LoopbackClusterConfig& config() const { return config_; }
  runtime::NodeProcess& process(ProcessId id);
  TamperedTransport& tamper(ProcessId id);
  TcpTransport& transport(ProcessId id);

  /// Wires `tracer` (which must outlive the cluster) into the loop clock,
  /// every transport's send/deliver/drop stream and every node's suspicion
  /// plane. Call before start().
  void attach_tracer(trace::Tracer& tracer);

  /// Starts dialing, waits (pumping the loop) until the full connection
  /// mesh is up, then starts heartbeats everywhere. Returns false when the
  /// mesh did not come up within `connect_timeout_ns`.
  bool start(std::uint64_t connect_timeout_ns = 2'000'000'000);

  /// Every ordered pair of non-crashed nodes has an established outgoing
  /// connection.
  bool fully_connected() const;

  /// Pumps the event loop until `pred` holds; false on timeout.
  bool run_until(const std::function<bool()>& pred,
                 std::uint64_t timeout_ns);
  void run_for(std::uint64_t duration_ns) { loop_.run_for(duration_ns); }

  /// Stops the node's heartbeats and closes all its sockets; peers notice
  /// only through silence, as with a real process kill.
  void crash(ProcessId id);

  /// Restart-with-recovered-state: rebuilds the crashed node's transport
  /// on its original port and a fresh NodeProcess over the node's
  /// NodeStore, so it rejoins holding its persisted epoch, suspicion row
  /// and FD timeouts. Peers' reconnect loops find the revived listener on
  /// their own. The caller still pumps the loop to convergence.
  void restart(ProcessId id);

  store::NodeStore& store(ProcessId id);

  /// Applies partition/heal to every node's tamper wrapper (sender-side
  /// frame drops crossing the cut — equivalent to cutting the links).
  void partition(ProcessSet side_a);
  void heal();

  ProcessSet alive() const;

  /// All alive nodes hold identical suspicion matrices (and there is at
  /// least one). Identical matrices make same-epoch quorums identical, so
  /// this is the strongest steady-state the protocol owes us.
  bool converged() const;

  /// Mirrors the fuzzer's agreement oracle: every alive node's quorum has
  /// size n - f, and any two alive nodes at the same epoch report the same
  /// quorum. Returns a description of the first violation, nullopt if
  /// consistent.
  std::optional<std::string> agreement_error() const;

  /// Digest over every alive node's final quorum (see final_quorum_digest)
  /// — the value parity tests compare across substrates.
  crypto::Digest outcome_digest() const;

 private:
  /// Builds transport + tamper wrapper + node for one id, reusing the
  /// node's store; `port` is 0 on first boot, the original port on
  /// restart.
  void build_node(ProcessId id, std::uint16_t port, std::uint64_t tamper_seed);

  LoopbackClusterConfig config_;
  EventLoop loop_;  // declared first: destroyed last, after its clients
  crypto::KeyRegistry keys_;
  std::vector<std::unique_ptr<store::NodeStore>> stores_;
  std::vector<std::unique_ptr<TcpTransport>> transports_;
  std::vector<std::unique_ptr<TamperedTransport>> tampers_;
  std::vector<std::unique_ptr<runtime::NodeProcess>> processes_;
  std::vector<std::uint16_t> ports_;  // original listen ports, for restart
  std::uint64_t tamper_seed_state_;
  trace::Tracer* tracer_ = nullptr;
  std::optional<ProcessSet> partition_;
  ProcessSet crashed_;
};

/// Chained trace digest over synthetic <QUORUM> events, one per (id,
/// quorum) pair in the given order. Epochs are deliberately excluded:
/// epoch advancement is path-dependent (scenario/oracle.cpp explains why),
/// so identical protocol *outcomes* on different substrates may sit at
/// different epochs. Both parity sides feed their final per-process
/// quorums through this one function and compare digests.
crypto::Digest final_quorum_digest(
    std::span<const std::pair<ProcessId, ProcessSet>> quorums);

}  // namespace qsel::net
