// Canonical byte encoding for protocol messages.
//
// Signed messages (UPDATE, FOLLOWERS, PREPARE, COMMIT) authenticate their
// canonical encoding with HMAC signatures (crypto/signer.hpp); the encoding
// is little-endian, length-prefixed and unambiguous, so a signature binds
// exactly the message contents. The Decoder never throws on malformed
// input — Byzantine senders may produce garbage, which must surface as a
// verification failure, not a crash; call ok() after reading.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"

namespace qsel::net {

class Encoder {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void process_id(ProcessId v) { u32(v); }
  void process_set(ProcessSet s) { u64(s.mask()); }
  void digest(const crypto::Digest& d);
  void signature(const crypto::Signature& s);
  /// Length-prefixed byte string.
  void bytes(std::span<const std::uint8_t> data);
  void str(const std::string& s);
  /// Length-prefixed vector of u64.
  void u64_vector(std::span<const std::uint64_t> values);

  std::size_t size() const { return bytes_.size(); }
  std::span<const std::uint8_t> view() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  ProcessId process_id() { return u32(); }
  ProcessSet process_set() { return ProcessSet(u64()); }
  crypto::Digest digest();
  crypto::Signature signature();
  std::vector<std::uint8_t> bytes();
  std::string str();
  std::vector<std::uint64_t> u64_vector();

  /// True when no read overran the buffer so far.
  bool ok() const { return ok_; }
  /// True when ok() and the whole buffer was consumed.
  bool done() const { return ok_ && offset_ == data_.size(); }

 private:
  bool take(std::size_t count, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace qsel::net
