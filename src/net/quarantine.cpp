#include "net/quarantine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::net {

QuarantinePolicy::QuarantinePolicy(ProcessId n, QuarantineConfig config,
                                   std::uint64_t seed)
    : config_(config),
      rng_(seed),
      strikes_(n, 0),
      good_streak_(n, 0),
      release_at_(n, 0) {}

void QuarantinePolicy::offense(ProcessId peer, std::uint64_t now_ns) {
  QSEL_REQUIRE(peer < strikes_.size());
  ++offenses_total_;
  good_streak_[peer] = 0;
  const std::uint32_t attempt =
      std::min(strikes_[peer], config_.strike_budget);
  if (strikes_[peer] <= config_.strike_budget) ++strikes_[peer];
  const SimDuration bar = backoff_delay(config_.backoff, attempt, rng_);
  release_at_[peer] = std::max(release_at_[peer], now_ns + bar);
  QSEL_LOG(kWarn, "net") << "quarantining p" << peer << " for "
                         << static_cast<double>(bar) / 1e6 << "ms (strike "
                         << strikes_[peer] << ")";
}

void QuarantinePolicy::good_frame(ProcessId peer) {
  QSEL_REQUIRE(peer < strikes_.size());
  if (strikes_[peer] == 0) return;
  if (++good_streak_[peer] < config_.redeem_after) return;
  QSEL_LOG(kInfo, "net") << "p" << peer << " redeemed after "
                         << good_streak_[peer] << " clean frames";
  strikes_[peer] = 0;
  good_streak_[peer] = 0;
}

}  // namespace qsel::net
