// Deterministic pseudo-random number generation.
//
// Everything stochastic in the repository (network latency jitter, workload
// generation, randomized adversaries, property-test sweeps) draws from Rng
// seeded explicitly, so every simulation run and benchmark is reproducible
// bit-for-bit. The generator is xoshiro256** seeded via splitmix64,
// following the reference construction of Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace qsel {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    QSEL_REQUIRE(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child generator (for per-process streams).
  Rng fork() { return Rng((*this)() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qsel
