#include "common/combinatorics.hpp"

#include <limits>

#include "common/assert.hpp"

namespace qsel {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t factor = n - k + i;
    // result = result * factor / i, watching for overflow.
    if (result > std::numeric_limits<std::uint64_t>::max() / factor)
      return std::numeric_limits<std::uint64_t>::max();
    result = result * factor / i;
  }
  return result;
}

ProcessSet first_subset(ProcessId n, int k) {
  QSEL_REQUIRE(k >= 0 && static_cast<ProcessId>(k) <= n);
  return ProcessSet::full(static_cast<ProcessId>(k));
}

std::optional<ProcessSet> next_subset(ProcessSet s, ProcessId n) {
  QSEL_REQUIRE(n <= kMaxProcesses);
  const std::uint64_t v = s.mask();
  QSEL_REQUIRE(v != 0);
  // Gosper's hack: next integer with the same popcount.
  const std::uint64_t c = v & (~v + 1);
  const std::uint64_t r = v + c;
  if (r == 0) return std::nullopt;  // would overflow 64 bits
  const std::uint64_t next = (((r ^ v) >> 2) / c) | r;
  if (!ProcessSet(next).is_subset_of(ProcessSet::full(n))) return std::nullopt;
  return ProcessSet(next);
}

std::uint64_t subset_rank(ProcessSet s, ProcessId n) {
  // Rank in increasing-bitmask order equals the number of same-size subsets
  // with a strictly smaller mask. Computed combinatorially: walk ids from
  // high to low, counting subsets that agree on the prefix and omit the
  // current member.
  const int k = s.size();
  std::uint64_t rank = 0;
  int remaining = k;
  for (ProcessId bit = n; bit-- > 0 && remaining > 0;) {
    if (s.contains(bit)) {
      // Subsets smaller in mask order put all `remaining` members below
      // `bit`... they must match the prefix above `bit` and not contain
      // `bit`, choosing all `remaining` members from {0..bit-1}.
      rank += binomial(bit, static_cast<std::uint64_t>(remaining));
      --remaining;
    }
  }
  return rank;
}

ProcessSet subset_unrank(std::uint64_t rank, ProcessId n, int k) {
  QSEL_REQUIRE(k >= 0 && static_cast<ProcessId>(k) <= n);
  QSEL_REQUIRE(rank < binomial(n, static_cast<std::uint64_t>(k)));
  // Combinatorial number system, descending: pick the largest member c with
  // C(c, k) <= rank, subtract, recurse with k-1.
  ProcessSet result;
  int remaining = k;
  for (ProcessId bit = n; bit-- > 0 && remaining > 0;) {
    const std::uint64_t count =
        binomial(bit, static_cast<std::uint64_t>(remaining));
    if (count <= rank) {
      result.insert(bit);
      rank -= count;
      --remaining;
    }
  }
  QSEL_ASSERT(remaining == 0);
  return result;
}

}  // namespace qsel
