// Minimal leveled logger.
//
// Logging is off by default (benchmarks and property sweeps run millions of
// simulated events); tests and examples enable it per-run. Output goes to
// stderr. The logger is intentionally global: the simulator is
// single-threaded by design, so no synchronization is needed.
#pragma once

#include <sstream>
#include <string_view>

namespace qsel {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
LogLevel& threshold();
void emit(LogLevel level, std::string_view component, std::string_view text);
}  // namespace log_detail

/// Sets the global log threshold; returns the previous value.
LogLevel set_log_level(LogLevel level);

inline bool log_enabled(LogLevel level) {
  return level >= log_detail::threshold();
}

/// Usage: QSEL_LOG(kDebug, "fd") << "suspecting " << id;
#define QSEL_LOG(level, component)                                        \
  for (bool qsel_log_once =                                               \
           ::qsel::log_enabled(::qsel::LogLevel::level);                  \
       qsel_log_once; qsel_log_once = false)                              \
  ::qsel::LogLine(::qsel::LogLevel::level, component)

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_detail::emit(level_, component_, os_.str()); }

  template <class T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};

}  // namespace qsel
