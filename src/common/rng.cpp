#include "common/rng.hpp"

namespace qsel {

std::uint64_t Rng::below(std::uint64_t bound) {
  QSEL_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace qsel
