#include "common/logging.hpp"

#include <iostream>

namespace qsel {
namespace log_detail {

LogLevel& threshold() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

void emit(LogLevel level, std::string_view component, std::string_view text) {
  static constexpr std::string_view kNames[] = {"TRACE", "DEBUG", "INFO",
                                                "WARN", "ERROR", "OFF"};
  std::cerr << '[' << kNames[static_cast<int>(level)] << "] [" << component
            << "] " << text << '\n';
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  LogLevel previous = log_detail::threshold();
  log_detail::threshold() = level;
  return previous;
}

}  // namespace qsel
