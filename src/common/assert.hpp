// Assertion macros.
//
// QSEL_ASSERT guards internal invariants (logic errors; throws
// std::logic_error so tests can observe violations deterministically).
// QSEL_REQUIRE guards public-API preconditions (throws
// std::invalid_argument).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qsel::detail {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'p') throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace qsel::detail

#define QSEL_ASSERT(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::qsel::detail::assert_fail("invariant", #expr, __FILE__, __LINE__, \
                                  "");                                    \
  } while (false)

#define QSEL_ASSERT_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr))                                                          \
      ::qsel::detail::assert_fail("invariant", #expr, __FILE__, __LINE__, \
                                  (msg));                                 \
  } while (false)

#define QSEL_REQUIRE(expr)                                                     \
  do {                                                                         \
    if (!(expr))                                                               \
      ::qsel::detail::assert_fail("precondition", #expr, __FILE__, __LINE__,   \
                                  "");                                         \
  } while (false)

#define QSEL_REQUIRE_MSG(expr, msg)                                            \
  do {                                                                         \
    if (!(expr))                                                               \
      ::qsel::detail::assert_fail("precondition", #expr, __FILE__, __LINE__,   \
                                  (msg));                                      \
  } while (false)
