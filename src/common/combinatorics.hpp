// Combinatorial helpers.
//
// Used by the bounds in the paper (binomial C(f+2,2) in Theorems 3/4) and
// by the XPaxos baseline, which enumerates all C(n,f) quorums in a fixed
// order (Section V-B).
#pragma once

#include <cstdint>
#include <optional>

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace qsel {

/// Binomial coefficient C(n, k); saturates at UINT64_MAX on overflow.
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/// First k-subset of {0..n-1} in colexicographic-by-mask order, which is
/// the lowest mask: {0, 1, ..., k-1}.
ProcessSet first_subset(ProcessId n, int k);

/// Successor of `s` among k-subsets of {0..n-1} ordered by increasing
/// bitmask (Gosper's hack); nullopt after the last subset.
std::optional<ProcessSet> next_subset(ProcessSet s, ProcessId n);

/// Rank of a k-subset in the bitmask order above (0-based).
std::uint64_t subset_rank(ProcessSet s, ProcessId n);

/// Inverse of subset_rank: the k-subset of {0..n-1} with the given rank.
ProcessSet subset_unrank(std::uint64_t rank, ProcessId n, int k);

}  // namespace qsel
