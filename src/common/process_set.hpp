// ProcessSet — a value-type set of process ids backed by a 64-bit mask.
//
// Quorums, suspicion sets and graph node sets are all subsets of Pi with
// |Pi| <= 64 (common/types.hpp), so one word suffices and set algebra is
// a handful of bit operations. Iteration yields ids in increasing order,
// which the lexicographic tie-breaks in Algorithm 1 and Definition 1 rely
// on.
#pragma once

#include <bit>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace qsel {

class ProcessSet {
 public:
  constexpr ProcessSet() = default;

  constexpr explicit ProcessSet(std::uint64_t mask) : mask_(mask) {}

  ProcessSet(std::initializer_list<ProcessId> ids) {
    for (ProcessId id : ids) insert(id);
  }

  /// The full set {0, ..., n-1}.
  static constexpr ProcessSet full(ProcessId n) {
    QSEL_REQUIRE(n <= kMaxProcesses);
    return n == kMaxProcesses ? ProcessSet(~std::uint64_t{0})
                              : ProcessSet((std::uint64_t{1} << n) - 1);
  }

  /// The range {first, ..., last-1}.
  static constexpr ProcessSet range(ProcessId first, ProcessId last) {
    QSEL_REQUIRE(first <= last && last <= kMaxProcesses);
    return ProcessSet(full(last).mask() & ~full(first).mask());
  }

  constexpr std::uint64_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  constexpr int size() const { return std::popcount(mask_); }

  constexpr bool contains(ProcessId id) const {
    return id < kMaxProcesses && (mask_ >> id) & 1;
  }

  void insert(ProcessId id) {
    QSEL_REQUIRE(id < kMaxProcesses);
    mask_ |= std::uint64_t{1} << id;
  }

  void erase(ProcessId id) {
    QSEL_REQUIRE(id < kMaxProcesses);
    mask_ &= ~(std::uint64_t{1} << id);
  }

  void clear() { mask_ = 0; }

  /// Smallest element; set must be non-empty.
  ProcessId min() const {
    QSEL_REQUIRE(!empty());
    return static_cast<ProcessId>(std::countr_zero(mask_));
  }

  /// Largest element; set must be non-empty.
  ProcessId max() const {
    QSEL_REQUIRE(!empty());
    return static_cast<ProcessId>(63 - std::countl_zero(mask_));
  }

  constexpr ProcessSet operator|(ProcessSet o) const {
    return ProcessSet(mask_ | o.mask_);
  }
  constexpr ProcessSet operator&(ProcessSet o) const {
    return ProcessSet(mask_ & o.mask_);
  }
  /// Set difference (elements of *this not in o).
  constexpr ProcessSet operator-(ProcessSet o) const {
    return ProcessSet(mask_ & ~o.mask_);
  }
  ProcessSet& operator|=(ProcessSet o) {
    mask_ |= o.mask_;
    return *this;
  }
  ProcessSet& operator&=(ProcessSet o) {
    mask_ &= o.mask_;
    return *this;
  }
  ProcessSet& operator-=(ProcessSet o) {
    mask_ &= ~o.mask_;
    return *this;
  }

  constexpr bool is_subset_of(ProcessSet o) const {
    return (mask_ & ~o.mask_) == 0;
  }
  constexpr bool intersects(ProcessSet o) const {
    return (mask_ & o.mask_) != 0;
  }

  friend constexpr auto operator<=>(ProcessSet, ProcessSet) = default;

  /// Forward iterator over members in increasing id order.
  class iterator {
   public:
    using value_type = ProcessId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using pointer = void;
    using reference = ProcessId;
    constexpr iterator() = default;
    constexpr explicit iterator(std::uint64_t rest) : rest_(rest) {}
    ProcessId operator*() const {
      return static_cast<ProcessId>(std::countr_zero(rest_));
    }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    constexpr bool operator==(const iterator&) const = default;

   private:
    std::uint64_t rest_ = 0;
  };

  iterator begin() const { return iterator(mask_); }
  iterator end() const { return iterator(0); }

  /// Renders as e.g. "{0, 2, 5}".
  std::string to_string() const;

 private:
  std::uint64_t mask_ = 0;
};

std::ostream& operator<<(std::ostream& os, ProcessSet s);

}  // namespace qsel
