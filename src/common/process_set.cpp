#include "common/process_set.hpp"

#include <ostream>
#include <sstream>

namespace qsel {

std::string ProcessSet::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, ProcessSet s) {
  os << '{';
  bool first = true;
  for (ProcessId id : s) {
    if (!first) os << ", ";
    first = false;
    os << id;
  }
  return os << '}';
}

}  // namespace qsel
