// Core identifier and time types shared by every module.
//
// The paper (Section IV) assumes a set Pi = {p_1, ..., p_n} of processes
// ordered by unique identifiers. We index processes 0..n-1; the textual
// examples ("p_1 is the default leader") map to index 0 and so on.
#pragma once

#include <cstdint>
#include <limits>

namespace qsel {

/// Index of a process in Pi. Valid ids are 0..n-1 with n <= kMaxProcesses.
using ProcessId = std::uint32_t;

/// Sentinel for "no process" (e.g. no leader known yet).
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Epoch counter used by the suspicion matrix (Algorithm 1, Section VI-A).
/// Epoch 0 means "never suspected"; real epochs start at 1.
using Epoch = std::uint64_t;

/// View number of the replicated application (XPaxos views).
using ViewId = std::uint64_t;

/// Slot / sequence number of the replicated log.
using SeqNum = std::uint64_t;

/// Virtual simulation time in nanoseconds (see sim::Clock).
using SimTime = std::uint64_t;

/// Duration in virtual nanoseconds.
using SimDuration = std::uint64_t;

/// Upper bound on the number of processes. Bitmask-based sets and graphs
/// (graph::SimpleGraph, ProcessSet) rely on it. The paper targets
/// consortium scale ("tens of nodes", Section VI-C), so 64 is generous.
inline constexpr ProcessId kMaxProcesses = 64;

}  // namespace qsel
