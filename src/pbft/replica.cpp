#include "pbft/replica.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace qsel::pbft {

Replica::Replica(sim::Network& network, const crypto::KeyRegistry& keys,
                 ProcessId self, ReplicaConfig config)
    : network_(network), signer_(keys, self), config_(config) {
  QSEL_REQUIRE(self < config.n);
  QSEL_REQUIRE(config.f >= 1);
  QSEL_REQUIRE(config.n >= 3 * static_cast<ProcessId>(config.f) + 1);
}

void Replica::broadcast_all(const sim::PayloadPtr& message) {
  network_.broadcast(self(),
                     ProcessSet::full(config_.n) - ProcessSet{self()},
                     message);
}

void Replica::on_message(ProcessId from, const sim::PayloadPtr& message) {
  (void)from;
  if (auto request =
          std::dynamic_pointer_cast<const smr::ClientRequest>(message)) {
    handle_request(request);
  } else if (auto preprepare =
                 std::dynamic_pointer_cast<const PrePrepareMessage>(message)) {
    handle_preprepare(*preprepare);
  } else if (auto vote =
                 std::dynamic_pointer_cast<const VoteMessage>(message)) {
    handle_vote(vote);
  } else if (auto viewchange =
                 std::dynamic_pointer_cast<const ViewChangeMessage>(message)) {
    handle_viewchange(viewchange);
  } else if (auto newview =
                 std::dynamic_pointer_cast<const NewViewMessage>(message)) {
    handle_newview(newview);
  }
}

void Replica::handle_request(
    const std::shared_ptr<const smr::ClientRequest>& request) {
  if (!request->verify(signer_)) return;
  const auto key = std::make_pair(request->client, request->client_seq);
  if (const auto it = results_.find(key); it != results_.end()) {
    if (request->client < network_.process_count())
      network_.send(self(), request->client,
                    smr::ReplyMessage::make(signer_, view_, request->client,
                                            request->client_seq, it->second));
    return;
  }
  if (client_index_.contains(key)) return;  // already in the pipeline
  if (is_primary() && !in_view_change_) {
    propose(*request);
    return;
  }
  // Backup: buffer and watch the primary. If the request does not execute
  // before the timer fires, the primary is suspected at quorum granularity
  // and a view change starts.
  backlog_.emplace(key, BacklogEntry{request, network_.simulator().now()});
  arm_request_timer();
}

void Replica::arm_request_timer() {
  if (request_timer_.active() || backlog_.empty()) return;
  SimTime oldest = network_.simulator().now();
  for (const auto& [key, entry] : backlog_) {
    (void)key;
    oldest = std::min(oldest, entry.since);
  }
  const SimTime deadline = oldest + config_.request_timeout;
  const SimTime now = network_.simulator().now();
  const SimDuration delay = deadline > now ? deadline - now : 1;
  request_timer_ = network_.simulator().schedule_timer(delay, [this] {
    // Drop satisfied entries first.
    for (auto it = backlog_.begin(); it != backlog_.end();) {
      if (results_.contains(it->first) || client_index_.contains(it->first)) {
        it = backlog_.erase(it);
      } else {
        ++it;
      }
    }
    if (backlog_.empty()) return;
    const SimTime now2 = network_.simulator().now();
    bool starved = false;
    for (const auto& [key, entry] : backlog_) {
      (void)key;
      if (now2 - entry.since >= config_.request_timeout) starved = true;
    }
    if (starved)
      start_view_change(view_ + 1);
    else
      arm_request_timer();
  });
}

void Replica::propose(const smr::ClientRequest& request) {
  const SeqNum slot = next_slot_++;
  const PrePrepareMessage msg =
      PrePrepareMessage::make(signer_, view_, slot, request);
  client_index_[{request.client, request.client_seq}] = slot;
  broadcast_all(std::make_shared<PrePrepareMessage>(msg));
  handle_preprepare(msg);
}

void Replica::handle_preprepare(const PrePrepareMessage& msg) {
  if (msg.view != view_ || in_view_change_) return;
  if (!msg.verify(signer_, config_.n, primary())) return;
  Slot& slot = log_[msg.slot];
  if (slot.preprepare) {
    // A conflicting primary-signed pre-prepare would be equivocation; the
    // baseline simply keeps the first (detection is the paper's
    // contribution, not PBFT's).
    if (slot.preprepare->request_digest() != msg.request_digest()) return;
  } else {
    slot.preprepare = msg;
    client_index_[{msg.client, msg.client_seq}] = msg.slot;
    backlog_.erase({msg.client, msg.client_seq});
  }
  if (!slot.prepare_sent) {
    slot.prepare_sent = true;
    // The primary's pre-prepare counts as its prepare vote.
    slot.prepares.insert(primary());
    if (!is_primary()) {
      broadcast_all(VoteMessage::make(signer_, VoteMessage::Phase::kPrepare,
                                      view_, msg.slot, msg.request_digest()));
      slot.prepares.insert(self());
    }
  }
  maybe_send_commit(msg.slot);
}

void Replica::handle_vote(const std::shared_ptr<const VoteMessage>& msg) {
  if (msg->view != view_ || in_view_change_) return;
  if (!msg->verify(signer_, config_.n)) return;
  Slot& slot = log_[msg->slot];
  if (slot.preprepare &&
      slot.preprepare->request_digest() != msg->digest)
    return;  // vote for a different proposal
  if (msg->phase == VoteMessage::Phase::kPrepare) {
    slot.prepares.insert(msg->sender);
    maybe_send_commit(msg->slot);
  } else {
    slot.commits.insert(msg->sender);
    try_execute();
  }
}

void Replica::maybe_send_commit(SeqNum slot_no) {
  Slot& slot = log_[slot_no];
  if (!slot.preprepare || slot.commit_sent) return;
  // Prepared: a quorum() of matching prepares (the count includes the
  // primary's implicit vote and our own) — 2f+1 at n = 3f+1, larger for
  // over-provisioned clusters so any two certificates intersect in f+1.
  if (static_cast<std::size_t>(slot.prepares.size()) < quorum()) return;
  slot.commit_sent = true;
  broadcast_all(VoteMessage::make(signer_, VoteMessage::Phase::kCommit, view_,
                                  slot_no,
                                  slot.preprepare->request_digest()));
  slot.commits.insert(self());
  try_execute();
}

void Replica::try_execute() {
  for (;;) {
    const auto it = log_.find(last_executed_ + 1);
    if (it == log_.end()) return;
    Slot& slot = it->second;
    if (!slot.preprepare || slot.executed) return;
    if (static_cast<std::size_t>(slot.commits.size()) < quorum()) return;

    slot.executed = true;
    ++last_executed_;
    const PrePrepareMessage& p = *slot.preprepare;
    const bool noop = p.op.empty() && p.client == 0;
    std::string result;
    if (!noop) {
      result = store_.apply_encoded(p.op);
      ++requests_executed_;
    }
    executed_history_.push_back(
        ExecutedEntry{p.slot, p.client, p.client_seq, crypto::sha256(p.op)});
    results_[{p.client, p.client_seq}] = result;
    backlog_.erase({p.client, p.client_seq});
    if (!noop && p.client >= config_.n &&
        p.client < network_.process_count()) {
      network_.send(self(), p.client,
                    smr::ReplyMessage::make(signer_, view_, p.client,
                                            p.client_seq, result));
    }
  }
}

// --------------------------------------------------------------------------
// View change (simplified PBFT)

std::vector<PrePrepareMessage> Replica::prepared_log() const {
  std::vector<PrePrepareMessage> prepared;
  for (const auto& [slot_no, slot] : log_) {
    (void)slot_no;
    if (slot.preprepare && slot.commit_sent)  // prepared certificate
      prepared.push_back(*slot.preprepare);
  }
  return prepared;
}

void Replica::start_view_change(ViewId target) {
  if (target <= view_) return;
  view_ = target;
  in_view_change_ = true;
  ++view_changes_;
  QSEL_LOG(kInfo, "pbft") << "p" << self() << " view change to " << view_;
  viewchanges_.clear();
  const auto msg = ViewChangeMessage::make(signer_, view_, prepared_log());
  broadcast_all(msg);
  if (is_primary()) {
    viewchanges_[self()] = msg;
    maybe_assemble_new_view();
  }
  // If this view change stalls (e.g. the new primary is also faulty), the
  // backlog timer fires again and moves on — after a fresh grace period.
  for (auto& [key, entry] : backlog_) {
    (void)key;
    entry.since = network_.simulator().now();
  }
  request_timer_.cancel();
  arm_request_timer();
}

void Replica::handle_viewchange(
    const std::shared_ptr<const ViewChangeMessage>& msg) {
  if (!msg->verify(signer_, config_.n)) return;
  if (msg->new_view <= view_ && !(msg->new_view == view_ && in_view_change_))
    return;
  if (msg->new_view > view_) {
    // Join: f+1 would be the textbook trigger; joining on the first keeps
    // the baseline simple and only speeds its convergence.
    start_view_change(msg->new_view);
  }
  if (!is_primary() || !in_view_change_) return;
  viewchanges_[msg->sender] = msg;
  maybe_assemble_new_view();
}

void Replica::maybe_assemble_new_view() {
  QSEL_ASSERT(is_primary());
  if (viewchanges_.size() < quorum()) return;
  std::map<SeqNum, PrePrepareMessage> merged;
  for (const auto& [sender, vc] : viewchanges_) {
    (void)sender;
    for (const PrePrepareMessage& p : vc->prepared) {
      if (p.view > view_) continue;
      const auto primary_of =
          static_cast<ProcessId>((p.view - 1) % config_.n);
      if (!p.verify(signer_, config_.n, primary_of)) continue;
      const auto it = merged.find(p.slot);
      if (it == merged.end() || it->second.view < p.view)
        merged.insert_or_assign(p.slot, p);
    }
  }
  const SeqNum max_slot = merged.empty() ? 0 : merged.rbegin()->first;
  std::vector<PrePrepareMessage> reproposals;
  for (SeqNum slot_no = 1; slot_no <= max_slot; ++slot_no) {
    smr::ClientRequest request;
    if (const auto it = merged.find(slot_no); it != merged.end()) {
      request.client = it->second.client;
      request.client_seq = it->second.client_seq;
      request.op = it->second.op;
    } else {
      request.client = 0;
      request.client_seq = slot_no;
    }
    reproposals.push_back(
        PrePrepareMessage::make(signer_, view_, slot_no, request));
  }
  next_slot_ = max_slot + 1;
  const auto nv = NewViewMessage::make(signer_, view_, std::move(reproposals));
  broadcast_all(nv);
  handle_newview(nv);
}

void Replica::handle_newview(const std::shared_ptr<const NewViewMessage>& msg) {
  if (!msg->verify(signer_, config_.n)) return;
  if (msg->view < view_) return;
  const auto expected =
      static_cast<ProcessId>((msg->view - 1) % config_.n);
  if (msg->primary != expected) return;
  if (msg->view > view_) {
    // Catch up to the installed view directly.
    view_ = msg->view;
    ++view_changes_;
    viewchanges_.clear();
    in_view_change_ = true;
  }
  if (!in_view_change_) return;  // duplicate NEW-VIEW for the current view
  in_view_change_ = false;
  QSEL_LOG(kInfo, "pbft") << "p" << self() << " installed view " << view_;
  SeqNum max_slot = 0;
  for (const PrePrepareMessage& p : msg->reproposals) {
    if (p.view != view_) continue;
    max_slot = std::max(max_slot, p.slot);
    handle_preprepare(p);
  }
  if (is_primary()) {
    next_slot_ = std::max(next_slot_, max_slot + 1);
    auto backlog = std::move(backlog_);
    backlog_.clear();
    for (const auto& [key, entry] : backlog) {
      (void)key;
      handle_request(entry.request);
    }
  }
  try_execute();
}

}  // namespace qsel::pbft
