// PbftCluster — the PBFT baseline wired over the simulated network, with
// the same observation surface as xpaxos::Cluster so experiment E5 can
// compare the two side by side.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "pbft/replica.hpp"
#include "runtime/sim_transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smr/client.hpp"

namespace qsel::pbft {

struct ClusterConfig {
  ProcessId n = 4;  // n = 3f + 1
  int f = 1;
  std::uint32_t clients = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig network;
  SimDuration request_timeout = 40'000'000;
  SimDuration client_retry = 50'000'000;
  app::WorkloadConfig workload;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config, ProcessSet byzantine = {});

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *network_; }
  const crypto::KeyRegistry& keys() const { return keys_; }

  Replica& replica(ProcessId id);
  smr::Client& client(std::uint32_t index);

  ProcessSet alive_replicas() const;
  void start_clients(std::uint64_t requests_per_client);
  std::uint64_t total_completed() const;
  std::uint64_t total_view_changes() const;
  /// True iff every pair of honest live replicas agrees on the common
  /// prefix of its executed history (same check as xpaxos::Cluster).
  bool histories_consistent() const;

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  crypto::KeyRegistry keys_;
  std::unique_ptr<sim::Network> network_;
  ProcessSet honest_replicas_;
  /// Client transports; declared before clients_ so clients die first.
  std::vector<std::unique_ptr<runtime::SimTransport>> client_transports_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<smr::Client>> clients_;
};

}  // namespace qsel::pbft
