#include "pbft/messages.hpp"

namespace qsel::pbft {
namespace {

void encode_preprepare_body(net::Encoder& enc, const PrePrepareMessage& p) {
  enc.str("pbft.preprepare");
  enc.u64(p.view);
  enc.u64(p.slot);
  enc.u32(p.client);
  enc.u64(p.client_seq);
  enc.bytes(p.op);
}

}  // namespace

std::vector<std::uint8_t> PrePrepareMessage::signed_bytes() const {
  net::Encoder enc;
  encode_preprepare_body(enc, *this);
  return std::move(enc).take();
}

crypto::Digest PrePrepareMessage::request_digest() const {
  net::Encoder enc;
  enc.u64(view);
  enc.u64(slot);
  enc.u32(client);
  enc.u64(client_seq);
  enc.bytes(op);
  return crypto::sha256(enc.view());
}

PrePrepareMessage PrePrepareMessage::make(const crypto::Signer& primary,
                                          ViewId view, SeqNum slot,
                                          const smr::ClientRequest& request) {
  PrePrepareMessage p;
  p.view = view;
  p.slot = slot;
  p.client = request.client;
  p.client_seq = request.client_seq;
  p.op = request.op;
  p.sig = primary.sign(p.signed_bytes());
  return p;
}

bool PrePrepareMessage::verify(const crypto::Signer& verifier, ProcessId n,
                               ProcessId expected_primary) const {
  if (expected_primary >= n || sig.signer != expected_primary) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::vector<std::uint8_t> VoteMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("pbft.vote");
  enc.u8(static_cast<std::uint8_t>(phase));
  enc.u64(view);
  enc.u64(slot);
  enc.digest(digest);
  enc.process_id(sender);
  return std::move(enc).take();
}

std::shared_ptr<const VoteMessage> VoteMessage::make(
    const crypto::Signer& sender, Phase phase, ViewId view, SeqNum slot,
    const crypto::Digest& digest) {
  auto msg = std::make_shared<VoteMessage>();
  msg->phase = phase;
  msg->view = view;
  msg->slot = slot;
  msg->digest = digest;
  msg->sender = sender.self();
  msg->sig = sender.sign(msg->signed_bytes());
  return msg;
}

bool VoteMessage::verify(const crypto::Signer& verifier, ProcessId n) const {
  if (sender >= n || sig.signer != sender) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::size_t ViewChangeMessage::wire_size() const {
  std::size_t size = 16 + 36;
  for (const auto& p : prepared) size += p.wire_size();
  return size;
}

std::vector<std::uint8_t> ViewChangeMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("pbft.viewchange");
  enc.u64(new_view);
  enc.process_id(sender);
  enc.u64(prepared.size());
  for (const auto& p : prepared) {
    encode_preprepare_body(enc, p);
    enc.signature(p.sig);
  }
  return std::move(enc).take();
}

std::shared_ptr<const ViewChangeMessage> ViewChangeMessage::make(
    const crypto::Signer& sender, ViewId new_view,
    std::vector<PrePrepareMessage> prepared) {
  auto msg = std::make_shared<ViewChangeMessage>();
  msg->new_view = new_view;
  msg->sender = sender.self();
  msg->prepared = std::move(prepared);
  msg->sig = sender.sign(msg->signed_bytes());
  return msg;
}

bool ViewChangeMessage::verify(const crypto::Signer& verifier,
                               ProcessId n) const {
  if (sender >= n || sig.signer != sender) return false;
  return verifier.verify(signed_bytes(), sig);
}

std::size_t NewViewMessage::wire_size() const {
  std::size_t size = 16 + 36;
  for (const auto& p : reproposals) size += p.wire_size();
  return size;
}

std::vector<std::uint8_t> NewViewMessage::signed_bytes() const {
  net::Encoder enc;
  enc.str("pbft.newview");
  enc.u64(view);
  enc.process_id(primary);
  enc.u64(reproposals.size());
  for (const auto& p : reproposals) {
    encode_preprepare_body(enc, p);
    enc.signature(p.sig);
  }
  return std::move(enc).take();
}

std::shared_ptr<const NewViewMessage> NewViewMessage::make(
    const crypto::Signer& primary, ViewId view,
    std::vector<PrePrepareMessage> reproposals) {
  auto msg = std::make_shared<NewViewMessage>();
  msg->view = view;
  msg->primary = primary.self();
  msg->reproposals = std::move(reproposals);
  msg->sig = primary.sign(msg->signed_bytes());
  return msg;
}

bool NewViewMessage::verify(const crypto::Signer& verifier,
                            ProcessId n) const {
  if (primary >= n || sig.signer != primary) return false;
  return verifier.verify(signed_bytes(), sig);
}

}  // namespace qsel::pbft
