// PBFT-style baseline messages.
//
// The comparison system the paper's introduction references: n = 3f+1
// replicas, every protocol message broadcast to all replicas, progress
// with n - f = 2f+1 replies. Normal case: PRE-PREPARE (primary) ->
// PREPARE (all-to-all, digest) -> COMMIT (all-to-all, digest). Unlike
// XPaxos, a crashed backup does NOT stop the protocol — the price is the
// full O(n^2) message complexity Quorum Selection avoids (experiment E5).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "net/codec.hpp"
#include "sim/payload.hpp"
#include "smr/client_messages.hpp"

namespace qsel::pbft {

struct PrePrepareMessage final : sim::Payload {
  ViewId view = 0;
  SeqNum slot = 0;
  std::uint32_t client = 0;
  std::uint64_t client_seq = 0;
  std::vector<std::uint8_t> op;
  crypto::Signature sig;  // by the primary of `view`

  std::string_view type_tag() const override { return "pbft.preprepare"; }
  std::size_t wire_size() const override { return 32 + op.size() + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  crypto::Digest request_digest() const;
  static PrePrepareMessage make(const crypto::Signer& primary, ViewId view,
                                SeqNum slot, const smr::ClientRequest& request);
  bool verify(const crypto::Signer& verifier, ProcessId n,
              ProcessId expected_primary) const;
};

/// PREPARE and COMMIT share a digest-vote shape; `phase` disambiguates.
struct VoteMessage final : sim::Payload {
  enum class Phase : std::uint8_t { kPrepare = 1, kCommit = 2 };
  Phase phase = Phase::kPrepare;
  ViewId view = 0;
  SeqNum slot = 0;
  crypto::Digest digest;
  ProcessId sender = kNoProcess;
  crypto::Signature sig;

  std::string_view type_tag() const override {
    return phase == Phase::kPrepare ? "pbft.prepare" : "pbft.commit";
  }
  std::size_t wire_size() const override { return 21 + 32 + 4 + 36; }

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const VoteMessage> make(const crypto::Signer& sender,
                                                 Phase phase, ViewId view,
                                                 SeqNum slot,
                                                 const crypto::Digest& digest);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

struct ViewChangeMessage final : sim::Payload {
  ViewId new_view = 0;
  ProcessId sender = kNoProcess;
  std::vector<PrePrepareMessage> prepared;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "pbft.viewchange"; }
  std::size_t wire_size() const override;

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const ViewChangeMessage> make(
      const crypto::Signer& sender, ViewId new_view,
      std::vector<PrePrepareMessage> prepared);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

struct NewViewMessage final : sim::Payload {
  ViewId view = 0;
  ProcessId primary = kNoProcess;
  std::vector<PrePrepareMessage> reproposals;
  crypto::Signature sig;

  std::string_view type_tag() const override { return "pbft.newview"; }
  std::size_t wire_size() const override;

  std::vector<std::uint8_t> signed_bytes() const;
  static std::shared_ptr<const NewViewMessage> make(
      const crypto::Signer& primary, ViewId view,
      std::vector<PrePrepareMessage> reproposals);
  bool verify(const crypto::Signer& verifier, ProcessId n) const;
};

}  // namespace qsel::pbft
