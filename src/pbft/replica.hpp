// PBFT-style baseline replica.
//
// Three-phase normal case with all-to-all broadcast: the primary
// PRE-PREPAREs to every replica; every replica broadcasts a PREPARE vote;
// once a quorum() of matching PREPAREs (PRE-PREPARE included) is in, it
// broadcasts a COMMIT vote; once a quorum() of matching COMMITs is in,
// the slot executes. quorum() is 2f+1 at n = 3f+1 and grows with n (see
// its doc comment).
// Tolerates up to f non-primary crashes with no reconfiguration at all —
// the property that costs O(n^2) messages per request and motivates
// Quorum Selection (paper introduction / Distler et al. [6]).
//
// View change (simplified): a backlog timer on buffered client requests
// triggers VIEW-CHANGE for view+1; the new primary collects 2f+1
// VIEW-CHANGEs, merges prepared entries by slot (highest view wins) and
// re-proposes them in a NEW-VIEW.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "app/kv_store.hpp"
#include "common/process_set.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "pbft/messages.hpp"
#include "sim/network.hpp"
#include "smr/client_messages.hpp"

namespace qsel::pbft {

struct ReplicaConfig {
  ProcessId n = 4;  // use n = 3f + 1
  int f = 1;
  /// How long a buffered request may wait before this replica starts a
  /// view change against the primary.
  SimDuration request_timeout = 40'000'000;  // 40 ms
};

class Replica final : public sim::Actor {
 public:
  Replica(sim::Network& network, const crypto::KeyRegistry& keys,
          ProcessId self, ReplicaConfig config);

  void on_message(ProcessId from, const sim::PayloadPtr& message) override;

  ProcessId self() const { return signer_.self(); }
  ViewId view() const { return view_; }
  ProcessId primary() const {
    return static_cast<ProcessId>((view_ - 1) % config_.n);
  }
  bool is_primary() const { return primary() == self(); }

  /// Certificate size: the smallest count such that any two certificates
  /// intersect in at least f+1 replicas, i.e. ceil((n+f+1)/2). Equals the
  /// textbook 2f+1 when n = 3f+1; for over-provisioned clusters
  /// (n > 3f+1) the textbook constant is unsound — two disjoint 2f+1
  /// certificates fit into n, so partitioned halves could commit
  /// diverging histories.
  std::size_t quorum() const {
    return (static_cast<std::size_t>(config_.n) +
            static_cast<std::size_t>(config_.f) + 2) /
           2;
  }

  const app::KvStore& store() const { return store_; }
  SeqNum last_executed() const { return last_executed_; }
  std::uint64_t view_changes() const { return view_changes_; }
  std::uint64_t requests_executed() const { return requests_executed_; }

  /// Executed history as (slot, client, client_seq, op digest) tuples, for
  /// cross-replica consistency checks (same shape as xpaxos::Replica).
  struct ExecutedEntry {
    SeqNum slot;
    std::uint32_t client;
    std::uint64_t client_seq;
    crypto::Digest op_digest;
  };
  const std::vector<ExecutedEntry>& executed_history() const {
    return executed_history_;
  }

 private:
  struct Slot {
    std::optional<PrePrepareMessage> preprepare;
    ProcessSet prepares;  // senders of matching PREPARE votes
    ProcessSet commits;
    bool prepare_sent = false;
    bool commit_sent = false;
    bool executed = false;
  };

  void handle_request(const std::shared_ptr<const smr::ClientRequest>& request);
  void propose(const smr::ClientRequest& request);
  void handle_preprepare(const PrePrepareMessage& msg);
  void handle_vote(const std::shared_ptr<const VoteMessage>& msg);
  void handle_viewchange(const std::shared_ptr<const ViewChangeMessage>& msg);
  void handle_newview(const std::shared_ptr<const NewViewMessage>& msg);
  void maybe_send_commit(SeqNum slot_no);
  void try_execute();
  void start_view_change(ViewId target);
  void maybe_assemble_new_view();
  void arm_request_timer();
  void broadcast_all(const sim::PayloadPtr& message);
  std::vector<PrePrepareMessage> prepared_log() const;

  sim::Network& network_;
  crypto::Signer signer_;
  ReplicaConfig config_;

  ViewId view_ = 1;
  bool in_view_change_ = false;
  std::uint64_t view_changes_ = 0;

  app::KvStore store_;
  std::map<SeqNum, Slot> log_;
  SeqNum next_slot_ = 1;
  SeqNum last_executed_ = 0;
  std::uint64_t requests_executed_ = 0;
  std::vector<ExecutedEntry> executed_history_;

  std::map<std::pair<std::uint32_t, std::uint64_t>, SeqNum> client_index_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> results_;
  /// Requests waiting for the primary (non-primary backlog drives the view
  /// change timer). Each entry remembers when it started waiting so only
  /// genuinely starved requests trigger a view change.
  struct BacklogEntry {
    std::shared_ptr<const smr::ClientRequest> request;
    SimTime since;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, BacklogEntry> backlog_;
  sim::TimerHandle request_timer_;

  std::map<ProcessId, std::shared_ptr<const ViewChangeMessage>> viewchanges_;
};

}  // namespace qsel::pbft
