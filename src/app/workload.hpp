// Deterministic client workload generation.
//
// Benchmarks (E5) and integration tests drive the replicated KV store
// with reproducible operation streams: a seeded mix of PUT/GET/DEL over a
// bounded key space.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "app/kv_store.hpp"
#include "app/zipf.hpp"
#include "common/rng.hpp"

namespace qsel::app {

struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::uint32_t key_space = 100;
  std::uint32_t value_bytes = 16;
  /// Probabilities; the remainder are deletes.
  double put_fraction = 0.5;
  double get_fraction = 0.4;
  /// Key-popularity skew: 0 = uniform (and exactly the historical stream —
  /// the Rng consumption is unchanged); > 0 draws key ranks Zipf(theta).
  double zipf_theta = 0.0;
  /// Added to every drawn rank: key i becomes "key-<key_offset + i>".
  /// Giving each load client a disjoint range makes the final KV state
  /// independent of cross-client interleaving, which is what lets the
  /// pipelining equivalence tests demand bit-identical digests.
  std::uint32_t key_offset = 0;
};

class Workload {
 public:
  explicit Workload(WorkloadConfig config);

  /// The i-th operation is a pure function of (seed, i) sequence.
  Operation next();

  std::vector<Operation> batch(std::size_t count);

 private:
  WorkloadConfig config_;
  Rng rng_;
  std::optional<ZipfSampler> zipf_;  // engaged when zipf_theta > 0
};

}  // namespace qsel::app
