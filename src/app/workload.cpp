#include "app/workload.hpp"

#include "common/assert.hpp"

namespace qsel::app {

Workload::Workload(WorkloadConfig config)
    : config_(config), rng_(config.seed ^ 0x776f726b6c6f6164ULL) {
  QSEL_REQUIRE(config.key_space > 0);
  QSEL_REQUIRE(config.put_fraction + config.get_fraction <= 1.0);
  QSEL_REQUIRE(config.zipf_theta >= 0.0);
  if (config.zipf_theta > 0.0)
    zipf_.emplace(config.key_space, config.zipf_theta);
}

Operation Workload::next() {
  Operation op;
  const std::uint64_t rank =
      zipf_ ? zipf_->sample(rng_) : rng_.below(config_.key_space);
  op.key = "key-" + std::to_string(config_.key_offset + rank);
  const double roll = rng_.uniform01();
  if (roll < config_.put_fraction) {
    op.type = OpType::kPut;
    op.value.reserve(config_.value_bytes);
    for (std::uint32_t i = 0; i < config_.value_bytes; ++i)
      op.value.push_back(static_cast<char>('a' + rng_.below(26)));
  } else if (roll < config_.put_fraction + config_.get_fraction) {
    op.type = OpType::kGet;
  } else {
    op.type = OpType::kDel;
  }
  return op;
}

std::vector<Operation> Workload::batch(std::size_t count) {
  std::vector<Operation> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ops.push_back(next());
  return ops;
}

}  // namespace qsel::app
