// Replicated key-value state machine.
//
// The deterministic application executed by the SMR protocols (XPaxos,
// PBFT baseline, BChain baseline). Operations are encoded as byte strings
// (net::Encoder format); apply() is deterministic, and state_digest()
// lets tests assert that replicas executed identical histories without
// comparing whole states.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace qsel::app {

enum class OpType : std::uint8_t { kPut = 1, kGet = 2, kDel = 3 };

struct Operation {
  OpType type = OpType::kGet;
  std::string key;
  std::string value;  // only for kPut

  std::vector<std::uint8_t> encode() const;
  /// nullopt on malformed bytes (Byzantine input).
  static std::optional<Operation> decode(
      std::span<const std::uint8_t> bytes);

  bool operator==(const Operation&) const = default;
};

class KvStore {
 public:
  /// Executes one operation, returns its result (value read, old value,
  /// or empty).
  std::string apply(const Operation& op);

  /// Executes encoded bytes; malformed operations are no-ops with the
  /// result "<malformed>" (a deterministic outcome all replicas share).
  std::string apply_encoded(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return data_.size(); }
  std::optional<std::string> get(const std::string& key) const;

  /// Number of operations applied so far.
  std::uint64_t ops_applied() const { return ops_applied_; }

  /// Digest over (sorted contents, ops_applied): equal digests mean equal
  /// executed histories for deterministic workloads.
  crypto::Digest state_digest() const;

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t ops_applied_ = 0;
};

}  // namespace qsel::app
