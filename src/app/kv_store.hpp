// Replicated key-value state machine.
//
// The deterministic application executed by the SMR protocols (XPaxos,
// PBFT baseline, BChain baseline). Operations are encoded as byte strings
// (net::Encoder format); apply() is deterministic, and state_digest()
// lets tests assert that replicas executed identical histories without
// comparing whole states.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "app/state_machine.hpp"
#include "crypto/sha256.hpp"

namespace qsel::app {

enum class OpType : std::uint8_t { kPut = 1, kGet = 2, kDel = 3 };

struct Operation {
  OpType type = OpType::kGet;
  std::string key;
  std::string value;  // only for kPut

  std::vector<std::uint8_t> encode() const;
  /// nullopt on malformed bytes (Byzantine input).
  static std::optional<Operation> decode(
      std::span<const std::uint8_t> bytes);

  bool operator==(const Operation&) const = default;
};

class KvStore final : public StateMachine {
 public:
  /// Executes one operation, returns its result (value read, old value,
  /// or empty).
  std::string apply(const Operation& op);

  /// Executes encoded bytes; malformed operations are no-ops with the
  /// result "<malformed>" (a deterministic outcome all replicas share).
  std::string apply_encoded(std::span<const std::uint8_t> bytes) override;

  std::size_t size() const { return data_.size(); }
  std::optional<std::string> get(const std::string& key) const;

  /// Number of operations applied so far.
  std::uint64_t ops_applied() const { return ops_applied_; }

  /// Digest over (sorted contents, ops_applied): equal digests mean equal
  /// executed histories for deterministic workloads.
  crypto::Digest state_digest() const override;

  // --- key-range accessors (shard migration snapshots) ------------------

  /// All (key, value) pairs with lo <= key < hi ("" hi = unbounded), in
  /// key order, skipping `offset` pairs and returning at most `limit`
  /// (0 = no limit). Deterministic, read-only.
  std::vector<std::pair<std::string, std::string>> range_entries(
      const std::string& lo, const std::string& hi, std::uint64_t offset = 0,
      std::uint64_t limit = 0) const;

  /// Number of keys with lo <= key < hi.
  std::uint64_t range_size(const std::string& lo, const std::string& hi) const;

  /// Digest over the sorted (key, value) pairs of the range only — no
  /// ops_applied term, so a migrated range installed on a different
  /// replica with a different history still digests equal.
  crypto::Digest range_digest(const std::string& lo,
                              const std::string& hi) const;

  /// Removes every key in [lo, hi); returns how many were erased.
  std::uint64_t erase_range(const std::string& lo, const std::string& hi);

  /// Inserts (overwriting) a batch of pairs, without counting them as
  /// applied client operations (migration chunk install).
  void install(const std::vector<std::pair<std::string, std::string>>& pairs);

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t ops_applied_ = 0;
};

}  // namespace qsel::app
