#include "app/kv_store.hpp"

#include "net/codec.hpp"

namespace qsel::app {

std::vector<std::uint8_t> Operation::encode() const {
  net::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(type));
  enc.str(key);
  enc.str(value);
  return std::move(enc).take();
}

std::optional<Operation> Operation::decode(
    std::span<const std::uint8_t> bytes) {
  net::Decoder dec(bytes);
  Operation op;
  const std::uint8_t type = dec.u8();
  op.key = dec.str();
  op.value = dec.str();
  if (!dec.done()) return std::nullopt;
  switch (type) {
    case static_cast<std::uint8_t>(OpType::kPut):
      op.type = OpType::kPut;
      break;
    case static_cast<std::uint8_t>(OpType::kGet):
      op.type = OpType::kGet;
      break;
    case static_cast<std::uint8_t>(OpType::kDel):
      op.type = OpType::kDel;
      break;
    default:
      return std::nullopt;
  }
  return op;
}

std::string KvStore::apply(const Operation& op) {
  ++ops_applied_;
  switch (op.type) {
    case OpType::kPut: {
      auto [it, inserted] = data_.insert_or_assign(op.key, op.value);
      (void)it;
      return inserted ? "" : "replaced";
    }
    case OpType::kGet: {
      const auto it = data_.find(op.key);
      return it == data_.end() ? "" : it->second;
    }
    case OpType::kDel: {
      return data_.erase(op.key) > 0 ? "deleted" : "";
    }
  }
  return "";
}

std::string KvStore::apply_encoded(std::span<const std::uint8_t> bytes) {
  const auto op = Operation::decode(bytes);
  if (!op) {
    ++ops_applied_;
    return "<malformed>";
  }
  return apply(*op);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

crypto::Digest KvStore::state_digest() const {
  net::Encoder enc;
  enc.u64(ops_applied_);
  enc.u64(data_.size());
  for (const auto& [key, value] : data_) {
    enc.str(key);
    enc.str(value);
  }
  return crypto::sha256(enc.view());
}

}  // namespace qsel::app
