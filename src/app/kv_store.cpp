#include "app/kv_store.hpp"

#include <iterator>

#include "net/codec.hpp"

namespace qsel::app {

std::vector<std::uint8_t> Operation::encode() const {
  net::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(type));
  enc.str(key);
  enc.str(value);
  return std::move(enc).take();
}

std::optional<Operation> Operation::decode(
    std::span<const std::uint8_t> bytes) {
  net::Decoder dec(bytes);
  Operation op;
  const std::uint8_t type = dec.u8();
  op.key = dec.str();
  op.value = dec.str();
  if (!dec.done()) return std::nullopt;
  switch (type) {
    case static_cast<std::uint8_t>(OpType::kPut):
      op.type = OpType::kPut;
      break;
    case static_cast<std::uint8_t>(OpType::kGet):
      op.type = OpType::kGet;
      break;
    case static_cast<std::uint8_t>(OpType::kDel):
      op.type = OpType::kDel;
      break;
    default:
      return std::nullopt;
  }
  return op;
}

std::string KvStore::apply(const Operation& op) {
  ++ops_applied_;
  switch (op.type) {
    case OpType::kPut: {
      auto [it, inserted] = data_.insert_or_assign(op.key, op.value);
      (void)it;
      return inserted ? "" : "replaced";
    }
    case OpType::kGet: {
      const auto it = data_.find(op.key);
      return it == data_.end() ? "" : it->second;
    }
    case OpType::kDel: {
      return data_.erase(op.key) > 0 ? "deleted" : "";
    }
  }
  return "";
}

std::string KvStore::apply_encoded(std::span<const std::uint8_t> bytes) {
  const auto op = Operation::decode(bytes);
  if (!op) {
    ++ops_applied_;
    return "<malformed>";
  }
  return apply(*op);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

namespace {

/// Iterator range [first, last) of the keys in [lo, hi); hi = "" means
/// unbounded above (the natural encoding: "" sorts before everything, so
/// it is useless as an exclusive upper bound and free to repurpose).
template <typename Map>
auto range_bounds(Map& data, const std::string& lo, const std::string& hi) {
  auto first = data.lower_bound(lo);
  auto last = hi.empty() ? data.end() : data.lower_bound(hi);
  return std::make_pair(first, last);
}

}  // namespace

std::vector<std::pair<std::string, std::string>> KvStore::range_entries(
    const std::string& lo, const std::string& hi, std::uint64_t offset,
    std::uint64_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto [it, last] = range_bounds(data_, lo, hi);
  for (; it != last && offset > 0; ++it) --offset;
  for (; it != last; ++it) {
    if (limit != 0 && out.size() >= limit) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::uint64_t KvStore::range_size(const std::string& lo,
                                  const std::string& hi) const {
  auto [it, last] = range_bounds(data_, lo, hi);
  return static_cast<std::uint64_t>(std::distance(it, last));
}

crypto::Digest KvStore::range_digest(const std::string& lo,
                                     const std::string& hi) const {
  net::Encoder enc;
  auto [it, last] = range_bounds(data_, lo, hi);
  for (; it != last; ++it) {
    enc.str(it->first);
    enc.str(it->second);
  }
  return crypto::sha256(enc.view());
}

std::uint64_t KvStore::erase_range(const std::string& lo,
                                   const std::string& hi) {
  auto [it, last] = range_bounds(data_, lo, hi);
  const auto count = static_cast<std::uint64_t>(std::distance(it, last));
  data_.erase(it, last);
  return count;
}

void KvStore::install(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  for (const auto& [key, value] : pairs) data_.insert_or_assign(key, value);
}

crypto::Digest KvStore::state_digest() const {
  net::Encoder enc;
  enc.u64(ops_applied_);
  enc.u64(data_.size());
  for (const auto& [key, value] : data_) {
    enc.str(key);
    enc.str(value);
  }
  return crypto::sha256(enc.view());
}

}  // namespace qsel::app
