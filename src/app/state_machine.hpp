// StateMachine — the deterministic application an SMR replica executes.
//
// XPaxos replicas historically hardcoded KvStore; the sharded service
// needs two more applications behind the same execution loop: the
// shard-config group's ShardMap machine and the per-shard ShardKv wrapper
// that adds ownership/epoch fencing around the plain KvStore. The
// contract every implementation owes the replica is the usual SMR one:
// apply_encoded is a pure function of (current state, op bytes) — same
// history in, same results and state_digest out on every replica —
// and malformed bytes must yield a deterministic result, never a throw.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.hpp"

namespace qsel::app {

class StateMachine {
 public:
  StateMachine() = default;
  StateMachine(const StateMachine&) = delete;
  StateMachine& operator=(const StateMachine&) = delete;
  virtual ~StateMachine() = default;

  /// Executes encoded operation bytes; the returned string is the reply
  /// sent back to the client.
  virtual std::string apply_encoded(std::span<const std::uint8_t> bytes) = 0;

  /// Digest over the full machine state: equal digests mean equal
  /// executed histories for deterministic workloads.
  virtual crypto::Digest state_digest() const = 0;
};

}  // namespace qsel::app
