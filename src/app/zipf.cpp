#include "app/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace qsel::app {

ZipfSampler::ZipfSampler(std::uint32_t n, double theta) {
  QSEL_REQUIRE(n > 0);
  QSEL_REQUIRE(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k) + 1.0, theta);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::uint32_t>(it - cdf_.begin());
  return std::min(rank, static_cast<std::uint32_t>(cdf_.size() - 1));
}

}  // namespace qsel::app
