// Seeded Zipf(theta) rank sampler.
//
// The load generator (src/load/) skews key popularity the way real KV
// traffic does: rank k is drawn with probability proportional to
// 1/(k+1)^theta. The CDF is precomputed once, so sampling is one uniform
// draw plus a binary search — deterministic given the caller's Rng stream.
// theta = 0 degenerates to uniform.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qsel::app {

class ZipfSampler {
 public:
  /// `n` ranks (0..n-1), skew exponent `theta` >= 0.
  ZipfSampler(std::uint32_t n, double theta);

  /// Draws one rank; rank 0 is the most popular.
  std::uint32_t sample(Rng& rng) const;

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1
};

}  // namespace qsel::app
