// Streaming summary statistics for latency-style measurements.
//
// Stores all samples (simulation scale keeps counts modest) so exact
// quantiles can be reported for request latency (E5) and detection latency
// (E7).
#pragma once

#include <cstdint>
#include <vector>

namespace qsel::metrics {

class Histogram {
 public:
  void record(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  /// Exact quantile by nearest-rank; p in [0, 1].
  double quantile(double p) const;
  double median() const { return quantile(0.5); }

  void reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace qsel::metrics
