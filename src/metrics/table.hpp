// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints the rows the corresponding paper artefact
// reports (see DESIGN.md section 4) in an aligned, diff-friendly format.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace qsel::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats each value with operator<<.
  template <class... Ts>
  Table& row(const Ts&... values) {
    return add_row({format_cell(values)...});
  }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  template <class T>
  static std::string format_cell(const T& value);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qsel::metrics

#include <sstream>

namespace qsel::metrics {

template <class T>
std::string Table::format_cell(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace qsel::metrics
