// Message accounting.
//
// Experiment E5 (message reduction from running on an active quorum,
// Distler et al. motivation in the paper's introduction) and E8 (UPDATE
// gossip cost) count messages by type and by link; the simulator feeds
// this sink on every send.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace qsel::metrics {

class MessageStats {
 public:
  void record_send(ProcessId from, ProcessId to, std::string_view type,
                   std::size_t bytes);

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Messages sent with the given type tag.
  std::uint64_t by_type(std::string_view type) const;

  /// Wire bytes sent with the given type tag (E8 measures the gossip
  /// byte volume — delta UPDATEs vs digests vs full rows — not just
  /// message counts).
  std::uint64_t bytes_by_type(std::string_view type) const;

  /// Messages sent on the directed link from -> to.
  std::uint64_t by_link(ProcessId from, ProcessId to) const;

  /// Messages sent by one process (any destination).
  std::uint64_t by_sender(ProcessId from) const;

  const std::map<std::string, std::uint64_t, std::less<>>& type_counts()
      const {
    return by_type_;
  }

  void reset();

 private:
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> by_type_;
  std::map<std::string, std::uint64_t, std::less<>> bytes_by_type_;
  std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> by_link_;
  std::map<ProcessId, std::uint64_t> by_sender_;
};

}  // namespace qsel::metrics
