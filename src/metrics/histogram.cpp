#include "metrics/histogram.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace qsel::metrics {

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  QSEL_REQUIRE(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double Histogram::max() const {
  QSEL_REQUIRE(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double Histogram::mean() const {
  QSEL_REQUIRE(!samples_.empty());
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

double Histogram::quantile(double p) const {
  QSEL_REQUIRE(!samples_.empty());
  QSEL_REQUIRE(p >= 0.0 && p <= 1.0);
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

}  // namespace qsel::metrics
