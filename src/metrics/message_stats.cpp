#include "metrics/message_stats.hpp"

namespace qsel::metrics {

void MessageStats::record_send(ProcessId from, ProcessId to,
                               std::string_view type, std::size_t bytes) {
  ++total_messages_;
  total_bytes_ += bytes;
  auto it = by_type_.find(type);
  if (it == by_type_.end())
    by_type_.emplace(std::string(type), 1);
  else
    ++it->second;
  auto bytes_it = bytes_by_type_.find(type);
  if (bytes_it == bytes_by_type_.end())
    bytes_by_type_.emplace(std::string(type), bytes);
  else
    bytes_it->second += bytes;
  ++by_link_[{from, to}];
  ++by_sender_[from];
}

std::uint64_t MessageStats::by_type(std::string_view type) const {
  auto it = by_type_.find(type);
  return it == by_type_.end() ? 0 : it->second;
}

std::uint64_t MessageStats::bytes_by_type(std::string_view type) const {
  auto it = bytes_by_type_.find(type);
  return it == bytes_by_type_.end() ? 0 : it->second;
}

std::uint64_t MessageStats::by_link(ProcessId from, ProcessId to) const {
  auto it = by_link_.find({from, to});
  return it == by_link_.end() ? 0 : it->second;
}

std::uint64_t MessageStats::by_sender(ProcessId from) const {
  auto it = by_sender_.find(from);
  return it == by_sender_.end() ? 0 : it->second;
}

void MessageStats::reset() { *this = MessageStats{}; }

}  // namespace qsel::metrics
