#include "metrics/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace qsel::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  QSEL_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace qsel::metrics
