# Empty compiler generated dependencies file for bench_failure_detector.
# This may be replaced when dependencies are built.
