file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_detector.dir/bench_failure_detector.cpp.o"
  "CMakeFiles/bench_failure_detector.dir/bench_failure_detector.cpp.o.d"
  "bench_failure_detector"
  "bench_failure_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
