file(REMOVE_RECURSE
  "CMakeFiles/bench_independent_set.dir/bench_independent_set.cpp.o"
  "CMakeFiles/bench_independent_set.dir/bench_independent_set.cpp.o.d"
  "bench_independent_set"
  "bench_independent_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_independent_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
