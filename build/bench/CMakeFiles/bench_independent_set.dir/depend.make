# Empty dependencies file for bench_independent_set.
# This may be replaced when dependencies are built.
