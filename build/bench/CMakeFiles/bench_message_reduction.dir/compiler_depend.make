# Empty compiler generated dependencies file for bench_message_reduction.
# This may be replaced when dependencies are built.
