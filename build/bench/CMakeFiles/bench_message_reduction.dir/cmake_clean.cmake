file(REMOVE_RECURSE
  "CMakeFiles/bench_message_reduction.dir/bench_message_reduction.cpp.o"
  "CMakeFiles/bench_message_reduction.dir/bench_message_reduction.cpp.o.d"
  "bench_message_reduction"
  "bench_message_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
