file(REMOVE_RECURSE
  "CMakeFiles/bench_suspicion_gossip.dir/bench_suspicion_gossip.cpp.o"
  "CMakeFiles/bench_suspicion_gossip.dir/bench_suspicion_gossip.cpp.o.d"
  "bench_suspicion_gossip"
  "bench_suspicion_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suspicion_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
