# Empty dependencies file for bench_suspicion_gossip.
# This may be replaced when dependencies are built.
