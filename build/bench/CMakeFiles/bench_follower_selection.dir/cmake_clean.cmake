file(REMOVE_RECURSE
  "CMakeFiles/bench_follower_selection.dir/bench_follower_selection.cpp.o"
  "CMakeFiles/bench_follower_selection.dir/bench_follower_selection.cpp.o.d"
  "bench_follower_selection"
  "bench_follower_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_follower_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
