# Empty dependencies file for bench_follower_selection.
# This may be replaced when dependencies are built.
