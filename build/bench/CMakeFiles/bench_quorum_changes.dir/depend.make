# Empty dependencies file for bench_quorum_changes.
# This may be replaced when dependencies are built.
