
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_quorum_changes.cpp" "bench/CMakeFiles/bench_quorum_changes.dir/bench_quorum_changes.cpp.o" "gcc" "bench/CMakeFiles/bench_quorum_changes.dir/bench_quorum_changes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adversary/CMakeFiles/qsel_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qsel_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qsel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
