file(REMOVE_RECURSE
  "CMakeFiles/bench_quorum_changes.dir/bench_quorum_changes.cpp.o"
  "CMakeFiles/bench_quorum_changes.dir/bench_quorum_changes.cpp.o.d"
  "bench_quorum_changes"
  "bench_quorum_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quorum_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
