file(REMOVE_RECURSE
  "CMakeFiles/bench_xpaxos_enumeration.dir/bench_xpaxos_enumeration.cpp.o"
  "CMakeFiles/bench_xpaxos_enumeration.dir/bench_xpaxos_enumeration.cpp.o.d"
  "bench_xpaxos_enumeration"
  "bench_xpaxos_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xpaxos_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
