# Empty dependencies file for qsel_common.
# This may be replaced when dependencies are built.
