file(REMOVE_RECURSE
  "libqsel_common.a"
)
