file(REMOVE_RECURSE
  "CMakeFiles/qsel_common.dir/combinatorics.cpp.o"
  "CMakeFiles/qsel_common.dir/combinatorics.cpp.o.d"
  "CMakeFiles/qsel_common.dir/logging.cpp.o"
  "CMakeFiles/qsel_common.dir/logging.cpp.o.d"
  "CMakeFiles/qsel_common.dir/process_set.cpp.o"
  "CMakeFiles/qsel_common.dir/process_set.cpp.o.d"
  "CMakeFiles/qsel_common.dir/rng.cpp.o"
  "CMakeFiles/qsel_common.dir/rng.cpp.o.d"
  "libqsel_common.a"
  "libqsel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
