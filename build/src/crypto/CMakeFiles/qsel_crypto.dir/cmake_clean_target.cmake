file(REMOVE_RECURSE
  "libqsel_crypto.a"
)
