# Empty dependencies file for qsel_crypto.
# This may be replaced when dependencies are built.
