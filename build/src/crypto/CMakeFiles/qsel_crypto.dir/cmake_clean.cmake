file(REMOVE_RECURSE
  "CMakeFiles/qsel_crypto.dir/hmac.cpp.o"
  "CMakeFiles/qsel_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/qsel_crypto.dir/sha256.cpp.o"
  "CMakeFiles/qsel_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/qsel_crypto.dir/signer.cpp.o"
  "CMakeFiles/qsel_crypto.dir/signer.cpp.o.d"
  "libqsel_crypto.a"
  "libqsel_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
