# Empty compiler generated dependencies file for qsel_smr.
# This may be replaced when dependencies are built.
