file(REMOVE_RECURSE
  "libqsel_smr.a"
)
