
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smr/client.cpp" "src/smr/CMakeFiles/qsel_smr.dir/client.cpp.o" "gcc" "src/smr/CMakeFiles/qsel_smr.dir/client.cpp.o.d"
  "/root/repo/src/smr/client_messages.cpp" "src/smr/CMakeFiles/qsel_smr.dir/client_messages.cpp.o" "gcc" "src/smr/CMakeFiles/qsel_smr.dir/client_messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/qsel_app.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/qsel_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qsel_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/qsel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qsel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
