file(REMOVE_RECURSE
  "CMakeFiles/qsel_smr.dir/client.cpp.o"
  "CMakeFiles/qsel_smr.dir/client.cpp.o.d"
  "CMakeFiles/qsel_smr.dir/client_messages.cpp.o"
  "CMakeFiles/qsel_smr.dir/client_messages.cpp.o.d"
  "libqsel_smr.a"
  "libqsel_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
