file(REMOVE_RECURSE
  "libqsel_adversary.a"
)
