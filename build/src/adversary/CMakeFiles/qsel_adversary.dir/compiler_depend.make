# Empty compiler generated dependencies file for qsel_adversary.
# This may be replaced when dependencies are built.
