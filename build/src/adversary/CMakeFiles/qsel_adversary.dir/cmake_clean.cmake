file(REMOVE_RECURSE
  "CMakeFiles/qsel_adversary.dir/follower_game.cpp.o"
  "CMakeFiles/qsel_adversary.dir/follower_game.cpp.o.d"
  "CMakeFiles/qsel_adversary.dir/quorum_game.cpp.o"
  "CMakeFiles/qsel_adversary.dir/quorum_game.cpp.o.d"
  "libqsel_adversary.a"
  "libqsel_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
