# Empty compiler generated dependencies file for qsel_qs.
# This may be replaced when dependencies are built.
