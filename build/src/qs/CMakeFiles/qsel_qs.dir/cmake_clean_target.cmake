file(REMOVE_RECURSE
  "libqsel_qs.a"
)
