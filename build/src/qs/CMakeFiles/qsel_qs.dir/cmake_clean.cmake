file(REMOVE_RECURSE
  "CMakeFiles/qsel_qs.dir/quorum_selector.cpp.o"
  "CMakeFiles/qsel_qs.dir/quorum_selector.cpp.o.d"
  "libqsel_qs.a"
  "libqsel_qs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_qs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
