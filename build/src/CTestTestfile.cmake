# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("graph")
subdirs("metrics")
subdirs("sim")
subdirs("net")
subdirs("app")
subdirs("smr")
subdirs("fd")
subdirs("suspect")
subdirs("qs")
subdirs("fs")
subdirs("runtime")
subdirs("xpaxos")
subdirs("adversary")
subdirs("pbft")
subdirs("bchain")
