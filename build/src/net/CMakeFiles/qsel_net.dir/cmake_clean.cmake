file(REMOVE_RECURSE
  "CMakeFiles/qsel_net.dir/codec.cpp.o"
  "CMakeFiles/qsel_net.dir/codec.cpp.o.d"
  "libqsel_net.a"
  "libqsel_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
