file(REMOVE_RECURSE
  "libqsel_net.a"
)
