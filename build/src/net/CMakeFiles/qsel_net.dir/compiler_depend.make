# Empty compiler generated dependencies file for qsel_net.
# This may be replaced when dependencies are built.
