file(REMOVE_RECURSE
  "libqsel_fs.a"
)
