file(REMOVE_RECURSE
  "CMakeFiles/qsel_fs.dir/follower_selector.cpp.o"
  "CMakeFiles/qsel_fs.dir/follower_selector.cpp.o.d"
  "CMakeFiles/qsel_fs.dir/followers_message.cpp.o"
  "CMakeFiles/qsel_fs.dir/followers_message.cpp.o.d"
  "libqsel_fs.a"
  "libqsel_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
