# Empty compiler generated dependencies file for qsel_fs.
# This may be replaced when dependencies are built.
