# Empty dependencies file for qsel_graph.
# This may be replaced when dependencies are built.
