
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/independent_set.cpp" "src/graph/CMakeFiles/qsel_graph.dir/independent_set.cpp.o" "gcc" "src/graph/CMakeFiles/qsel_graph.dir/independent_set.cpp.o.d"
  "/root/repo/src/graph/line_subgraph.cpp" "src/graph/CMakeFiles/qsel_graph.dir/line_subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/qsel_graph.dir/line_subgraph.cpp.o.d"
  "/root/repo/src/graph/simple_graph.cpp" "src/graph/CMakeFiles/qsel_graph.dir/simple_graph.cpp.o" "gcc" "src/graph/CMakeFiles/qsel_graph.dir/simple_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
