file(REMOVE_RECURSE
  "libqsel_graph.a"
)
