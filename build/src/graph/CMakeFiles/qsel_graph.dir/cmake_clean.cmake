file(REMOVE_RECURSE
  "CMakeFiles/qsel_graph.dir/independent_set.cpp.o"
  "CMakeFiles/qsel_graph.dir/independent_set.cpp.o.d"
  "CMakeFiles/qsel_graph.dir/line_subgraph.cpp.o"
  "CMakeFiles/qsel_graph.dir/line_subgraph.cpp.o.d"
  "CMakeFiles/qsel_graph.dir/simple_graph.cpp.o"
  "CMakeFiles/qsel_graph.dir/simple_graph.cpp.o.d"
  "libqsel_graph.a"
  "libqsel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
