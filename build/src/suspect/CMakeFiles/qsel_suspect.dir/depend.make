# Empty dependencies file for qsel_suspect.
# This may be replaced when dependencies are built.
