file(REMOVE_RECURSE
  "CMakeFiles/qsel_suspect.dir/suspicion_core.cpp.o"
  "CMakeFiles/qsel_suspect.dir/suspicion_core.cpp.o.d"
  "CMakeFiles/qsel_suspect.dir/suspicion_matrix.cpp.o"
  "CMakeFiles/qsel_suspect.dir/suspicion_matrix.cpp.o.d"
  "CMakeFiles/qsel_suspect.dir/update_message.cpp.o"
  "CMakeFiles/qsel_suspect.dir/update_message.cpp.o.d"
  "libqsel_suspect.a"
  "libqsel_suspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_suspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
