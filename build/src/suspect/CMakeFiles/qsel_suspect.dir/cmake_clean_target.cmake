file(REMOVE_RECURSE
  "libqsel_suspect.a"
)
