# Empty compiler generated dependencies file for qsel_xpaxos.
# This may be replaced when dependencies are built.
