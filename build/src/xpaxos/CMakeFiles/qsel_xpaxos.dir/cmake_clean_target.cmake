file(REMOVE_RECURSE
  "libqsel_xpaxos.a"
)
