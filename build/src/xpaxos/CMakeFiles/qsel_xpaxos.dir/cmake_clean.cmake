file(REMOVE_RECURSE
  "CMakeFiles/qsel_xpaxos.dir/cluster.cpp.o"
  "CMakeFiles/qsel_xpaxos.dir/cluster.cpp.o.d"
  "CMakeFiles/qsel_xpaxos.dir/messages.cpp.o"
  "CMakeFiles/qsel_xpaxos.dir/messages.cpp.o.d"
  "CMakeFiles/qsel_xpaxos.dir/replica.cpp.o"
  "CMakeFiles/qsel_xpaxos.dir/replica.cpp.o.d"
  "CMakeFiles/qsel_xpaxos.dir/view_map.cpp.o"
  "CMakeFiles/qsel_xpaxos.dir/view_map.cpp.o.d"
  "libqsel_xpaxos.a"
  "libqsel_xpaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_xpaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
