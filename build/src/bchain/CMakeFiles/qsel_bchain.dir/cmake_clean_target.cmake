file(REMOVE_RECURSE
  "libqsel_bchain.a"
)
