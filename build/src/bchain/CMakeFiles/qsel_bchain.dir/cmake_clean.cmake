file(REMOVE_RECURSE
  "CMakeFiles/qsel_bchain.dir/cluster.cpp.o"
  "CMakeFiles/qsel_bchain.dir/cluster.cpp.o.d"
  "CMakeFiles/qsel_bchain.dir/messages.cpp.o"
  "CMakeFiles/qsel_bchain.dir/messages.cpp.o.d"
  "CMakeFiles/qsel_bchain.dir/qs_cluster.cpp.o"
  "CMakeFiles/qsel_bchain.dir/qs_cluster.cpp.o.d"
  "CMakeFiles/qsel_bchain.dir/qs_replica.cpp.o"
  "CMakeFiles/qsel_bchain.dir/qs_replica.cpp.o.d"
  "CMakeFiles/qsel_bchain.dir/replica.cpp.o"
  "CMakeFiles/qsel_bchain.dir/replica.cpp.o.d"
  "libqsel_bchain.a"
  "libqsel_bchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_bchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
