# Empty dependencies file for qsel_bchain.
# This may be replaced when dependencies are built.
