# Empty compiler generated dependencies file for qsel_pbft.
# This may be replaced when dependencies are built.
