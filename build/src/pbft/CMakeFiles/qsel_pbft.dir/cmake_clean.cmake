file(REMOVE_RECURSE
  "CMakeFiles/qsel_pbft.dir/cluster.cpp.o"
  "CMakeFiles/qsel_pbft.dir/cluster.cpp.o.d"
  "CMakeFiles/qsel_pbft.dir/messages.cpp.o"
  "CMakeFiles/qsel_pbft.dir/messages.cpp.o.d"
  "CMakeFiles/qsel_pbft.dir/replica.cpp.o"
  "CMakeFiles/qsel_pbft.dir/replica.cpp.o.d"
  "libqsel_pbft.a"
  "libqsel_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
