file(REMOVE_RECURSE
  "libqsel_pbft.a"
)
