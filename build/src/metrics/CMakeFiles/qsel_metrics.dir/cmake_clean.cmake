file(REMOVE_RECURSE
  "CMakeFiles/qsel_metrics.dir/histogram.cpp.o"
  "CMakeFiles/qsel_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/qsel_metrics.dir/message_stats.cpp.o"
  "CMakeFiles/qsel_metrics.dir/message_stats.cpp.o.d"
  "CMakeFiles/qsel_metrics.dir/table.cpp.o"
  "CMakeFiles/qsel_metrics.dir/table.cpp.o.d"
  "libqsel_metrics.a"
  "libqsel_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
