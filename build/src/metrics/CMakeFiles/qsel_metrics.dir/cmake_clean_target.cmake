file(REMOVE_RECURSE
  "libqsel_metrics.a"
)
