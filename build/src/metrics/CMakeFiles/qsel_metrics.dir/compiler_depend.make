# Empty compiler generated dependencies file for qsel_metrics.
# This may be replaced when dependencies are built.
