# Empty compiler generated dependencies file for qsel_fd.
# This may be replaced when dependencies are built.
