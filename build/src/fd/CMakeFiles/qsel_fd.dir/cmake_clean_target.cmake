file(REMOVE_RECURSE
  "libqsel_fd.a"
)
