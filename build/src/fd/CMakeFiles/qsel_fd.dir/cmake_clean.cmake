file(REMOVE_RECURSE
  "CMakeFiles/qsel_fd.dir/failure_detector.cpp.o"
  "CMakeFiles/qsel_fd.dir/failure_detector.cpp.o.d"
  "libqsel_fd.a"
  "libqsel_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
