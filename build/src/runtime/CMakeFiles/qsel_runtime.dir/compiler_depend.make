# Empty compiler generated dependencies file for qsel_runtime.
# This may be replaced when dependencies are built.
