file(REMOVE_RECURSE
  "libqsel_runtime.a"
)
