file(REMOVE_RECURSE
  "CMakeFiles/qsel_runtime.dir/follower_cluster.cpp.o"
  "CMakeFiles/qsel_runtime.dir/follower_cluster.cpp.o.d"
  "CMakeFiles/qsel_runtime.dir/heartbeat.cpp.o"
  "CMakeFiles/qsel_runtime.dir/heartbeat.cpp.o.d"
  "CMakeFiles/qsel_runtime.dir/quorum_cluster.cpp.o"
  "CMakeFiles/qsel_runtime.dir/quorum_cluster.cpp.o.d"
  "libqsel_runtime.a"
  "libqsel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
