# Empty dependencies file for qsel_sim.
# This may be replaced when dependencies are built.
