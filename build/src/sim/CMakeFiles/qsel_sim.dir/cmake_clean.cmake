file(REMOVE_RECURSE
  "CMakeFiles/qsel_sim.dir/network.cpp.o"
  "CMakeFiles/qsel_sim.dir/network.cpp.o.d"
  "CMakeFiles/qsel_sim.dir/simulator.cpp.o"
  "CMakeFiles/qsel_sim.dir/simulator.cpp.o.d"
  "libqsel_sim.a"
  "libqsel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
