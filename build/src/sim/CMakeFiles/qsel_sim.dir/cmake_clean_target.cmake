file(REMOVE_RECURSE
  "libqsel_sim.a"
)
