file(REMOVE_RECURSE
  "CMakeFiles/qsel_app.dir/kv_store.cpp.o"
  "CMakeFiles/qsel_app.dir/kv_store.cpp.o.d"
  "CMakeFiles/qsel_app.dir/workload.cpp.o"
  "CMakeFiles/qsel_app.dir/workload.cpp.o.d"
  "libqsel_app.a"
  "libqsel_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsel_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
