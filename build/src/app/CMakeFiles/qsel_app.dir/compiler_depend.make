# Empty compiler generated dependencies file for qsel_app.
# This may be replaced when dependencies are built.
