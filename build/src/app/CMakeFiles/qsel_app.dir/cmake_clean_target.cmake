file(REMOVE_RECURSE
  "libqsel_app.a"
)
