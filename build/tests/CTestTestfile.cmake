# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/graph_tests[1]_include.cmake")
include("/root/repo/build/tests/metrics_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/fd_tests[1]_include.cmake")
include("/root/repo/build/tests/suspect_tests[1]_include.cmake")
include("/root/repo/build/tests/qs_tests[1]_include.cmake")
include("/root/repo/build/tests/fs_tests[1]_include.cmake")
include("/root/repo/build/tests/app_tests[1]_include.cmake")
include("/root/repo/build/tests/xpaxos_tests[1]_include.cmake")
include("/root/repo/build/tests/pbft_tests[1]_include.cmake")
include("/root/repo/build/tests/bchain_tests[1]_include.cmake")
include("/root/repo/build/tests/adversary_tests[1]_include.cmake")
