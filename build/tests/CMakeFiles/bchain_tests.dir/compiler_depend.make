# Empty compiler generated dependencies file for bchain_tests.
# This may be replaced when dependencies are built.
