file(REMOVE_RECURSE
  "CMakeFiles/bchain_tests.dir/bchain/bchain_cluster_test.cpp.o"
  "CMakeFiles/bchain_tests.dir/bchain/bchain_cluster_test.cpp.o.d"
  "CMakeFiles/bchain_tests.dir/bchain/qs_chain_test.cpp.o"
  "CMakeFiles/bchain_tests.dir/bchain/qs_chain_test.cpp.o.d"
  "bchain_tests"
  "bchain_tests.pdb"
  "bchain_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bchain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
