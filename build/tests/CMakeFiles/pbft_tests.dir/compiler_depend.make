# Empty compiler generated dependencies file for pbft_tests.
# This may be replaced when dependencies are built.
