file(REMOVE_RECURSE
  "CMakeFiles/pbft_tests.dir/pbft/pbft_cluster_test.cpp.o"
  "CMakeFiles/pbft_tests.dir/pbft/pbft_cluster_test.cpp.o.d"
  "pbft_tests"
  "pbft_tests.pdb"
  "pbft_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbft_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
