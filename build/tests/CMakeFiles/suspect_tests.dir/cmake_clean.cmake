file(REMOVE_RECURSE
  "CMakeFiles/suspect_tests.dir/suspect/suspicion_core_test.cpp.o"
  "CMakeFiles/suspect_tests.dir/suspect/suspicion_core_test.cpp.o.d"
  "CMakeFiles/suspect_tests.dir/suspect/suspicion_matrix_test.cpp.o"
  "CMakeFiles/suspect_tests.dir/suspect/suspicion_matrix_test.cpp.o.d"
  "CMakeFiles/suspect_tests.dir/suspect/update_message_test.cpp.o"
  "CMakeFiles/suspect_tests.dir/suspect/update_message_test.cpp.o.d"
  "suspect_tests"
  "suspect_tests.pdb"
  "suspect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
