# Empty compiler generated dependencies file for suspect_tests.
# This may be replaced when dependencies are built.
