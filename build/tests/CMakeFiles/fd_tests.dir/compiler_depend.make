# Empty compiler generated dependencies file for fd_tests.
# This may be replaced when dependencies are built.
