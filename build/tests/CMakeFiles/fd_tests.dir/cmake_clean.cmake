file(REMOVE_RECURSE
  "CMakeFiles/fd_tests.dir/fd/failure_detector_test.cpp.o"
  "CMakeFiles/fd_tests.dir/fd/failure_detector_test.cpp.o.d"
  "fd_tests"
  "fd_tests.pdb"
  "fd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
