file(REMOVE_RECURSE
  "CMakeFiles/qs_tests.dir/qs/gossip_order_test.cpp.o"
  "CMakeFiles/qs_tests.dir/qs/gossip_order_test.cpp.o.d"
  "CMakeFiles/qs_tests.dir/qs/partition_test.cpp.o"
  "CMakeFiles/qs_tests.dir/qs/partition_test.cpp.o.d"
  "CMakeFiles/qs_tests.dir/qs/quorum_cluster_test.cpp.o"
  "CMakeFiles/qs_tests.dir/qs/quorum_cluster_test.cpp.o.d"
  "CMakeFiles/qs_tests.dir/qs/quorum_selector_test.cpp.o"
  "CMakeFiles/qs_tests.dir/qs/quorum_selector_test.cpp.o.d"
  "CMakeFiles/qs_tests.dir/qs/spec_properties_test.cpp.o"
  "CMakeFiles/qs_tests.dir/qs/spec_properties_test.cpp.o.d"
  "qs_tests"
  "qs_tests.pdb"
  "qs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
