file(REMOVE_RECURSE
  "CMakeFiles/adversary_tests.dir/adversary/game_test.cpp.o"
  "CMakeFiles/adversary_tests.dir/adversary/game_test.cpp.o.d"
  "adversary_tests"
  "adversary_tests.pdb"
  "adversary_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
