
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xpaxos/cluster_test.cpp" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/cluster_test.cpp.o.d"
  "/root/repo/tests/xpaxos/messages_test.cpp" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/messages_test.cpp.o" "gcc" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/messages_test.cpp.o.d"
  "/root/repo/tests/xpaxos/view_map_test.cpp" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/view_map_test.cpp.o" "gcc" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/view_map_test.cpp.o.d"
  "/root/repo/tests/xpaxos/xft_mode_test.cpp" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/xft_mode_test.cpp.o" "gcc" "tests/CMakeFiles/xpaxos_tests.dir/xpaxos/xft_mode_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xpaxos/CMakeFiles/qsel_xpaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/qsel_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/qs/CMakeFiles/qsel_qs.dir/DependInfo.cmake"
  "/root/repo/build/src/suspect/CMakeFiles/qsel_suspect.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qsel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/qsel_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/qsel_app.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/qsel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/qsel_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qsel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qsel_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
