file(REMOVE_RECURSE
  "CMakeFiles/xpaxos_tests.dir/xpaxos/cluster_test.cpp.o"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/cluster_test.cpp.o.d"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/messages_test.cpp.o"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/messages_test.cpp.o.d"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/view_map_test.cpp.o"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/view_map_test.cpp.o.d"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/xft_mode_test.cpp.o"
  "CMakeFiles/xpaxos_tests.dir/xpaxos/xft_mode_test.cpp.o.d"
  "xpaxos_tests"
  "xpaxos_tests.pdb"
  "xpaxos_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpaxos_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
