# Empty compiler generated dependencies file for xpaxos_tests.
# This may be replaced when dependencies are built.
