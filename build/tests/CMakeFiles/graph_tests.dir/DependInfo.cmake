
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/independent_set_test.cpp" "tests/CMakeFiles/graph_tests.dir/graph/independent_set_test.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/independent_set_test.cpp.o.d"
  "/root/repo/tests/graph/line_subgraph_test.cpp" "tests/CMakeFiles/graph_tests.dir/graph/line_subgraph_test.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/line_subgraph_test.cpp.o.d"
  "/root/repo/tests/graph/simple_graph_test.cpp" "tests/CMakeFiles/graph_tests.dir/graph/simple_graph_test.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/simple_graph_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qsel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
