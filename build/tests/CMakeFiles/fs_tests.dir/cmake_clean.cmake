file(REMOVE_RECURSE
  "CMakeFiles/fs_tests.dir/fs/follower_byzantine_test.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/follower_byzantine_test.cpp.o.d"
  "CMakeFiles/fs_tests.dir/fs/follower_cluster_test.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/follower_cluster_test.cpp.o.d"
  "CMakeFiles/fs_tests.dir/fs/follower_selector_test.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/follower_selector_test.cpp.o.d"
  "CMakeFiles/fs_tests.dir/fs/theorem9_simulation_test.cpp.o"
  "CMakeFiles/fs_tests.dir/fs/theorem9_simulation_test.cpp.o.d"
  "fs_tests"
  "fs_tests.pdb"
  "fs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
