# Empty dependencies file for xpaxos_kv.
# This may be replaced when dependencies are built.
