file(REMOVE_RECURSE
  "CMakeFiles/xpaxos_kv.dir/xpaxos_kv.cpp.o"
  "CMakeFiles/xpaxos_kv.dir/xpaxos_kv.cpp.o.d"
  "xpaxos_kv"
  "xpaxos_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpaxos_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
