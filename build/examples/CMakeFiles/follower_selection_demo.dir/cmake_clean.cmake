file(REMOVE_RECURSE
  "CMakeFiles/follower_selection_demo.dir/follower_selection_demo.cpp.o"
  "CMakeFiles/follower_selection_demo.dir/follower_selection_demo.cpp.o.d"
  "follower_selection_demo"
  "follower_selection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/follower_selection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
