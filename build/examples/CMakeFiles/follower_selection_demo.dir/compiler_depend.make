# Empty compiler generated dependencies file for follower_selection_demo.
# This may be replaced when dependencies are built.
