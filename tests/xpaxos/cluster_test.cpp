#include "xpaxos/cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::xpaxos {
namespace {

constexpr SimDuration kMs = 1'000'000;

ClusterConfig base_config(ProcessId n, int f, QuorumPolicy policy,
                          std::uint64_t seed = 1) {
  ClusterConfig config;
  config.n = n;
  config.f = f;
  config.policy = policy;
  config.seed = seed;
  config.clients = 1;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.fd.initial_timeout = 10 * kMs;
  config.view_change_retry = 40 * kMs;
  config.client_retry = 60 * kMs;
  return config;
}

// Fig. 2: fault-free normal case. Requests complete, histories agree, no
// view changes happen, and the message pattern is quorum-confined: the
// replica outside the active quorum receives only client broadcasts.
TEST(XpaxosClusterTest, NormalCaseCommits) {
  Cluster cluster(base_config(4, 1, QuorumPolicy::kQuorumSelection));
  cluster.start_clients(20);
  cluster.simulator().run_until(3000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 20u);
  EXPECT_EQ(cluster.total_view_changes(), 0u);
  EXPECT_TRUE(cluster.histories_consistent());
  for (ProcessId id : ProcessSet{0, 1, 2})
    EXPECT_EQ(cluster.replica(id).requests_executed(), 20u);
  // Replica 3 is passive: it never executes and nobody sends it protocol
  // messages (only the client's broadcasts reach it).
  EXPECT_EQ(cluster.replica(3).requests_executed(), 0u);
  const auto& stats = cluster.network().stats();
  EXPECT_EQ(stats.by_link(0, 3) + stats.by_link(1, 3) + stats.by_link(2, 3),
            0u);
  // No false suspicions in the fault-free run.
  for (ProcessId id = 0; id < 4; ++id)
    EXPECT_TRUE(cluster.replica(id).failure_detector().suspected().empty());
}

TEST(XpaxosClusterTest, ExecutionMatchesKvSemantics) {
  auto config = base_config(4, 1, QuorumPolicy::kQuorumSelection);
  Cluster cluster(config);
  cluster.start_clients(50);
  cluster.simulator().run_until(5000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 50u);
  // Replay the same workload against a local store; the replicated state
  // digest must match (same seed => same operation stream).
  app::Workload workload([&] {
    auto wc = config.workload;
    wc.seed = config.workload.seed + 0;  // client 0's stream
    return wc;
  }());
  app::KvStore reference;
  for (int i = 0; i < 50; ++i) reference.apply(workload.next());
  EXPECT_EQ(cluster.replica(0).store().state_digest(),
            reference.state_digest());
  EXPECT_EQ(cluster.replica(1).store().state_digest(),
            reference.state_digest());
}

// Fig. 3: the PREPARE to one quorum member is delayed so the COMMITs
// overtake it. The member acts on the embedded PREPARE (third subtlety)
// and the request still completes without any quorum change; the late
// PREPARE then cancels the suspicion against the leader.
TEST(XpaxosClusterTest, DelayedPrepareHandledViaCommit) {
  auto config = base_config(4, 1, QuorumPolicy::kQuorumSelection);
  config.fd.initial_timeout = 30 * kMs;
  Cluster cluster(config);
  // Delay only leader->replica2 by 8 ms (under the FD timeout): commits
  // from replica 1 (1 ms + 1 ms) arrive at 2 well before the prepare.
  cluster.network().set_link_extra_delay(0, 2, 8 * kMs);
  cluster.start_clients(5);
  cluster.simulator().run_until(2000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 5u);
  EXPECT_EQ(cluster.total_view_changes(), 0u);
  EXPECT_EQ(cluster.replica(2).requests_executed(), 5u);
  EXPECT_TRUE(cluster.histories_consistent());
}

TEST(XpaxosClusterTest, CrashedQuorumMemberTriggersQuorumSelection) {
  Cluster cluster(base_config(4, 1, QuorumPolicy::kQuorumSelection));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  const std::uint64_t before = cluster.total_completed();
  EXPECT_GT(before, 0u);
  EXPECT_LT(before, 60u);  // crash lands mid-stream
  cluster.network().crash(2);
  cluster.simulator().run_until(5000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  EXPECT_TRUE(cluster.histories_consistent());
  for (ProcessId id : cluster.alive_replicas()) {
    EXPECT_FALSE(cluster.replica(id).active_quorum().contains(2))
        << "replica " << id << " still runs a quorum with the crashed member";
  }
  // Quorum Selection identifies the culprit: a handful of view changes at
  // most (the enumeration baseline may need many more).
  EXPECT_LE(cluster.max_view_changes(), 3u);
}

TEST(XpaxosClusterTest, CrashedLeaderRecovered) {
  Cluster cluster(base_config(4, 1, QuorumPolicy::kQuorumSelection, 5));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(0);  // the leader of view 1
  cluster.simulator().run_until(6000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  EXPECT_TRUE(cluster.histories_consistent());
  for (ProcessId id : cluster.alive_replicas())
    EXPECT_NE(cluster.replica(id).leader(), 0u);
}

TEST(XpaxosClusterTest, EnumerationPolicyAlsoRecoversButSlower) {
  auto run = [](QuorumPolicy policy) {
    Cluster cluster(base_config(5, 2, policy, 9));
    cluster.start_clients(40);
    cluster.simulator().run_until(40 * kMs);
    cluster.network().crash(1);
    cluster.simulator().run_until(150 * kMs);
    cluster.network().crash(2);
    cluster.simulator().run_until(15000 * kMs);
    EXPECT_EQ(cluster.total_completed(), 40u)
        << "policy " << static_cast<int>(policy);
    EXPECT_TRUE(cluster.histories_consistent());
    return cluster.max_view_changes();
  };
  const std::uint64_t qs_changes = run(QuorumPolicy::kQuorumSelection);
  const std::uint64_t enum_changes = run(QuorumPolicy::kEnumeration);
  // The enumeration baseline walks through quorums containing crashed
  // processes; Quorum Selection jumps straight to a working one.
  EXPECT_GT(enum_changes, qs_changes);
}

// A Byzantine leader equivocates: different PREPAREs for the same slot to
// different quorum members. The conflicting embedded PREPAREs in COMMIT
// messages are a provable commission failure: the leader is DETECTED,
// excluded by Quorum Selection, and the system reconfigures around it.
TEST(XpaxosClusterTest, EquivocatingLeaderDetectedAndExcluded) {
  struct EquivocatingLeader final : sim::Actor {
    sim::Network& net;
    crypto::Signer signer;
    bool fired = false;
    EquivocatingLeader(sim::Network& n, const crypto::KeyRegistry& keys)
        : net(n), signer(keys, 0) {}
    void on_message(ProcessId, const sim::PayloadPtr& message) override {
      const auto request =
          std::dynamic_pointer_cast<const smr::ClientRequest>(message);
      if (request == nullptr || fired) return;
      fired = true;
      auto conflicting = *request;
      conflicting.op.push_back(0xEE);
      const auto pa = PrepareMessage::make(signer, 1, 1, *request);
      const auto pb = PrepareMessage::make(signer, 1, 1, conflicting);
      net.send(0, 1, std::make_shared<PrepareMessage>(pa));
      net.send(0, 2, std::make_shared<PrepareMessage>(pb));
    }
  };

  Cluster cluster(base_config(4, 1, QuorumPolicy::kQuorumSelection),
                  ProcessSet{0});
  EquivocatingLeader byzantine(cluster.network(), cluster.keys());
  cluster.network().attach(0, byzantine);
  cluster.start_clients(5);
  cluster.simulator().run_until(8000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 5u);
  EXPECT_TRUE(cluster.histories_consistent());
  // At least one honest replica holds a proof of misbehaviour...
  bool detected = false;
  for (ProcessId id : cluster.alive_replicas())
    detected |= cluster.replica(id)
                    .failure_detector()
                    .detected_set()
                    .contains(0);
  EXPECT_TRUE(detected);
  // ...and the installed quorum excludes the equivocator.
  for (ProcessId id : cluster.alive_replicas())
    EXPECT_FALSE(cluster.replica(id).active_quorum().contains(0));
}

TEST(XpaxosClusterTest, MultipleClientsConsistent) {
  auto config = base_config(7, 2, QuorumPolicy::kQuorumSelection, 11);
  config.clients = 3;
  Cluster cluster(config);
  cluster.start_clients(15);
  cluster.simulator().run_until(400 * kMs);
  cluster.network().crash(3);
  cluster.simulator().run_until(12000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 45u);
  EXPECT_TRUE(cluster.histories_consistent());
}

TEST(XpaxosClusterTest, Deterministic) {
  auto run = [] {
    Cluster cluster(base_config(4, 1, QuorumPolicy::kQuorumSelection, 23));
    cluster.start_clients(10);
    cluster.simulator().run_until(150 * kMs);
    cluster.network().crash(1);
    cluster.simulator().run_until(4000 * kMs);
    return std::make_tuple(cluster.total_completed(),
                           cluster.total_view_changes(),
                           cluster.network().stats().total_messages());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace qsel::xpaxos
