// XPaxos in its native XFT setting: n = 2f + 1 replicas tolerating f
// arbitrary faults without trusted hardware (Section I: such systems
// "require replies from only n - f replicas", and quorum selection lets
// them drop about 1/2 of the inter-replica messages).
#include "xpaxos/cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::xpaxos {
namespace {

constexpr SimDuration kMs = 1'000'000;

ClusterConfig xft_config(ProcessId n, int f, std::uint64_t seed = 1) {
  ClusterConfig config;
  config.n = n;
  config.f = f;
  config.policy = QuorumPolicy::kQuorumSelection;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.fd.initial_timeout = 10 * kMs;
  config.view_change_retry = 40 * kMs;
  config.client_retry = 60 * kMs;
  return config;
}

TEST(XftModeTest, ThreeReplicasNormalCase) {
  Cluster cluster(xft_config(3, 1));  // n = 2f+1, quorum of 2
  cluster.start_clients(25);
  cluster.simulator().run_until(4000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 25u);
  EXPECT_EQ(cluster.total_view_changes(), 0u);
  EXPECT_TRUE(cluster.histories_consistent());
  // Only the 2-member quorum executes; the third replica idles.
  EXPECT_EQ(cluster.replica(0).requests_executed(), 25u);
  EXPECT_EQ(cluster.replica(1).requests_executed(), 25u);
  EXPECT_EQ(cluster.replica(2).requests_executed(), 0u);
}

TEST(XftModeTest, CrashInTinyQuorumRecovered) {
  Cluster cluster(xft_config(3, 1, 3));
  cluster.start_clients(50);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(1);
  cluster.simulator().run_until(8000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 50u);
  EXPECT_TRUE(cluster.histories_consistent());
  for (ProcessId id : cluster.alive_replicas())
    EXPECT_FALSE(cluster.replica(id).active_quorum().contains(1));
}

TEST(XftModeTest, FiveReplicasTwoCrashes) {
  Cluster cluster(xft_config(5, 2, 7));
  cluster.start_clients(0);  // open-ended traffic keeps expectations alive
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(0);
  cluster.simulator().run_until(300 * kMs);
  cluster.network().crash(2);
  cluster.simulator().run_until(10000 * kMs);
  const std::uint64_t mid = cluster.total_completed();
  EXPECT_GT(mid, 0u);
  EXPECT_TRUE(cluster.histories_consistent());
  // With requests flowing, the active quorum excludes both crashed
  // replicas (with an idle application a lapsed suspicion may legally let
  // a silent process back in — no expectations, no suspicions).
  const ProcessSet final_quorum =
      cluster.replica(cluster.alive_replicas().min()).active_quorum();
  EXPECT_FALSE(final_quorum.contains(0));
  EXPECT_FALSE(final_quorum.contains(2));
  // And progress continues.
  cluster.simulator().run_until(12000 * kMs);
  EXPECT_GT(cluster.total_completed(), mid);
}

// The ~1/2 message-reduction claim for n = 2f+1: quorum messages per
// request are (q-1) prepares + q(q-1) commits = 1 + 2 = 3 at f = 1,
// versus 2 + 6 = 8 for full-broadcast over all three replicas.
TEST(XftModeTest, HalfTheMessagesVersusFullBroadcast) {
  Cluster cluster(xft_config(3, 1, 9));
  cluster.start_clients(40);
  cluster.simulator().run_until(5000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 40u);
  const auto& stats = cluster.network().stats();
  EXPECT_EQ(stats.by_type("xpaxos.prepare"), 40u);         // leader -> 1
  EXPECT_EQ(stats.by_type("xpaxos.commit"), 40u * 2);      // 2 * (q-1)
  // Full broadcast over n = 3 would use 2 prepares + 6 commits per
  // request; the active quorum runs at 3/8 of that.
}

}  // namespace
}  // namespace qsel::xpaxos
