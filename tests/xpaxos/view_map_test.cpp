#include "xpaxos/view_map.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qsel::xpaxos {
namespace {

TEST(ViewMapTest, FirstViewUsesPrefixQuorum) {
  const ViewMap map(4, 1);
  EXPECT_EQ(map.quorum_count(), 4u);  // C(4,3)
  EXPECT_EQ(map.quorum_of(1), (ProcessSet{0, 1, 2}));
  EXPECT_EQ(map.leader_of(1), 0u);
}

TEST(ViewMapTest, EnumeratesAllQuorumsBeforeCycling) {
  const ViewMap map(5, 2);  // C(5,3) = 10 quorums
  EXPECT_EQ(map.quorum_count(), 10u);
  std::set<std::uint64_t> seen;
  for (ViewId v = 1; v <= 10; ++v) {
    const ProcessSet q = map.quorum_of(v);
    EXPECT_EQ(q.size(), 3);
    EXPECT_TRUE(seen.insert(q.mask()).second) << "view " << v;
  }
  // Round robin after exhaustion (Section V-B).
  EXPECT_EQ(map.quorum_of(11), map.quorum_of(1));
  EXPECT_EQ(map.quorum_of(25), map.quorum_of(5));
}

TEST(ViewMapTest, LeaderIsLowestIdInQuorum) {
  const ViewMap map(5, 2);
  for (ViewId v = 1; v <= 10; ++v)
    EXPECT_EQ(map.leader_of(v), map.quorum_of(v).min());
}

TEST(ViewMapTest, FirstViewFromFindsExactQuorum) {
  const ViewMap map(5, 2);
  const ProcessSet target = map.quorum_of(7);
  EXPECT_EQ(map.first_view_from(1, target), 7u);
  EXPECT_EQ(map.first_view_from(7, target), 7u);
  // Past it: next cycle.
  EXPECT_EQ(map.first_view_from(8, target), 17u);
  EXPECT_EQ(map.quorum_of(map.first_view_from(8, target)), target);
}

TEST(ViewMapTest, FirstViewFromIsMinimal) {
  const ViewMap map(6, 2);
  for (ViewId from = 1; from < 20; from += 3) {
    const ProcessSet target = map.quorum_of(from + 5);
    const ViewId found = map.first_view_from(from, target);
    EXPECT_GE(found, from);
    EXPECT_EQ(map.quorum_of(found), target);
    for (ViewId v = from; v < found; ++v)
      EXPECT_NE(map.quorum_of(v), target) << "missed earlier view " << v;
  }
}

}  // namespace
}  // namespace qsel::xpaxos
