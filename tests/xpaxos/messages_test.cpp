#include "xpaxos/messages.hpp"

#include <gtest/gtest.h>

namespace qsel::xpaxos {
namespace {

struct Fixture {
  crypto::KeyRegistry keys{5, 1};  // 4 replicas + 1 client (id 4)
  crypto::Signer leader{keys, 0};
  crypto::Signer replica1{keys, 1};
  crypto::Signer client{keys, 4};

  std::shared_ptr<const ClientRequest> request() const {
    return ClientRequest::make(client, 7, {1, 2, 3});
  }
};

TEST(XpaxosMessagesTest, ClientRequestVerify) {
  Fixture fx;
  const auto req = fx.request();
  EXPECT_TRUE(req->verify(fx.leader));
  auto tampered = std::make_shared<ClientRequest>(*req);
  tampered->op.push_back(9);
  EXPECT_FALSE(tampered->verify(fx.leader));
}

TEST(XpaxosMessagesTest, PrepareVerifyBindsLeader) {
  Fixture fx;
  const auto prepare = PrepareMessage::make(fx.leader, 1, 5, *fx.request());
  EXPECT_TRUE(prepare.verify(fx.replica1, 4, 0));
  EXPECT_FALSE(prepare.verify(fx.replica1, 4, 1));  // wrong expected leader
  PrepareMessage forged = prepare;
  forged.slot = 6;
  EXPECT_FALSE(forged.verify(fx.replica1, 4, 0));
}

TEST(XpaxosMessagesTest, SameProposalIgnoresNothing) {
  Fixture fx;
  const auto a = PrepareMessage::make(fx.leader, 1, 5, *fx.request());
  auto b = a;
  EXPECT_TRUE(a.same_proposal(b));
  b.requests[0].op.push_back(1);
  EXPECT_FALSE(a.same_proposal(b));
}

TEST(XpaxosMessagesTest, BatchedPrepareCarriesEveryRequest) {
  Fixture fx;
  std::vector<BatchEntry> batch{BatchEntry{4, 1, {1}}, BatchEntry{4, 2, {2}},
                                BatchEntry{4, 3, {3}}};
  const auto prepare = PrepareMessage::make_batch(fx.leader, 1, 5, batch);
  EXPECT_TRUE(prepare.verify(fx.replica1, 5, 0));
  EXPECT_EQ(prepare.requests.size(), 3u);
  EXPECT_TRUE(prepare.contains(4, 2));
  EXPECT_FALSE(prepare.contains(4, 9));
  // Reordering the batch is a different proposal (execution order binds).
  PrepareMessage shuffled = prepare;
  std::swap(shuffled.requests[0], shuffled.requests[1]);
  EXPECT_FALSE(prepare.same_proposal(shuffled));
  EXPECT_FALSE(shuffled.verify(fx.replica1, 5, 0));  // signature binds order
}

TEST(XpaxosMessagesTest, EmptyBatchNeverVerifies) {
  Fixture fx;
  auto prepare = PrepareMessage::make(fx.leader, 1, 5, *fx.request());
  prepare.requests.clear();
  EXPECT_FALSE(prepare.verify(fx.replica1, 5, 0));
}

TEST(XpaxosMessagesTest, CommitEmbedsPrepare) {
  Fixture fx;
  const auto prepare = PrepareMessage::make(fx.leader, 1, 5, *fx.request());
  const auto commit = CommitMessage::make(fx.replica1, prepare);
  EXPECT_EQ(commit->sender, 1u);
  EXPECT_TRUE(commit->verify_sender(fx.leader, 4));
  EXPECT_TRUE(commit->prepare.verify(fx.leader, 4, 0));
  // Byzantine sender embeds a doctored prepare: sender signature still
  // verifies (it signed what it sent) but the embedded prepare fails.
  PrepareMessage doctored = prepare;
  doctored.requests[0].op.push_back(9);
  const auto malformed = CommitMessage::make(fx.replica1, doctored);
  EXPECT_TRUE(malformed->verify_sender(fx.leader, 4));
  EXPECT_FALSE(malformed->prepare.verify(fx.leader, 4, 0));
}

TEST(XpaxosMessagesTest, ViewChangeRoundTrip) {
  Fixture fx;
  std::vector<PrepareMessage> prepared{
      PrepareMessage::make(fx.leader, 1, 1, *fx.request()),
      PrepareMessage::make(fx.leader, 1, 2, *fx.request())};
  const auto vc = ViewChangeMessage::make(fx.replica1, 3, prepared);
  EXPECT_TRUE(vc->verify(fx.leader, 4));
  EXPECT_EQ(vc->prepared.size(), 2u);
  auto tampered = std::make_shared<ViewChangeMessage>(*vc);
  tampered->new_view = 4;
  EXPECT_FALSE(tampered->verify(fx.leader, 4));
}

TEST(XpaxosMessagesTest, NewViewRoundTrip) {
  Fixture fx;
  std::vector<PrepareMessage> reproposals{
      PrepareMessage::make(fx.replica1, 2, 1, *fx.request())};
  const auto nv = NewViewMessage::make(fx.replica1, 2, reproposals);
  EXPECT_TRUE(nv->verify(fx.leader, 4));
  auto tampered = std::make_shared<NewViewMessage>(*nv);
  tampered->reproposals.clear();
  EXPECT_FALSE(tampered->verify(fx.leader, 4));
}

}  // namespace
}  // namespace qsel::xpaxos
