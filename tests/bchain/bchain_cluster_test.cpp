#include "bchain/cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::bchain {
namespace {

constexpr SimDuration kMs = 1'000'000;

ClusterConfig base_config(ProcessId n, int f, std::uint64_t seed = 1) {
  ClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.ack_timeout = 25 * kMs;
  config.client_retry = 60 * kMs;
  return config;
}

TEST(BchainClusterTest, NormalCaseCommits) {
  Cluster cluster(base_config(4, 1));
  cluster.start_clients(20);
  cluster.simulator().run_until(3000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 20u);
  EXPECT_EQ(cluster.max_reconfigurations(), 0u);
}

// The chain property for E5: per request, (q-1) CHAIN hops down and (q-1)
// ACK hops back — linear in the quorum, not quadratic in n.
TEST(BchainClusterTest, ChainMessageComplexity) {
  Cluster cluster(base_config(7, 2));  // q = 5
  cluster.start_clients(10);
  cluster.simulator().run_until(3000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 10u);
  const auto& stats = cluster.network().stats();
  EXPECT_EQ(stats.by_type("bchain.chain"), 10u * 4);
  EXPECT_EQ(stats.by_type("bchain.ack"), 10u * 4);
}

// Reconfiguration by replacement: a crashed chain member is evicted and a
// spare promoted; requests keep completing.
TEST(BchainClusterTest, CrashedChainMemberReplaced) {
  Cluster cluster(base_config(4, 1, 3));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(1);
  cluster.simulator().run_until(8000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  EXPECT_GE(cluster.max_reconfigurations(), 1u);
  for (ProcessId id : cluster.alive_replicas()) {
    const auto& chain = cluster.replica(id).chain();
    EXPECT_EQ(std::count(chain.begin(), chain.end(), 1), 0)
        << "crashed node still in replica " << id << "'s chain";
  }
}

// The weakness the paper points out: when the blamed node was actually
// fine (the real culprit keeps misbehaving), replacement churns through
// spares instead of isolating the failure.
TEST(BchainClusterTest, ReplacementChurnsWithoutIsolatingCulprit) {
  Cluster cluster(base_config(7, 2, 5));
  cluster.start_clients(0);  // unbounded stream
  cluster.simulator().run_until(40 * kMs);
  // Node 1 drops everything it forwards down the chain but stays "alive":
  // its predecessor blames node 1's successor-side silence on timeouts.
  for (ProcessId to = 0; to < 7; ++to)
    if (to != 1) cluster.network().set_link_enabled(1, to, false);
  cluster.simulator().run_until(4000 * kMs);
  EXPECT_GE(cluster.max_reconfigurations(), 1u);
  // Progress resumes once the chain no longer routes through node 1.
  const std::uint64_t completed_mid = cluster.total_completed();
  cluster.simulator().run_until(8000 * kMs);
  EXPECT_GT(cluster.total_completed(), completed_mid);
}

TEST(BchainClusterTest, StateConsistentAcrossChain) {
  Cluster cluster(base_config(4, 1, 9));
  cluster.start_clients(25);
  cluster.simulator().run_until(5000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 25u);
  const auto& chain = cluster.replica(0).chain();
  const auto digest = cluster.replica(chain.front()).store().state_digest();
  for (ProcessId member : chain)
    EXPECT_EQ(cluster.replica(member).store().state_digest(), digest);
}

}  // namespace
}  // namespace qsel::bchain
