#include "bchain/qs_cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::bchain {
namespace {

constexpr SimDuration kMs = 1'000'000;

QsClusterConfig base_config(ProcessId n, int f, std::uint64_t seed = 1) {
  QsClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.fd.initial_timeout = 20 * kMs;
  config.client_retry = 60 * kMs;
  return config;
}

TEST(QsChainTest, NormalCaseCommitsWithChainComplexity) {
  QsChainCluster cluster(base_config(7, 2));
  cluster.start_clients(20);
  cluster.simulator().run_until(5000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 20u);
  EXPECT_EQ(cluster.max_reconfigurations(), 0u);
  // Same data-path complexity as the replacement-based baseline:
  // (q-1) chain hops + (q-1) ack hops per request.
  const auto& stats = cluster.network().stats();
  EXPECT_EQ(stats.by_type("bchain.chain"), 20u * 4);
  EXPECT_EQ(stats.by_type("bchain.ack"), 20u * 4);
  EXPECT_EQ(stats.by_type("bchain.reconfig"), 0u);
}

TEST(QsChainTest, CrashedChainMemberExcludedViaSuspicions) {
  QsChainCluster cluster(base_config(4, 1, 3));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(1);
  cluster.simulator().run_until(10000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  for (ProcessId id : cluster.alive_replicas()) {
    const auto& chain = cluster.replica(id).chain();
    EXPECT_EQ(std::count(chain.begin(), chain.end(), 1), 0)
        << "crashed node still in replica " << id << "'s chain";
  }
  // A few suspicion-driven reconfigurations suffice. Chains attribute
  // failures worse than the all-to-all quorum pattern of Fig. 2 — a
  // starving member can only suspect the *head* even when the break is
  // mid-chain, so transient false suspicions occur and are healed by an
  // epoch change; the count stays far below the C(n,q)-style churn of
  // blind enumeration/replacement.
  EXPECT_LE(cluster.max_reconfigurations(), 6u);
}

TEST(QsChainTest, CrashedHeadExcluded) {
  QsChainCluster cluster(base_config(4, 1, 5));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(0);  // the head
  cluster.simulator().run_until(10000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  for (ProcessId id : cluster.alive_replicas())
    EXPECT_NE(cluster.replica(id).head(), 0u);
}

// The scenario that breaks blind replacement: a chain member that keeps
// its links alive but drops everything it forwards. Quorum selection pins
// the suspicions on the culprit (its neighbours' expectations time out
// against *it*) and converges; no spare-cycling.
TEST(QsChainTest, MisbehavingForwarderPinnedBySuspicions) {
  QsChainCluster cluster(base_config(7, 2, 7));
  cluster.start_clients(0);
  cluster.simulator().run_until(40 * kMs);
  for (ProcessId to = 0; to < 7; ++to)
    if (to != 1) cluster.network().set_link_enabled(1, to, false);
  cluster.simulator().run_until(3000 * kMs);
  const std::uint64_t completed_mid = cluster.total_completed();
  EXPECT_GT(completed_mid, 0u);
  for (ProcessId id : cluster.alive_replicas()) {
    if (id == 1) continue;  // the culprit's own view is unreliable
    const auto& chain = cluster.replica(id).chain();
    EXPECT_EQ(std::count(chain.begin(), chain.end(), 1), 0)
        << "culprit still in replica " << id << "'s chain";
  }
  // Progress continues.
  cluster.simulator().run_until(5000 * kMs);
  EXPECT_GT(cluster.total_completed(), completed_mid);
}

TEST(QsChainTest, ConfigIdSharedAcrossReplicas) {
  QsChainCluster cluster(base_config(4, 1, 9));
  cluster.start_clients(30);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(2);
  cluster.simulator().run_until(5000 * kMs);
  const std::uint64_t config_id = cluster.replica(0).config_id();
  for (ProcessId id : cluster.alive_replicas())
    EXPECT_EQ(cluster.replica(id).config_id(), config_id);
}

TEST(QsChainTest, StateConsistentAcrossExecutingReplicas) {
  QsChainCluster cluster(base_config(4, 1, 11));
  cluster.start_clients(25);
  cluster.simulator().run_until(5000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 25u);
  const auto digest = cluster.replica(0).store().state_digest();
  for (ProcessId id : cluster.alive_replicas()) {
    if (cluster.replica(id).last_executed() == 0) continue;  // passive
    EXPECT_EQ(cluster.replica(id).store().state_digest(), digest);
  }
}

}  // namespace
}  // namespace qsel::bchain
