#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qsel::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(sha256({}).to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(sha256(bytes_of("abc")).to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      sha256(bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .to_hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 hasher;
    hasher.update(std::span(data.data(), split));
    hasher.update(std::span(data.data() + split, data.size() - split));
    EXPECT_EQ(hasher.finish(), sha256(data)) << "split=" << split;
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 56-byte padding boundary and the 64-byte block size:
  // bulk updates must agree with byte-at-a-time updates.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 121u}) {
    const std::vector<std::uint8_t> data(len, 'x');
    Sha256 a;
    a.update(data);
    const Digest one = a.finish();
    Sha256 b;
    for (std::uint8_t byte : data) b.update(std::span(&byte, 1));
    EXPECT_EQ(b.finish(), one) << "len=" << len;
  }
}

TEST(Sha256Test, HasherIsReusableAfterFinish) {
  Sha256 hasher;
  hasher.update(bytes_of("abc"));
  const Digest first = hasher.finish();
  hasher.update(bytes_of("abc"));
  EXPECT_EQ(hasher.finish(), first);
}

TEST(DigestTest, Prefix64AndHex) {
  const Digest d = sha256(bytes_of("abc"));
  EXPECT_EQ(d.prefix64(), 0xba7816bf8f01cfeaULL);
  EXPECT_EQ(d.to_hex().size(), 64u);
}

TEST(DigestTest, OrderingIsDeterministic) {
  const Digest a = sha256(bytes_of("a"));
  const Digest b = sha256(bytes_of("b"));
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
}

}  // namespace
}  // namespace qsel::crypto
