#include "crypto/signer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qsel::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(SignerTest, SignVerifyRoundTrip) {
  const KeyRegistry registry(4, 1);
  const Signer signer(registry, 2);
  const auto msg = bytes_of("PREPARE view=1 slot=7");
  const Signature sig = signer.sign(msg);
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(signer.verify(msg, sig));
}

TEST(SignerTest, TamperedMessageFails) {
  const KeyRegistry registry(4, 1);
  const Signer signer(registry, 0);
  const Signature sig = signer.sign(bytes_of("original"));
  EXPECT_FALSE(signer.verify(bytes_of("tampered"), sig));
}

TEST(SignerTest, ForgedSignerIdFails) {
  const KeyRegistry registry(4, 1);
  const Signer byzantine(registry, 3);
  const auto msg = bytes_of("equivocation");
  // A Byzantine process signs with its own key but claims another id.
  Signature forged = byzantine.sign(msg);
  forged.signer = 1;
  EXPECT_FALSE(byzantine.verify(msg, forged));
}

TEST(SignerTest, UnknownSignerIdFails) {
  const KeyRegistry registry(4, 1);
  const Signer signer(registry, 0);
  Signature sig = signer.sign(bytes_of("m"));
  sig.signer = 99;
  EXPECT_FALSE(signer.verify(bytes_of("m"), sig));
}

TEST(SignerTest, KeysDifferAcrossProcessesAndSeeds) {
  const KeyRegistry a(3, 1);
  const KeyRegistry b(3, 2);
  const auto msg = bytes_of("m");
  EXPECT_NE(a.sign(0, msg).tag, a.sign(1, msg).tag);
  EXPECT_NE(a.sign(0, msg).tag, b.sign(0, msg).tag);
}

TEST(SignerTest, DeterministicAcrossRegistryCopies) {
  const KeyRegistry a(3, 7);
  const KeyRegistry b(3, 7);
  const auto msg = bytes_of("m");
  EXPECT_EQ(a.sign(2, msg).tag, b.sign(2, msg).tag);
  EXPECT_TRUE(b.verify(msg, a.sign(2, msg)));
}

}  // namespace
}  // namespace qsel::crypto
