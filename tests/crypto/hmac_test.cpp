#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qsel::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// RFC 4231 test vectors for HMAC-SHA256.
TEST(HmacTest, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key, bytes_of("Hi There")).to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))
          .to_hex(),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> message(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, message).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(hmac_sha256(key, bytes_of("Test Using Larger Than Block-Size Key "
                                      "- Hash Key First"))
                .to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentTags) {
  const auto msg = bytes_of("message");
  EXPECT_NE(hmac_sha256(bytes_of("key1"), msg),
            hmac_sha256(bytes_of("key2"), msg));
}

TEST(HmacTest, DifferentMessagesDifferentTags) {
  const auto key = bytes_of("key");
  EXPECT_NE(hmac_sha256(key, bytes_of("a")), hmac_sha256(key, bytes_of("b")));
}

}  // namespace
}  // namespace qsel::crypto
