#include "app/zipf.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "common/rng.hpp"

namespace qsel::app {
namespace {

TEST(ZipfSamplerTest, DeterministicGivenSeed) {
  ZipfSampler zipf(100, 1.2);
  Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

TEST(ZipfSamplerTest, ThetaZeroIsRoughlyUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(3);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[zipf.sample(rng)];
  for (std::uint32_t k = 0; k < 10; ++k) {
    EXPECT_GT(counts[k], 700) << "rank " << k;
    EXPECT_LT(counts[k], 1300) << "rank " << k;
  }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(5);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 dominates, and the head outweighs the tail by a wide margin.
  EXPECT_GT(counts[0], counts[50] * 5);
  int head = 0, tail = 0;
  for (std::uint32_t k = 0; k < 10; ++k) head += counts[k];
  for (std::uint32_t k = 90; k < 100; ++k) tail += counts[k];
  EXPECT_GT(head, tail * 10);
}

TEST(WorkloadZipfTest, KeyOffsetShiftsTheKeyRange) {
  WorkloadConfig config;
  config.key_space = 10;
  config.key_offset = 100;
  Workload workload(config);
  for (int i = 0; i < 100; ++i) {
    const Operation op = workload.next();
    const int k = std::stoi(op.key.substr(4));  // "key-<k>"
    EXPECT_GE(k, 100);
    EXPECT_LT(k, 110);
  }
}

TEST(WorkloadZipfTest, ThetaZeroKeepsTheHistoricalStream) {
  // zipf_theta = 0 must consume the Rng exactly as before the knob
  // existed, so seeded workload streams (and every pinned trace digest
  // downstream of them) are unchanged.
  WorkloadConfig plain;
  plain.seed = 42;
  WorkloadConfig zero = plain;
  zero.zipf_theta = 0.0;
  Workload a(plain), b(zero);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(WorkloadZipfTest, SkewedWorkloadStaysInRangeAndSkews) {
  WorkloadConfig config;
  config.seed = 9;
  config.key_space = 50;
  config.zipf_theta = 1.1;
  Workload workload(config);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5'000; ++i) ++counts[workload.next().key];
  EXPECT_LE(counts.size(), 50u);
  EXPECT_GT(counts["key-0"], counts["key-40"]);
}

}  // namespace
}  // namespace qsel::app
