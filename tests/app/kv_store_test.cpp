#include "app/kv_store.hpp"

#include <gtest/gtest.h>

namespace qsel::app {
namespace {

TEST(OperationTest, EncodeDecodeRoundTrip) {
  const Operation op{OpType::kPut, "key-1", "value-1"};
  const auto decoded = Operation::decode(op.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, op);
}

TEST(OperationTest, MalformedBytesRejected) {
  EXPECT_FALSE(Operation::decode(std::vector<std::uint8_t>{}).has_value());
  EXPECT_FALSE(Operation::decode(std::vector<std::uint8_t>{9, 9}).has_value());
  // Valid layout but unknown op type.
  Operation op{OpType::kGet, "k", ""};
  auto bytes = op.encode();
  bytes[0] = 77;
  EXPECT_FALSE(Operation::decode(bytes).has_value());
  // Trailing garbage.
  bytes = op.encode();
  bytes.push_back(0);
  EXPECT_FALSE(Operation::decode(bytes).has_value());
}

TEST(KvStoreTest, PutGetDel) {
  KvStore store;
  EXPECT_EQ(store.apply({OpType::kPut, "a", "1"}), "");
  EXPECT_EQ(store.apply({OpType::kGet, "a", ""}), "1");
  EXPECT_EQ(store.apply({OpType::kPut, "a", "2"}), "replaced");
  EXPECT_EQ(store.apply({OpType::kGet, "a", ""}), "2");
  EXPECT_EQ(store.apply({OpType::kDel, "a", ""}), "deleted");
  EXPECT_EQ(store.apply({OpType::kDel, "a", ""}), "");
  EXPECT_EQ(store.apply({OpType::kGet, "a", ""}), "");
  EXPECT_EQ(store.ops_applied(), 7u);
}

TEST(KvStoreTest, ApplyEncodedMalformedIsDeterministicNoop) {
  KvStore a;
  KvStore b;
  const std::vector<std::uint8_t> garbage{1, 2, 3};
  EXPECT_EQ(a.apply_encoded(garbage), "<malformed>");
  EXPECT_EQ(b.apply_encoded(garbage), "<malformed>");
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(KvStoreTest, DigestReflectsHistory) {
  KvStore a;
  KvStore b;
  EXPECT_EQ(a.state_digest(), b.state_digest());
  a.apply({OpType::kPut, "x", "1"});
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.apply({OpType::kPut, "x", "1"});
  EXPECT_EQ(a.state_digest(), b.state_digest());
  // Same final contents but different op counts differ.
  a.apply({OpType::kGet, "x", ""});
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(KvStoreTest, GetObserver) {
  KvStore store;
  EXPECT_FALSE(store.get("missing").has_value());
  store.apply({OpType::kPut, "k", "v"});
  EXPECT_EQ(store.get("k"), "v");
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace qsel::app
