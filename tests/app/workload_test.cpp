#include "app/workload.hpp"

#include <gtest/gtest.h>

namespace qsel::app {
namespace {

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.seed = 7;
  Workload a(config);
  Workload b(config);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(WorkloadTest, KeysWithinKeySpace) {
  WorkloadConfig config;
  config.key_space = 5;
  Workload w(config);
  for (int i = 0; i < 200; ++i) {
    const Operation op = w.next();
    EXPECT_TRUE(op.key.starts_with("key-"));
    const int index = std::stoi(op.key.substr(4));
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 5);
  }
}

TEST(WorkloadTest, MixMatchesFractions) {
  WorkloadConfig config;
  config.put_fraction = 0.6;
  config.get_fraction = 0.3;
  Workload w(config);
  int puts = 0, gets = 0, dels = 0;
  const int total = 20000;
  for (int i = 0; i < total; ++i) {
    switch (w.next().type) {
      case OpType::kPut: ++puts; break;
      case OpType::kGet: ++gets; break;
      case OpType::kDel: ++dels; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(puts) / total, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(gets) / total, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(dels) / total, 0.1, 0.02);
}

TEST(WorkloadTest, PutValuesHaveConfiguredSize) {
  WorkloadConfig config;
  config.value_bytes = 8;
  config.put_fraction = 1.0;
  config.get_fraction = 0.0;
  Workload w(config);
  for (int i = 0; i < 50; ++i) {
    const Operation op = w.next();
    ASSERT_EQ(op.type, OpType::kPut);
    EXPECT_EQ(op.value.size(), 8u);
  }
}

TEST(WorkloadTest, BatchMatchesSequentialNext) {
  WorkloadConfig config;
  config.seed = 3;
  Workload a(config);
  Workload b(config);
  const auto batch = a.batch(20);
  for (const Operation& op : batch) EXPECT_EQ(op, b.next());
}

}  // namespace
}  // namespace qsel::app
